//! The paper's second case study: the ellipse implicit-equation coefficient on
//! the Julia target, whose extended math library (degree-based trigonometry,
//! `abs2`, `deg2rad`) lets Chassis produce implementations that are both clearer
//! and more accurate than composing radians-based operators by hand.
//!
//! ```text
//! cargo run --release --example julia_ellipse
//! ```

use chassis::{Config, Session};
use fpcore::parse_fpcore;
use targets::builtin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A = a^2 sin^2(pi/180 * theta) + b^2 cos^2(pi/180 * theta)
    let core = parse_fpcore(
        "(FPCore (a b theta) :name \"ellipse coefficient\"
            :pre (and (> a 0.01) (< a 100) (> b 0.01) (< b 100) (> theta -360) (< theta 360))
            (+ (* (* a a) (* (sin (* (/ PI 180) theta)) (sin (* (/ PI 180) theta))))
               (* (* b b) (* (cos (* (/ PI 180) theta)) (cos (* (/ PI 180) theta))))))",
    )?;
    let target = builtin::by_name("julia").expect("Julia target");
    let result = Session::new(Config::fast()).compile(&core, &target)?;

    println!("input: {core}\n");
    println!(
        "initial lowering: cost {:7.1}  accuracy {:5.1} bits",
        result.initial.cost, result.initial.accuracy_bits
    );
    for imp in &result.implementations {
        println!(
            "output          : cost {:7.1}  accuracy {:5.1} bits\n    {}",
            imp.cost, imp.accuracy_bits, imp.rendered
        );
    }
    for helper in ["sind.f64", "cosd.f64", "deg2rad.f64", "abs2.f64"] {
        let used = result
            .implementations
            .iter()
            .any(|i| i.rendered.contains(helper));
        println!("uses {helper:<12}: {used}");
    }
    Ok(())
}
