//! Writing a custom target description (paper Section 4.2).
//!
//! This example builds a small DSP-style target from scratch: binary32 only,
//! with a fused multiply-add, a fast approximate reciprocal, and no division.
//! It then shows how Chassis exploits those operators, and how the cost
//! auto-tuner can fill in costs when the author does not provide them.
//!
//! ```text
//! cargo run --release --example custom_target
//! ```

use chassis::{Config, Session};
use fpcore::parse_fpcore;
use fpcore::FpType::Binary32;
use targets::autotune::{auto_tune, AutoTuneConfig};
use targets::operator::truncate_mantissa;
use targets::{IfCostStyle, Operator, Target};

fn approximate_reciprocal(args: &[f64]) -> f64 {
    // ~14 good bits, like a one-Newton-step hardware reciprocal.
    truncate_mantissa(1.0 / args[0], 14)
}

fn build_dsp_target() -> Target {
    Target::new(
        "dsp32",
        "A custom binary32 DSP-like target: fma + approximate reciprocal, no division",
    )
    .with_if_style(IfCostStyle::Vector, 3.0)
    .with_leaf_costs(0.5, 0.5)
    .with_cost_source("hand-written example costs")
    .with_operators(vec![
        Operator::emulated("+.f32", &[Binary32, Binary32], Binary32, "(+ a0 a1)", 1.0),
        Operator::emulated("-.f32", &[Binary32, Binary32], Binary32, "(- a0 a1)", 1.0),
        Operator::emulated("*.f32", &[Binary32, Binary32], Binary32, "(* a0 a1)", 1.0),
        Operator::emulated(
            "fma.f32",
            &[Binary32, Binary32, Binary32],
            Binary32,
            "(fma a0 a1 a2)",
            1.0,
        ),
        Operator::emulated("sqrt.f32", &[Binary32], Binary32, "(sqrt a0)", 6.0),
        Operator::native(
            "rcp.f32",
            &[Binary32],
            Binary32,
            "(/ 1 a0)",
            2.0,
            approximate_reciprocal,
        ),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = build_dsp_target();
    println!("custom target: {target}");

    // Chassis can implement division-containing expressions on this target even
    // though it has no division instruction, by rewriting x/y as x * (1/y).
    let core = parse_fpcore(
        "(FPCore ((! :precision binary32 x) (! :precision binary32 y))
            :precision binary32
            :name \"normalized difference\"
            :pre (and (> x 0.001) (< x 1000) (> y 0.001) (< y 1000))
            (/ (- x y) (+ x y)))",
    )?;
    let result = Session::new(Config::fast()).compile(&core, &target)?;
    println!("\ninput: {core}");
    for imp in &result.implementations {
        println!(
            "  cost {:6.1}  accuracy {:5.1} bits   {}",
            imp.cost, imp.accuracy_bits, imp.rendered
        );
    }

    // If the author had not provided costs, the auto-tuner estimates them by
    // timing each operator in a hot loop (Section 4.2).
    let tuned = auto_tune(
        &target,
        AutoTuneConfig {
            iterations: 5_000,
            repeats: 2,
        },
    );
    println!("\nauto-tuned costs:");
    for op in &tuned.operators {
        println!("  {:10} {:6.1}", op.name, op.cost);
    }
    Ok(())
}
