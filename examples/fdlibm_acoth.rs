//! The paper's overview example: the inverse hyperbolic cotangent on the fdlibm
//! target, whose library-internal kernel `log1pmd(x) = log(1+x) − log(1−x)` can
//! replace two separate logarithm calls.
//!
//! One benchmark, two targets: the expression is prepared **once** (sampling +
//! ground truth) and the same prepared state is compiled for both c99 and
//! fdlibm — the session workflow the paper's multi-target evaluation implies.
//!
//! ```text
//! cargo run --release --example fdlibm_acoth
//! ```

use chassis::{Config, Session};
use fpcore::parse_fpcore;
use targets::builtin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // coth^-1(x) = 1/2 * log((1+x) / (1-x))
    let core = parse_fpcore(
        "(FPCore (x) :name \"acoth\" :pre (and (> x -0.9) (< x 0.9) (!= x 0))
            (* (/ 1 2) (log (/ (+ 1 x) (- 1 x)))))",
    )?;

    let session = Session::new(Config::fast());
    let prepared = session.prepare(&core)?; // target-independent, runs once

    for target_name in ["c99", "fdlibm"] {
        let target = builtin::by_name(target_name).expect("built-in target");
        let result = prepared.compile(&target)?; // target-specific search only
        println!("=== target {target_name} ===");
        for imp in &result.implementations {
            println!(
                "  cost {:7.1}  accuracy {:5.1} bits   {}",
                imp.cost, imp.accuracy_bits, imp.rendered
            );
        }
        let uses_kernel = result
            .implementations
            .iter()
            .any(|imp| imp.rendered.contains("log1pmd"));
        println!("  uses fdlibm's log1pmd kernel: {uses_kernel}\n");
    }
    println!(
        "sampling passes: {} (for 2 target compilations)",
        session.prepare_count()
    );
    Ok(())
}
