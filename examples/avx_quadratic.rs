//! The paper's first case study (Section 6.4): the half-b quadratic formula
//! compiled for the AVX target, which has fused multiply-add variants and the
//! fast approximate reciprocal `rcpps`, but no transcendental functions and no
//! negation instruction.
//!
//! ```text
//! cargo run --release --example avx_quadratic
//! ```

use chassis::{Config, Session};
use fpcore::parse_fpcore;
use targets::builtin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let core = parse_fpcore(
        "(FPCore ((! :precision binary32 a) (! :precision binary32 b2) (! :precision binary32 c))
            :precision binary32
            :name \"half-b quadratic formula\"
            :pre (and (> a 0.001) (< a 100) (> b2 0.01) (< b2 100)
                      (> c 0.001) (< c 1) (> (- (* b2 b2) (* a c)) 0.0001))
            (/ (+ (- b2) (sqrt (- (* b2 b2) (* a c)))) a))",
    )?;
    let target = builtin::by_name("avx").expect("AVX target");
    let session = Session::new(Config::fast());
    let result = session.compile(&core, &target)?;

    println!("target: {target}");
    println!("input : {core}\n");
    for imp in &result.implementations {
        println!(
            "cost {:7.1}  accuracy {:5.1} bits\n    {}",
            imp.cost, imp.accuracy_bits, imp.rendered
        );
    }

    // The interesting question for AVX: did Chassis fold the negation and the
    // multiply-adds into FMA variants, and did it use rcp when accuracy permits?
    let mentions = |needle: &str| {
        result
            .implementations
            .iter()
            .any(|imp| imp.rendered.contains(needle))
    };
    println!();
    println!("uses an FMA variant      : {}", mentions("fm"));
    println!("uses approximate rcp     : {}", mentions("rcp.f32"));
    println!("uses exact division      : {}", mentions("/.f32"));
    Ok(())
}
