//! Sweeps one benchmark across every built-in target and prints the
//! accuracy/cost frontier each target admits — a miniature version of the
//! paper's Figure 8, useful for understanding how target characteristics shape
//! the available trade-offs.
//!
//! This is [`Session::compile_many`] in its smallest form: the benchmark is
//! prepared once, the nine `(benchmark × target)` jobs fan out over the worker
//! pool, and a [`Progress`] observer counts search events while a [`Budget`]
//! caps each job's wall-clock time.
//!
//! ```text
//! cargo run --release --example pareto_sweep
//! ```

use chassis::{Budget, Config, Progress, SearchControl, Session};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use targets::builtin;

fn main() {
    let benchmark = benchsuite::by_name("fast-inverse-sqrt-use").expect("corpus benchmark");
    let core = benchmark.fpcore();
    println!("benchmark: {} — {}", benchmark.name, core);

    let session = Session::new(Config::fast());
    let all_targets = builtin::all_targets();

    // Structured observability: count frontier admissions across all jobs
    // (events from parallel jobs interleave, so aggregate instead of printing).
    let admitted = AtomicUsize::new(0);
    let observer = |event: &Progress| {
        if matches!(event, Progress::FrontierPointAdmitted { .. }) {
            admitted.fetch_add(1, Ordering::Relaxed);
        }
    };
    // Bound each per-target search: even a pathological search returns the
    // frontier found within ten seconds (at minimum the initial program).
    let ctl = SearchControl::new()
        .with_progress(&observer)
        .with_budget(Budget::wall_clock(Duration::from_secs(10)));

    let rows = session.compile_many_with(std::slice::from_ref(&core), &all_targets, &ctl);

    for (target, outcome) in all_targets.iter().zip(&rows[0]) {
        print!("\n=== {} ===\n", target.name);
        match outcome {
            Err(e) => println!("  not compilable: {e}"),
            Ok(result) => {
                for imp in &result.implementations {
                    println!(
                        "  cost {:8.1}  accuracy {:5.1} bits   {}",
                        imp.cost, imp.accuracy_bits, imp.rendered
                    );
                }
                println!(
                    "  best speedup over direct lowering: {:.2}x",
                    result.best_speedup()
                );
            }
        }
    }
    println!(
        "\nprepared {} time(s) for {} targets; {} frontier admissions observed",
        session.prepare_count(),
        all_targets.len(),
        admitted.load(Ordering::Relaxed)
    );
}
