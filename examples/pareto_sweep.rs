//! Sweeps one benchmark across every built-in target and prints the
//! accuracy/cost frontier each target admits — a miniature version of the
//! paper's Figure 8, useful for understanding how target characteristics shape
//! the available trade-offs.
//!
//! ```text
//! cargo run --release --example pareto_sweep
//! ```

use chassis::{Chassis, Config};
use targets::builtin;

fn main() {
    let benchmark = benchsuite::by_name("fast-inverse-sqrt-use").expect("corpus benchmark");
    let core = benchmark.fpcore();
    println!("benchmark: {} — {}", benchmark.name, core);

    for target in builtin::all_targets() {
        print!("\n=== {} ===\n", target.name);
        match Chassis::new(target.clone())
            .with_config(Config::fast())
            .compile(&core)
        {
            Err(e) => println!("  not compilable: {e}"),
            Ok(result) => {
                for imp in &result.implementations {
                    println!(
                        "  cost {:8.1}  accuracy {:5.1} bits   {}",
                        imp.cost, imp.accuracy_bits, imp.rendered
                    );
                }
                println!(
                    "  best speedup over direct lowering: {:.2}x",
                    result.best_speedup()
                );
            }
        }
    }
}
