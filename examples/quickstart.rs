//! Quickstart: compile one expression for one target and print its Pareto
//! frontier of implementations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chassis::{Config, Session};
use fpcore::parse_fpcore;
use targets::builtin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The classic cancellation-prone expression sqrt(x+1) - sqrt(x).
    let core = parse_fpcore(
        "(FPCore (x) :name \"sqrt(x+1) - sqrt(x)\" :pre (and (> x 1) (< x 1e14))
            (- (sqrt (+ x 1)) (sqrt x)))",
    )?;

    // Pick a target description: here, scalar C99 with the full math library.
    let target = builtin::by_name("c99").expect("built-in target");

    // A session owns the configuration (including the RNG seed) and caches
    // target-independent work. `Config::fast()` keeps the search small enough
    // for an example.
    let session = Session::new(Config::fast());

    // Prepare once (sampling + ground truth), then compile for the target.
    // The same `prepared` could compile for any number of other targets
    // without re-sampling — see the fdlibm_acoth and pareto_sweep examples.
    let prepared = session.prepare(&core)?;
    let result = prepared.compile(&target)?;

    println!("input        : {core}");
    println!(
        "initial      : cost {:7.1}   accuracy {:5.1} bits   {}",
        result.initial.cost, result.initial.accuracy_bits, result.initial.rendered
    );
    println!(
        "pareto frontier ({} implementations):",
        result.implementations.len()
    );
    for imp in &result.implementations {
        println!(
            "  cost {:7.1}   accuracy {:5.1} bits   {}",
            imp.cost, imp.accuracy_bits, imp.rendered
        );
    }
    println!(
        "best speedup : {:.2}x (cheapest output vs the direct lowering)",
        result.best_speedup()
    );
    println!(
        "accuracy gain: {:.1} bits (most accurate output vs the direct lowering)",
        result.initial.error_bits - result.most_accurate().error_bits
    );
    Ok(())
}
