//! Differential property tests: the bytecode evaluator vs. the tree-walk
//! interpreter.
//!
//! The compiled path ([`targets::compile`]) claims *bit identity* with the
//! reference semantics ([`targets::eval_float_expr_in`]) — that is what lets
//! the accuracy hot loops swap evaluators without perturbing a single search
//! decision. These tests generate random `FloatExpr`s over **every builtin
//! target** (random operators of both precisions, comparisons, conditionals)
//! and evaluate both paths on shared points that include NaN, both
//! infinities, signed zeros, and subnormals, asserting equality of the bit
//! patterns through [`semantic_bits`].
//!
//! `semantic_bits` canonicalizes NaNs (and nothing else) before comparing:
//! IEEE 754 §6.3 leaves the sign and payload of a NaN produced by an
//! arithmetic operation unspecified, and LLVM exploits that latitude — e.g.
//! commuting the operands of an auto-vectorized `fmul` changes *which* input
//! NaN x86 propagates, flipping the result's sign bit at exactly
//! vector-multiple block widths in release builds. Every numeric fact the
//! search consumes (costs, errors, regime decisions) is NaN-sign-blind, so
//! the engines' bit-identity contract is: identical bits for every non-NaN
//! value (signed zeros and subnormals included), any NaN matched by any NaN.
//!
//! Cases come from the workspace's deterministic RNG, so every run exercises
//! the same expressions and failures reproduce exactly.

use chassis::rng::Rng;
use fpcore::eval::semantic_bits;
use fpcore::{FpType, RealOp, Symbol};
use targets::{builtin, eval_float_expr_in, Columns, FloatExpr, SliceEnv, Target};

/// Input values that exercise every float class the evaluators can disagree
/// on, plus a couple of benign magnitudes.
const SPECIALS: &[f64] = &[
    0.0,
    -0.0,
    1.0,
    -1.5,
    0.5,
    1e300,
    -1e300,
    1e-308, // subnormal after binary32 rounding, normal in binary64
    5e-324, // smallest positive subnormal
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    std::f64::consts::PI,
];

fn arb_value(rng: &mut Rng) -> f64 {
    if rng.below(2) == 0 {
        SPECIALS[rng.below(SPECIALS.len() as u64) as usize]
    } else {
        // A finite value spanning many magnitudes, either sign.
        let magnitude = 10f64.powf(rng.range_f64(-10.0, 10.0));
        if rng.below(2) == 0 {
            magnitude
        } else {
            -magnitude
        }
    }
}

/// A random program over `x` and `y` whose result has representation `ty`,
/// using only operators the target actually provides at that type.
fn arb_float_expr(rng: &mut Rng, target: &Target, ty: FpType, depth: usize) -> FloatExpr {
    let ops_at: Vec<_> = target
        .operator_ids()
        .filter(|id| target.operator(*id).ret_type == ty)
        .collect();
    if depth == 0 || ops_at.is_empty() || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => FloatExpr::Var(Symbol::new("x"), ty),
            1 => FloatExpr::Var(Symbol::new("y"), ty),
            _ => FloatExpr::literal(arb_value(rng), ty),
        };
    }
    // Mostly operator applications, sometimes a comparison-guarded branch.
    if rng.below(6) == 0 {
        let cmp = [
            RealOp::Lt,
            RealOp::Gt,
            RealOp::Le,
            RealOp::Ge,
            RealOp::Eq,
            RealOp::Ne,
        ][rng.below(6) as usize];
        return FloatExpr::If(
            Box::new(FloatExpr::Cmp(
                cmp,
                Box::new(arb_float_expr(rng, target, ty, depth - 1)),
                Box::new(arb_float_expr(rng, target, ty, depth - 1)),
            )),
            Box::new(arb_float_expr(rng, target, ty, depth - 1)),
            Box::new(arb_float_expr(rng, target, ty, depth - 1)),
        );
    }
    let id = ops_at[rng.below(ops_at.len() as u64) as usize];
    let arg_types = target.operator(id).arg_types.clone();
    let args = arg_types
        .iter()
        .map(|arg_ty| arb_float_expr(rng, target, *arg_ty, depth - 1))
        .collect();
    FloatExpr::Op(id, args)
}

#[test]
fn bytecode_is_bit_identical_to_tree_walk_on_every_builtin_target() {
    let vars = [Symbol::new("x"), Symbol::new("y")];
    for target in builtin::all_targets() {
        let mut rng = Rng::new(0xB17E_C0DE_u64 ^ target.name.len() as u64);
        let mut checked = 0usize;
        for case in 0..60 {
            let ty = if rng.below(3) == 0 {
                FpType::Binary32
            } else {
                FpType::Binary64
            };
            let expr = arb_float_expr(&mut rng, &target, ty, 4);
            let program = targets::compile(&target, &expr);
            let columns = program.bind_columns(&vars);
            let mut regs = program.new_regs();
            for _ in 0..12 {
                let point = [arb_value(&mut rng), arb_value(&mut rng)];
                let tree = eval_float_expr_in(&target, &expr, &SliceEnv::new(&vars, &point));
                let byte = program.eval_point(&columns, &point, &mut regs);
                assert_eq!(
                    semantic_bits(tree),
                    semantic_bits(byte),
                    "target {}, case {case}, point {point:?}: tree walk {tree:?} \
                     vs bytecode {byte:?} for {}",
                    target.name,
                    expr.render(&target)
                );
                checked += 1;
            }
        }
        assert!(checked >= 700, "target {} exercised {checked}", target.name);
    }
}

#[test]
fn batch_and_single_point_entry_points_agree() {
    let target = builtin::by_name("vdt").unwrap();
    let mut rng = Rng::new(0xBA7C4);
    let vars = [Symbol::new("x"), Symbol::new("y")];
    for _ in 0..20 {
        let expr = arb_float_expr(&mut rng, &target, FpType::Binary64, 3);
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|_| vec![arb_value(&mut rng), arb_value(&mut rng)])
            .collect();
        let batch = targets::eval_batch(&target, &expr, &vars, &Columns::from_rows(2, &rows));
        for (point, batched) in rows.iter().zip(batch) {
            let single = eval_float_expr_in(&target, &expr, &SliceEnv::new(&vars, point));
            assert_eq!(semantic_bits(single), semantic_bits(batched));
        }
    }
}

/// The block engine claims bit identity with the scalar bytecode engine and
/// the tree walk at *every* block width. Exercise random programs over every
/// builtin target on a batch whose length (67) is a multiple of none of the
/// tested widths — so each width runs its ragged tail — with inputs that
/// include NaN, infinities, signed zeros, and subnormals.
#[test]
fn block_engine_is_bit_identical_at_every_block_size() {
    const BATCH: usize = 67;
    let vars = [Symbol::new("x"), Symbol::new("y")];
    for target in builtin::all_targets() {
        let mut rng = Rng::new(0x0B10_C0DE_u64 ^ target.name.len() as u64);
        for case in 0..20 {
            let ty = if rng.below(3) == 0 {
                FpType::Binary32
            } else {
                FpType::Binary64
            };
            let expr = arb_float_expr(&mut rng, &target, ty, 4);
            let rows: Vec<Vec<f64>> = (0..BATCH)
                .map(|_| vec![arb_value(&mut rng), arb_value(&mut rng)])
                .collect();
            let points = Columns::from_rows(2, &rows);
            let program = targets::compile(&target, &expr);
            let columns = program.bind_columns(&vars);
            // Reference: the tree walk and the scalar bytecode engine.
            let mut regs = program.new_regs();
            for (i, point) in rows.iter().enumerate() {
                let tree = eval_float_expr_in(&target, &expr, &SliceEnv::new(&vars, point));
                let scalar = program.eval_point(&columns, point, &mut regs);
                assert_eq!(
                    semantic_bits(tree),
                    semantic_bits(scalar),
                    "scalar bytecode diverges from tree walk on {} case {case} point {i}",
                    target.name
                );
            }
            let reference: Vec<u64> = rows
                .iter()
                .map(|point| {
                    semantic_bits(eval_float_expr_in(
                        &target,
                        &expr,
                        &SliceEnv::new(&vars, point),
                    ))
                })
                .collect();
            // Block mode at degenerate (1), odd (3), default (64), and
            // whole-batch widths.
            for width in [1usize, 3, 64, BATCH] {
                let mut block_regs = program.new_block_regs(width);
                let mut out = vec![0.0; BATCH];
                program.eval_range(&columns, &points, 0, &mut block_regs, &mut out);
                for (i, (got, want)) in out.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        semantic_bits(*got),
                        *want,
                        "block width {width} diverges on {} case {case} point {i} \
                         ({:?}) for {}",
                        target.name,
                        rows[i],
                        expr.render(&target)
                    );
                }
            }
        }
    }
}

/// The accuracy pipeline (`mean_bits_of_error`) runs on the compiled path;
/// recomputing it with the tree-walk interpreter must give the same bits.
#[test]
fn mean_error_on_compiled_path_matches_tree_walk_recomputation() {
    use chassis::accuracy::{bits_of_error, mean_bits_of_error};
    let vars = [Symbol::new("x"), Symbol::new("y")];
    for name in ["c99", "avx", "arith-fma"] {
        let target = builtin::by_name(name).unwrap();
        let mut rng = Rng::new(0xACC);
        for _ in 0..10 {
            let expr = arb_float_expr(&mut rng, &target, FpType::Binary64, 4);
            // A batch length that is not a multiple of the default block
            // width, so the mean runs through the ragged tail path too.
            let rows: Vec<Vec<f64>> = (0..97)
                .map(|_| vec![arb_value(&mut rng), arb_value(&mut rng)])
                .collect();
            // Ground truths do not need to be true values for this test — any
            // reference works, including specials.
            let truths: Vec<f64> = (0..97).map(|_| arb_value(&mut rng)).collect();
            let points = Columns::from_rows(2, &rows);
            let compiled =
                mean_bits_of_error(&target, &expr, &vars, &points, &truths, FpType::Binary64);
            let tree: f64 = rows
                .iter()
                .zip(&truths)
                .map(|(point, truth)| {
                    let out = eval_float_expr_in(&target, &expr, &SliceEnv::new(&vars, point));
                    bits_of_error(out, *truth, FpType::Binary64)
                })
                .sum::<f64>()
                / points.len() as f64;
            assert_eq!(
                semantic_bits(compiled),
                semantic_bits(tree),
                "accuracy diverges on {name} for {}",
                expr.render(&target)
            );
        }
    }
}
