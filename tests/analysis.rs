//! Corpus-wide property tests for the `targets::analysis` passes.
//!
//! The optimizer (dead-code elimination + liveness-driven register
//! compaction) claims *bit identity*: for every program it may only shrink
//! the register slab and drop unreachable instructions, never change a
//! computed value. These tests check that claim over the whole benchmark
//! corpus on every builtin target, across all three engines — tree walk,
//! scalar bytecode, SoA block execution — at block widths 1, 3, 64, and
//! whole-batch (widths chosen to cross the skip-range fast path's uniformity
//! boundaries). Comparisons go through [`semantic_bits`]: NaN sign/payload
//! is unspecified by IEEE 754 and varies with vectorized codegen, so any NaN
//! matches any NaN (see `tests/bytecode.rs` for the full rationale). They also exercise the verifier's two public jobs end to
//! end: accepting every corpus program (fresh and optimized) and rejecting
//! every seeded invariant-breaking mutant, and they pin the interval
//! analysis's uniform-select annotation on a program where the domain
//! decides the branch.

use chassis::lower_fpcore;
use chassis::rng::Rng;
use fpcore::eval::semantic_bits;
use fpcore::Symbol;
use targets::analysis::{self, Mode};
use targets::{builtin, eval_float_expr_indexed, Columns};

/// Deterministic per-variable sample points: log-uniform magnitudes with
/// random signs, the corpus input distribution of the throughput bench.
fn sample_rows(rng: &mut Rng, n_vars: usize, n_points: usize) -> Vec<Vec<f64>> {
    (0..n_points)
        .map(|_| {
            (0..n_vars)
                .map(|_| {
                    let magnitude = 10f64.powf(rng.range_f64(-6.0, 6.0));
                    if rng.below(2) == 0 {
                        magnitude
                    } else {
                        -magnitude
                    }
                })
                .collect()
        })
        .collect()
}

/// The corpus-wide bit-identity and verifier-acceptance sweep. One test
/// rather than one per target: the corpus × target product is the unit the
/// optimizer's claim quantifies over.
#[test]
fn optimized_programs_are_bit_identical_on_every_engine() {
    const POINTS: usize = 24;
    // Width 1 and 3 keep some blocks partial, 64 matches the production
    // default, 0 (whole batch) exercises the single-block path.
    const WIDTHS: &[usize] = &[1, 3, 64, 0];
    let mut rng = Rng::new(0xA11A_1751);
    let mut cases = 0usize;
    for target in &builtin::all_targets() {
        for benchmark in benchsuite::all() {
            let core = benchmark.fpcore();
            let Ok(expr) = lower_fpcore(&core, target) else {
                continue;
            };
            cases += 1;
            let program = targets::compile(target, &expr);
            assert!(
                analysis::verify_with_target(&program, target, Mode::Ssa).is_empty(),
                "{} on {}: fresh program failed verification",
                benchmark.name,
                target.name
            );
            let (optimized, stats) = analysis::optimize(&program);
            assert!(
                analysis::verify_with_target(&optimized, target, Mode::Executable).is_empty(),
                "{} on {}: optimized program failed verification",
                benchmark.name,
                target.name
            );
            assert!(
                stats.regs_after <= stats.regs_before,
                "compaction must never grow the slab"
            );

            let vars = expr.variables();
            let rows = sample_rows(&mut rng, vars.len(), POINTS);
            let points = Columns::from_rows(vars.len(), &rows);
            let opt_columns = optimized.bind_columns(&vars);
            let mut opt_regs = optimized.new_regs();
            for (i, point) in rows.iter().enumerate() {
                let want = semantic_bits(eval_float_expr_indexed(target, &expr, &vars, point));
                let got = semantic_bits(optimized.eval_point(&opt_columns, point, &mut opt_regs));
                assert_eq!(
                    got, want,
                    "{} on {}: optimized scalar bytecode diverged at point {i}",
                    benchmark.name, target.name
                );
            }
            let mut out = vec![0.0f64; POINTS];
            for &width in WIDTHS {
                let width = if width == 0 { POINTS } else { width };
                let mut block_regs = optimized.new_block_regs(width);
                optimized.eval_range(&opt_columns, &points, 0, &mut block_regs, &mut out);
                for (i, (&got, point)) in out.iter().zip(&rows).enumerate() {
                    let want = semantic_bits(eval_float_expr_indexed(target, &expr, &vars, point));
                    assert_eq!(
                        semantic_bits(got),
                        want,
                        "{} on {}: block engine (width {width}) diverged at point {i}",
                        benchmark.name,
                        target.name
                    );
                }
            }
        }
    }
    assert!(
        cases > 100,
        "the sweep must cover the corpus ({cases} cases)"
    );
}

/// Every seeded invariant-breaking mutant of a compiled corpus program must
/// be rejected by the verifier. (The exhaustive sweep — every benchmark,
/// every target, many seeds — is the `lint_ir` CI gate; this is the
/// in-`cargo-test` smoke slice over one transcendental benchmark per
/// target.)
#[test]
fn verifier_rejects_seeded_mutants_of_corpus_programs() {
    let mut mutants = 0usize;
    for target in &builtin::all_targets() {
        let benchmark = benchsuite::all()
            .iter()
            .find(|b| lower_fpcore(&b.fpcore(), target).is_ok())
            .expect("some benchmark lowers onto every builtin target");
        let expr = lower_fpcore(&benchmark.fpcore(), target).unwrap();
        let program = targets::compile(target, &expr);
        for seed in 0..4u64 {
            for mutant in analysis::seeded_mutants(&program, seed) {
                mutants += 1;
                assert!(
                    !analysis::verify(&mutant.program, Mode::Ssa).is_empty(),
                    "{} on {}: mutant survived ({:?}: {})",
                    benchmark.name,
                    target.name,
                    mutant.kind,
                    mutant.description
                );
            }
        }
    }
    assert!(
        mutants > 50,
        "expected a real mutant population ({mutants})"
    );
}

/// The interval analysis must prove a select uniform when the sampler domain
/// decides its condition, and must leave it undecided when it does not.
#[test]
fn interval_analysis_decides_selects_from_domains() {
    let target = builtin::by_name("c99").unwrap();
    let core = fpcore::parse_fpcore(
        "(FPCore (x) :pre (and (> x 1) (< x 8)) (if (> x 0) (exp x) (sqrt x)))",
    )
    .unwrap();
    let expr = lower_fpcore(&core, &target).unwrap();
    let program = targets::compile(&target, &expr);

    // Domain (1, 8): x > 0 is always true, so the select is uniform (then
    // arm) — and exp's argument stays within its kernel's safe range.
    let domains = analysis::domains_from_pre(core.pre.as_ref());
    let decided = analysis::interval_analysis(&program, Some(&target), &domains);
    assert_eq!(
        decided.uniform_selects.len(),
        1,
        "domain decides the branch"
    );
    assert!(decided.uniform_selects[0].takes_then);
    assert!(
        decided.safe_calls.iter().any(|c| c.kernel == "exp"),
        "exp over (1, 8) stays on the kernel's special-case-free range"
    );

    // Domain (-4, 8) straddles the condition: nothing may be claimed.
    let straddling = vec![(Symbol::new("x"), (-4.0, 8.0))];
    let undecided = analysis::interval_analysis(&program, Some(&target), &straddling);
    assert!(undecided.uniform_selects.is_empty());
}
