//! Integration tests spanning every crate: FPCore parsing, ground truth,
//! target descriptions, the Chassis compiler, and the baselines.

use chassis::baseline::clang::{compile_clang, ClangConfig};
use chassis::baseline::herbie::{transcribe, HerbieCompiler};
use chassis::{Config, Session};
use fpcore::{parse_fpcore, Symbol};
use std::collections::HashMap;
use targets::{builtin, eval_float_expr_in, program_cost};

fn fast() -> Config {
    Config::fast()
}

#[test]
fn corpus_benchmark_compiles_on_c99_and_preserves_semantics() {
    let benchmark = benchsuite::by_name("sqrt-add-one-minus-sqrt").unwrap();
    let core = benchmark.fpcore();
    let target = builtin::by_name("c99").unwrap();
    let result = Session::new(fast())
        .compile(&core, &target)
        .expect("compilation succeeds");
    assert!(!result.implementations.is_empty());

    // Every implementation, executed on a benign input, must agree with the
    // mathematical value to within a loose tolerance (they are all lowerings of
    // real-equivalent expressions).
    let x = 37.5;
    let truth = (x + 1.0f64).sqrt() - x.sqrt();
    let env: HashMap<Symbol, f64> = [(Symbol::new("x"), x)].into_iter().collect();
    for imp in &result.implementations {
        let out = eval_float_expr_in(&target, &imp.expr, &env);
        let rel = ((out - truth) / truth).abs();
        assert!(
            rel < 1e-3,
            "{} diverges from the real value: {out} vs {truth}",
            imp.rendered
        );
    }

    // And the most accurate one must be much better than the naive lowering.
    assert!(result.most_accurate().error_bits + 5.0 < result.initial.error_bits);
}

#[test]
fn chassis_beats_herbie_transcription_on_the_vdt_target() {
    // On the vdt target the fast_* operators give Chassis cheap options that a
    // target-agnostic compiler cannot know about (the Figure 8 story).
    let benchmark = benchsuite::by_name("sinc").unwrap();
    let core = benchmark.fpcore();
    let target = builtin::by_name("vdt").unwrap();

    let chassis_result = Session::new(fast())
        .compile(&core, &target)
        .expect("chassis compiles");
    let herbie = HerbieCompiler::new(fast());
    let herbie_result = herbie.compile(&core).expect("herbie compiles");

    // Port Herbie's outputs to vdt and find its cheapest program.
    let herbie_costs: Vec<f64> = herbie_result
        .implementations
        .iter()
        .filter_map(|imp| transcribe(&imp.expr, herbie.target(), &target, core.precision))
        .map(|prog| program_cost(&target, &prog))
        .collect();
    assert!(
        !herbie_costs.is_empty(),
        "herbie output must be portable to vdt"
    );
    let herbie_cheapest = herbie_costs.iter().copied().fold(f64::INFINITY, f64::min);
    let chassis_cheapest = chassis_result.cheapest().cost;
    assert!(
        chassis_cheapest <= herbie_cheapest,
        "chassis ({chassis_cheapest}) should find code at least as cheap as transcribed herbie ({herbie_cheapest})"
    );
}

#[test]
fn chassis_dominates_clang_fast_math_on_accuracy() {
    // Clang's fast-math rewrites ignore accuracy; Chassis' most accurate output
    // must be at least as accurate as any Clang configuration.
    let benchmark = benchsuite::by_name("expm1-over-x").unwrap();
    let core = benchmark.fpcore();
    let target = builtin::by_name("c99").unwrap();
    let result = Session::new(fast())
        .compile(&core, &target)
        .expect("chassis compiles");
    let samples = &result.samples;
    for config in ClangConfig::all() {
        let program = compile_clang(&core, &target, config).expect("clang compiles");
        let (clang_err, _) = chassis::accuracy::evaluate_on_test(&target, &program, samples);
        assert!(
            result.most_accurate().error_bits <= clang_err + 1.0,
            "chassis ({:.1} bits) should not be less accurate than clang {} ({clang_err:.1} bits)",
            result.most_accurate().error_bits,
            config.name()
        );
    }
}

#[test]
fn avx_target_lacks_transcendentals_but_compiles_rational_kernels() {
    let target = builtin::by_name("avx").unwrap();
    let session = Session::new(fast());
    // A transcendental benchmark cannot be implemented...
    let sin_core = parse_fpcore("(FPCore (x) (sin x))").unwrap();
    assert!(session.compile(&sin_core, &target).is_err());
    // ...but a rational kernel can, and produces multiple Pareto points.
    let benchmark = benchsuite::by_name("reciprocal").unwrap();
    let mut core = benchmark.fpcore();
    // Compile the binary32 flavour so rcpps is usable.
    core.precision = fpcore::FpType::Binary32;
    for arg in &mut core.args {
        arg.1 = fpcore::FpType::Binary32;
    }
    let result = session.compile(&core, &target).expect("compiles on AVX");
    assert!(
        result.implementations.len() >= 2,
        "expected both the exact and the approximate reciprocal on the frontier"
    );
    assert!(result
        .implementations
        .iter()
        .any(|imp| imp.rendered.contains("rcp.f32")));
}

#[test]
fn every_target_compiles_a_simple_polynomial() {
    let core =
        parse_fpcore("(FPCore (x) :pre (and (> x -100) (< x 100)) (+ (* x (* x x)) (* 3 x)))")
            .unwrap();
    // One session: the polynomial is sampled and ground-truthed once, then
    // compiled for all nine targets from the shared preparation.
    let session = Session::new(fast());
    for target in builtin::all_targets() {
        let result = session
            .compile(&core, &target)
            .unwrap_or_else(|e| panic!("target {} failed: {e}", target.name));
        assert!(
            !result.implementations.is_empty(),
            "target {} produced no implementations",
            target.name
        );
        // The output accuracy should be essentially perfect for a well-behaved
        // polynomial on every target.
        assert!(
            result.most_accurate().accuracy_bits > 20.0,
            "target {} lost too much accuracy",
            target.name
        );
    }
    assert_eq!(
        session.prepare_count(),
        1,
        "nine targets must share one preparation"
    );
}

#[test]
fn figure6_shape_holds() {
    // The table-level facts the paper's Figure 6 records.
    let targets = builtin::all_targets();
    assert_eq!(targets.len(), 9);
    let vdt = builtin::by_name("vdt").unwrap();
    assert!(vdt.find_operator("fast_sin.f64").is_some());
    let fdlibm = builtin::by_name("fdlibm").unwrap();
    assert!(fdlibm.find_operator("log1pmd.f64").is_some());
    let avx = builtin::by_name("avx").unwrap();
    assert!(avx.find_operator("rcp.f32").is_some());
    assert!(avx.find_operator("rsqrt.f32").is_some());
}
