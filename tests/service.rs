//! Integration tests for the compilation service: the daemon end to end over
//! real sockets, the content-addressed store's failure modes, request
//! coalescing, and chaos plans over the service fault points.
//!
//! Every test that starts a daemon installs a [`fault::FaultPlan`] — an empty
//! one when no fault is needed — because `fault::install` is
//! process-exclusive: holding the guard serializes these tests against each
//! other, so a test arming `store.read` can never inject faults into a
//! neighbouring test's daemon.

use service::json::Json;
use service::{client, content_key, start, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const SQRT_CANCEL: &str = "(FPCore (x) :pre (and (> x 1) (< x 1e14)) (- (sqrt (+ x 1)) (sqrt x)))";
const QUADRATIC: &str = "(FPCore (a b c) (/ (- (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a)))";

/// A per-test scratch directory under the target dir (no external tempfile
/// crate; cleaned up on entry so reruns start fresh).
fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_server(disk: Option<PathBuf>) -> ServerConfig {
    ServerConfig {
        workers: 2,
        memory_capacity: 64,
        disk_dir: disk,
        ..ServerConfig::default()
    }
}

fn compile_request(fpcore: &str, target: &str, seed: u64) -> String {
    compile_request_full(fpcore, target, seed, None, None)
}

fn compile_request_full(
    fpcore: &str,
    target: &str,
    seed: u64,
    client: Option<&str>,
    deadline_ms: Option<u64>,
) -> String {
    let mut members = vec![
        ("fpcore".to_owned(), Json::Str(fpcore.to_owned())),
        ("target".to_owned(), Json::Str(target.to_owned())),
        ("seed".to_owned(), Json::from_u64(seed)),
        ("config".to_owned(), Json::Str("fast".to_owned())),
    ];
    if let Some(client) = client {
        members.push(("client".to_owned(), Json::Str(client.to_owned())));
    }
    if let Some(ms) = deadline_ms {
        members.push(("deadline_ms".to_owned(), Json::from_u64(ms)));
    }
    Json::Obj(members).to_string()
}

fn kind_of(doc: &Json) -> &str {
    doc.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("?")
}

fn post_compile(addr: SocketAddr, body: &str) -> (u16, Json) {
    let response = client::post_json(addr, "/compile", body).expect("request should succeed");
    let doc = Json::parse(&response.body)
        .unwrap_or_else(|e| panic!("non-json body {:?}: {e}", response.body));
    (response.status, doc)
}

fn cache_of(doc: &Json) -> &str {
    doc.get("cache").and_then(Json::as_str).unwrap_or("?")
}

fn stat(addr: SocketAddr, field: &str) -> u64 {
    let response = client::get(addr, "/stats").expect("stats should answer");
    let doc = Json::parse(&response.body).expect("stats is json");
    doc.get(field)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing {field}: {}", response.body))
}

#[test]
fn content_keys_are_stable_and_semantic() {
    // No daemon here, but the golden below is part of the on-disk store
    // format: if it changes, the key algorithm changed and the store
    // version must be bumped (see crates/service/src/store.rs).
    let core = fpcore::parse_fpcore(SQRT_CANCEL).unwrap();
    let reformatted = fpcore::parse_fpcore(&SQRT_CANCEL.replace(' ', "\n  ")).unwrap();
    let c99 = targets::builtin::by_name("c99").unwrap();
    let avx = targets::builtin::by_name("avx").unwrap();

    let key = content_key(&core, &c99, 42, "fast");
    assert_eq!(key.len(), 32);
    assert_eq!(key, content_key(&core, &c99, 42, "fast"), "deterministic");
    assert_eq!(
        key,
        content_key(&reformatted, &c99, 42, "fast"),
        "formatting is not content"
    );
    for different in [
        content_key(&core, &avx, 42, "fast"),
        content_key(&core, &c99, 43, "fast"),
        content_key(&core, &c99, 42, "default"),
        content_key(&fpcore::parse_fpcore(QUADRATIC).unwrap(), &c99, 42, "fast"),
    ] {
        assert_ne!(key, different);
    }
}

#[test]
fn daemon_serves_compile_cache_and_introspection_routes() {
    let _plan = fault::install(fault::FaultPlan::new());
    let handle = start(small_server(None)).unwrap();
    let addr = handle.addr();

    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(
        (health.status, health.body.as_str()),
        (200, "{\"status\":\"ok\"}")
    );

    // Cold: a miss that compiles; warm: a memory hit with an identical body.
    let request = compile_request(SQRT_CANCEL, "c99", 7);
    let (status, cold) = post_compile(addr, &request);
    assert_eq!(status, 200, "cold compile should succeed: {cold}");
    assert_eq!(cache_of(&cold), "miss");
    let (status, warm) = post_compile(addr, &request);
    assert_eq!(status, 200);
    assert_eq!(cache_of(&warm), "memory");

    // The bodies differ only in the cache tag; implementations are
    // bit-identical (the stored body is reused verbatim).
    let strip = |doc: &Json| {
        let Json::Obj(members) = doc else {
            panic!("not an object")
        };
        Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "cache")
                .cloned()
                .collect(),
        )
        .to_string()
    };
    assert_eq!(strip(&cold), strip(&warm));

    // The response key works on GET /result/{key}.
    let key = cold.get("key").and_then(Json::as_str).unwrap().to_owned();
    let fetched = client::get(addr, &format!("/result/{key}")).unwrap();
    assert_eq!(fetched.status, 200);

    // The daemon result matches a direct in-process compilation bit for bit.
    let core = fpcore::parse_fpcore(SQRT_CANCEL).unwrap();
    let target = targets::builtin::by_name("c99").unwrap();
    let session = chassis::Session::new(chassis::Config::fast().with_seed(7));
    let direct = session.compile(&core, &target).unwrap();
    let served = cold.get("implementations").and_then(Json::as_arr).unwrap();
    assert_eq!(served.len(), direct.implementations.len());
    for (json, imp) in served.iter().zip(&direct.implementations) {
        assert_eq!(
            json.get("rendered").and_then(Json::as_str),
            Some(imp.rendered.as_str())
        );
        assert_eq!(
            json.get("cost_hex").and_then(Json::as_str),
            Some(service::json::hex_bits(imp.cost).as_str())
        );
        assert_eq!(
            json.get("error_bits_hex").and_then(Json::as_str),
            Some(service::json::hex_bits(imp.error_bits).as_str())
        );
    }

    // Stats reflect what happened.
    assert_eq!(stat(addr, "hits_memory"), 2, "warm POST + GET /result");
    assert_eq!(stat(addr, "compiles"), 1);
    assert_eq!(stat(addr, "jobs_failed"), 0);

    // Error paths: malformed JSON, bad FPCore, unknown target, bad key,
    // unknown route, unknown result.
    let cases = [
        ("{not json", 400),
        ("{\"fpcore\":\"(FPCore (x) x\",\"target\":\"c99\"}", 400),
        ("{\"fpcore\":\"(FPCore (x) x)\",\"target\":\"m68k\"}", 400),
        ("{\"target\":\"c99\"}", 400),
        (
            "{\"fpcore\":\"(FPCore (x) x)\",\"target\":\"c99\",\"seed\":-1}",
            400,
        ),
    ];
    for (body, expected) in cases {
        let response = client::post_json(addr, "/compile", body).unwrap();
        assert_eq!(response.status, expected, "for body {body:?}");
    }
    assert_eq!(client::get(addr, "/result/zz").unwrap().status, 400);
    assert_eq!(
        client::get(addr, &format!("/result/{}", "0".repeat(32)))
            .unwrap()
            .status,
        404
    );
    assert_eq!(client::get(addr, "/no-such-route").unwrap().status, 404);
    assert_eq!(client::get(addr, "/compile").unwrap().status, 405);

    handle.stop();
}

#[test]
fn unsamplable_requests_get_typed_422_and_are_not_cached() {
    let _plan = fault::install(fault::FaultPlan::new());
    let handle = start(small_server(None)).unwrap();
    let addr = handle.addr();
    // An unsatisfiable precondition cannot be sampled: typed CompileError
    // mapped to 422, and retrying recompiles (errors are never stored).
    let body = compile_request("(FPCore (x) :pre (and (> x 1) (< x 0)) (sqrt x))", "c99", 1);
    let (status, doc) = post_compile(addr, &body);
    assert_eq!(status, 422, "sampling failure is a 422: {doc}");
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("sampling")
    );
    let (status, _) = post_compile(addr, &body);
    assert_eq!(status, 422);
    assert_eq!(
        stat(addr, "compiles"),
        2,
        "errors are recomputed, not cached"
    );
    assert_eq!(stat(addr, "jobs_failed"), 2);
    handle.stop();
}

#[test]
fn disk_store_survives_restart_corruption_and_truncation() {
    let _plan = fault::install(fault::FaultPlan::new());
    let dir = scratch_dir("service-disk");
    let request = compile_request(SQRT_CANCEL, "arith", 11);

    // First daemon: cold compile, persisted to disk.
    let first = start(small_server(Some(dir.clone()))).unwrap();
    let (status, cold) = post_compile(first.addr(), &request);
    assert_eq!(status, 200);
    let key = cold.get("key").and_then(Json::as_str).unwrap().to_owned();
    first.stop();

    // Second daemon on the same directory: warm from disk, no compile.
    let second = start(small_server(Some(dir.clone()))).unwrap();
    let (status, warm) = post_compile(second.addr(), &request);
    assert_eq!(status, 200);
    assert_eq!(cache_of(&warm), "disk");
    assert_eq!(stat(second.addr(), "compiles"), 0);
    second.stop();

    // Corrupt the entry; the next daemon must recover by recompiling.
    let entry = dir.join(&key[0..2]).join(&key);
    let mut bytes = std::fs::read(&entry).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&entry, &bytes).unwrap();
    let third = start(small_server(Some(dir.clone()))).unwrap();
    let (status, recovered) = post_compile(third.addr(), &request);
    assert_eq!(status, 200);
    assert_eq!(cache_of(&recovered), "miss", "corrupt entry must not serve");
    assert_eq!(stat(third.addr(), "corrupt_recovered"), 1);
    assert_eq!(stat(third.addr(), "compiles"), 1);
    third.stop();

    // Truncate mid-body (a crash mid-write that somehow hit the final
    // name, e.g. a torn rename on a crude filesystem): same recovery.
    let bytes = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();
    let fourth = start(small_server(Some(dir))).unwrap();
    let (status, recovered) = post_compile(fourth.addr(), &request);
    assert_eq!(status, 200);
    assert_eq!(cache_of(&recovered), "miss");
    assert_eq!(stat(fourth.addr(), "corrupt_recovered"), 1);
    fourth.stop();
}

#[test]
fn concurrent_identical_requests_coalesce_onto_one_search() {
    let _plan = fault::install(fault::FaultPlan::new());
    let handle = start(small_server(None)).unwrap();
    let addr = handle.addr();
    let request = Arc::new(compile_request(QUADRATIC, "arith-fma", 23));

    const CLIENTS: usize = 6;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let misses = Arc::new(AtomicUsize::new(0));
    let coalesced = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let (request, barrier) = (Arc::clone(&request), Arc::clone(&barrier));
            let (misses, coalesced) = (Arc::clone(&misses), Arc::clone(&coalesced));
            std::thread::spawn(move || {
                barrier.wait();
                let (status, doc) = post_compile(addr, &request);
                assert_eq!(status, 200, "coalesced request failed: {doc}");
                match cache_of(&doc) {
                    "miss" => misses.fetch_add(1, Ordering::Relaxed),
                    "coalesced" => coalesced.fetch_add(1, Ordering::Relaxed),
                    // A straggler that arrived after the job stored is fine.
                    "memory" => 0,
                    other => panic!("unexpected cache tag {other}"),
                };
                doc.get("key").and_then(Json::as_str).unwrap().to_owned()
            })
        })
        .collect();
    let keys: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert!(
        keys.windows(2).all(|w| w[0] == w[1]),
        "all got the same key"
    );
    assert_eq!(misses.load(Ordering::Relaxed), 1, "exactly one search ran");
    assert!(coalesced.load(Ordering::Relaxed) >= 1, "others coalesced");
    assert_eq!(stat(addr, "compiles"), 1);
    assert_eq!(
        stat(addr, "coalesced") as usize,
        coalesced.load(Ordering::Relaxed)
    );
    handle.stop();
}

#[test]
fn memory_eviction_falls_back_to_disk_level() {
    let _plan = fault::install(fault::FaultPlan::new());
    let dir = scratch_dir("service-evict");
    let config = ServerConfig {
        workers: 2,
        memory_capacity: 1,
        disk_dir: Some(dir),
        ..ServerConfig::default()
    };
    let handle = start(config).unwrap();
    let addr = handle.addr();
    let first = compile_request(SQRT_CANCEL, "arith", 3);
    let second = compile_request(QUADRATIC, "arith", 3);
    assert_eq!(post_compile(addr, &first).0, 200);
    assert_eq!(post_compile(addr, &second).0, 200, "evicts the first entry");
    assert_eq!(stat(addr, "evictions"), 1);
    // The evicted entry is gone from memory but still on disk.
    let (status, doc) = post_compile(addr, &first);
    assert_eq!(status, 200);
    assert_eq!(cache_of(&doc), "disk");
    assert_eq!(stat(addr, "compiles"), 2, "no recompilation after eviction");
    handle.stop();
}

/// Chaos over the service sites: seeded plans arming `store.read`,
/// `store.write`, and `service.accept` (aborts and panics). The daemon must
/// answer every request correctly — a store fault may only cost cache hits,
/// an accept fault only a dropped (retried) connection.
#[test]
fn chaos_plans_over_service_sites_never_break_correctness() {
    let dir = scratch_dir("service-chaos");
    let request = compile_request(SQRT_CANCEL, "arith", 99);
    let core = fpcore::parse_fpcore(SQRT_CANCEL).unwrap();
    let target = targets::builtin::by_name("arith").unwrap();
    let expected_key = content_key(&core, &target, 99, "fast");

    let mut total_fires = 0u64;
    let mut plans_fully_served = 0u32;
    for plan_seed in 0..12u64 {
        let plan = fault::FaultPlan::seeded(plan_seed, fault::SERVICE_SITES);
        // An armed Abort keeps firing once triggered, so a plan that aborts
        // `service.accept` legitimately costs *availability* (every later
        // connection dropped). Every other fault — accept panics, store
        // aborts/panics — may only cost cache hits, never a request.
        let may_go_deaf = plan
            .arms()
            .iter()
            .any(|arm| arm.site == "service.accept" && arm.action == fault::FaultAction::Abort);
        let armed = fault::install(plan);
        let handle = start(small_server(Some(dir.clone()))).unwrap();
        let addr = handle.addr();
        let mut served = 0u32;
        for _attempt in 0..4 {
            // An accept panic drops exactly one connection; retry a few times.
            let response = (0..8).find_map(|_| client::post_json(addr, "/compile", &request).ok());
            let Some(response) = response else {
                assert!(
                    may_go_deaf,
                    "plan {plan_seed} stopped answering without an accept-abort arm"
                );
                continue;
            };
            assert_eq!(response.status, 200, "plan {plan_seed}: {}", response.body);
            let doc = Json::parse(&response.body).unwrap();
            assert_eq!(
                doc.get("key").and_then(Json::as_str),
                Some(expected_key.as_str()),
                "faults must never change results"
            );
            served += 1;
        }
        if !may_go_deaf {
            assert_eq!(served, 4, "plan {plan_seed} dropped requests");
        }
        if served == 4 {
            plans_fully_served += 1;
        }
        // The daemon still shuts down cleanly with faults armed.
        handle.stop();
        total_fires += armed.fires();
    }
    assert!(
        total_fires > 0,
        "the chaos run never fired a fault — plans or sites are miswired"
    );
    assert!(
        plans_fully_served >= 4,
        "almost every plan lost availability ({plans_fully_served}/12 served) — \
         accept-abort should not dominate the seeded mix this heavily"
    );
}

/// Latency chaos over the service sites: seeded plans mixing
/// [`fault::FaultAction::Delay`] into the abort/panic distribution. A delay
/// may only cost time, never a result — every answered request must carry
/// the same content key, and at least one delay must actually fire so the
/// coverage is not vacuous. Stalls are deliberately absent here: a stalled
/// *connection* thread has no watchdog (only pool workers do), so stall
/// coverage lives in the watchdog test below and in the `serve_soak` gate.
#[test]
fn latency_chaos_over_service_sites_only_costs_time() {
    let dir = scratch_dir("service-latency-chaos");
    let request = compile_request(SQRT_CANCEL, "arith", 41);
    let core = fpcore::parse_fpcore(SQRT_CANCEL).unwrap();
    let target = targets::builtin::by_name("arith").unwrap();
    let expected_key = content_key(&core, &target, 41, "fast");

    let mut total_fires = 0u64;
    let mut delay_plans = 0u32;
    for plan_seed in 0..10u64 {
        let plan = fault::FaultPlan::seeded_latency(plan_seed, fault::SERVICE_SITES, &[]);
        if plan
            .arms()
            .iter()
            .any(|arm| matches!(arm.action, fault::FaultAction::Delay(_)))
        {
            delay_plans += 1;
        }
        // As in the abort/panic chaos test above: an armed accept abort or
        // panic keeps firing once triggered and legitimately costs
        // availability; a delay, or any store fault, may not.
        let may_go_deaf = plan.arms().iter().any(|arm| {
            arm.site == "service.accept"
                && matches!(
                    arm.action,
                    fault::FaultAction::Abort | fault::FaultAction::Panic
                )
        });
        let armed = fault::install(plan);
        let handle = start(small_server(Some(dir.clone()))).unwrap();
        let addr = handle.addr();
        for _attempt in 0..3 {
            let response = (0..8).find_map(|_| client::post_json(addr, "/compile", &request).ok());
            let Some(response) = response else {
                assert!(
                    may_go_deaf,
                    "plan {plan_seed} stopped answering without an accept-abort arm"
                );
                continue;
            };
            assert_eq!(response.status, 200, "plan {plan_seed}: {}", response.body);
            let doc = Json::parse(&response.body).unwrap();
            assert_eq!(
                doc.get("key").and_then(Json::as_str),
                Some(expected_key.as_str()),
                "a latency fault must never change results"
            );
        }
        handle.stop();
        total_fires += armed.fires();
    }
    assert!(total_fires > 0, "the latency chaos run never fired a fault");
    assert!(
        delay_plans >= 3,
        "only {delay_plans}/10 plans armed a delay — seeded_latency's action mix drifted"
    );
}

#[test]
fn an_unmeetable_deadline_is_shed_with_a_typed_504_and_never_cached() {
    let _plan = fault::install(fault::FaultPlan::new());
    let handle = start(small_server(None)).unwrap();
    let addr = handle.addr();

    // deadline_ms = 0 expires before the job could even be queued: the
    // admission controller sheds it with a typed 504 + Retry-After.
    let hopeless = compile_request_full(SQRT_CANCEL, "c99", 77, None, Some(0));
    let response = client::post_json(addr, "/compile", &hopeless).unwrap();
    assert_eq!(response.status, 504, "{}", response.body);
    assert!(response.retry_after.is_some(), "504 carries Retry-After");
    let doc = Json::parse(&response.body).unwrap();
    assert_eq!(kind_of(&doc), "deadline");
    assert_eq!(stat(addr, "deadline_shed"), 1);
    assert_eq!(stat(addr, "compiles"), 0, "shed before any search");

    // A 504 is never cached: the same request without a deadline compiles
    // fresh...
    let relaxed = compile_request(SQRT_CANCEL, "c99", 77);
    let (status, doc) = post_compile(addr, &relaxed);
    assert_eq!(status, 200, "{doc}");
    assert_eq!(cache_of(&doc), "miss");

    // ...and once stored, even a hopeless deadline is served from cache
    // (hits are cheap; deadlines only gate searches).
    let (status, doc) = post_compile(addr, &hopeless);
    assert_eq!(status, 200);
    assert_eq!(cache_of(&doc), "memory");

    // The new gauges are present and sane once the daemon is idle.
    assert_eq!(stat(addr, "inflight"), 0);
    let _uptime = stat(addr, "uptime_ms");
    handle.stop();
}

#[test]
fn a_stalled_job_is_reclaimed_by_the_watchdog_while_others_complete() {
    // One worker, and a Stall armed on the first `session.compile` hit: job
    // A wedges its worker until the plan is dropped. Its deadline must still
    // be answered (504, by the watchdog — the worker can't), the watchdog
    // must then write the worker off and replace it, and a concurrent
    // no-deadline request must complete on the replacement — bit-identical
    // to a direct in-process compile.
    let plan = fault::install(fault::FaultPlan::new().arm(
        "session.compile",
        fault::FaultAction::Stall,
        0,
    ));
    let config = ServerConfig {
        workers: 1,
        watchdog_interval: Duration::from_millis(25),
        ..small_server(None)
    };
    let handle = start(config).unwrap();
    let addr = handle.addr();

    let stuck = compile_request_full(SQRT_CANCEL, "c99", 5, Some("hurried"), Some(150));
    let started = std::time::Instant::now();
    let response = client::post_json(addr, "/compile", &stuck).unwrap();
    assert_eq!(response.status, 504, "{}", response.body);
    assert!(response.retry_after.is_some());
    assert_eq!(kind_of(&Json::parse(&response.body).unwrap()), "deadline");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the 504 must arrive at the deadline, not when the worker unwedges"
    );

    // The single worker is still stuck; the quiet request below can only
    // complete if the watchdog replaced it. (The Stall arm fires exactly
    // once, so the replacement passes the fault point untouched.)
    let quiet = compile_request(QUADRATIC, "c99", 5);
    let (status, doc) = post_compile(addr, &quiet);
    assert_eq!(status, 200, "capacity must recover: {doc}");

    let core = fpcore::parse_fpcore(QUADRATIC).unwrap();
    let target = targets::builtin::by_name("c99").unwrap();
    let session = chassis::Session::new(chassis::Config::fast().with_seed(5));
    let direct = session.compile(&core, &target).unwrap();
    let served = doc.get("implementations").and_then(Json::as_arr).unwrap();
    assert_eq!(served.len(), direct.implementations.len());
    for (json, imp) in served.iter().zip(&direct.implementations) {
        assert_eq!(
            json.get("rendered").and_then(Json::as_str),
            Some(imp.rendered.as_str())
        );
        assert_eq!(
            json.get("cost_hex").and_then(Json::as_str),
            Some(service::json::hex_bits(imp.cost).as_str())
        );
        assert_eq!(
            json.get("error_bits_hex").and_then(Json::as_str),
            Some(service::json::hex_bits(imp.error_bits).as_str())
        );
    }

    assert!(
        stat(addr, "watchdog_fired") >= 1,
        "the watchdog reclaimed A"
    );
    assert!(stat(addr, "workers_replaced") >= 1);
    // Release the stalled worker before shutdown: it wakes, notices its
    // cancelled token, degrades immediately, and retires as Abandoned.
    drop(plan);
    handle.stop();
}

#[test]
fn repeated_deadline_expiries_trip_a_per_client_circuit_breaker() {
    let _plan = fault::install(fault::FaultPlan::new());
    let config = ServerConfig {
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(400),
        ..small_server(None)
    };
    let handle = start(config).unwrap();
    let addr = handle.addr();

    // Two consecutive hopeless deadlines from one client trip its breaker.
    for _ in 0..2 {
        let body = compile_request_full(SQRT_CANCEL, "arith", 31, Some("impatient"), Some(0));
        let response = client::post_json(addr, "/compile", &body).unwrap();
        assert_eq!(response.status, 504, "{}", response.body);
    }
    // Now even a deadline-free request from that client is shed while the
    // breaker cools down...
    let plain = compile_request_full(SQRT_CANCEL, "arith", 31, Some("impatient"), None);
    let response = client::post_json(addr, "/compile", &plain).unwrap();
    assert_eq!(response.status, 503, "{}", response.body);
    assert_eq!(
        kind_of(&Json::parse(&response.body).unwrap()),
        "breaker-open"
    );
    assert!(response.retry_after.is_some());
    assert_eq!(stat(addr, "breaker_rejected"), 1);

    // ...while other clients are untouched.
    let other = compile_request_full(SQRT_CANCEL, "arith", 31, Some("patient"), None);
    let (status, doc) = post_compile(addr, &other);
    assert_eq!(status, 200, "{doc}");

    // After the cooldown the breaker closes and the client is served again
    // (from cache, even: the patient client already paid for the search).
    std::thread::sleep(Duration::from_millis(500));
    let (status, doc) = post_compile(addr, &plain);
    assert_eq!(status, 200, "{doc}");
    assert_eq!(cache_of(&doc), "memory");
    handle.stop();
}

#[test]
fn a_dribbling_client_is_cut_off_by_the_header_deadline() {
    use std::io::{Read, Write};
    let _plan = fault::install(fault::FaultPlan::new());
    let config = ServerConfig {
        read_timeout: Duration::from_millis(200),
        header_timeout: Duration::from_millis(300),
        ..small_server(None)
    };
    let handle = start(config).unwrap();
    let addr = handle.addr();

    // Dribble bytes forever without finishing the request line: once the
    // first byte lands, the whole request must arrive within the header
    // budget, so the daemon answers 408 and closes instead of letting the
    // slowloris pin a connection thread.
    let mut slow = std::net::TcpStream::connect(addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_millis(30)))
        .unwrap();
    slow.write_all(b"GET /healthz HTT").unwrap();
    let started = std::time::Instant::now();
    let mut got = Vec::new();
    let mut buf = [0u8; 1024];
    while started.elapsed() < Duration::from_secs(5) {
        let _ = slow.write_all(b"P"); // keep dribbling (ignore post-close errors)
        match slow.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                got.extend_from_slice(&buf[..n]);
                if got.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => {}
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    let text = String::from_utf8_lossy(&got);
    assert!(
        text.starts_with("HTTP/1.1 408"),
        "expected a 408 within the header budget, got {text:?}"
    );
    assert!(started.elapsed() < Duration::from_secs(5));

    // A prompt client is still served immediately.
    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    handle.stop();
}

#[test]
fn a_flooding_client_that_disconnects_frees_the_daemon_for_others() {
    use std::io::Write;
    // Hold every search at its head for longer than the waiter's client-gone
    // probe cadence (100 ms): without the delay a release-mode search can
    // finish before the daemon ever notices the disconnect, and nothing
    // would be left to cancel.
    let _plan = fault::install(fault::FaultPlan::new().arm(
        "session.compile",
        fault::FaultAction::Delay(400),
        0,
    ));
    let handle = start(ServerConfig {
        workers: 1,
        ..small_server(None)
    })
    .unwrap();
    let addr = handle.addr();

    // Flood: fire distinct compile requests and hang up without reading the
    // answers. The waiter accounting notices each disconnect and cancels
    // the orphaned searches instead of grinding through them.
    for i in 0..4u64 {
        let body = compile_request(SQRT_CANCEL, "arith", 1000 + i);
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        write!(
            s,
            "POST /compile HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        s.flush().unwrap();
        drop(s);
    }

    // A live client still gets its (different) compile in bounded time.
    let started = std::time::Instant::now();
    let (status, doc) = post_compile(addr, &compile_request(QUADRATIC, "arith", 7));
    assert_eq!(status, 200, "{doc}");
    assert!(started.elapsed() < Duration::from_secs(60));
    assert!(
        stat(addr, "cancelled") >= 1,
        "at least the in-flight flooded search must have been cancelled"
    );
    handle.stop();
}
