//! Property-based tests of the core invariants, spanning crates:
//!
//! * the ground-truth evaluator agrees with plain `f64` evaluation on
//!   well-conditioned inputs,
//! * rewriting through the e-graph preserves the desugaring (real semantics),
//!   which is Chassis' central correctness property,
//! * ULP distance behaves like a metric on floats,
//! * the Pareto frontier never keeps a dominated point.
//!
//! Cases are generated from the workspace's own deterministic RNG
//! ([`chassis::rng::Rng`]) rather than proptest (unavailable offline), so every
//! run exercises the same cases and failures reproduce exactly.

use chassis::pareto::ParetoFrontier;
use chassis::rng::Rng;
use chassis::{Config, Session};
use fpcore::eval::{env_from, eval_f64};
use fpcore::{Expr, FpType, RealOp, Symbol};
use rival::{ground_truth, GroundTruth};
use std::collections::HashMap;
use targets::{builtin, eval_float_expr_in};

/// A small, well-conditioned arithmetic expression over `x` and `y`.
fn arb_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.below(3) == 0 {
        match rng.below(3) {
            0 => Expr::var("x"),
            1 => Expr::var("y"),
            _ => Expr::int(1 + rng.below(19) as i128),
        }
    } else {
        match rng.below(6) {
            0 => Expr::bin(
                RealOp::Add,
                arb_expr(rng, depth - 1),
                arb_expr(rng, depth - 1),
            ),
            1 => Expr::bin(
                RealOp::Sub,
                arb_expr(rng, depth - 1),
                arb_expr(rng, depth - 1),
            ),
            2 => Expr::bin(
                RealOp::Mul,
                arb_expr(rng, depth - 1),
                arb_expr(rng, depth - 1),
            ),
            3 => Expr::un(RealOp::Fabs, arb_expr(rng, depth - 1)),
            4 => Expr::un(RealOp::Neg, arb_expr(rng, depth - 1)),
            _ => Expr::un(
                RealOp::Sqrt,
                Expr::un(RealOp::Fabs, arb_expr(rng, depth - 1)),
            ),
        }
    }
}

/// A finite, normal (non-subnormal) f64 of either sign.
fn arb_normal(rng: &mut Rng) -> f64 {
    loop {
        let v = f64::from_bits(rng.next_u64());
        if v.is_normal() {
            return v;
        }
    }
}

/// Ground truth and plain f64 evaluation agree to high relative accuracy on
/// small integer-valued inputs (where f64 rounding error stays tiny).
#[test]
fn ground_truth_matches_f64_on_benign_inputs() {
    let mut rng = Rng::new(0xC0FFEE);
    for _ in 0..24 {
        let expr = arb_expr(&mut rng, 3);
        let vars = [Symbol::new("x"), Symbol::new("y")];
        let values = [
            rng.range_f64(1.0, 8.0).round(),
            rng.range_f64(1.0, 8.0).round(),
        ];
        let env = env_from(&vars, &values);
        let direct = eval_f64(&expr, &env);
        let pairs: Vec<(Symbol, f64)> = vars.iter().copied().zip(values).collect();
        match ground_truth(&expr, &pairs, FpType::Binary64) {
            GroundTruth::Value(truth) => {
                let tol = 1e-9 * truth.abs().max(1.0);
                assert!(
                    (truth - direct).abs() <= tol,
                    "truth {truth} vs f64 {direct} for {expr}"
                );
            }
            GroundTruth::Nan => assert!(direct.is_nan() || direct.is_infinite()),
            GroundTruth::Unsamplable => {}
        }
    }
}

/// ULP distance is symmetric, zero only on equality, and positive on
/// inequality.
#[test]
fn ulp_distance_is_a_metric() {
    use chassis::accuracy::ulps_between;
    let mut rng = Rng::new(0xDECAF);
    for _ in 0..256 {
        let a = arb_normal(&mut rng);
        let b = arb_normal(&mut rng);
        let d_ab = ulps_between(a, b, FpType::Binary64);
        let d_ba = ulps_between(b, a, FpType::Binary64);
        assert_eq!(d_ab, d_ba, "asymmetric for {a} and {b}");
        assert_eq!(ulps_between(a, a, FpType::Binary64), 0);
        if a != b {
            assert!(d_ab > 0, "distinct values {a} and {b} at distance zero");
        }
    }
}

/// The Pareto frontier never retains a dominated point.
#[test]
fn pareto_frontier_has_no_dominated_points() {
    let mut rng = Rng::new(0xFACADE);
    for _ in 0..24 {
        let count = 1 + rng.below(39) as usize;
        let points: Vec<(f64, f64)> = (0..count)
            .map(|_| (rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)))
            .collect();
        let mut frontier = ParetoFrontier::new();
        for (i, (cost, error)) in points.iter().enumerate() {
            frontier.insert(*cost, *error, i);
        }
        let kept: Vec<(f64, f64)> = frontier.iter().map(|(c, e, _)| (c, e)).collect();
        for (i, a) in kept.iter().enumerate() {
            for (j, b) in kept.iter().enumerate() {
                if i != j {
                    let dominated = b.0 <= a.0 && b.1 <= a.1 && (b.0 < a.0 || b.1 < a.1);
                    assert!(!dominated, "{a:?} is dominated by {b:?}");
                }
            }
        }
    }
}

/// Desugaring preservation, the compiler's core guarantee: every program on
/// the output Pareto frontier evaluates (in floating point) close to the
/// ground-truth value of the *original* real expression, for expressions
/// where high accuracy is achievable.
#[test]
fn compiled_programs_preserve_the_desugaring() {
    let core =
        fpcore::parse_fpcore("(FPCore (x) :pre (and (> x 1) (< x 100)) (/ (- (* x x) 1) (+ x 1)))")
            .unwrap();
    let target = builtin::by_name("arith-fma").unwrap();
    let result = Session::new(Config::fast())
        .compile(&core, &target)
        .unwrap();
    let mut rng = Rng::new(0xBEEF);
    for _ in 0..6 {
        let x = rng.range_f64(2.0, 50.0);
        let env_pairs = vec![(Symbol::new("x"), x)];
        let GroundTruth::Value(truth) = ground_truth(&core.body, &env_pairs, FpType::Binary64)
        else {
            continue;
        };
        let env: HashMap<Symbol, f64> = env_pairs.into_iter().collect();
        for imp in &result.implementations {
            let out = eval_float_expr_in(&target, &imp.expr, &env);
            let rel = ((out - truth) / truth.abs().max(1e-300)).abs();
            assert!(rel < 1e-6, "{} gives {out}, truth {truth}", imp.rendered);
        }
    }
}
