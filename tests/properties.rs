//! Property-based tests of the core invariants, spanning crates:
//!
//! * the ground-truth evaluator agrees with plain `f64` evaluation on
//!   well-conditioned inputs,
//! * rewriting through the e-graph preserves the desugaring (real semantics),
//!   which is Chassis' central correctness property,
//! * ULP distance behaves like a metric on floats,
//! * the Pareto frontier never keeps a dominated point.

use chassis::pareto::ParetoFrontier;
use chassis::{Chassis, Config};
use fpcore::eval::{env_from, eval_f64};
use fpcore::{Expr, FpType, RealOp, Symbol};
use proptest::prelude::*;
use rival::{ground_truth, GroundTruth};
use std::collections::HashMap;
use targets::{builtin, eval_float_expr};

/// A generator of small, well-conditioned arithmetic expressions over `x` and `y`.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::var("x")),
        Just(Expr::var("y")),
        (1i64..20).prop_map(|n| Expr::int(n as i128)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(RealOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(RealOp::Sub, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(RealOp::Mul, a, b)),
            inner.clone().prop_map(|a| Expr::un(RealOp::Fabs, a)),
            inner.clone().prop_map(|a| Expr::un(RealOp::Neg, a)),
            inner
                .clone()
                .prop_map(|a| Expr::un(RealOp::Sqrt, Expr::un(RealOp::Fabs, a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Ground truth and plain f64 evaluation agree to high relative accuracy on
    /// small integer-valued inputs (where f64 rounding error stays tiny).
    #[test]
    fn ground_truth_matches_f64_on_benign_inputs(expr in arb_expr(), x in 1.0f64..8.0, y in 1.0f64..8.0) {
        let vars = [Symbol::new("x"), Symbol::new("y")];
        let values = [x.round(), y.round()];
        let env = env_from(&vars, &values);
        let direct = eval_f64(&expr, &env);
        let pairs: Vec<(Symbol, f64)> = vars.iter().copied().zip(values).collect();
        match ground_truth(&expr, &pairs, FpType::Binary64) {
            GroundTruth::Value(truth) => {
                let tol = 1e-9 * truth.abs().max(1.0);
                prop_assert!((truth - direct).abs() <= tol,
                    "truth {truth} vs f64 {direct} for {expr}");
            }
            GroundTruth::Nan => prop_assert!(direct.is_nan() || direct.is_infinite()),
            GroundTruth::Unsamplable => {}
        }
    }

    /// ULP distance is symmetric, zero only on equality, and monotone in the
    /// ordered-float sense.
    #[test]
    fn ulp_distance_is_a_metric(a in proptest::num::f64::NORMAL, b in proptest::num::f64::NORMAL) {
        use chassis::accuracy::ulps_between;
        let d_ab = ulps_between(a, b, FpType::Binary64);
        let d_ba = ulps_between(b, a, FpType::Binary64);
        prop_assert_eq!(d_ab, d_ba);
        prop_assert_eq!(ulps_between(a, a, FpType::Binary64), 0);
        if a != b {
            prop_assert!(d_ab > 0);
        }
    }

    /// The Pareto frontier never retains a dominated point.
    #[test]
    fn pareto_frontier_has_no_dominated_points(points in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..40)) {
        let mut frontier = ParetoFrontier::new();
        for (i, (cost, error)) in points.iter().enumerate() {
            frontier.insert(*cost, *error, i);
        }
        let kept: Vec<(f64, f64)> = frontier.iter().map(|(c, e, _)| (c, e)).collect();
        for (i, a) in kept.iter().enumerate() {
            for (j, b) in kept.iter().enumerate() {
                if i != j {
                    let dominated = b.0 <= a.0 && b.1 <= a.1 && (b.0 < a.0 || b.1 < a.1);
                    prop_assert!(!dominated, "{a:?} is dominated by {b:?}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Desugaring preservation, the compiler's core guarantee: every program on
    /// the output Pareto frontier evaluates (in floating point) close to the
    /// ground-truth value of the *original* real expression, for expressions
    /// where high accuracy is achievable.
    #[test]
    fn compiled_programs_preserve_the_desugaring(x in 2.0f64..50.0) {
        let core = fpcore::parse_fpcore(
            "(FPCore (x) :pre (and (> x 1) (< x 100)) (/ (- (* x x) 1) (+ x 1)))",
        ).unwrap();
        let target = builtin::by_name("arith-fma").unwrap();
        let result = Chassis::new(target.clone()).with_config(Config::fast()).compile(&core).unwrap();
        let env_pairs = vec![(Symbol::new("x"), x)];
        let truth = match ground_truth(&core.body, &env_pairs, FpType::Binary64) {
            GroundTruth::Value(v) => v,
            _ => return Ok(()),
        };
        let env: HashMap<Symbol, f64> = env_pairs.into_iter().collect();
        for imp in &result.implementations {
            let out = eval_float_expr(&target, &imp.expr, &env);
            let rel = ((out - truth) / truth.abs().max(1e-300)).abs();
            prop_assert!(rel < 1e-6, "{} gives {out}, truth {truth}", imp.rendered);
        }
    }
}
