//! Integration tests of the session API: prepare-once/compile-many
//! determinism, the prepare-exactly-once guarantee of `compile_many`, budget
//! degradation, progress observability, and thread-count independence of the
//! parallel search.

use chassis::{
    Budget, CancelToken, CompilationResult, Config, Phase, Progress, SearchControl, Session,
};
use fpcore::parse_fpcore;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use targets::builtin;

/// A benchmark every builtin target (including bare arith) can compile.
fn polynomial() -> fpcore::FPCore {
    parse_fpcore("(FPCore (x) :pre (and (> x -100) (< x 100)) (+ (* x (* x x)) (* 3 x)))").unwrap()
}

/// A cancellation-prone benchmark where the search meaningfully improves
/// accuracy (so the frontier has several points).
fn cancellation() -> fpcore::FPCore {
    parse_fpcore("(FPCore (x) :pre (and (> x 1) (< x 1e14)) (- (sqrt (+ x 1)) (sqrt x)))").unwrap()
}

/// Bit-exact comparison of two compilation results: same frontier, same
/// scores, same rendered programs, same initial program.
fn assert_bit_identical(a: &CompilationResult, b: &CompilationResult, what: &str) {
    assert_eq!(
        a.implementations.len(),
        b.implementations.len(),
        "{what}: frontier sizes differ"
    );
    for (x, y) in a.implementations.iter().zip(&b.implementations) {
        assert_eq!(x.rendered, y.rendered, "{what}: programs differ");
        assert_eq!(x.cost.to_bits(), y.cost.to_bits(), "{what}: costs differ");
        assert_eq!(
            x.error_bits.to_bits(),
            y.error_bits.to_bits(),
            "{what}: errors differ"
        );
        assert_eq!(
            x.accuracy_bits.to_bits(),
            y.accuracy_bits.to_bits(),
            "{what}: accuracies differ"
        );
    }
    assert_eq!(a.initial.rendered, b.initial.rendered, "{what}: initial");
    assert_eq!(
        a.initial.error_bits.to_bits(),
        b.initial.error_bits.to_bits(),
        "{what}: initial error"
    );
    assert_eq!(a.samples.train, b.samples.train, "{what}: train points");
    assert_eq!(a.samples.test, b.samples.test, "{what}: test points");
}

#[test]
fn prepare_once_compile_twice_matches_fresh_compiles() {
    // Same seed ⇒ one prepared state compiled twice is bit-identical to two
    // fresh sessions each doing their own prepare+compile — i.e. sharing the
    // preparation across calls (and targets) changes nothing but the cost.
    let core = polynomial();
    for target_name in ["c99", "arith"] {
        let target = builtin::by_name(target_name).unwrap();
        let session = Session::new(Config::fast());
        let prepared = session.prepare(&core).unwrap();
        let first = prepared.compile(&target).unwrap();
        let second = prepared.compile(&target).unwrap();
        assert_bit_identical(&first, &second, &format!("{target_name}: repeat compile"));
        assert_eq!(session.prepare_count(), 1);

        let fresh = Session::new(Config::fast())
            .compile(&core, &target)
            .unwrap();
        assert_bit_identical(&first, &fresh, &format!("{target_name}: fresh session"));
    }
}

#[test]
fn results_are_bit_identical_across_thread_counts() {
    // The parallel search (candidate batches, scoring, regime sweeps, final
    // evaluation) must reproduce the serial result exactly at the same seed:
    // all fan-out is order-preserving and admission stays serial. Forcing the
    // global thread count is safe against concurrently running tests because
    // every result is thread-count-independent by construction.
    let core = cancellation();
    for target_name in ["c99", "arith-fma"] {
        let target = builtin::by_name(target_name).unwrap();
        chassis::par::set_thread_count(1);
        let serial = Session::new(Config::fast())
            .compile(&core, &target)
            .unwrap();
        for threads in [2, 8] {
            chassis::par::set_thread_count(threads);
            let parallel = Session::new(Config::fast())
                .compile(&core, &target)
                .unwrap();
            assert_bit_identical(
                &serial,
                &parallel,
                &format!("{target_name} at {threads} threads"),
            );
        }
        chassis::par::set_thread_count(0);
    }
}

#[test]
fn compile_many_prepares_each_benchmark_exactly_once() {
    // The acceptance property of the session redesign: N targets compile while
    // sampling + Rival ground truth run once per benchmark — and the fanned-out
    // results are bit-identical to the per-target path at the same seed.
    let cores = vec![polynomial(), cancellation()];
    let target_list: Vec<_> = ["c99", "arith-fma", "vdt"]
        .iter()
        .map(|n| builtin::by_name(n).unwrap())
        .collect();
    let session = Session::new(Config::fast());
    let rows = session.compile_many(&cores, &target_list);

    assert_eq!(
        session.prepare_count(),
        cores.len(),
        "one preparation per benchmark, not per (benchmark, target)"
    );
    assert_eq!(rows.len(), cores.len());
    for (core, row) in cores.iter().zip(&rows) {
        assert_eq!(row.len(), target_list.len());
        for (target, outcome) in target_list.iter().zip(row) {
            let fanned = outcome.as_ref().expect("all jobs compile");
            // The per-target reference path: a fresh session, one target.
            let reference = Session::new(Config::fast()).compile(core, target).unwrap();
            assert_bit_identical(fanned, &reference, &format!("fig8-style {}", target.name));
        }
    }

    // A second sweep over the same corpus hits the cache entirely.
    let again = session.compile_many(&cores, &target_list);
    assert_eq!(session.prepare_count(), cores.len());
    for (row_a, row_b) in rows.iter().zip(&again) {
        for (a, b) in row_a.iter().zip(row_b) {
            assert_bit_identical(a.as_ref().unwrap(), b.as_ref().unwrap(), "repeat sweep");
        }
    }
}

#[test]
fn compile_many_reports_prepare_failures_per_benchmark() {
    let unsamplable = parse_fpcore("(FPCore (x) :pre (< x (- x 1)) (+ x 1))").unwrap();
    let cores = vec![polynomial(), unsamplable];
    let target_list = vec![
        builtin::by_name("c99").unwrap(),
        builtin::by_name("arith").unwrap(),
    ];
    let session = Session::new(Config::fast());
    let rows = session.compile_many(&cores, &target_list);
    assert!(rows[0].iter().all(Result::is_ok));
    assert!(
        rows[1]
            .iter()
            .all(|r| matches!(r, Err(chassis::CompileError::Sampling(_)))),
        "a benchmark that cannot be sampled errors in every column"
    );
}

#[test]
fn tiny_budgets_still_yield_an_initial_containing_frontier() {
    let core = cancellation();
    let target = builtin::by_name("c99").unwrap();
    let session = Session::new(Config::fast());
    let prepared = session.prepare(&core).unwrap();

    // Iteration budget of zero: the improve loop never runs; the frontier is
    // exactly the initial program.
    let exhausted = AtomicUsize::new(0);
    let observer = |event: &Progress| {
        if matches!(event, Progress::BudgetExhausted { .. }) {
            exhausted.fetch_add(1, Ordering::Relaxed);
        }
    };
    let ctl = SearchControl::new()
        .with_progress(&observer)
        .with_budget(Budget::iterations(0));
    let result = prepared.compile_with(&target, &ctl).unwrap();
    assert!(
        !result.implementations.is_empty(),
        "a budgeted search must keep a valid frontier"
    );
    assert!(
        result
            .implementations
            .iter()
            .any(|imp| imp.rendered == result.initial.rendered),
        "the initial program must be on the zero-iteration frontier"
    );
    assert!(exhausted.load(Ordering::Relaxed) >= 1);
    // The accessors work on the degraded frontier.
    let _ = result.most_accurate();
    let _ = result.cheapest();

    // Wall-clock budget of zero: every phase cuts immediately, but the result
    // still contains the initial program.
    let ctl = SearchControl::new().with_budget(Budget::wall_clock(Duration::ZERO));
    let result = prepared.compile_with(&target, &ctl).unwrap();
    assert!(!result.implementations.is_empty());
    assert!(result
        .implementations
        .iter()
        .any(|imp| imp.rendered == result.initial.rendered));

    // An unlimited budget through the same code path matches the plain call.
    let unlimited = prepared
        .compile_with(
            &target,
            &SearchControl::new().with_budget(Budget::UNLIMITED),
        )
        .unwrap();
    let plain = prepared.compile(&target).unwrap();
    assert_bit_identical(&unlimited, &plain, "explicit unlimited budget");
}

#[test]
fn an_unfired_cancel_token_is_observationally_inert_at_any_thread_count() {
    // Cancellation is polled at exactly the points the wall-clock budget
    // already checks, so a token that never fires must not change a single
    // bit of the result — serial or parallel.
    let core = cancellation();
    let target = builtin::by_name("c99").unwrap();
    chassis::par::set_thread_count(1);
    let baseline = Session::new(Config::fast())
        .compile(&core, &target)
        .unwrap();
    for threads in [1, 2, 8] {
        chassis::par::set_thread_count(threads);
        let token = CancelToken::new();
        let session = Session::new(Config::fast());
        let prepared = session.prepare(&core).unwrap();
        let ctl = SearchControl::new().with_cancel(&token);
        let result = prepared.compile_with(&target, &ctl).unwrap();
        assert!(!token.is_cancelled());
        assert_bit_identical(
            &baseline,
            &result,
            &format!("unfired cancel token at {threads} threads"),
        );
    }
    chassis::par::set_thread_count(0);
}

#[test]
fn a_pre_fired_cancel_token_degrades_like_an_exhausted_budget() {
    // A token fired before the search starts must behave exactly like a
    // zero wall-clock budget: Ok, initial-containing frontier, and one
    // JobCancelled event — never an error.
    let core = cancellation();
    let target = builtin::by_name("c99").unwrap();
    let session = Session::new(Config::fast());
    let prepared = session.prepare(&core).unwrap();

    let token = CancelToken::new();
    token.cancel();
    let cancelled_events = AtomicUsize::new(0);
    let observer = |event: &Progress| {
        if matches!(event, Progress::JobCancelled) {
            cancelled_events.fetch_add(1, Ordering::Relaxed);
        }
    };
    let ctl = SearchControl::new()
        .with_cancel(&token)
        .with_progress(&observer);
    let result = prepared.compile_with(&target, &ctl).unwrap();
    assert!(
        result
            .implementations
            .iter()
            .any(|imp| imp.rendered == result.initial.rendered),
        "a cancelled search keeps the initial program on its frontier"
    );
    assert_eq!(cancelled_events.load(Ordering::Relaxed), 1);
}

#[test]
fn progress_events_trace_the_search() {
    let core = cancellation();
    let target = builtin::by_name("c99").unwrap();
    let session = Session::new(Config::fast());
    let prepared = session.prepare(&core).unwrap();

    let events: Mutex<Vec<Progress>> = Mutex::new(Vec::new());
    let observer = |event: &Progress| events.lock().unwrap().push(*event);
    let ctl = SearchControl::new().with_progress(&observer);
    let result = prepared.compile_with(&target, &ctl).unwrap();
    let events = events.into_inner().unwrap();

    // Phases arrive in pipeline order.
    let phases: Vec<Phase> = events
        .iter()
        .filter_map(|e| match e {
            Progress::PhaseStarted { phase } => Some(*phase),
            _ => None,
        })
        .collect();
    assert_eq!(
        phases,
        vec![
            Phase::Lowering,
            Phase::Improve,
            Phase::Regimes,
            Phase::FinalEvaluation
        ]
    );
    // Every improve iteration and at least the initial admission are reported.
    let iterations = events
        .iter()
        .filter(|e| matches!(e, Progress::ImproveIteration { .. }))
        .count();
    assert!(iterations >= 1, "at least one improve iteration runs");
    let admitted = events
        .iter()
        .filter(|e| matches!(e, Progress::FrontierPointAdmitted { .. }))
        .count();
    assert!(
        admitted >= result.implementations.len().min(2),
        "frontier admissions are observable"
    );
    // Observation must not perturb the result.
    let silent = prepared.compile(&target).unwrap();
    assert_bit_identical(&result, &silent, "observed vs silent");
}

#[test]
fn sessions_with_different_seeds_draw_different_points() {
    let core = cancellation();
    let session_a = Session::new(Config::fast());
    let session_b = Session::new(Config::fast().with_seed(0xD15EA5E));
    let a = session_a.prepare(&core).unwrap();
    let b = session_b.prepare(&core).unwrap();
    assert_ne!(a.samples().train, b.samples().train);
    assert_eq!(session_b.seed(), 0xD15EA5E);
}
