//! Integration tests of the fault-isolation and error-taxonomy contract
//! (docs/RESILIENCE.md): adversarial benchmarks fail with *typed* errors,
//! never panics; an injected panic fails exactly one corpus job; and every
//! error renders a Display message and a `source()` chain.
//!
//! Every test here installs a [`fault::FaultPlan`] — an empty one when no
//! fault is needed — because `fault::install` is process-exclusive: holding
//! the guard serializes these tests, so one test's armed faults can never
//! leak into another's unarmed run.

use chassis::{
    CancelToken, CompileError, Config, ErrorKind, Phase, Progress, SampleError, SearchControl,
    SearchStats, Session,
};
use fpcore::parse_fpcore;
use std::sync::atomic::{AtomicUsize, Ordering};
use targets::builtin;

/// Renders an error's Display plus its whole `source()` chain (what a CLI
/// would print); also guards against cyclic chains.
fn render_chain(top: &dyn std::error::Error) -> String {
    let mut out = top.to_string();
    let mut source = top.source();
    let mut depth = 0;
    while let Some(cause) = source {
        out.push_str(": ");
        out.push_str(&cause.to_string());
        source = cause.source();
        depth += 1;
        assert!(depth <= 8, "cyclic error source chain: {out}");
    }
    out
}

#[test]
fn adversarial_cores_fail_with_typed_errors() {
    let _plan = fault::install(fault::FaultPlan::new());
    let session = Session::new(Config::fast());
    let c99 = builtin::by_name("c99").unwrap();
    let arith = builtin::by_name("arith").unwrap();

    // An everywhere-false precondition: the domain is empty.
    let empty = parse_fpcore("(FPCore (x) :pre (< x (- x 1)) (+ x 1))").unwrap();
    let err = session.compile(&empty, &c99).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Sampling);
    assert!(
        matches!(
            &err,
            CompileError::Sampling(SampleError::EmptyDomain { .. })
        ),
        "empty domain misclassified: {err:?}"
    );
    assert!(render_chain(&err).contains("precondition"));

    // A measure-zero point domain: uniform sampling never hits exactly 1.
    let point = parse_fpcore("(FPCore (x) :pre (== x 1) (+ x 1))").unwrap();
    let err = session.compile(&point, &c99).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Sampling, "point domain: {err:?}");

    // A NaN-only benchmark: sqrt of a value that is negative everywhere.
    // Points sample fine (no precondition) but every ground truth is NaN, so
    // the taxonomy reports scarcity, not an empty domain.
    let nan_only = parse_fpcore("(FPCore (x) (sqrt (- 0 (+ (* x x) 1))))").unwrap();
    let err = session.compile(&nan_only, &c99).unwrap_err();
    assert!(
        matches!(
            &err,
            CompileError::Sampling(SampleError::NotEnoughPoints { found: 0, .. })
        ),
        "NaN-only benchmark misclassified: {err:?}"
    );

    // An operator the target cannot express at all.
    let sine = parse_fpcore("(FPCore (x) (sin x))").unwrap();
    let err = session.compile(&sine, &arith).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Unsupported);
    assert!(render_chain(&err).contains("sin"));
}

#[test]
fn seeded_adversarial_corpus_never_panics() {
    // A property loop over seeded adversarial variants: every outcome must be
    // Ok or a typed CompileError that renders without panicking. The corpus
    // goes through `compile_many`, the path production uses, so a panic
    // anywhere would surface as `ErrorKind::Internal` — which this corpus
    // must never produce.
    let _plan = fault::install(fault::FaultPlan::new());
    let targets = [
        builtin::by_name("c99").unwrap(),
        builtin::by_name("arith").unwrap(),
    ];
    let mut config = Config::fast();
    config.train_points = 6;
    config.test_points = 6;

    for seed in 0..12u64 {
        let k = seed % 4;
        let c = 1 + seed;
        let sources = [
            // Domain shrinking toward (possibly reaching) emptiness.
            format!("(FPCore (x) :pre (and (> x {c}) (< x {c})) (+ x 1))"),
            // NaN almost everywhere, with a seed-dependent island.
            format!("(FPCore (x) (sqrt (- {k} (* x x))))"),
            // Unsupported-on-arith operators nested under arithmetic.
            format!("(FPCore (x) (+ (sin (* x {c})) (cos x)))"),
            // A well-behaved control case that must succeed on c99.
            format!(
                "(FPCore (x) :pre (and (> x 0.5) (< x {})) (sqrt (+ x {k})))",
                10 + c
            ),
        ];
        let cores: Vec<fpcore::FPCore> = sources
            .iter()
            .map(|s| parse_fpcore(s).unwrap_or_else(|e| panic!("{s}: {e}")))
            .collect();

        let session = Session::new(config.clone().with_seed(seed));
        let grid = session.compile_many(&cores, &targets);
        for (b, row) in grid.iter().enumerate() {
            for (t, cell) in row.iter().enumerate() {
                if let Err(e) = cell {
                    assert_ne!(
                        e.kind(),
                        ErrorKind::Internal,
                        "seed {seed}, benchmark {b}, target {t} panicked: {}",
                        render_chain(e)
                    );
                    assert!(!render_chain(e).is_empty());
                }
            }
        }
        // The control case stays compilable on c99 at every seed.
        assert!(
            grid[3][0].is_ok(),
            "seed {seed}: control benchmark failed: {:?}",
            grid[3][0].as_ref().err()
        );
    }
}

#[test]
fn forced_non_convergence_is_a_ground_truth_error() {
    // Arm the Rival fault point so every ground-truth evaluation tops out
    // undecided: sampling must classify the failure as `GroundTruth`, and the
    // `CompileError` chain must surface the non-convergence.
    let _plan =
        fault::install(fault::FaultPlan::new().arm("rival.eval", fault::FaultAction::Abort, 0));
    let core = parse_fpcore("(FPCore (x) (+ x 1))").unwrap();
    let err = chassis::Sampler::new(5)
        .sample(&core, 8, 4)
        .expect_err("no point can converge under the fault");
    assert!(matches!(err, SampleError::GroundTruth(_)), "got {err:?}");
    let compile_err = CompileError::from(err);
    assert!(matches!(
        compile_err,
        CompileError::GroundTruth(rival::TruthError::NonConverged { .. })
    ));
    assert!(render_chain(&compile_err).contains("did not converge"));
}

#[test]
fn cancellation_fired_at_any_phase_degrades_and_never_panics() {
    // Fire the cancel token from inside the search at each cut point in
    // turn: before anything ran, on the first improve iteration, at the
    // regimes boundary, and at final evaluation. Every outcome must be an
    // Ok initial-containing frontier with exactly one JobCancelled event —
    // cancellation is budget exhaustion, never an error path.
    let _plan = fault::install(fault::FaultPlan::new());
    let core =
        parse_fpcore("(FPCore (x) :pre (and (> x 1) (< x 1e14)) (- (sqrt (+ x 1)) (sqrt x)))")
            .unwrap();
    let target = builtin::by_name("c99").unwrap();
    let session = Session::new(Config::fast());
    let prepared = session.prepare(&core).unwrap();

    #[derive(Clone, Copy, Debug)]
    enum FireAt {
        Immediately,
        FirstImproveIteration,
        RegimesStart,
        FinalEvaluationStart,
    }
    for fire_at in [
        FireAt::Immediately,
        FireAt::FirstImproveIteration,
        FireAt::RegimesStart,
        FireAt::FinalEvaluationStart,
    ] {
        let token = CancelToken::new();
        if matches!(fire_at, FireAt::Immediately) {
            token.cancel();
        }
        let cancelled_events = AtomicUsize::new(0);
        let observer = |event: &Progress| {
            match (fire_at, event) {
                (FireAt::FirstImproveIteration, Progress::ImproveIteration { .. })
                | (
                    FireAt::RegimesStart,
                    Progress::PhaseStarted {
                        phase: Phase::Regimes,
                    },
                )
                | (
                    FireAt::FinalEvaluationStart,
                    Progress::PhaseStarted {
                        phase: Phase::FinalEvaluation,
                    },
                ) => token.cancel(),
                _ => {}
            }
            if matches!(event, Progress::JobCancelled) {
                cancelled_events.fetch_add(1, Ordering::Relaxed);
            }
        };
        let ctl = SearchControl::new()
            .with_cancel(&token)
            .with_progress(&observer);
        let result = prepared
            .compile_with(&target, &ctl)
            .unwrap_or_else(|e| panic!("{fire_at:?}: cancellation must not error: {e}"));
        assert!(
            result
                .implementations
                .iter()
                .any(|imp| imp.rendered == result.initial.rendered),
            "{fire_at:?}: the initial program must survive cancellation"
        );
        assert_eq!(
            cancelled_events.load(Ordering::Relaxed),
            1,
            "{fire_at:?}: exactly one JobCancelled per cancelled compile"
        );
        // Cancellation at final evaluation collapses the frontier to the
        // initial program (the cut point before per-candidate test scoring).
        if matches!(fire_at, FireAt::FinalEvaluationStart | FireAt::Immediately) {
            assert_eq!(result.implementations.len(), 1, "{fire_at:?}");
        }
    }
}

#[test]
fn corpus_compilation_under_a_fired_token_degrades_every_cell() {
    // The corpus path: a token cancelled before `compile_many_with` starts
    // degrades every grid cell to its initial-containing frontier — no
    // errors, no panics, and one JobCancelled per cell.
    let _plan = fault::install(fault::FaultPlan::new());
    let cores = [
        parse_fpcore("(FPCore (x) :pre (and (> x 1) (< x 1e6)) (- (sqrt (+ x 1)) (sqrt x)))")
            .unwrap(),
        parse_fpcore("(FPCore (x) :pre (and (> x 0.5) (< x 50)) (sqrt (+ x 1)))").unwrap(),
    ];
    let targets = [
        builtin::by_name("c99").unwrap(),
        builtin::by_name("arith-fma").unwrap(),
    ];
    let token = CancelToken::new();
    token.cancel();
    let cancelled_events = AtomicUsize::new(0);
    let observer = |event: &Progress| {
        if matches!(event, Progress::JobCancelled) {
            cancelled_events.fetch_add(1, Ordering::Relaxed);
        }
    };
    let ctl = SearchControl::new()
        .with_cancel(&token)
        .with_progress(&observer);
    let session = Session::new(Config::fast());
    let grid = session.compile_many_with(&cores, &targets, &ctl);
    for row in &grid {
        for cell in row {
            let result = cell.as_ref().expect("cancelled cells still compile");
            assert!(result
                .implementations
                .iter()
                .any(|imp| imp.rendered == result.initial.rendered));
        }
    }
    assert_eq!(cancelled_events.load(Ordering::Relaxed), 4);
}

#[test]
fn panic_in_one_job_fails_only_that_job() {
    // Arm the per-job fault point to panic from the third compile job on:
    // with 2 benchmarks x 2 targets, exactly two jobs complete and two become
    // `CompileError::Internal` — the corpus run itself survives, reports one
    // `JobFailed` event per lost cell, and the aggregate counts them.
    let _plan = fault::install(fault::FaultPlan::new().arm(
        "session.compile",
        fault::FaultAction::Panic,
        2,
    ));
    let cores = [
        parse_fpcore("(FPCore (x) :pre (and (> x 1) (< x 1e6)) (- (sqrt (+ x 1)) (sqrt x)))")
            .unwrap(),
        parse_fpcore("(FPCore (x) :pre (and (> x 0.5) (< x 50)) (sqrt (+ x 1)))").unwrap(),
    ];
    let targets = [
        builtin::by_name("c99").unwrap(),
        builtin::by_name("arith-fma").unwrap(),
    ];
    let failed_events = AtomicUsize::new(0);
    let observer = |event: &Progress| {
        if let Progress::JobFailed { kind, .. } = event {
            assert_eq!(*kind, ErrorKind::Internal);
            failed_events.fetch_add(1, Ordering::Relaxed);
        }
    };
    let ctl = SearchControl::new().with_progress(&observer);

    let session = Session::new(Config::fast());
    let grid = session.compile_many_with(&cores, &targets, &ctl);

    let mut ok = 0;
    let mut internal = 0;
    for cell in grid.iter().flatten() {
        match cell {
            Ok(_) => ok += 1,
            Err(e @ CompileError::Internal(panic)) => {
                internal += 1;
                assert!(
                    panic.message().contains("injected fault"),
                    "payload lost: {panic:?}"
                );
                assert!(render_chain(e).contains("session.compile"));
            }
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
    }
    assert_eq!((ok, internal), (2, 2), "exactly two jobs must survive");
    assert_eq!(failed_events.load(Ordering::Relaxed), 2);
    let aggregate = SearchStats::aggregate(&grid);
    assert_eq!(aggregate.jobs_failed, 2);
    assert!(
        aggregate.candidates_scored > 0,
        "the surviving jobs did work"
    );
}
