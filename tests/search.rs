//! Integration tests of the parallel search internals as seen through the
//! public API: wall-clock budget cuts that land *during* the improve loop's
//! saturation fan-out, equivalence of the uniform and mixed-precision
//! ground-truth engines, and the `SearchStats`/`PhaseFinished` observability
//! contract.

use chassis::{Budget, Config, Phase, Progress, SearchControl, Session, TruthEngine};
use fpcore::parse_fpcore;
use std::sync::Mutex;
use std::time::Duration;
use targets::builtin;

/// A cancellation-prone benchmark whose search escalates ground-truth
/// precision and meaningfully improves accuracy.
fn cancellation() -> fpcore::FPCore {
    parse_fpcore("(FPCore (x) :pre (and (> x 1) (< x 1e14)) (- (sqrt (+ x 1)) (sqrt x)))").unwrap()
}

#[test]
fn wall_clock_budget_exhausts_mid_saturation() {
    // Arrange for the budget deadline to pass while the improve loop is
    // between picking candidates and running their saturation fan-out: the
    // observer stalls on the first `ImproveIteration` event until the
    // wall-clock budget is spent. The saturation workers then see an expired
    // deadline, cut early, and the loop must report `BudgetExhausted` for the
    // improve phase while still returning a frontier containing the initial
    // program.
    let core = cancellation();
    let target = builtin::by_name("c99").unwrap();
    let session = Session::new(Config::fast());
    let prepared = session.prepare(&core).unwrap();

    let budget = Duration::from_millis(60);
    let exhausted: Mutex<Vec<Phase>> = Mutex::new(Vec::new());
    let observer = |event: &Progress| match event {
        Progress::ImproveIteration { iteration: 0, .. } => {
            // Sleep past the deadline so the cut happens inside the loop, not
            // before it starts (iteration 0 was already underway).
            std::thread::sleep(budget + Duration::from_millis(60));
        }
        Progress::BudgetExhausted { phase, .. } => {
            exhausted.lock().unwrap().push(*phase);
        }
        _ => {}
    };
    let ctl = SearchControl::new()
        .with_progress(&observer)
        .with_budget(Budget::wall_clock(budget));
    let result = prepared.compile_with(&target, &ctl).unwrap();

    let exhausted = exhausted.into_inner().unwrap();
    assert!(
        exhausted.contains(&Phase::Improve),
        "the improve loop must report the mid-iteration cut, got {exhausted:?}"
    );
    assert!(
        !result.implementations.is_empty(),
        "a cut search must keep a valid frontier"
    );
    assert!(
        result
            .implementations
            .iter()
            .any(|imp| imp.rendered == result.initial.rendered),
        "the initial program survives a mid-saturation cut"
    );
}

#[test]
fn budget_exhausted_before_first_admission_keeps_the_initial_program() {
    // A budget spent before the improve loop admits anything must not
    // produce an empty frontier: the initial program is admitted
    // unconditionally, and `most_accurate`/`cheapest` fall back to it.
    let core = cancellation();
    let target = builtin::by_name("c99").unwrap();
    let session = Session::new(Config::fast());
    let prepared = session.prepare(&core).unwrap();

    for budget in [Budget::wall_clock(Duration::ZERO), Budget::iterations(0)] {
        let ctl = SearchControl::new().with_budget(budget);
        let result = prepared.compile_with(&target, &ctl).unwrap();
        assert!(
            !result.implementations.is_empty(),
            "{budget:?}: the frontier must keep the initial program"
        );
        assert!(
            result
                .implementations
                .iter()
                .any(|imp| imp.rendered == result.initial.rendered),
            "{budget:?}: the initial program must survive"
        );
        let most_accurate = result.most_accurate();
        let cheapest = result.cheapest();
        assert!(
            most_accurate.error_bits <= result.initial.error_bits,
            "{budget:?}: most_accurate can only improve on the initial"
        );
        assert!(
            cheapest.cost <= result.initial.cost,
            "{budget:?}: cheapest can only improve on the initial"
        );
    }
}

#[test]
fn installed_empty_fault_plan_is_invisible() {
    // The fault layer's contract: with no fault armed it costs nothing and
    // changes nothing. An *installed but empty* plan turns on the slow path
    // in every `fault::point`, so comparing it against a plain run checks
    // the strongest form of the claim — bit-identical frontiers.
    let core = cancellation();
    let target = builtin::by_name("c99").unwrap();

    let plain = Session::new(Config::fast())
        .compile(&core, &target)
        .unwrap();
    let under_plan = {
        let _armed = fault::install(fault::FaultPlan::new());
        Session::new(Config::fast())
            .compile(&core, &target)
            .unwrap()
    };

    assert_eq!(
        plain.implementations.len(),
        under_plan.implementations.len(),
        "frontier sizes differ under an empty fault plan"
    );
    for (a, b) in plain
        .implementations
        .iter()
        .zip(&under_plan.implementations)
    {
        assert_eq!(a.rendered, b.rendered, "programs differ");
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "costs differ");
        assert_eq!(
            a.error_bits.to_bits(),
            b.error_bits.to_bits(),
            "errors differ"
        );
    }
    assert_eq!(plain.initial.rendered, under_plan.initial.rendered);
}

#[test]
fn truth_engines_produce_bit_identical_results() {
    // The mixed-precision engine's reuse rules are restricted to provably
    // precision-independent values, so switching engines must change only
    // cache counters — never a frontier bit. This is the property that makes
    // concurrent cache access safe: seed availability (which depends on
    // evaluation order) affects performance only.
    let core = cancellation();
    for target_name in ["c99", "arith-fma"] {
        let target = builtin::by_name(target_name).unwrap();
        let mut uniform_config = Config::fast();
        uniform_config.truth_engine = TruthEngine::Uniform;
        let mut adaptive_config = Config::fast();
        adaptive_config.truth_engine = TruthEngine::Adaptive;

        let uniform = Session::new(uniform_config)
            .compile(&core, &target)
            .unwrap();
        let adaptive = Session::new(adaptive_config)
            .compile(&core, &target)
            .unwrap();

        assert_eq!(
            uniform.implementations.len(),
            adaptive.implementations.len(),
            "{target_name}: frontier sizes differ across truth engines"
        );
        for (u, a) in uniform
            .implementations
            .iter()
            .zip(&adaptive.implementations)
        {
            assert_eq!(u.rendered, a.rendered, "{target_name}: programs differ");
            assert_eq!(
                u.error_bits.to_bits(),
                a.error_bits.to_bits(),
                "{target_name}: errors differ across truth engines"
            );
        }
        // The engines differ only in their work counters: the adaptive run
        // tracks per-node evaluations, the uniform run does not.
        assert!(adaptive.stats.truths.node_evals > 0);
        assert_eq!(uniform.stats.truths.node_evals, 0);
    }
}

#[test]
fn phase_durations_are_observable_and_match_the_stats() {
    let core = cancellation();
    let target = builtin::by_name("c99").unwrap();
    let session = Session::new(Config::fast());
    let prepared = session.prepare(&core).unwrap();

    let events: Mutex<Vec<Progress>> = Mutex::new(Vec::new());
    let observer = |event: &Progress| events.lock().unwrap().push(*event);
    let ctl = SearchControl::new().with_progress(&observer);
    let result = prepared.compile_with(&target, &ctl).unwrap();
    let events = events.into_inner().unwrap();

    // Every started phase finishes, in order, and the reported duration is
    // exactly what lands in `SearchStats`.
    let finished: Vec<(Phase, Duration)> = events
        .iter()
        .filter_map(|e| match e {
            Progress::PhaseFinished { phase, duration } => Some((*phase, *duration)),
            _ => None,
        })
        .collect();
    let phases: Vec<Phase> = finished.iter().map(|(p, _)| *p).collect();
    assert_eq!(
        phases,
        vec![
            Phase::Lowering,
            Phase::Improve,
            Phase::Regimes,
            Phase::FinalEvaluation
        ]
    );
    let stats = &result.stats;
    for (phase, duration) in &finished {
        let in_stats = match phase {
            Phase::Prepare => unreachable!("prepare happens before compile_with"),
            Phase::Lowering => stats.lowering,
            Phase::Improve => stats.improve,
            Phase::Regimes => stats.regimes,
            Phase::FinalEvaluation => stats.final_evaluation,
        };
        assert_eq!(in_stats, *duration, "{phase:?} duration mismatch");
    }
    // The improve loop did real work and accounted for it.
    assert!(stats.improve > Duration::ZERO);
    assert!(stats.saturation > Duration::ZERO, "saturation was timed");
    assert!(stats.candidates_scored >= 1);
    assert!(
        stats.truths.misses > 0,
        "a fresh compile must miss the ground-truth cache at least once"
    );
}
