//! Accuracy property suite for the `vecmath` kernels, measured against the
//! Rival ground truth (the same correctly rounded oracle the accuracy
//! pipeline scores candidates with).
//!
//! Two things are asserted:
//!
//! 1. **Per-kernel ULP bounds.** Every kernel's measured error over a seeded
//!    sweep of its full domain — plus NaN, ±inf, ±0, subnormals, huge trig
//!    arguments, `log1p` near −1, and near-branch-cut points — stays within
//!    the bound documented in its [`vecmath::KERNELS1`]/[`KERNELS2`] entry.
//! 2. **Corpus accuracy drift.** Replacing libm with the kernels must not
//!    move `mean_bits_of_error` measurably: for real corpus expressions, the
//!    per-benchmark mean error of the kernel-routed evaluator vs. a
//!    libm-direct evaluator differs by at most noise.
//!
//! The sweeps are seeded (`chassis::rng`), so failures reproduce exactly.

use chassis::accuracy::{bits_of_error, ulps_between};
use chassis::rng::Rng;
use fpcore::eval::{apply_op_f64, eval_f64_in};
use fpcore::{parse_expr, Expr, FpType, RealOp, Symbol};
use rival::{ground_truth, GroundTruth};
use vecmath::{KERNELS1, KERNELS2};

const SEED: u64 = 0x0BAD_5EED_CAFE;

/// Special values every kernel must survive.
const SPECIALS: &[f64] = &[
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.5,
    -0.5,
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    5e-324,
    -5e-324,
    1e-310,
    -1e-310,
    f64::MIN_POSITIVE,
    f64::MAX,
    f64::MIN,
];

/// A signed log-uniform magnitude in `10^[lo, hi]`.
fn log_uniform(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    let magnitude = 10f64.powf(rng.range_f64(lo, hi));
    if rng.below(2) == 0 {
        magnitude
    } else {
        -magnitude
    }
}

/// Seeded domain sweep for a unary kernel, covering the regions where its
/// range reduction, polynomial core, and special-value blends each dominate.
fn domain1(name: &str, rng: &mut Rng, n: usize) -> Vec<f64> {
    let mut points = Vec::with_capacity(n + 64);
    for _ in 0..n {
        let x = match name {
            "exp" | "expm1" => rng.range_f64(-750.0, 750.0),
            "log" | "log2" | "log10" => log_uniform(rng, -320.0, 308.0).abs(),
            "log1p" => match rng.below(3) {
                0 => rng.range_f64(-1.0, 4.0),
                1 => log_uniform(rng, -18.0, 18.0),
                // The branch cut: approach −1 from above.
                _ => -1.0 + 10f64.powf(rng.range_f64(-12.0, 0.0)),
            },
            "sin" | "cos" | "tan" => match rng.below(3) {
                // The Cody–Waite fast path...
                0 => rng.range_f64(-1e6, 1e6),
                // ...moderate magnitudes...
                1 => log_uniform(rng, -8.0, 6.0),
                // ...and huge arguments (the libm fallback lanes).
                _ => log_uniform(rng, 6.0, 14.0),
            },
            "sinh" | "cosh" => rng.range_f64(-710.5, 710.5),
            "tanh" => rng.range_f64(-40.0, 40.0),
            "atan" => log_uniform(rng, -300.0, 300.0),
            other => panic!("no domain for kernel {other}"),
        };
        points.push(x);
    }
    points.extend_from_slice(SPECIALS);
    if matches!(name, "sin" | "cos" | "tan") {
        // Near-branch-cut stress: floats adjacent to small multiples of π/2,
        // where the reduced argument nearly cancels.
        for k in 1..24 {
            points.push(k as f64 * std::f64::consts::FRAC_PI_2);
            points.push(-(k as f64) * std::f64::consts::FRAC_PI_2);
        }
    }
    if name == "expm1" {
        // Around the rational/exp−1 switch point.
        for i in -16..16 {
            points.push(0.3465735902799726 + i as f64 * 1e-3);
        }
    }
    points
}

#[test]
fn unary_kernels_meet_documented_ulp_bounds_vs_rival() {
    let mut worst_report = String::new();
    for (i, kernel) in KERNELS1.iter().enumerate() {
        let expr = parse_expr(&format!("({} x)", kernel.name)).unwrap();
        let mut rng = Rng::for_stream(SEED, i as u64);
        let x_sym = Symbol::new("x");
        let mut worst = 0u64;
        let mut worst_at = 0.0f64;
        let mut compared = 0usize;
        for x in domain1(kernel.name, &mut rng, 700) {
            let truth = match ground_truth(&expr, &[(x_sym, x)], FpType::Binary64) {
                GroundTruth::Value(v) => v,
                GroundTruth::Nan => f64::NAN,
                GroundTruth::Unsamplable => continue,
            };
            let got = (kernel.scalar)(x);
            compared += 1;
            if truth.is_nan() {
                // Rival reports singularities (log 0, tan π/2, ...) as
                // domain-error NaN; IEEE defines many of them (−inf, ...).
                // At these points the kernel must match the host libm
                // exactly instead.
                let want = (kernel.reference)(x);
                assert!(
                    got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                    "{}({x:e}) = {got:e} at a Rival singularity, libm says {want:e}",
                    kernel.name
                );
                continue;
            }
            let ulps = ulps_between(got, truth, FpType::Binary64);
            if ulps > worst {
                worst = ulps;
                worst_at = x;
            }
            assert!(
                (ulps as f64) <= kernel.max_ulp,
                "{}({x:e}) = {got:e} is {ulps} ULP from the Rival truth {truth:e} \
                 (documented bound {} ULP)",
                kernel.name,
                kernel.max_ulp
            );
        }
        assert!(compared > 500, "{}: too few comparable points", kernel.name);
        worst_report.push_str(&format!(
            "{:>6}: max {} ULP (at {worst_at:e}, bound {})\n",
            kernel.name, worst, kernel.max_ulp
        ));
    }
    println!("measured kernel accuracy vs Rival:\n{worst_report}");
}

#[test]
fn binary_kernels_meet_documented_ulp_bounds_vs_rival() {
    for (i, kernel) in KERNELS2.iter().enumerate() {
        let expr = parse_expr(&format!("({} x y)", kernel.name)).unwrap();
        let mut rng = Rng::for_stream(SEED ^ 0xB1, i as u64);
        let (x_sym, y_sym) = (Symbol::new("x"), Symbol::new("y"));
        let mut compared = 0usize;
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for _ in 0..700 {
            let pair = if kernel.name == "pow" {
                match rng.below(4) {
                    // Positive bases over many magnitudes.
                    0 => {
                        let x = log_uniform(&mut rng, -20.0, 20.0).abs();
                        (x, rng.range_f64(-30.0, 30.0))
                    }
                    // Negative bases with integer exponents.
                    1 => (-10f64.powf(rng.range_f64(-3.0, 3.0)), {
                        (rng.below(41) as f64) - 20.0
                    }),
                    // Bases near 1 with huge exponents: the double-double
                    // stress region where exp(y·ln x) loses hundreds of ULP.
                    2 => (1.0 + rng.range_f64(-1e-8, 1e-8), rng.range_f64(-1e8, 1e8)),
                    _ => (rng.range_f64(0.0, 50.0), rng.range_f64(-8.0, 8.0)),
                }
            } else {
                (log_uniform(&mut rng, -320.0, 308.0), {
                    log_uniform(&mut rng, -320.0, 308.0)
                })
            };
            pairs.push(pair);
        }
        for &s in SPECIALS {
            pairs.push((s, 2.5));
            pairs.push((0.7, s));
            pairs.push((s, s));
        }
        for (x, y) in pairs {
            let truth = match ground_truth(&expr, &[(x_sym, x), (y_sym, y)], FpType::Binary64) {
                GroundTruth::Value(v) => v,
                GroundTruth::Nan => f64::NAN,
                GroundTruth::Unsamplable => continue,
            };
            let got = (kernel.scalar)(x, y);
            compared += 1;
            if truth.is_nan() {
                let want = (kernel.reference)(x, y);
                assert!(
                    got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                    "{}({x:e}, {y:e}) = {got:e} at a Rival singularity, libm says {want:e}",
                    kernel.name
                );
                continue;
            }
            let ulps = ulps_between(got, truth, FpType::Binary64);
            assert!(
                (ulps as f64) <= kernel.max_ulp,
                "{}({x:e}, {y:e}) = {got:e} is {ulps} ULP from the Rival truth {truth:e} \
                 (documented bound {} ULP)",
                kernel.name,
                kernel.max_ulp
            );
        }
        assert!(compared > 400, "{}: too few comparable points", kernel.name);
    }
}

/// A tree-walk evaluator that applies every operator with the host libm
/// directly — the pre-vecmath baseline the drift check compares against.
fn eval_libm(expr: &Expr, env: &[(Symbol, f64)]) -> f64 {
    match expr {
        Expr::Num(c) => c.to_f64(),
        Expr::Var(v) => env
            .iter()
            .find(|(s, _)| s == v)
            .map_or(f64::NAN, |(_, x)| *x),
        Expr::Op(op, args) => {
            let vals: Vec<f64> = args.iter().map(|a| eval_libm(a, env)).collect();
            let libm1 = |a: f64| match op {
                RealOp::Exp => Some(a.exp()),
                RealOp::Expm1 => Some(a.exp_m1()),
                RealOp::Log => Some(a.ln()),
                RealOp::Log1p => Some(a.ln_1p()),
                RealOp::Log2 => Some(a.log2()),
                RealOp::Log10 => Some(a.log10()),
                RealOp::Sin => Some(a.sin()),
                RealOp::Cos => Some(a.cos()),
                RealOp::Tan => Some(a.tan()),
                RealOp::Sinh => Some(a.sinh()),
                RealOp::Cosh => Some(a.cosh()),
                RealOp::Tanh => Some(a.tanh()),
                RealOp::Atan => Some(a.atan()),
                _ => None,
            };
            match (vals.as_slice(), op) {
                ([a], _) if libm1(*a).is_some() => libm1(vals[0]).unwrap(),
                ([a, b], RealOp::Pow) => a.powf(*b),
                ([a, b], RealOp::Hypot) => a.hypot(*b),
                _ => apply_op_f64(*op, &vals),
            }
        }
        Expr::If(c, t, e) => {
            if eval_libm(c, env) != 0.0 {
                eval_libm(t, env)
            } else {
                eval_libm(e, env)
            }
        }
    }
}

#[test]
fn corpus_mean_bits_of_error_drift_vs_libm_is_noise() {
    // For every corpus benchmark: evaluate the real expression over a seeded
    // point cloud with (a) the kernel-routed evaluator the system actually
    // uses and (b) a libm-direct evaluator, score both against Rival, and
    // bound the drift. The kernels are a couple of ULP where libm is ~1, so
    // per-benchmark drift must stay well under a tenth of a bit and the
    // corpus-wide mean even tighter — accuracy measurements keep meaning
    // what they meant before the kernels landed.
    let mut corpus_drift = 0.0f64;
    let mut benchmarks = 0usize;
    let mut report = String::new();
    for (i, benchmark) in benchsuite::all().iter().enumerate() {
        let core = benchmark.fpcore();
        let vars: Vec<Symbol> = core.args.iter().map(|(s, _)| *s).collect();
        let mut rng = Rng::for_stream(SEED ^ 0xD81F7, i as u64);
        let mut kernel_bits = 0.0f64;
        let mut libm_bits = 0.0f64;
        let mut scored = 0usize;
        for _ in 0..48 {
            let env: Vec<(Symbol, f64)> = vars
                .iter()
                .map(|&v| (v, log_uniform(&mut rng, -4.0, 4.0)))
                .collect();
            let GroundTruth::Value(truth) = ground_truth(&core.body, &env, FpType::Binary64) else {
                continue;
            };
            // Identity benchmarks (e.g. cot-difference: 1/tan − cos/sin)
            // have a true value of exactly zero: any nonzero rounding crumb
            // scores near-maximal bits_of_error, so the metric measures
            // which library happens to cancel exactly — coincidence, not
            // accuracy. Drift is only meaningful where the truth is nonzero.
            if truth == 0.0 {
                continue;
            }
            let with_kernels = eval_f64_in(&core.body, env.as_slice());
            let with_libm = eval_libm(&core.body, &env);
            kernel_bits += bits_of_error(with_kernels, truth, FpType::Binary64);
            libm_bits += bits_of_error(with_libm, truth, FpType::Binary64);
            scored += 1;
        }
        if scored < 8 {
            continue;
        }
        let drift = (kernel_bits - libm_bits) / scored as f64;
        assert!(
            drift.abs() < 0.75,
            "{}: mean_bits_of_error drifted {drift:+.3} bits vs the libm baseline",
            benchmark.name
        );
        if drift.abs() > 0.05 {
            report.push_str(&format!("  {}: {drift:+.3} bits\n", benchmark.name));
        }
        corpus_drift += drift;
        benchmarks += 1;
    }
    assert!(benchmarks > 40, "too few benchmarks scored ({benchmarks})");
    let mean = corpus_drift / benchmarks as f64;
    println!("corpus-wide mean drift: {mean:+.4} bits over {benchmarks} benchmarks\n{report}");
    assert!(
        mean.abs() < 0.05,
        "corpus-wide mean_bits_of_error drifted {mean:+.4} bits vs the libm baseline"
    );
}
