//! Criterion benchmarks of end-to-end compilation: Chassis, the Herbie-style
//! baseline and the Clang-style baseline on a representative benchmark.

use chassis::baseline::clang::{compile_clang, ClangConfig, OptLevel};
use chassis::baseline::herbie::HerbieCompiler;
use chassis::{Config, Session};
use criterion::{criterion_group, criterion_main, Criterion};
use fpcore::parse_fpcore;
use std::time::Duration;
use targets::builtin;

fn benchmark_core() -> fpcore::FPCore {
    benchsuite::by_name("sqrt-add-one-minus-sqrt")
        .expect("corpus benchmark")
        .fpcore()
}

fn bench_chassis_compile(c: &mut Criterion) {
    let core = benchmark_core();
    // Full pipeline per iteration: a fresh session prepares (samples + ground
    // truth) and compiles.
    c.bench_function("chassis_compile_c99_fast", |b| {
        b.iter(|| {
            let target = builtin::by_name("c99").unwrap();
            let session = Session::new(Config::fast());
            std::hint::black_box(session.compile(&core, &target).unwrap())
        });
    });
    c.bench_function("chassis_compile_avx_fast", |b| {
        b.iter(|| {
            let target = builtin::by_name("avx").unwrap();
            let session = Session::new(Config::fast());
            std::hint::black_box(session.compile(&core, &target))
        });
    });
    // Search only: preparation is done once outside the loop, the way a
    // multi-target sweep amortizes it.
    let prepared = Session::new(Config::fast())
        .prepare(&core)
        .expect("benchmark prepares");
    c.bench_function("chassis_compile_c99_fast_prepared", |b| {
        let target = builtin::by_name("c99").unwrap();
        b.iter(|| std::hint::black_box(prepared.compile(&target).unwrap()));
    });
}

fn bench_baselines(c: &mut Criterion) {
    let core = benchmark_core();
    c.bench_function("herbie_baseline_compile_fast", |b| {
        b.iter(|| {
            let herbie = HerbieCompiler::new(Config::fast());
            std::hint::black_box(herbie.compile(&core).unwrap())
        });
    });
    let target = builtin::by_name("c99").unwrap();
    c.bench_function("clang_baseline_o2_fastmath", |b| {
        b.iter(|| {
            std::hint::black_box(
                compile_clang(
                    &core,
                    &target,
                    ClangConfig {
                        level: OptLevel::O2,
                        fast_math: true,
                    },
                )
                .unwrap(),
            )
        });
    });
    let core32 = parse_fpcore("(FPCore (x) (sqrt (+ (* x x) 1)))").unwrap();
    c.bench_function("clang_baseline_simple_lowering", |b| {
        b.iter(|| {
            std::hint::black_box(
                compile_clang(
                    &core32,
                    &target,
                    ClangConfig {
                        level: OptLevel::O0,
                        fast_math: false,
                    },
                )
                .unwrap(),
            )
        });
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = compile;
    config = configured();
    targets = bench_chassis_compile, bench_baselines
}
criterion_main!(compile);
