//! Criterion micro-benchmarks of the engine components: equality saturation,
//! typed extraction, ground-truth evaluation, and program interpretation.

use chassis::isel::{InstructionSelector, IselConfig};
use chassis::lower::lower_fpcore;
use criterion::{criterion_group, criterion_main, Criterion};
use fpcore::{parse_expr, parse_fpcore, FpType, Symbol};
use rival::{ground_truth, Evaluator};
use std::collections::HashMap;
use std::time::Duration;
use targets::builtin;

fn bench_equality_saturation(c: &mut Criterion) {
    let target = builtin::by_name("c99").unwrap();
    let expr = parse_expr("(- (sqrt (+ x 1)) (sqrt x))").unwrap();
    let vars: HashMap<Symbol, FpType> =
        [(Symbol::new("x"), FpType::Binary64)].into_iter().collect();
    let config = IselConfig {
        node_limit: 3_000,
        iter_limit: 4,
        ..IselConfig::default()
    };
    c.bench_function("isel_modulo_equivalence_c99", |b| {
        b.iter(|| {
            let selector = InstructionSelector::new(&target, config);
            std::hint::black_box(selector.run(&expr, &vars, FpType::Binary64))
        });
    });
}

fn bench_ground_truth(c: &mut Criterion) {
    let expr = parse_expr("(/ (- (exp x) 1) x)").unwrap();
    let env = vec![(Symbol::new("x"), 1e-9)];
    c.bench_function("rival_ground_truth_expm1_over_x", |b| {
        b.iter(|| std::hint::black_box(ground_truth(&expr, &env, FpType::Binary64)));
    });
    let evaluator = Evaluator::with_precisions(vec![96, 192]);
    c.bench_function("rival_ground_truth_low_precision", |b| {
        b.iter(|| std::hint::black_box(evaluator.eval(&expr, &env, FpType::Binary64)));
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let target = builtin::by_name("vdt").unwrap();
    let core = parse_fpcore("(FPCore (x) (/ (sin x) (+ 1 (* x x))))").unwrap();
    let program = lower_fpcore(&core, &target).unwrap();
    let env: HashMap<Symbol, f64> = [(Symbol::new("x"), 0.7)].into_iter().collect();
    c.bench_function("interpret_float_program_vdt", |b| {
        b.iter(|| std::hint::black_box(targets::eval_float_expr_in(&target, &program, &env)));
    });
    // The compiled counterpart: compile once outside the loop, evaluate per
    // iteration against a reusable register file.
    let compiled = targets::compile(&target, &program);
    let vars = [Symbol::new("x")];
    let columns = compiled.bind_columns(&vars);
    let mut regs = compiled.new_regs();
    let point = [0.7f64];
    c.bench_function("bytecode_float_program_vdt", |b| {
        b.iter(|| std::hint::black_box(compiled.eval_point(&columns, &point, &mut regs)));
    });
    // Block mode: the same program swept over a 256-point columnar batch —
    // one DEFAULT_BLOCK-wide block, so one instruction dispatch per sweep
    // (compare per-point cost against 256 × the scalar bytecode number
    // above).
    let rows: Vec<Vec<f64>> = (0..256).map(|i| vec![0.7 + i as f64 * 1e-3]).collect();
    let points = targets::Columns::from_rows(1, &rows);
    let mut block_regs = compiled.new_block_regs(targets::DEFAULT_BLOCK);
    let mut out = vec![0.0f64; points.len()];
    c.bench_function("block_float_program_vdt_256pts", |b| {
        b.iter(|| {
            compiled.eval_range(&columns, &points, 0, &mut block_regs, &mut out);
            std::hint::black_box(out[0])
        });
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = engine;
    config = configured();
    targets = bench_equality_saturation, bench_ground_truth, bench_interpreter
}
criterion_main!(engine);
