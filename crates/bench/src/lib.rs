//! Shared harness code for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the paper's
//! evaluation (Section 6). The heavy lifting — running Chassis, the Herbie-style
//! baseline and the Clang-style baseline over the benchmark corpus, and
//! aggregating per-benchmark Pareto frontiers into the paper's joint curves — is
//! shared here.

use benchsuite::Benchmark;
use chassis::baseline::herbie::transcribe;
use chassis::{CompilationResult, CompileError, Config, Prepared, Session};
use fpcore::FPCore;
use targets::{builtin, program_cost, Target};

/// One implementation's aggregate-relevant statistics.
#[derive(Clone, Copy, Debug)]
pub struct PointStats {
    /// Estimated cost under the target's cost model.
    pub cost: f64,
    /// Accuracy in bits (`p −` mean bits of error on the test points).
    pub accuracy_bits: f64,
}

/// The outcome of running one compiler on one benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkOutcome {
    /// Benchmark name.
    pub name: String,
    /// The cost of the naive direct lowering (speedups are relative to this).
    pub initial: PointStats,
    /// The Pareto frontier produced by the compiler, sorted by increasing cost.
    pub frontier: Vec<PointStats>,
}

impl BenchmarkOutcome {
    /// Extracts the aggregate-relevant statistics from a compilation result.
    pub fn from_result(name: &str, result: &CompilationResult) -> BenchmarkOutcome {
        BenchmarkOutcome {
            name: name.to_owned(),
            initial: PointStats {
                cost: result.initial.cost,
                accuracy_bits: result.initial.accuracy_bits,
            },
            frontier: result
                .implementations
                .iter()
                .map(|imp| PointStats {
                    cost: imp.cost,
                    accuracy_bits: imp.accuracy_bits,
                })
                .collect(),
        }
    }

    /// Picks the frontier point at a fractional position `t ∈ [0, 1]` from the
    /// cheapest (0) to the most accurate (1).
    pub fn at_fraction(&self, t: f64) -> PointStats {
        if self.frontier.is_empty() {
            return self.initial;
        }
        let idx = ((self.frontier.len() - 1) as f64 * t).round() as usize;
        self.frontier[idx.min(self.frontier.len() - 1)]
    }

    /// The cheapest frontier point whose accuracy is at least `bits`; `None` when
    /// no point reaches that accuracy.
    pub fn cheapest_at_least(&self, bits: f64) -> Option<PointStats> {
        self.frontier
            .iter()
            .filter(|p| p.accuracy_bits >= bits)
            .min_by(|a, b| {
                a.cost
                    .partial_cmp(&b.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied()
    }
}

/// Harness-wide options parsed from the command line.
#[derive(Clone, Debug)]
pub struct HarnessOptions {
    /// Maximum number of benchmarks to run (subsamples the corpus).
    pub limit: usize,
    /// Use the fast search configuration.
    pub fast: bool,
    /// RNG seed override (`--seed N`); `None` keeps the configuration default,
    /// so corpus runs are reproducible from the CLI without recompiling.
    pub seed: Option<u64>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            limit: 8,
            fast: true,
            seed: None,
        }
    }
}

impl HarnessOptions {
    /// Parses `--limit N`, `--full`, `--thorough` and `--seed N` from
    /// `std::env::args`.
    pub fn from_args() -> HarnessOptions {
        let mut options = HarnessOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--limit" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        options.limit = v;
                    }
                    i += 2;
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        options.seed = Some(v);
                    }
                    i += 2;
                }
                "--full" => {
                    options.limit = usize::MAX;
                    i += 1;
                }
                "--thorough" => {
                    options.fast = false;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        options
    }

    /// The search configuration implied by the options.
    pub fn config(&self) -> Config {
        let config = if self.fast {
            Config::fast()
        } else {
            Config::default()
        };
        match self.seed {
            Some(seed) => config.with_seed(seed),
            None => config,
        }
    }

    /// A session over the implied configuration.
    pub fn session(&self) -> Session {
        Session::new(self.config())
    }

    /// The benchmark subset implied by the options (spread across groups).
    pub fn benchmarks(&self) -> Vec<&'static Benchmark> {
        let all = benchsuite::all();
        if self.limit >= all.len() {
            return all.iter().collect();
        }
        // Take benchmarks round-robin across groups so small limits stay diverse.
        let groups = benchsuite::groups();
        let mut picked = Vec::new();
        let mut index = 0usize;
        while picked.len() < self.limit {
            let mut added = false;
            for group in &groups {
                let members = benchsuite::by_group(group);
                if let Some(b) = members.get(index) {
                    picked.push(*b);
                    added = true;
                    if picked.len() >= self.limit {
                        break;
                    }
                }
            }
            if !added {
                break;
            }
            index += 1;
        }
        picked
    }
}

/// Resolves builtin target names in order, warning on stderr and skipping any
/// name [`targets::builtin`] does not know. Every harness binary that takes a
/// target list goes through this, so a misnamed target degrades the sweep the
/// same way everywhere instead of aborting it.
pub fn resolve_targets(names: &[&str]) -> Vec<Target> {
    names
        .iter()
        .filter_map(|n| {
            let target = builtin::by_name(n);
            if target.is_none() {
                eprintln!("warning: unknown builtin target {n:?}, skipping");
            }
            target
        })
        .collect()
}

/// Parses a benchmark subset into `FPCore`s, preserving corpus order.
pub fn corpus_cores(benchmarks: &[&'static Benchmark]) -> Vec<FPCore> {
    benchmarks.iter().map(|b| b.fpcore()).collect()
}

/// The full corpus with names attached, for gates that sweep everything and
/// report per-case (`lint_ir` and friends).
pub fn named_corpus_cores() -> Vec<(String, FPCore)> {
    benchsuite::all()
        .iter()
        .map(|b| (b.name.to_string(), b.fpcore()))
        .collect()
}

/// A corpus compilation grid as produced by [`Session::compile_many`]: rows
/// are benchmarks, columns targets.
pub type ResultGrid = Vec<Vec<Result<CompilationResult, CompileError>>>;

/// Bit-level identity check between two corpus grids: frontier renderings,
/// cost and error bits, and the initial programs must match cell for cell.
/// With `strict_errors`, failed cells must carry *equal* typed errors (the
/// chaos gate's empty-plan invariant); without it, two failures match
/// regardless of message (cross-engine sweeps, where timing-dependent detail
/// may differ). Returns a human-readable description of every mismatch —
/// empty means identical.
pub fn grid_mismatches(a: &ResultGrid, b: &ResultGrid, strict_errors: bool) -> Vec<String> {
    let mut mismatches = Vec::new();
    if a.len() != b.len() {
        mismatches.push(format!(
            "grid shapes differ: {} vs {} rows",
            a.len(),
            b.len()
        ));
        return mismatches;
    }
    for (bench, (row_a, row_b)) in a.iter().zip(b).enumerate() {
        if row_a.len() != row_b.len() {
            mismatches.push(format!("benchmark {bench}: row widths differ"));
            continue;
        }
        for (t, (x, y)) in row_a.iter().zip(row_b).enumerate() {
            let cell = format!("benchmark {bench}, target {t}");
            match (x, y) {
                (Ok(x), Ok(y)) => {
                    if x.implementations.len() != y.implementations.len() {
                        mismatches.push(format!("{cell}: frontier sizes differ"));
                        continue;
                    }
                    if x.initial.rendered != y.initial.rendered
                        || x.initial.error_bits.to_bits() != y.initial.error_bits.to_bits()
                    {
                        mismatches.push(format!("{cell}: initial program differs"));
                    }
                    for (i, (p, q)) in x.implementations.iter().zip(&y.implementations).enumerate()
                    {
                        if p.rendered != q.rendered
                            || p.cost.to_bits() != q.cost.to_bits()
                            || p.error_bits.to_bits() != q.error_bits.to_bits()
                        {
                            mismatches.push(format!("{cell}: frontier point {i} differs"));
                        }
                    }
                }
                (Err(x), Err(y)) => {
                    if strict_errors && x != y {
                        mismatches.push(format!("{cell}: errors differ ({x} vs {y})"));
                    }
                }
                _ => mismatches.push(format!("{cell}: one run failed where the other succeeded")),
            }
        }
    }
    mismatches
}

/// Runs `run` over every benchmark of a corpus subset, fanning benchmarks out
/// across worker threads (see [`chassis::par`]) while preserving corpus order
/// in the result. Compiling one benchmark is independent of every other, so
/// this is the figure harness' outermost — and only — parallel axis: nested
/// `par_map` calls (each benchmark's accuracy evaluation and sampling) run
/// serially inside a corpus worker rather than oversubscribing the machine.
///
/// Serial when the `parallel` feature of `chassis` is disabled, or when
/// `chassis::par::set_thread_count(1)` / `CHASSIS_THREADS=1` is in effect.
pub fn run_corpus<R, F>(benchmarks: &[&'static Benchmark], run: F) -> Vec<R>
where
    R: Send,
    F: Fn(&'static Benchmark) -> R + Sync,
{
    chassis::par::par_map(benchmarks, |benchmark| run(benchmark))
}

/// [`run_corpus`] over prepared benchmarks: the per-target half of a
/// multi-target sweep, parallel across benchmarks with the target-independent
/// state already in hand.
pub fn run_prepared_corpus<R, F>(prepared: &[PreparedBenchmark], run: F) -> Vec<R>
where
    R: Send,
    F: Fn(&PreparedBenchmark) -> R + Sync,
{
    chassis::par::par_map(prepared, run)
}

/// Runs Chassis on one benchmark for one target, preparing through `session`
/// (so a second target on the same session reuses the benchmark's samples and
/// ground truth).
pub fn run_chassis(
    session: &Session,
    target: &Target,
    benchmark: &Benchmark,
) -> Option<BenchmarkOutcome> {
    let result = session.compile(&benchmark.fpcore(), target).ok()?;
    Some(BenchmarkOutcome::from_result(benchmark.name, &result))
}

/// Runs the full Chassis pipeline and returns the raw result (used by the case
/// studies, which need the rendered programs).
pub fn run_chassis_full(
    session: &Session,
    target: &Target,
    core: &FPCore,
) -> Option<CompilationResult> {
    session.compile(core, target).ok()
}

/// One benchmark's target-independent state, computed once and shared by every
/// target: the Chassis preparation (samples + ground truth) and, optionally,
/// the Herbie baseline's target-agnostic result.
pub struct PreparedBenchmark {
    /// The corpus benchmark.
    pub benchmark: &'static Benchmark,
    /// Chassis' prepared state (compile it per target).
    pub prepared: Prepared,
    /// The Herbie-style baseline's output (transcribe it per target), when
    /// requested and successful.
    pub herbie: Option<CompilationResult>,
}

/// Prepares a corpus subset once for a multi-target sweep: per benchmark, one
/// sampling + ground-truth pass (through the session cache) and — when
/// `with_herbie` — one run of the target-agnostic Herbie baseline. The Herbie
/// baseline compiles *from the shared preparation* (its search is just the
/// Chassis loop on the abstract Herbie target, and preparation is
/// target-independent), so requesting it adds zero sampling passes.
/// Benchmarks whose preparation fails are dropped. Parallel across benchmarks.
pub fn prepare_corpus(
    session: &Session,
    benchmarks: &[&'static Benchmark],
    with_herbie: bool,
) -> Vec<PreparedBenchmark> {
    let herbie_target = chassis::baseline::herbie::herbie_target();
    run_corpus(benchmarks, |benchmark| {
        let core = benchmark.fpcore();
        let prepared = session.prepare(&core).ok()?;
        let herbie_result = if with_herbie {
            prepared.compile(&herbie_target).ok()
        } else {
            None
        };
        Some(PreparedBenchmark {
            benchmark,
            prepared,
            herbie: herbie_result,
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Transcribes a prepared benchmark's Herbie-baseline output onto a concrete
/// target (Section 6.3). Programs using unavailable operators are discarded,
/// as in the paper; returns `None` when nothing survives (the benchmark is
/// then dropped from the comparison for both systems).
pub fn herbie_transcribed_outcome(
    target: &Target,
    prepared: &PreparedBenchmark,
) -> Option<BenchmarkOutcome> {
    let result = prepared.herbie.as_ref()?;
    let core = prepared.prepared.core();
    let herbie_target = chassis::baseline::herbie::herbie_target();
    let samples = &result.samples;
    let mut frontier: Vec<PointStats> = Vec::new();
    for imp in &result.implementations {
        let Some(ported) = transcribe(&imp.expr, &herbie_target, target, core.precision) else {
            continue;
        };
        let (_, acc) = chassis::accuracy::evaluate_on_test(target, &ported, samples);
        frontier.push(PointStats {
            cost: program_cost(target, &ported),
            accuracy_bits: acc,
        });
    }
    if frontier.is_empty() {
        return None;
    }
    frontier.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // The initial program: the direct lowering of the original expression on the
    // concrete target (same reference as Chassis uses).
    let initial_expr = chassis::lower_fpcore(core, target).ok();
    let initial = match initial_expr {
        Some(expr) => {
            let (_, acc) = chassis::accuracy::evaluate_on_test(target, &expr, samples);
            PointStats {
                cost: program_cost(target, &expr),
                accuracy_bits: acc,
            }
        }
        None => frontier[0],
    };
    Some(BenchmarkOutcome {
        name: prepared.benchmark.name.to_owned(),
        initial,
        frontier,
    })
}

/// Geometric mean of a set of strictly positive values.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// One point of a joint (aggregate) Pareto curve.
#[derive(Clone, Copy, Debug)]
pub struct JointPoint {
    /// Geometric-mean speedup over each benchmark's initial program.
    pub speedup: f64,
    /// Sum of accuracies across benchmarks (the paper's vertical axis).
    pub total_accuracy: f64,
}

/// Aggregates per-benchmark frontiers into a joint Pareto curve by sweeping the
/// frontier fraction from cheapest to most accurate (paper Figures 7 and 8).
pub fn joint_curve(outcomes: &[BenchmarkOutcome], steps: usize) -> Vec<JointPoint> {
    (0..=steps)
        .map(|i| {
            let t = i as f64 / steps as f64;
            let speedups: Vec<f64> = outcomes
                .iter()
                .map(|o| {
                    let p = o.at_fraction(t);
                    o.initial.cost / p.cost.max(1e-9)
                })
                .collect();
            let total_accuracy: f64 = outcomes
                .iter()
                .map(|o| o.at_fraction(t).accuracy_bits)
                .sum();
            JointPoint {
                speedup: geometric_mean(&speedups),
                total_accuracy,
            }
        })
        .collect()
}

/// Pearson correlation coefficient between two equally long slices.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mean_x: f64 = xs.iter().sum::<f64>() / n;
    let mean_y: f64 = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x) * (x - mean_x);
        var_y += (y - mean_y) * (y - mean_y);
    }
    if var_x == 0.0 || var_y == 0.0 {
        return 0.0;
    }
    cov / (var_x * var_y).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_and_correlation() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 1.0);
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.1, 5.9, 8.2];
        assert!(pearson_correlation(&xs, &ys) > 0.99);
        let zs = [5.0, 1.0, 4.0, 0.0];
        assert!(pearson_correlation(&xs, &zs).abs() < 0.9);
    }

    #[test]
    fn joint_curve_interpolates_frontier() {
        let outcome = BenchmarkOutcome {
            name: "synthetic".into(),
            initial: PointStats {
                cost: 100.0,
                accuracy_bits: 20.0,
            },
            frontier: vec![
                PointStats {
                    cost: 10.0,
                    accuracy_bits: 20.0,
                },
                PointStats {
                    cost: 50.0,
                    accuracy_bits: 50.0,
                },
            ],
        };
        let curve = joint_curve(&[outcome], 4);
        assert_eq!(curve.len(), 5);
        assert!(curve[0].speedup > curve[4].speedup);
        assert!(curve[0].total_accuracy < curve[4].total_accuracy);
    }

    #[test]
    fn target_resolution_skips_unknown_names() {
        let resolved = resolve_targets(&["c99", "no-such-target", "arith-fma"]);
        let names: Vec<&str> = resolved.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["c99", "arith-fma"]);
        assert!(resolve_targets(&[]).is_empty());
    }

    #[test]
    fn corpus_loaders_preserve_order_and_names() {
        let all = benchsuite::all();
        let cores = corpus_cores(&all.iter().collect::<Vec<_>>());
        assert_eq!(cores.len(), all.len());
        let named = named_corpus_cores();
        assert_eq!(named.len(), all.len());
        assert!(named.iter().zip(all).all(|((name, _), b)| name == b.name));
    }

    #[test]
    fn harness_subsampling_is_diverse() {
        let options = HarnessOptions {
            limit: 6,
            fast: true,
            seed: None,
        };
        let picked = options.benchmarks();
        assert_eq!(picked.len(), 6);
        let groups: std::collections::HashSet<&str> = picked.iter().map(|b| b.group).collect();
        assert!(groups.len() >= 5, "subsample should cover many groups");
    }
}
