//! Overload soak: more clients than workers hammer the daemon with fresh
//! compiles under mixed deadlines while seeded latency faults (delays and
//! one-shot stalls) run in the pipeline — the CI gate for the resilience
//! tentpole (deadlines, cooperative cancellation, watchdog reclamation,
//! circuit breaking; see `docs/RESILIENCE.md`).
//!
//! Phases, all against one daemon on one store:
//!
//! 1. `calibration` — the corpus request set compiled serially with no
//!    deadlines and no faults. Every response must be 200; the measured
//!    compile p50 sizes the deadlines and time bounds below, so every gate
//!    is machine-relative.
//! 2. `overload` rounds — `--clients` threads (more than `--workers`), each
//!    replaying `--per-client` *fresh* compile requests (unique seeds, so
//!    nothing is cache-served) through the retrying client, under a
//!    [`fault::FaultPlan::seeded_latency`] plan arming `store.read`,
//!    `store.write`, and `session.compile` (stalls only on the latter, where
//!    the watchdog can reclaim the worker) plus a delay on `service.accept`.
//!    Deadlines rotate per request: tight (sheds or expires), generous
//!    (survives the queue), and none (must never be starved).
//! 3. `recovery` after each round — the plan is dropped, the calibration set
//!    is replayed, and in-flight must drain to zero: every answer a memory
//!    hit, every answer 200.
//! 4. `fast path` — a final warm sweep; its p99 is the overload-survivor
//!    latency floor.
//!
//! Hard gates (exit 1):
//!
//! * every overload request resolves within a bound derived from the
//!   calibration wall-clock — a wedge (worker leak, lost wakeup, stuck
//!   flight) fails the round;
//! * every resolution is a 200 result or a *typed* JSON error
//!   (`error.kind`); an untyped body or a transport failure after retries
//!   fails;
//! * every recovery sweep is all-200 with in-flight drained to 0 — stalled
//!   workers must have been reclaimed, deadline-free traffic never starved;
//! * with `--max-fast-p99-frac F`: final warm p99 ≤ F × calibration p50;
//! * at least one fault actually fired across the soak (else the plans are
//!   miswired and the gate is vacuous).
//!
//! Results are archived in `BENCH_soak.json` (schema 1) with a `history`
//! array carrying prior runs forward.
//!
//! ```text
//! cargo run --release -p chassis-bench --bin serve_soak -- \
//!     --limit 2 --rounds 2 --max-fast-p99-frac 0.5 --out BENCH_soak.json
//! ```

use chassis_bench::{corpus_cores, resolve_targets, HarnessOptions};
use fault::{FaultAction, FaultPlan};
use fpcore::hash::canonical_text;
use fpcore::FPCore;
use service::{client, Json, RetryPolicy, ServerConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use targets::Target;

/// Same pair as `serve_throughput`: one all-emulated, one partly native.
const TARGETS: &[&str] = &["c99", "arith-fma"];

struct Options {
    limit: usize,
    seed: Option<u64>,
    thorough: bool,
    workers: usize,
    clients: usize,
    per_client: usize,
    rounds: usize,
    max_fast_p99_frac: f64,
    out: String,
}

impl Options {
    /// Strict parsing: this binary is a CI gate, so an unknown flag or an
    /// unparsable value aborts (exit 2) instead of silently falling back to
    /// a default that could leave the gate disabled.
    fn from_args() -> Options {
        let mut options = Options {
            limit: 2,
            seed: None,
            thorough: false,
            workers: 2,
            clients: 4,
            per_client: 3,
            rounds: 3,
            max_fast_p99_frac: 0.0,
            out: "BENCH_soak.json".to_owned(),
        };
        let usage = "usage: serve_soak [--limit N] [--full] [--seed N] [--thorough] \
                     [--workers N] [--clients N] [--per-client N] [--rounds N] \
                     [--max-fast-p99-frac F] [--out PATH]";
        fn value<T: std::str::FromStr>(args: &[String], i: usize, usage: &str) -> T {
            args.get(i + 1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("bad or missing value for {}\n{usage}", args[i]);
                    std::process::exit(2);
                })
        }
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--limit" => {
                    options.limit = value(&args, i, usage);
                    i += 2;
                }
                "--full" => {
                    options.limit = usize::MAX;
                    i += 1;
                }
                "--seed" => {
                    options.seed = Some(value(&args, i, usage));
                    i += 2;
                }
                "--thorough" => {
                    options.thorough = true;
                    i += 1;
                }
                "--workers" => {
                    options.workers = value(&args, i, usage);
                    i += 2;
                }
                "--clients" => {
                    options.clients = value(&args, i, usage);
                    i += 2;
                }
                "--per-client" => {
                    options.per_client = value(&args, i, usage);
                    i += 2;
                }
                "--rounds" => {
                    options.rounds = value(&args, i, usage);
                    i += 2;
                }
                "--max-fast-p99-frac" => {
                    options.max_fast_p99_frac = value(&args, i, usage);
                    i += 2;
                }
                "--out" => {
                    options.out = args.get(i + 1).cloned().unwrap_or_else(|| {
                        eprintln!("missing value for --out\n{usage}");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                other => {
                    eprintln!("unknown option {other:?}\n{usage}");
                    std::process::exit(2);
                }
            }
        }
        if options.clients <= options.workers {
            eprintln!(
                "warning: {} clients do not overload {} workers; the soak is weaker",
                options.clients, options.workers
            );
        }
        options
    }

    fn harness(&self) -> HarnessOptions {
        HarnessOptions {
            limit: self.limit,
            fast: !self.thorough,
            seed: self.seed,
        }
    }

    fn config_name(&self) -> &'static str {
        if self.thorough {
            "default"
        } else {
            "fast"
        }
    }
}

/// SplitMix64 step, the workspace's standard seed expander.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deadline class a soak request carries, rotated per request so every
/// round mixes shed-prone, queue-surviving, and unbounded traffic.
#[derive(Clone, Copy, PartialEq)]
enum DeadlineKind {
    Tight,
    Generous,
    None,
}

/// One resolved overload request, classified for the typed-resolution gate.
struct Outcome {
    deadline: DeadlineKind,
    status: u16,
    /// `"ok"`, the typed `error.kind`, or `"untyped:..."` (a gate failure).
    kind: String,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Serializes one compile request body the way the wire protocol spells it.
fn request_body(
    core_text: &str,
    target: &str,
    seed: u64,
    config: &str,
    client: &str,
    deadline_ms: Option<u64>,
) -> String {
    let mut members = vec![
        ("fpcore".to_owned(), Json::Str(core_text.to_owned())),
        ("target".to_owned(), Json::Str(target.to_owned())),
        ("seed".to_owned(), Json::from_u64(seed)),
        ("config".to_owned(), Json::Str(config.to_owned())),
        ("client".to_owned(), Json::Str(client.to_owned())),
    ];
    if let Some(deadline) = deadline_ms {
        members.push(("deadline_ms".to_owned(), Json::from_u64(deadline)));
    }
    Json::Obj(members).to_string()
}

/// Classifies a response: a 200 with a parseable body is `ok`; any error
/// status with a JSON `error.kind` is that kind; everything else is
/// `untyped` and fails the gate.
fn classify(status: u16, body: &str) -> String {
    let Ok(doc) = Json::parse(body) else {
        return format!("untyped: non-JSON body at status {status}");
    };
    if status == 200 {
        return "ok".to_owned();
    }
    match doc
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
    {
        Some(kind) => kind.to_owned(),
        None => format!("untyped: status {status} without error.kind"),
    }
}

fn stat(addr: SocketAddr, field: &str) -> u64 {
    let response = client::get(addr, "/stats").unwrap_or_else(|e| {
        eprintln!("error: /stats failed: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&response.body).unwrap_or_else(|e| {
        eprintln!("error: /stats is not JSON: {e}");
        std::process::exit(1);
    });
    doc.get(field).and_then(Json::as_u64).unwrap_or_else(|| {
        eprintln!("error: /stats missing {field}: {}", response.body);
        std::process::exit(1);
    })
}

/// Replays `bodies` serially, requiring a 200 for each; returns latencies.
/// `label` names the sweep in the failure message.
fn all_200_sweep(label: &str, addr: SocketAddr, bodies: &[String]) -> Vec<Duration> {
    let mut latencies = Vec::with_capacity(bodies.len());
    for (i, body) in bodies.iter().enumerate() {
        let sent = Instant::now();
        let response = client::post_json(addr, "/compile", body).unwrap_or_else(|e| {
            eprintln!("error: {label}: request {i} failed: {e}");
            std::process::exit(1);
        });
        latencies.push(sent.elapsed());
        if response.status != 200 {
            eprintln!(
                "error: {label}: request {i}: status {} ({})",
                response.status, response.body
            );
            std::process::exit(1);
        }
    }
    latencies.sort();
    latencies
}

/// Polls `/stats` until `inflight` reads 0, failing after `bound`.
fn drain_inflight(addr: SocketAddr, bound: Duration) {
    let started = Instant::now();
    loop {
        let inflight = stat(addr, "inflight");
        if inflight == 0 {
            return;
        }
        if started.elapsed() > bound {
            eprintln!("error: {inflight} job(s) still in flight {bound:?} after the round — leak");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Aggregated outcome of one overload round.
struct Round {
    seed: u64,
    elapsed: Duration,
    fires: u64,
    /// `kind` → count over the round's resolutions.
    tally: Vec<(String, usize)>,
}

/// Prior history entries carried forward from an existing out file.
fn prior_history(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Some(start) = text.find("\"history\": [") else {
        return Vec::new();
    };
    let rest = &text[start + "\"history\": [".len()..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end]
        .lines()
        .map(|line| line.trim().trim_end_matches(',').to_owned())
        .filter(|line| line.starts_with('{'))
        .collect()
}

fn tally_json(tally: &[(String, usize)]) -> String {
    let members: Vec<String> = tally
        .iter()
        .map(|(kind, n)| format!("\"{kind}\": {n}"))
        .collect();
    format!("{{{}}}", members.join(", "))
}

fn main() {
    let options = Options::from_args();
    let harness = options.harness();
    let benchmarks = harness.benchmarks();
    let cores: Vec<FPCore> = corpus_cores(&benchmarks);
    let target_list: Vec<Target> = resolve_targets(TARGETS);
    let config = harness.config();
    let seed = config.seed;
    let config_name = options.config_name();
    println!(
        "{} benchmarks x {} targets, seed {seed}, {} workers, {} clients x {} requests, \
         {} rounds\n",
        cores.len(),
        target_list.len(),
        options.workers,
        options.clients,
        options.per_client,
        options.rounds,
    );

    let core_texts: Vec<String> = cores.iter().map(canonical_text).collect();
    let calibration_bodies: Vec<String> = core_texts
        .iter()
        .flat_map(|text| {
            target_list.iter().map(move |target| {
                request_body(text, &target.name, seed, config_name, "calibrate", None)
            })
        })
        .collect();

    let disk = std::env::temp_dir().join(format!("chassis-serve-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk);
    // Aggressive watchdog/breaker settings: the soak wants reclamation and
    // breaking to happen *within* the run, not on production timescales.
    let daemon = service::start(ServerConfig {
        workers: options.workers,
        disk_dir: Some(disk.clone()),
        watchdog_interval: Duration::from_millis(25),
        stuck_multiple: 2,
        stuck_after: Duration::from_secs(3),
        breaker_cooldown: Duration::from_millis(500),
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("error: cannot start the daemon: {e}");
        std::process::exit(1);
    });
    let addr = daemon.addr();

    // Phase 1: calibration. Serial, fault-free, deadline-free; the measured
    // compile cost makes every later bound machine-relative.
    let calibration_started = Instant::now();
    let calibration = all_200_sweep("calibration", addr, &calibration_bodies);
    let calibration_total = calibration_started.elapsed();
    let compile_p50 = percentile(&calibration, 0.50);
    let tight_ms = (ms(compile_p50) / 20.0).clamp(5.0, 100.0) as u64;
    let generous_ms = (ms(compile_p50) * 20.0).clamp(2_000.0, 10_000.0) as u64;
    println!(
        "calibration: {} requests in {:.1} ms (p50 {:.1} ms) — tight deadline {tight_ms} ms, \
         generous {generous_ms} ms",
        calibration_bodies.len(),
        ms(calibration_total),
        ms(compile_p50),
    );

    // Phase 2: overload rounds. Every request is a fresh compile (unique
    // seed) so the queue actually fills; resolution is bounded by the
    // calibration-derived wall clock plus watchdog slack.
    let n_round = options.clients * options.per_client;
    let round_bound = calibration_total
        .mul_f64(4.0 * (n_round as f64 / calibration_bodies.len().max(1) as f64).max(1.0))
        + Duration::from_millis(4 * generous_ms)
        + Duration::from_secs(30);
    let mut rounds: Vec<Round> = Vec::new();
    let mut untyped: Vec<String> = Vec::new();
    let mut starved: usize = 0;
    let mut total_fires = 0u64;
    for round in 0..options.rounds {
        let round_seed = seed ^ (0xB0B5_0000 + round as u64);
        let plan = FaultPlan::seeded_latency(
            round_seed,
            // Stalls only where the watchdog owns the thread: a stalled
            // connection thread has no reclaimer, a stalled worker does.
            &["store.read", "store.write", "session.compile"],
            &["session.compile"],
        )
        .arm(
            "service.accept",
            FaultAction::Delay(10 + round_seed % 40),
            round as u64 % 3,
        );
        let armed = fault::install(plan);
        let completed = Arc::new(AtomicUsize::new(0));
        let outcomes: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::with_capacity(n_round)));
        let round_started = Instant::now();
        let handles: Vec<_> = (0..options.clients)
            .map(|client_idx| {
                let completed = Arc::clone(&completed);
                let outcomes = Arc::clone(&outcomes);
                let core_texts = core_texts.clone();
                let target_names: Vec<String> =
                    target_list.iter().map(|t| t.name.clone()).collect();
                let per_client = options.per_client;
                std::thread::spawn(move || {
                    let mut jitter_seed = round_seed ^ (client_idx as u64).wrapping_mul(0x9E37);
                    let policy = RetryPolicy {
                        attempts: 3,
                        base: Duration::from_millis(50),
                        cap: Duration::from_millis(500),
                        seed: splitmix64(&mut jitter_seed),
                    };
                    let client_name = format!("soak-c{client_idx}");
                    for iter in 0..per_client {
                        let deadline = match (client_idx + iter) % 3 {
                            0 => DeadlineKind::Tight,
                            1 => DeadlineKind::Generous,
                            _ => DeadlineKind::None,
                        };
                        let deadline_ms = match deadline {
                            DeadlineKind::Tight => Some(tight_ms),
                            DeadlineKind::Generous => Some(generous_ms),
                            DeadlineKind::None => None,
                        };
                        let slot = client_idx * per_client + iter;
                        let body = request_body(
                            &core_texts[slot % core_texts.len()],
                            &target_names[slot % target_names.len()],
                            // A seed no other phase uses: every round request
                            // is a genuinely fresh compile.
                            0x50AC_0000 + round_seed.wrapping_mul(1000) + slot as u64,
                            "fast",
                            &client_name,
                            deadline_ms,
                        );
                        let outcome = match client::request_with_retry(
                            addr,
                            "POST",
                            "/compile",
                            Some(&body),
                            &policy,
                        ) {
                            Ok(response) => Outcome {
                                deadline,
                                status: response.status,
                                kind: classify(response.status, &response.body),
                            },
                            Err(e) => Outcome {
                                deadline,
                                status: 0,
                                kind: format!("untyped: transport failure ({e})"),
                            },
                        };
                        outcomes.lock().unwrap().push(outcome);
                        completed.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();

        // The wedge monitor: the round must fully resolve within the
        // machine-relative bound, or the daemon has leaked a worker, lost a
        // wakeup, or stuck a flight.
        while completed.load(Ordering::SeqCst) < n_round {
            if round_started.elapsed() > round_bound {
                eprintln!(
                    "error: round {round}: {}/{} requests resolved after {:.1} s — the daemon \
                     wedged (inflight {}, watchdog_fired {}, workers_replaced {})",
                    completed.load(Ordering::SeqCst),
                    n_round,
                    round_bound.as_secs_f64(),
                    stat(addr, "inflight"),
                    stat(addr, "watchdog_fired"),
                    stat(addr, "workers_replaced"),
                );
                std::process::exit(1);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        for handle in handles {
            let _ = handle.join();
        }
        let elapsed = round_started.elapsed();
        let fires = armed.fires();
        drop(armed);
        total_fires += fires;

        let mut tally: Vec<(String, usize)> = Vec::new();
        {
            let outcomes = outcomes.lock().unwrap();
            for outcome in outcomes.iter() {
                if outcome.kind.starts_with("untyped") {
                    untyped.push(format!(
                        "round {round}: status {}: {}",
                        outcome.status, outcome.kind
                    ));
                }
                // A deadline-free request may still lose its worker to a
                // one-shot stall (the watchdog's typed 5xx is the contract),
                // but a shed or expiry on it means deadline plumbing leaked
                // into traffic that never asked for a deadline.
                if outcome.deadline == DeadlineKind::None
                    && outcome.status != 200
                    && outcome.kind == "deadline"
                {
                    starved += 1;
                    untyped.push(format!(
                        "round {round}: a deadline-free request resolved as \"deadline\""
                    ));
                }
                match tally.iter_mut().find(|(kind, _)| *kind == outcome.kind) {
                    Some((_, n)) => *n += 1,
                    None => tally.push((outcome.kind.clone(), 1)),
                }
            }
        }
        tally.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let shown: Vec<String> = tally.iter().map(|(k, n)| format!("{k}:{n}")).collect();
        println!(
            "round {round}: {n_round} requests in {:>7.1} ms, {fires} fault(s) fired   {}",
            ms(elapsed),
            shown.join(" ")
        );

        // Phase 3: recovery. No faults armed, no deadlines: the calibration
        // set must come straight from cache, and in-flight must drain —
        // stalled workers were reclaimed, nothing wedged, nobody starved.
        drain_inflight(addr, Duration::from_secs(10));
        let label = format!("recovery after round {round}");
        all_200_sweep(&label, addr, &calibration_bodies);
        rounds.push(Round {
            seed: round_seed,
            elapsed,
            fires,
            tally,
        });
    }

    // Phase 4: the fast path after the storm. Warm hits must still be warm.
    let fast = all_200_sweep("fast path", addr, &calibration_bodies);
    let fast_p99 = percentile(&fast, 0.99);
    let snapshot: Vec<(&str, u64)> = [
        "compiles",
        "cancelled",
        "deadline_shed",
        "watchdog_fired",
        "breaker_rejected",
        "workers_replaced",
        "queue_rejected",
        "uptime_ms",
    ]
    .iter()
    .map(|field| (*field, stat(addr, field)))
    .collect();
    daemon.stop();
    let _ = std::fs::remove_dir_all(&disk);

    println!(
        "\nfast path p99 {:.2} ms (calibration p50 {:.1} ms)   daemon: {}",
        ms(fast_p99),
        ms(compile_p50),
        snapshot
            .iter()
            .map(|(field, n)| format!("{field}:{n}"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    let mut history = prior_history(&options.out);
    let round_ms_mean = if rounds.is_empty() {
        0.0
    } else {
        rounds.iter().map(|r| ms(r.elapsed)).sum::<f64>() / rounds.len() as f64
    };
    let lookup = |field: &str| {
        snapshot
            .iter()
            .find(|(f, _)| *f == field)
            .map_or(0, |(_, n)| *n)
    };
    history.push(format!(
        "{{\"schema_version\": 1, \"seed\": {seed}, \"requests\": {}, \
         \"round_ms_mean\": {round_ms_mean:.1}, \"fast_p99_ms\": {:.2}, \
         \"watchdog_fired\": {}, \"untyped\": {}}}",
        options.rounds * n_round,
        ms(fast_p99),
        lookup("watchdog_fired"),
        untyped.len(),
    ));

    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"benchmarks\": {},\n", cores.len()));
    let names: Vec<String> = TARGETS.iter().map(|t| format!("\"{t}\"")).collect();
    out.push_str(&format!("  \"targets\": [{}],\n", names.join(", ")));
    out.push_str(&format!(
        "  \"workers\": {}, \"clients\": {}, \"per_client\": {},\n",
        options.workers, options.clients, options.per_client
    ));
    out.push_str(&format!(
        "  \"calibration\": {{\"requests\": {}, \"total_ms\": {:.1}, \"p50_ms\": {:.2}}},\n",
        calibration_bodies.len(),
        ms(calibration_total),
        ms(compile_p50)
    ));
    out.push_str(&format!(
        "  \"deadlines_ms\": {{\"tight\": {tight_ms}, \"generous\": {generous_ms}}},\n"
    ));
    out.push_str("  \"rounds\": [\n");
    for (i, round) in rounds.iter().enumerate() {
        let comma = if i + 1 < rounds.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"seed\": {}, \"requests\": {n_round}, \"round_ms\": {:.1}, \
             \"fires\": {}, \"outcomes\": {}}}{comma}\n",
            round.seed,
            ms(round.elapsed),
            round.fires,
            tally_json(&round.tally)
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"fast_path\": {{\"p99_ms\": {:.2}, \"max_frac_of_compile_p50\": {}}},\n",
        ms(fast_p99),
        options.max_fast_p99_frac
    ));
    out.push_str("  \"daemon\": {");
    out.push_str(
        &snapshot
            .iter()
            .map(|(field, n)| format!("\"{field}\": {n}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    out.push_str("},\n");
    out.push_str("  \"history\": [\n");
    for (i, entry) in history.iter().enumerate() {
        let comma = if i + 1 < history.len() { "," } else { "" };
        out.push_str(&format!("    {entry}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&options.out, &out) {
        eprintln!("error: cannot write {}: {e}", options.out);
        std::process::exit(1);
    }
    println!("wrote {}", options.out);

    // Gates, correctness first.
    let mut ok = true;
    if !untyped.is_empty() {
        for line in &untyped {
            eprintln!("error: {line}");
        }
        eprintln!(
            "error: {} request(s) resolved without a typed answer ({starved} starvation)",
            untyped.len()
        );
        ok = false;
    }
    if total_fires == 0 {
        eprintln!("error: the soak never fired a fault — plans or sites are miswired");
        ok = false;
    }
    if options.max_fast_p99_frac > 0.0 {
        let floor = options.max_fast_p99_frac * compile_p50.as_secs_f64();
        if fast_p99.as_secs_f64() > floor {
            eprintln!(
                "error: post-soak warm p99 {:.2} ms exceeds {:.2} x calibration p50 ({:.2} ms)",
                ms(fast_p99),
                options.max_fast_p99_frac,
                floor * 1e3
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!("soak clean: every request resolved typed, the daemon recovered every round");
}
