//! Wall-clock comparison of the serial vs. parallel accuracy-evaluation path.
//!
//! Corpus-wide accuracy evaluation — `mean_bits_of_error` over every sampled
//! point of every benchmark — is the hot loop of the improve/Pareto search.
//! This binary prepares a fixed workload (one naive lowering plus a large
//! sample set per benchmark), evaluates it with the thread count pinned to 1,
//! then again with all cores, verifies the per-benchmark mean errors are
//! **bit-identical**, and reports the speedup.
//!
//! ```text
//! cargo run --release -p chassis-bench --bin par_speedup -- --limit 12 --min-speedup 2
//! ```
//!
//! On a multi-core machine the parallel sweep is expected to be >= 2x faster;
//! on a single core it reports ~1x (the parallel path degrades to one worker).
//!
//! `--min-speedup X` turns the report into a CI gate: exit 1 when the measured
//! speedup lands below the floor. The floor is machine-relative — it is capped
//! at 0.75 × the available cores, so requesting `--min-speedup 2` still gates
//! meaningfully on a dual-core runner (effective floor 1.5) and is skipped
//! entirely on one core, where no speedup is possible.

use chassis::accuracy::mean_bits_of_error;
use chassis::lower_fpcore;
use chassis::par;
use chassis::sample::{SampleSet, Sampler};
use chassis_bench::HarnessOptions;
use std::time::{Duration, Instant};
use targets::{builtin, FloatExpr, Target};

/// Points per benchmark: large enough that evaluation, not setup, dominates.
const POINTS: usize = 4_096;
/// Timed sweeps per configuration; the best is reported.
const SWEEPS: usize = 5;

struct Workload {
    name: &'static str,
    program: FloatExpr,
    samples: SampleSet,
}

fn prepare(target: &Target, options: &HarnessOptions) -> Vec<Workload> {
    let mut config = options.config();
    config.train_points = POINTS / 2;
    config.test_points = POINTS / 2;
    chassis_bench::run_corpus(&options.benchmarks(), |benchmark| {
        let core = benchmark.fpcore();
        let program = lower_fpcore(&core, target).ok()?;
        let samples = Sampler::new(config.seed)
            .sample(&core, config.train_points, config.test_points)
            .ok()?;
        Some(Workload {
            name: benchmark.name,
            program,
            samples,
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// One corpus-wide evaluation sweep: the mean error of every program on its
/// own train and test points.
fn sweep(target: &Target, workloads: &[Workload]) -> Vec<f64> {
    let mut errors = Vec::with_capacity(workloads.len() * 2);
    for w in workloads {
        let s = &w.samples;
        errors.push(mean_bits_of_error(
            target,
            &w.program,
            &s.vars,
            &s.train,
            &s.train_truth,
            s.output_type,
        ));
        errors.push(mean_bits_of_error(
            target,
            &w.program,
            &s.vars,
            &s.test,
            &s.test_truth,
            s.output_type,
        ));
    }
    errors
}

fn best_of(target: &Target, workloads: &[Workload]) -> (Duration, Vec<f64>) {
    let mut best = Duration::MAX;
    let mut errors = Vec::new();
    for _ in 0..SWEEPS {
        let start = Instant::now();
        let result = sweep(target, workloads);
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
        errors = result;
    }
    (best, errors)
}

/// Parses `--min-speedup X` (0 = no gate). [`HarnessOptions::from_args`]
/// ignores flags it does not know, so the two parsers compose.
fn min_speedup_from_args() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--min-speedup") {
        Some(i) => args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("bad or missing value for --min-speedup");
                std::process::exit(2);
            }),
        None => 0.0,
    }
}

fn main() {
    let options = HarnessOptions::from_args();
    let min_speedup = min_speedup_from_args();
    let target = builtin::by_name("c99").expect("c99 target");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    println!("Preparing workloads ({POINTS} points per benchmark)...");
    let workloads = prepare(&target, &options);
    let total_points: usize = workloads
        .iter()
        .map(|w| w.samples.train_len() + w.samples.test_len())
        .sum();
    println!(
        "{} benchmarks, {total_points} evaluation points total, {cores} core(s) available\n",
        workloads.len()
    );

    par::set_thread_count(1);
    let (serial_time, serial_errors) = best_of(&target, &workloads);
    par::set_thread_count(0); // all cores (or CHASSIS_THREADS)
    let workers = par::effective_threads(POINTS);
    let (parallel_time, parallel_errors) = best_of(&target, &workloads);

    let identical = serial_errors.len() == parallel_errors.len()
        && serial_errors
            .iter()
            .zip(&parallel_errors)
            .all(|(a, b)| a.to_bits() == b.to_bits());

    println!("{:<28} {:>14} {:>14}", "benchmark", "train err", "test err");
    for (w, errs) in workloads.iter().zip(parallel_errors.chunks(2)) {
        println!("{:<28} {:>14.3} {:>14.3}", w.name, errs[0], errs[1]);
    }
    println!(
        "\nserial   (1 thread):  {:>10.1} ms per corpus sweep",
        serial_time.as_secs_f64() * 1e3
    );
    println!(
        "parallel ({workers} workers): {:>10.1} ms per corpus sweep",
        parallel_time.as_secs_f64() * 1e3
    );
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-12);
    println!(
        "speedup: {speedup:.2}x   accuracy numbers bit-identical: {}",
        if identical { "yes" } else { "NO" }
    );
    if !identical {
        eprintln!("error: parallel evaluation changed the accuracy numbers");
        std::process::exit(1);
    }
    if cores == 1 {
        println!("(single-core machine: no speedup is expected here)");
        if min_speedup > 0.0 {
            println!("(--min-speedup gate skipped)");
        }
    } else if min_speedup > 0.0 {
        let floor = min_speedup.min(0.75 * cores as f64);
        if speedup < floor {
            eprintln!(
                "error: parallel speedup {speedup:.2}x below the floor {floor:.2}x \
                 (requested {min_speedup:.2}x, {cores} cores)"
            );
            std::process::exit(1);
        }
        println!("gate passed: {speedup:.2}x >= {floor:.2}x");
    }
}
