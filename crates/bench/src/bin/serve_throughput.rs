//! Daemon traffic replay: corpus compile requests against an in-process
//! `service` daemon, cold vs. warm vs. restarted-on-the-same-store — with a
//! response bit-identity check against direct [`chassis::Session::compile_many`].
//! This is the CI perf gate for the serving path (HTTP parsing, content
//! keying, the two-level result store, the worker pool), complementing
//! `search_throughput` (the search loop itself).
//!
//! Three sweeps replay the identical request set through one store:
//!
//! 1. `cold` — a fresh daemon on an empty store: every request pays a full
//!    compile (plus, per benchmark, one sampling + ground-truth pass shared
//!    across targets through the daemon's session cache);
//! 2. `warm` — the same daemon again: every request must be a memory hit;
//! 3. `disk` — the daemon restarted on the same store directory with an
//!    empty memory level: every request must be served from disk.
//!
//! Every response body (cold, warm, disk) must be byte-identical modulo the
//! `cache` tag, and the cold frontier must match a direct in-process
//! `compile_many` at the same seed bit for bit (`rendered` strings and the
//! `*_hex` bit patterns) — exit 1 otherwise.
//!
//! Latency percentiles (p50/p99), requests/sec, and the daemon's own cache
//! counters are archived in `BENCH_serve.json` (schema 1) with a `history`
//! array carrying prior runs forward.
//!
//! Gates (machine-relative by construction — both sides of each ratio are
//! measured in the same run on the same machine):
//!
//! * `--min-warm-speedup X` requires cold sweep wall-clock ≥ X × warm sweep
//!   wall-clock (the content-addressed cache must actually pay for itself);
//! * `--max-warm-p99-frac F` requires warm p99 ≤ F × cold p50 (no warm
//!   request may cost a meaningful fraction of a compile).
//!
//! ```text
//! cargo run --release -p chassis-bench --bin serve_throughput -- \
//!     --limit 6 --min-warm-speedup 10 --max-warm-p99-frac 0.5 --out BENCH_serve.json
//! ```

use chassis_bench::{corpus_cores, resolve_targets, HarnessOptions, ResultGrid};
use fpcore::hash::canonical_text;
use fpcore::FPCore;
use service::{client, Json, ServerConfig};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use targets::Target;

/// Same pair as `search_throughput`: one all-emulated, one partly native.
const TARGETS: &[&str] = &["c99", "arith-fma"];

struct Options {
    limit: usize,
    seed: Option<u64>,
    thorough: bool,
    workers: usize,
    min_warm_speedup: f64,
    max_warm_p99_frac: f64,
    out: String,
}

impl Options {
    /// Strict parsing: this binary is a CI gate, so an unknown flag or an
    /// unparsable value aborts (exit 2) instead of silently falling back to
    /// a default that could leave the gate disabled.
    fn from_args() -> Options {
        let mut options = Options {
            limit: 6,
            seed: None,
            thorough: false,
            workers: 2,
            min_warm_speedup: 0.0,
            max_warm_p99_frac: 0.0,
            out: "BENCH_serve.json".to_owned(),
        };
        let usage = "usage: serve_throughput [--limit N] [--full] [--seed N] \
                     [--thorough] [--workers N] [--min-warm-speedup X] \
                     [--max-warm-p99-frac F] [--out PATH]";
        fn value<T: std::str::FromStr>(args: &[String], i: usize, usage: &str) -> T {
            args.get(i + 1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("bad or missing value for {}\n{usage}", args[i]);
                    std::process::exit(2);
                })
        }
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--limit" => {
                    options.limit = value(&args, i, usage);
                    i += 2;
                }
                "--full" => {
                    options.limit = usize::MAX;
                    i += 1;
                }
                "--seed" => {
                    options.seed = Some(value(&args, i, usage));
                    i += 2;
                }
                "--thorough" => {
                    options.thorough = true;
                    i += 1;
                }
                "--workers" => {
                    options.workers = value(&args, i, usage);
                    i += 2;
                }
                "--min-warm-speedup" => {
                    options.min_warm_speedup = value(&args, i, usage);
                    i += 2;
                }
                "--max-warm-p99-frac" => {
                    options.max_warm_p99_frac = value(&args, i, usage);
                    i += 2;
                }
                "--out" => {
                    options.out = args.get(i + 1).cloned().unwrap_or_else(|| {
                        eprintln!("missing value for --out\n{usage}");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                other => {
                    eprintln!("unknown option {other:?}\n{usage}");
                    std::process::exit(2);
                }
            }
        }
        options
    }

    fn harness(&self) -> HarnessOptions {
        HarnessOptions {
            limit: self.limit,
            fast: !self.thorough,
            seed: self.seed,
        }
    }

    /// The wire-protocol config name matching [`Options::harness`].
    fn config_name(&self) -> &'static str {
        if self.thorough {
            "default"
        } else {
            "fast"
        }
    }
}

/// One replayed request: the serialized body and, for reporting, its cell.
struct Replay {
    body: String,
    benchmark: usize,
    target: usize,
}

/// Aggregated outcome of one sweep over the request set.
struct Sweep {
    label: &'static str,
    total: Duration,
    latencies: Vec<Duration>,
    /// Response documents in request order.
    responses: Vec<Json>,
    /// The `cache` tag distribution, e.g. `miss` → 12.
    tags: Vec<(String, usize)>,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

impl Sweep {
    fn p50(&self) -> Duration {
        percentile(&self.latencies, 0.50)
    }

    fn p99(&self) -> Duration {
        percentile(&self.latencies, 0.99)
    }

    fn rps(&self) -> f64 {
        self.responses.len() as f64 / self.total.as_secs_f64().max(1e-9)
    }
}

/// Replays every request serially against the daemon, collecting per-request
/// latency and the parsed response. A non-200 response is fatal: the corpus
/// request set is known-compilable, so any failure is a serving bug.
fn run_sweep(label: &'static str, addr: SocketAddr, requests: &[Replay]) -> Sweep {
    let mut latencies = Vec::with_capacity(requests.len());
    let mut responses = Vec::with_capacity(requests.len());
    let mut tags: Vec<(String, usize)> = Vec::new();
    let started = Instant::now();
    for request in requests {
        let sent = Instant::now();
        let response = client::post_json(addr, "/compile", &request.body).unwrap_or_else(|e| {
            eprintln!("error: {label}: request failed: {e}");
            std::process::exit(1);
        });
        latencies.push(sent.elapsed());
        if response.status != 200 {
            eprintln!(
                "error: {label}: benchmark {}, target {}: status {} ({})",
                request.benchmark, request.target, response.status, response.body
            );
            std::process::exit(1);
        }
        let doc = Json::parse(&response.body).unwrap_or_else(|e| {
            eprintln!("error: {label}: non-JSON response body: {e}");
            std::process::exit(1);
        });
        let tag = doc
            .get("cache")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned();
        match tags.iter_mut().find(|(t, _)| *t == tag) {
            Some((_, n)) => *n += 1,
            None => tags.push((tag, 1)),
        }
        responses.push(doc);
    }
    let total = started.elapsed();
    let mut sorted = latencies.clone();
    sorted.sort();
    Sweep {
        label,
        total,
        latencies: sorted,
        responses,
        tags,
    }
}

/// Every response in `sweep` must equal its counterpart in `reference`
/// field-for-field except the `cache` tag (the stored body is tag-free, so
/// however a result is served its bytes must agree).
fn responses_identical(reference: &Sweep, sweep: &Sweep) -> bool {
    let strip = |doc: &Json| -> Vec<(String, String)> {
        let Json::Obj(members) = doc else {
            return Vec::new();
        };
        members
            .iter()
            .filter(|(k, _)| k != "cache")
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect()
    };
    let mut ok = true;
    for (i, (a, b)) in reference.responses.iter().zip(&sweep.responses).enumerate() {
        if strip(a) != strip(b) {
            eprintln!(
                "error: request {i}: {} and {} responses differ beyond the cache tag",
                reference.label, sweep.label
            );
            ok = false;
        }
    }
    ok
}

/// The daemon's cold responses must carry the exact frontier a direct
/// in-process corpus compile produces at the same seed: same rendered
/// programs, same cost/error/accuracy bits (compared through the `*_hex`
/// fields — the decimal JSON numbers are lossy by design).
fn daemon_matches_direct(requests: &[Replay], cold: &Sweep, grid: &ResultGrid) -> bool {
    let hex = |doc: &Json, field: &str| -> String {
        doc.get(field)
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_owned()
    };
    let mut ok = true;
    for (request, doc) in requests.iter().zip(&cold.responses) {
        let cell = format!("benchmark {}, target {}", request.benchmark, request.target);
        let Ok(direct) = &grid[request.benchmark][request.target] else {
            eprintln!("error: {cell}: direct compile failed where the daemon succeeded");
            ok = false;
            continue;
        };
        let served = doc
            .get("implementations")
            .and_then(Json::as_arr)
            .unwrap_or(&[]);
        if served.len() != direct.implementations.len() {
            eprintln!(
                "error: {cell}: daemon frontier has {} points, direct has {}",
                served.len(),
                direct.implementations.len()
            );
            ok = false;
            continue;
        }
        for (i, (s, d)) in served.iter().zip(&direct.implementations).enumerate() {
            let rendered = s.get("rendered").and_then(Json::as_str).unwrap_or_default();
            if rendered != d.rendered
                || hex(s, "cost_hex") != service::json::hex_bits(d.cost)
                || hex(s, "error_bits_hex") != service::json::hex_bits(d.error_bits)
                || hex(s, "accuracy_bits_hex") != service::json::hex_bits(d.accuracy_bits)
            {
                eprintln!("error: {cell}: frontier point {i} differs from the direct compile");
                ok = false;
            }
        }
        if let Some(initial) = doc.get("initial") {
            if initial
                .get("rendered")
                .and_then(Json::as_str)
                .unwrap_or_default()
                != direct.initial.rendered
            {
                eprintln!("error: {cell}: initial program differs from the direct compile");
                ok = false;
            }
        }
    }
    ok
}

fn stat(addr: SocketAddr, field: &str) -> u64 {
    let response = client::get(addr, "/stats").unwrap_or_else(|e| {
        eprintln!("error: /stats failed: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&response.body).unwrap_or_else(|e| {
        eprintln!("error: /stats is not JSON: {e}");
        std::process::exit(1);
    });
    doc.get(field).and_then(Json::as_u64).unwrap_or_else(|| {
        eprintln!("error: /stats missing {field}: {}", response.body);
        std::process::exit(1);
    })
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn sweep_json(s: &Sweep) -> String {
    format!(
        "{{\"total_ms\": {:.1}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \"rps\": {:.1}}}",
        ms(s.total),
        ms(s.p50()),
        ms(s.p99()),
        s.rps()
    )
}

/// Prior history entries carried forward from an existing out file.
fn prior_history(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Some(start) = text.find("\"history\": [") else {
        return Vec::new();
    };
    let rest = &text[start + "\"history\": [".len()..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end]
        .lines()
        .map(|line| line.trim().trim_end_matches(',').to_owned())
        .filter(|line| line.starts_with('{'))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    seed: u64,
    n_benchmarks: usize,
    n_requests: usize,
    workers: usize,
    sweeps: &[&Sweep],
    warm_speedup: f64,
    disk_speedup: f64,
    history: &[String],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"benchmarks\": {n_benchmarks},\n"));
    let names: Vec<String> = TARGETS.iter().map(|t| format!("\"{t}\"")).collect();
    out.push_str(&format!("  \"targets\": [{}],\n", names.join(", ")));
    out.push_str(&format!("  \"requests\": {n_requests},\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str("  \"sweeps\": {\n");
    for (i, sweep) in sweeps.iter().enumerate() {
        let comma = if i + 1 < sweeps.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {}{comma}\n",
            sweep.label,
            sweep_json(sweep)
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"warm_speedup\": {warm_speedup:.2},\n  \"disk_speedup\": {disk_speedup:.2},\n"
    ));
    out.push_str("  \"history\": [\n");
    for (i, entry) in history.iter().enumerate() {
        let comma = if i + 1 < history.len() { "," } else { "" };
        out.push_str(&format!("    {entry}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

/// A scratch store directory under the system temp dir, fresh per run.
fn scratch_store() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chassis-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_daemon(options: &Options, disk: &Path) -> service::Handle {
    service::start(ServerConfig {
        workers: options.workers,
        disk_dir: Some(disk.to_path_buf()),
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("error: cannot start the daemon: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let options = Options::from_args();
    let harness = options.harness();
    let benchmarks = harness.benchmarks();
    let cores: Vec<FPCore> = corpus_cores(&benchmarks);
    let target_list: Vec<Target> = resolve_targets(TARGETS);
    let config = harness.config();
    let seed = config.seed;
    println!(
        "{} benchmarks x {} targets, seed {seed}, {} workers, config {:?}\n",
        cores.len(),
        target_list.len(),
        options.workers,
        options.config_name()
    );

    // The reference: the same grid compiled directly, no daemon involved.
    let direct_started = Instant::now();
    let grid = chassis::Session::new(config).compile_many(&cores, &target_list);
    let direct = direct_started.elapsed();

    // The request set: every (benchmark, target) cell the corpus can
    // actually implement, in corpus order, as the daemon's wire protocol
    // spells it. Cells the direct compile rejects (e.g. an operator the
    // target lacks) are excluded from the replay — the daemon's typed-error
    // answers for those are covered by `tests/service.rs` — and counted
    // below so the narrowing is visible.
    let mut skipped = 0usize;
    let requests: Vec<Replay> = cores
        .iter()
        .enumerate()
        .flat_map(|(b, core)| {
            let text = canonical_text(core);
            let config_name = options.config_name();
            target_list
                .iter()
                .enumerate()
                .map(move |(t, target)| Replay {
                    body: Json::Obj(vec![
                        ("fpcore".to_owned(), Json::Str(text.clone())),
                        ("target".to_owned(), Json::Str(target.name.clone())),
                        ("seed".to_owned(), Json::from_u64(seed)),
                        ("config".to_owned(), Json::Str(config_name.to_owned())),
                    ])
                    .to_string(),
                    benchmark: b,
                    target: t,
                })
        })
        .filter(|r| {
            let ok = grid[r.benchmark][r.target].is_ok();
            if !ok {
                skipped += 1;
            }
            ok
        })
        .collect();
    if requests.is_empty() {
        eprintln!("error: no corpus cell compiles on any target");
        std::process::exit(1);
    }
    if skipped > 0 {
        println!("({skipped} uncompilable cell(s) excluded from the replay)");
    }

    let disk = scratch_store();
    let daemon = start_daemon(&options, &disk);
    let addr = daemon.addr();
    let cold = run_sweep("cold", addr, &requests);
    let warm = run_sweep("warm", addr, &requests);
    let hits_memory = stat(addr, "hits_memory");
    let compiles = stat(addr, "compiles");
    daemon.stop();

    // Restart on the same store: the memory level is empty, the disk level
    // must answer everything.
    let daemon = start_daemon(&options, &disk);
    let addr = daemon.addr();
    let disk_sweep = run_sweep("disk", addr, &requests);
    let hits_disk = stat(addr, "hits_disk");
    daemon.stop();
    let _ = std::fs::remove_dir_all(&disk);

    let sweeps = [&cold, &warm, &disk_sweep];
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}   cache tags",
        "sweep", "total ms", "p50 ms", "p99 ms", "req/s"
    );
    for s in sweeps {
        let tags: Vec<String> = s.tags.iter().map(|(t, n)| format!("{t}:{n}")).collect();
        println!(
            "{:<6} {:>10.1} {:>10.2} {:>10.2} {:>10.1}   {}",
            s.label,
            ms(s.total),
            ms(s.p50()),
            ms(s.p99()),
            s.rps(),
            tags.join(" ")
        );
    }
    println!(
        "direct compile_many: {:.1} ms (daemon cold overhead {:.2}x)",
        ms(direct),
        cold.total.as_secs_f64() / direct.as_secs_f64().max(1e-9)
    );

    // Correctness before performance: byte-identical bodies across sweeps,
    // bit-identical frontiers against the direct compile, and the cache
    // levels behaving as designed.
    let mut ok = responses_identical(&cold, &warm);
    ok &= responses_identical(&cold, &disk_sweep);
    ok &= daemon_matches_direct(&requests, &cold, &grid);
    let n = requests.len() as u64;
    if compiles != n {
        eprintln!("error: cold sweep compiled {compiles} jobs, expected {n}");
        ok = false;
    }
    if hits_memory < n {
        eprintln!("error: warm sweep took {hits_memory} memory hits, expected {n}");
        ok = false;
    }
    if hits_disk < n {
        eprintln!("error: restarted sweep took {hits_disk} disk hits, expected {n}");
        ok = false;
    }

    let warm_speedup = cold.total.as_secs_f64() / warm.total.as_secs_f64().max(1e-9);
    let disk_speedup = cold.total.as_secs_f64() / disk_sweep.total.as_secs_f64().max(1e-9);
    println!(
        "\nwarm speedup: {warm_speedup:.1}x   disk speedup: {disk_speedup:.1}x   \
         responses bit-identical: {}",
        if ok { "yes" } else { "NO" }
    );

    let mut history = prior_history(&options.out);
    history.push(format!(
        "{{\"schema_version\": 1, \"seed\": {seed}, \"requests\": {}, \
         \"cold_ms\": {:.1}, \"warm_ms\": {:.1}, \"disk_ms\": {:.1}, \
         \"warm_p99_ms\": {:.2}, \"warm_speedup\": {warm_speedup:.2}, \
         \"disk_speedup\": {disk_speedup:.2}}}",
        requests.len(),
        ms(cold.total),
        ms(warm.total),
        ms(disk_sweep.total),
        ms(warm.p99()),
    ));
    let json = to_json(
        seed,
        cores.len(),
        requests.len(),
        options.workers,
        &sweeps,
        warm_speedup,
        disk_speedup,
        &history,
    );
    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("error: cannot write {}: {e}", options.out);
        std::process::exit(1);
    }
    println!("wrote {}", options.out);

    if !ok {
        eprintln!("error: the daemon served wrong or inconsistent results");
        std::process::exit(1);
    }
    if options.min_warm_speedup > 0.0 && warm_speedup < options.min_warm_speedup {
        eprintln!(
            "error: warm speedup {warm_speedup:.2}x below the floor {:.2}x",
            options.min_warm_speedup
        );
        std::process::exit(1);
    }
    if options.max_warm_p99_frac > 0.0 {
        let floor = options.max_warm_p99_frac * cold.p50().as_secs_f64();
        if warm.p99().as_secs_f64() > floor {
            eprintln!(
                "error: warm p99 {:.2} ms exceeds {:.2} x cold p50 ({:.2} ms)",
                ms(warm.p99()),
                options.max_warm_p99_frac,
                floor * 1e3
            );
            std::process::exit(1);
        }
    }
}
