//! Regenerates Figure 10: correlation between Chassis' estimated cost and the
//! measured run time of its output programs.
//!
//! Every implementation Chassis produces is executed by the target interpreter
//! over the benchmark's test points and timed; the estimated cost is the target
//! cost model's value. The paper reports a moderate-to-strong positive
//! correlation.
//!
//! ```text
//! cargo run --release -p chassis-bench --bin fig10_costmodel -- --limit 6 [--seed N]
//! ```

use chassis_bench::{pearson_correlation, run_chassis_full, run_corpus, HarnessOptions};
use targets::{builtin, measure_runtime};

fn main() {
    let options = HarnessOptions::from_args();
    let benchmarks = options.benchmarks();
    // One session across all four targets: each benchmark is sampled and
    // ground-truthed once, on its first target.
    let session = options.session();
    // A spread of targets with different cost profiles.
    let target_names = ["c99", "avx", "julia", "vdt"];
    println!(
        "Figure 10: estimated cost vs measured run time ({} benchmarks x {} targets, seed {})",
        benchmarks.len(),
        target_names.len(),
        session.seed()
    );
    println!(
        "{:<28} {:<8} {:>14} {:>16}",
        "benchmark", "target", "est. cost", "measured (ns)"
    );

    let mut costs = Vec::new();
    let mut times = Vec::new();
    for name in target_names {
        let target = builtin::by_name(name).expect("builtin target");
        // Compilation is parallel across benchmarks; the run-time measurements
        // below stay serial so worker threads cannot distort the timings.
        let compiled = run_corpus(&benchmarks, |benchmark| {
            run_chassis_full(&session, &target, &benchmark.fpcore())
                .map(|result| (benchmark.name, result))
        });
        for (bench_name, result) in compiled.into_iter().flatten() {
            for implementation in &result.implementations {
                let elapsed = measure_runtime(
                    &target,
                    &implementation.expr,
                    &result.samples.vars,
                    &result.samples.test,
                    3,
                );
                let nanos = elapsed.as_nanos() as f64 / result.samples.test.len().max(1) as f64;
                costs.push(implementation.cost);
                times.push(nanos);
                println!(
                    "{:<28} {:<8} {:>14.1} {:>16.1}",
                    bench_name, name, implementation.cost, nanos
                );
            }
        }
    }
    let r = pearson_correlation(&costs, &times);
    // Correlation of the logs is closer to how the paper's scatter plot reads
    // (both axes span orders of magnitude).
    let log_costs: Vec<f64> = costs.iter().map(|c| c.max(1e-9).ln()).collect();
    let log_times: Vec<f64> = times.iter().map(|t| t.max(1e-9).ln()).collect();
    let r_log = pearson_correlation(&log_costs, &log_times);
    println!(
        "\n{} implementations; Pearson r = {:.3} (linear), {:.3} (log-log)",
        costs.len(),
        r,
        r_log
    );
    println!(
        "(prepared {} benchmarks once for {} target sweeps)",
        session.prepare_count(),
        target_names.len()
    );
}
