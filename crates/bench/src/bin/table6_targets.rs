//! Regenerates Figure 6: the table of target descriptions.
//!
//! ```text
//! cargo run -p chassis-bench --bin table6_targets
//! ```

use targets::builtin;
use targets::IfCostStyle;

fn main() {
    println!("Figure 6: target descriptions implemented for Chassis");
    println!(
        "{:<10} {:>9} {:>8} {:>8} {:>5} {:>5}  Costs",
        "Target", "Operators", "Linked", "Emulated", "L/E", "S/V"
    );
    for target in builtin::all_targets() {
        let (linked, emulated) = target.linked_emulated_counts();
        let le = if linked > 0 { "L" } else { "E" };
        let sv = match target.if_cost_style {
            IfCostStyle::Scalar => "S",
            IfCostStyle::Vector => "V",
        };
        println!(
            "{:<10} {:>9} {:>8} {:>8} {:>5} {:>5}  {}",
            target.name,
            target.operators.len(),
            linked,
            emulated,
            le,
            sv,
            target.cost_source
        );
    }
    println!();
    println!("Details:");
    for target in builtin::all_targets() {
        println!("  {target}");
        println!("    {}", target.description);
    }
}
