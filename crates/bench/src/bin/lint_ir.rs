//! `lint_ir` — the corpus-wide IR lint gate.
//!
//! Exercises the `targets::analysis` verifier over every (benchmark ×
//! builtin target) pair that lowers, plus a per-target sweep of every native
//! operator, and exits nonzero on **any** diagnostic:
//!
//! 1. every builtin target description must verify
//!    ([`analysis::verify_target`]);
//! 2. every compiled program must verify in SSA mode (with the
//!    target-pairing rules), and its optimized form (dead-code elimination +
//!    register compaction) must verify in executable mode;
//! 3. every seeded invariant-breaking mutant of every compiled program must
//!    be *rejected* by the verifier — one surviving mutant is a verifier
//!    hole — and every [`MutationKind`] must fire somewhere in the suite;
//! 4. as a by-product, prints aggregate optimization and interval-analysis
//!    statistics (instructions removed, slab height saved, provably-uniform
//!    selects, provably special-case-free transcendental calls with domains
//!    taken from each benchmark's precondition).
//!
//! The suite is the benchmark corpus, a few branch-heavy synthetic cases
//! (the corpus is straight-line, so selects and skip ranges would otherwise
//! go unexercised), and one single-call program per native operator of every
//! target (which exercises the sweep/scalar pairing rules and the plain-call
//! instruction form that direct lowering never emits).
//!
//! Usage: `lint_ir [--seed N]` (the seed only scatters mutation sites; any
//! seed must produce only rejected mutants, so CI failures reproduce locally
//! with the seed printed in the report).
//!
//! Run in release: the per-compile debug verify hook would turn corpus
//! violations into panics instead of collected diagnostics.

use chassis::lower_fpcore;
use fpcore::Symbol;
use std::collections::HashSet;
use targets::analysis::{self, domains_from_pre, Mode, MutationKind};
use targets::{builtin, FloatExpr, OpId, Program, Target};

/// Branch-heavy synthetic cases that complement the corpus: the corpus
/// benchmarks are straight-line (their preconditions carry the branching),
/// so selects and skip ranges — and the mutation kinds that target them —
/// would otherwise go unexercised by the lint.
const SYNTHETIC: &[(&str, &str)] = &[
    (
        "branchy-exp",
        "(FPCore (x) :pre (and (> x -10) (< x 10)) (if (< x 0) (exp x) (* x x)))",
    ),
    (
        "nested-branches",
        "(FPCore (x y) (if (< x y) (if (< x 0) (- y x) (+ x y)) (sqrt (- x y))))",
    ),
    (
        "guarded-log",
        "(FPCore (x) :pre (> x 1e-6) (if (< x 1) (log1p x) (log x)))",
    ),
    (
        "pow-or-hypot",
        "(FPCore (x y) (if (> x 0) (pow x y) (hypot x y)))",
    ),
];

#[derive(Default)]
struct Lint {
    seed: u64,
    diagnostics: usize,
    cases: usize,
    instrs_before: usize,
    instrs_after: usize,
    regs_before: usize,
    regs_after: usize,
    uniform_selects: usize,
    safe_calls: usize,
    total_selects: usize,
    mutants_total: usize,
    mutants_killed: usize,
    kinds_killed: HashSet<MutationKind>,
}

impl Lint {
    fn report(&mut self, context: &str, violations: &[analysis::Violation]) {
        if !violations.is_empty() {
            self.diagnostics += violations.len();
            eprintln!("FAIL {context}:");
            for v in violations {
                eprintln!("  {v}");
            }
        }
    }

    /// Verifies one compiled program in both modes, accumulates optimization
    /// and interval statistics, and runs the mutation kill-check on it.
    fn check_program(
        &mut self,
        case: &str,
        target: &Target,
        program: &Program,
        domains: &[(Symbol, (f64, f64))],
    ) {
        self.cases += 1;
        self.report(
            &format!("{case} (fresh compile, SSA mode)"),
            &analysis::verify_with_target(program, target, Mode::Ssa),
        );
        let (optimized, stats) = analysis::optimize(program);
        self.report(
            &format!("{case} (optimized, executable mode)"),
            &analysis::verify_with_target(&optimized, target, Mode::Executable),
        );
        self.instrs_before += stats.instrs_before;
        self.instrs_after += stats.instrs_after;
        self.regs_before += stats.regs_before;
        self.regs_after += stats.regs_after;

        let ia = analysis::interval_analysis(program, Some(target), domains);
        self.uniform_selects += ia.uniform_selects.len();
        self.safe_calls += ia.safe_calls.len();
        self.total_selects += program.num_skippable_arms();

        // The mutation kill-check: every invariant-breaking mutant must be
        // rejected. The per-case seed is derived so failures name it.
        let case_seed = self
            .seed
            .wrapping_add((self.cases as u64).wrapping_mul(0x9e3779b97f4a7c15));
        for mutant in analysis::seeded_mutants(program, case_seed) {
            self.mutants_total += 1;
            if analysis::verify(&mutant.program, Mode::Ssa).is_empty() {
                self.diagnostics += 1;
                eprintln!(
                    "FAIL {case}: mutant {:?} survived verification (seed {case_seed}: {})",
                    mutant.kind, mutant.description
                );
            } else {
                self.mutants_killed += 1;
                self.kinds_killed.insert(mutant.kind);
            }
        }
    }
}

fn main() {
    let mut lint = Lint {
        seed: 0x1a2b3c4d5e6f7788,
        ..Lint::default()
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let value = it.next().unwrap_or_else(|| {
                    eprintln!("lint_ir: --seed needs a value");
                    std::process::exit(2);
                });
                lint.seed = value.parse().unwrap_or_else(|_| {
                    eprintln!("lint_ir: bad seed {value:?}");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("lint_ir: unknown argument {other:?} (usage: lint_ir [--seed N])");
                std::process::exit(2);
            }
        }
    }

    let targets = builtin::all_targets();
    for target in &targets {
        let violations = analysis::verify_target(target);
        lint.report(&format!("target description {}", target.name), &violations);
    }

    let mut suite: Vec<(String, fpcore::FPCore)> = chassis_bench::named_corpus_cores();
    for (name, source) in SYNTHETIC {
        // A broken synthetic case is a diagnostic like any other lint
        // failure: report it and keep linting the rest of the suite.
        match fpcore::parse_fpcore(source) {
            Ok(core) => suite.push((format!("synthetic:{name}"), core)),
            Err(e) => {
                eprintln!("FAIL synthetic case {name} does not parse: {e}");
                lint.diagnostics += 1;
            }
        }
    }

    for target in &targets {
        for (name, core) in &suite {
            // Benchmarks using operators the target lacks are skipped, like
            // everywhere else in the harness.
            let Ok(expr) = lower_fpcore(core, target) else {
                continue;
            };
            let case = format!("{name} on {}", target.name);
            let program = targets::compile(target, &expr);
            let domains = domains_from_pre(core.pre.as_ref());
            lint.check_program(&case, target, &program, &domains);
        }

        // One single-call program per native operator: exercises the
        // sweep/scalar pairing rules and the plain-call instruction form,
        // which direct lowering of the corpus never emits (those operators
        // are only reachable through instruction selection).
        for (index, op) in target.operators.iter().enumerate() {
            if !op.is_linked() {
                continue;
            }
            let args: Vec<FloatExpr> = op
                .arg_types
                .iter()
                .enumerate()
                .map(|(i, &ty)| FloatExpr::Var(Symbol::new(&format!("v{i}")), ty))
                .collect();
            let expr = FloatExpr::Op(OpId(index as u32), args);
            let case = format!("operator {} on {}", op.name, target.name);
            let program = targets::compile(target, &expr);
            lint.check_program(&case, target, &program, &[]);
        }
    }

    for kind in MutationKind::ALL {
        if !lint.kinds_killed.contains(kind) {
            eprintln!("FAIL mutation kind {kind:?} never applied to any suite program");
            lint.diagnostics += 1;
        }
    }

    println!(
        "lint_ir: {} programs verified over {} targets, seed {:#x}",
        lint.cases,
        targets.len(),
        lint.seed
    );
    println!(
        "  optimize: {} -> {} instrs (DCE), {} -> {} register-slab rows (compaction)",
        lint.instrs_before, lint.instrs_after, lint.regs_before, lint.regs_after
    );
    println!(
        "  interval: {} provably-uniform selects, {} special-case-free transcendental calls \
         ({} skippable arms total)",
        lint.uniform_selects, lint.safe_calls, lint.total_selects
    );
    println!(
        "  mutation: {}/{} mutants rejected, {}/{} kinds exercised",
        lint.mutants_killed,
        lint.mutants_total,
        lint.kinds_killed.len(),
        MutationKind::ALL.len()
    );
    if lint.diagnostics > 0 {
        eprintln!("lint_ir: {} diagnostics", lint.diagnostics);
        std::process::exit(1);
    }
    println!("lint_ir: clean");
}
