//! Regenerates Figure 8: Chassis vs. Herbie across all nine targets.
//!
//! For each target, Chassis' target-specific Pareto frontier is compared against
//! the Herbie-style baseline's target-agnostic output transcribed onto that
//! target (Section 6.3). The aggregate curves use the same construction as
//! Figure 7: geometric-mean speedup over the initial programs vs. summed
//! accuracy.
//!
//! ```text
//! cargo run --release -p chassis-bench --bin fig8_herbie -- --limit 5
//! ```

use chassis_bench::{joint_curve, run_chassis, run_corpus, run_herbie_transcribed, HarnessOptions};
use targets::builtin;

fn main() {
    let options = HarnessOptions::from_args();
    let config = options.config();
    let benchmarks = options.benchmarks();
    println!(
        "Figure 8: Chassis vs Herbie on 9 targets ({} benchmarks each)",
        benchmarks.len()
    );

    for target in builtin::all_targets() {
        let mut chassis_outcomes = Vec::new();
        let mut herbie_outcomes = Vec::new();
        // Both compilers run on every benchmark in parallel across benchmarks.
        let pairs = run_corpus(&benchmarks, |benchmark| {
            (
                run_chassis(&target, benchmark, &config),
                run_herbie_transcribed(&target, benchmark, &config),
            )
        });
        for (chassis_outcome, herbie_outcome) in pairs {
            // As in the paper, a benchmark is dropped from the comparison (for
            // both systems) when Herbie's output cannot be expressed on the
            // target at all.
            if let (Some(c), Some(h)) = (chassis_outcome, herbie_outcome) {
                chassis_outcomes.push(c);
                herbie_outcomes.push(h);
            }
        }
        println!(
            "\n=== target {} ({} comparable benchmarks) ===",
            target.name,
            chassis_outcomes.len()
        );
        if chassis_outcomes.is_empty() {
            println!("  (no comparable benchmarks at this limit)");
            continue;
        }
        let chassis_curve = joint_curve(&chassis_outcomes, 6);
        let herbie_curve = joint_curve(&herbie_outcomes, 6);
        println!(
            "  {:<8} {:>14} {:>16}   {:>14} {:>16}",
            "point", "chassis spd", "chassis acc", "herbie spd", "herbie acc"
        );
        for (i, (c, h)) in chassis_curve.iter().zip(&herbie_curve).enumerate() {
            println!(
                "  {:<8} {:>14.2} {:>16.1}   {:>14.2} {:>16.1}",
                i, c.speedup, c.total_accuracy, h.speedup, h.total_accuracy
            );
        }
        // Headline per target: Chassis speedup over Herbie at Herbie's own most
        // accurate point.
        let herbie_best_acc = herbie_curve.last().map(|p| p.total_accuracy).unwrap_or(0.0);
        let herbie_best_speed = herbie_curve.last().map(|p| p.speedup).unwrap_or(1.0);
        let chassis_at = chassis_curve
            .iter()
            .filter(|p| p.total_accuracy >= herbie_best_acc * 0.98)
            .map(|p| p.speedup)
            .fold(f64::NAN, f64::max);
        let chassis_fastest = chassis_curve
            .iter()
            .map(|p| p.speedup)
            .fold(f64::NAN, f64::max);
        println!(
            "  summary: herbie best ({:.2}x, {:.1} bits); chassis at matched accuracy {:.2}x; chassis fastest {:.2}x",
            herbie_best_speed, herbie_best_acc, chassis_at, chassis_fastest
        );
    }
}
