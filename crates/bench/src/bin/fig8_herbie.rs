//! Regenerates Figure 8: Chassis vs. Herbie across all nine targets.
//!
//! For each target, Chassis' target-specific Pareto frontier is compared against
//! the Herbie-style baseline's target-agnostic output transcribed onto that
//! target (Section 6.3). The aggregate curves use the same construction as
//! Figure 7: geometric-mean speedup over the initial programs vs. summed
//! accuracy.
//!
//! This is the canonical session workload: every benchmark is **prepared
//! once** — sampling and Rival ground truth — and the prepared state is shared
//! by all nine target compilations (the pre-session harness re-sampled every
//! benchmark 9×, and ran the target-agnostic Herbie baseline 9×, once per
//! target). The preparation statistics are printed at the end.
//!
//! ```text
//! cargo run --release -p chassis-bench --bin fig8_herbie -- --limit 5 [--seed N]
//! ```

use chassis_bench::{
    herbie_transcribed_outcome, joint_curve, prepare_corpus, run_prepared_corpus, BenchmarkOutcome,
    HarnessOptions,
};
use std::time::Instant;
use targets::builtin;

fn main() {
    let options = HarnessOptions::from_args();
    let benchmarks = options.benchmarks();
    let session = options.session();
    println!(
        "Figure 8: Chassis vs Herbie on 9 targets ({} benchmarks each, seed {})",
        benchmarks.len(),
        session.seed()
    );

    // Target-independent phase: sample + ground-truth each benchmark once, and
    // run the target-agnostic Herbie baseline once per benchmark.
    let prepare_started = Instant::now();
    let prepared = prepare_corpus(&session, &benchmarks, true);
    let prepare_elapsed = prepare_started.elapsed();

    let all_targets = builtin::all_targets();
    let search_started = Instant::now();
    for target in &all_targets {
        let mut chassis_outcomes = Vec::new();
        let mut herbie_outcomes = Vec::new();
        // Per-target phase: search only, parallel across benchmarks, against
        // the shared prepared state.
        let pairs = run_prepared_corpus(&prepared, |pb| {
            (
                pb.prepared
                    .compile(target)
                    .ok()
                    .map(|r| BenchmarkOutcome::from_result(pb.benchmark.name, &r)),
                herbie_transcribed_outcome(target, pb),
            )
        });
        for (chassis_outcome, herbie_outcome) in pairs {
            // As in the paper, a benchmark is dropped from the comparison (for
            // both systems) when Herbie's output cannot be expressed on the
            // target at all.
            if let (Some(c), Some(h)) = (chassis_outcome, herbie_outcome) {
                chassis_outcomes.push(c);
                herbie_outcomes.push(h);
            }
        }
        println!(
            "\n=== target {} ({} comparable benchmarks) ===",
            target.name,
            chassis_outcomes.len()
        );
        if chassis_outcomes.is_empty() {
            println!("  (no comparable benchmarks at this limit)");
            continue;
        }
        let chassis_curve = joint_curve(&chassis_outcomes, 6);
        let herbie_curve = joint_curve(&herbie_outcomes, 6);
        println!(
            "  {:<8} {:>14} {:>16}   {:>14} {:>16}",
            "point", "chassis spd", "chassis acc", "herbie spd", "herbie acc"
        );
        for (i, (c, h)) in chassis_curve.iter().zip(&herbie_curve).enumerate() {
            println!(
                "  {:<8} {:>14.2} {:>16.1}   {:>14.2} {:>16.1}",
                i, c.speedup, c.total_accuracy, h.speedup, h.total_accuracy
            );
        }
        // Headline per target: Chassis speedup over Herbie at Herbie's own most
        // accurate point.
        let herbie_best_acc = herbie_curve.last().map_or(0.0, |p| p.total_accuracy);
        let herbie_best_speed = herbie_curve.last().map_or(1.0, |p| p.speedup);
        let chassis_at = chassis_curve
            .iter()
            .filter(|p| p.total_accuracy >= herbie_best_acc * 0.98)
            .map(|p| p.speedup)
            .fold(f64::NAN, f64::max);
        let chassis_fastest = chassis_curve
            .iter()
            .map(|p| p.speedup)
            .fold(f64::NAN, f64::max);
        println!(
            "  summary: herbie best ({herbie_best_speed:.2}x, {herbie_best_acc:.1} bits); chassis at matched accuracy {chassis_at:.2}x; chassis fastest {chassis_fastest:.2}x"
        );
    }
    let search_elapsed = search_started.elapsed();

    println!(
        "\npreparation: {} sampling passes for {} (benchmark x target) compilations \
         ({:.1?} preparing once, {:.1?} searching {} targets)",
        session.prepare_count(),
        prepared.len() * all_targets.len(),
        prepare_elapsed,
        search_elapsed,
        all_targets.len()
    );
}
