//! Regenerates Figure 7: Chassis vs. Clang on the C99 target.
//!
//! For every benchmark, the Clang baseline is compiled in each configuration
//! (optimization level × fast-math) and Chassis produces a Pareto frontier.
//! Speedups are relative to the benchmark's `-O0` program; accuracies are summed
//! across benchmarks; speedups are aggregated by geometric mean — exactly the
//! aggregation described in Section 6.2.
//!
//! ```text
//! cargo run --release -p chassis-bench --bin fig7_clang -- --limit 8
//! ```

use chassis::accuracy;
use chassis::baseline::clang::{compile_clang, ClangConfig};
use chassis_bench::{geometric_mean, joint_curve, run_corpus, BenchmarkOutcome, HarnessOptions};
use targets::{builtin, program_cost};

fn main() {
    let options = HarnessOptions::from_args();
    let target = builtin::by_name("c99").expect("c99 target");
    let benchmarks = options.benchmarks();
    let session = options.session();
    println!(
        "Figure 7: Chassis vs Clang on the C99 target ({} benchmarks, seed {})",
        benchmarks.len(),
        session.seed()
    );

    // --- Clang configurations -------------------------------------------------
    // For every benchmark: per-configuration (cost, accuracy), with the -O0 cost
    // as the speedup reference.
    let mut per_config: Vec<(String, Vec<f64>, f64)> = Vec::new(); // (name, speedups, total accuracy)
    let mut reference_costs: Vec<(String, f64)> = Vec::new();
    let mut chassis_outcomes = Vec::new();

    let mut clang_rows: Vec<(String, Vec<(f64, f64)>)> = ClangConfig::all()
        .into_iter()
        .map(|c| (c.name(), Vec::new()))
        .collect();

    // Per-benchmark work (sampling, every Clang configuration, the Chassis
    // frontier) is independent, so benchmarks run in parallel; the rows come
    // back in corpus order and are aggregated sequentially below.
    let per_benchmark = run_corpus(&benchmarks, |benchmark| {
        let core = benchmark.fpcore();
        // Prepare once per benchmark: the session's sample set scores every
        // Clang configuration *and* feeds the Chassis search — one sampling
        // pass where the pre-session harness ran two.
        let prepared = session.prepare(&core).ok()?;
        let samples = prepared.samples();
        let o0 = compile_clang(&core, &target, ClangConfig::all()[0]).ok()?;
        let o0_cost = program_cost(&target, &o0);
        let clang_points: Vec<Option<(f64, f64)>> = ClangConfig::all()
            .into_iter()
            .map(|clang_config| {
                let program = compile_clang(&core, &target, clang_config).ok()?;
                let cost = program_cost(&target, &program);
                let (_, acc) = accuracy::evaluate_on_test(&target, &program, samples);
                Some((o0_cost / cost.max(1e-9), acc))
            })
            .collect();
        let outcome = prepared
            .compile(&target)
            .ok()
            .map(|r| BenchmarkOutcome::from_result(benchmark.name, &r));
        Some((benchmark.name.to_owned(), o0_cost, clang_points, outcome))
    });

    for row in per_benchmark.into_iter().flatten() {
        let (name, o0_cost, clang_points, outcome) = row;
        reference_costs.push((name, o0_cost));
        for (config_idx, point) in clang_points.into_iter().enumerate() {
            if let Some(point) = point {
                clang_rows[config_idx].1.push(point);
            }
        }
        if let Some(outcome) = outcome {
            chassis_outcomes.push(outcome);
        }
    }

    println!(
        "\nClang configurations (aggregate over {} benchmarks):",
        reference_costs.len()
    );
    println!(
        "{:<22} {:>10} {:>16}",
        "configuration", "speedup", "total accuracy"
    );
    for (name, rows) in &clang_rows {
        if rows.is_empty() {
            continue;
        }
        let speedups: Vec<f64> = rows.iter().map(|(s, _)| *s).collect();
        let accuracy: f64 = rows.iter().map(|(_, a)| *a).sum();
        per_config.push((name.clone(), speedups.clone(), accuracy));
        println!(
            "{:<22} {:>10.2} {:>16.1}",
            name,
            geometric_mean(&speedups),
            accuracy
        );
    }

    // --- Chassis joint Pareto curve -------------------------------------------
    // Chassis speedups are measured against the same -O0 reference.
    for outcome in &mut chassis_outcomes {
        if let Some((_, cost)) = reference_costs.iter().find(|(n, _)| *n == outcome.name) {
            outcome.initial.cost = *cost;
        }
    }
    println!("\nChassis joint Pareto curve (cheapest -> most accurate):");
    println!("{:<8} {:>10} {:>16}", "point", "speedup", "total accuracy");
    for (i, point) in joint_curve(&chassis_outcomes, 8).iter().enumerate() {
        println!(
            "{:<8} {:>10.2} {:>16.1}",
            i, point.speedup, point.total_accuracy
        );
    }

    // --- Headline comparison ---------------------------------------------------
    if let Some(best_clang) = per_config.iter().max_by(|a, b| {
        geometric_mean(&a.1)
            .partial_cmp(&geometric_mean(&b.1))
            .unwrap_or(std::cmp::Ordering::Equal)
    }) {
        let clang_speed = geometric_mean(&best_clang.1);
        let clang_acc = best_clang.2;
        // The Chassis point with at least Clang's aggregate accuracy.
        let curve = joint_curve(&chassis_outcomes, 16);
        let at_matched = curve
            .iter()
            .filter(|p| p.total_accuracy >= clang_acc)
            .map(|p| p.speedup)
            .fold(f64::NAN, f64::max);
        println!(
            "\nHeadline: fastest Clang configuration ({}) reaches {:.2}x; at >= its accuracy Chassis reaches {:.2}x ({:.1}x better)",
            best_clang.0,
            clang_speed,
            at_matched,
            at_matched / clang_speed
        );
    }
}
