//! Throughput comparison of the three evaluation engines — tree-walk
//! interpreter, scalar bytecode, and structure-of-arrays block execution —
//! with a corpus-wide bit-identity check. This is the CI perf gate for the
//! evaluation hot path.
//!
//! For every corpus benchmark × a spread of builtin targets, this binary
//! lowers the benchmark directly onto the target, generates a deterministic
//! set of sample points, and
//!
//! 1. **verifies and optimizes**: every compiled program must pass the IR
//!    verifier ([`targets::analysis`]) in SSA mode, and its optimized form
//!    (dead-code elimination + liveness-driven register compaction — the
//!    program the timed engines actually run) must pass in executable mode;
//! 2. **asserts bit-identity**: the scalar bytecode engine (fresh *and*
//!    optimized program) and the block engine (optimized program, at *every*
//!    swept block size) must reproduce the tree-walk interpreter's output
//!    exactly, on every point (exit code 1 otherwise) — this is the
//!    corpus-wide proof that the optimizer preserves semantics;
//! 3. **measures throughput**: best-of-N sweeps over all points for each
//!    engine — block mode once per `--block-sizes` entry — reported as
//!    points/second;
//! 4. **measures the math kernels**: a per-operator table of lane-sweep
//!    throughput, vecmath kernels vs. per-lane host-libm loops, over the
//!    corpus input distribution;
//! 5. **records the trajectory**: writes `BENCH_eval.json` (schema 4:
//!    per-mode, per-block-size and per-target throughput, the per-operator
//!    kernel table, an `ir` object with aggregate optimizer and
//!    interval-analysis statistics, and a `history` array carrying every
//!    previous run's totals forward so successive runs stay comparable);
//! 6. **gates**: `--min-speedup X` requires corpus-wide scalar-bytecode ≥ X ×
//!    tree-walk; `--min-block-speedup Y` requires corpus-wide block mode (at
//!    its best swept size) ≥ Y × scalar bytecode; `--min-target-rel name=R,...`
//!    requires named targets' block aggregate ≥ R × the geometric mean of the
//!    *same run's* per-operator host-libm kernel throughput — a
//!    machine-relative floor that holds across hardware, unlike the absolute
//!    `--min-target-pps name=PPS,...` floor (still supported for pinned-rig
//!    use).
//!
//! ```text
//! cargo run --release -p chassis-bench --bin eval_throughput -- \
//!     --points 2048 --repeats 5 --block-sizes 8,64,256,0 \
//!     --min-speedup 3 --min-block-speedup 1 \
//!     --min-target-rel c99=1.4,vdt=1.4 --out BENCH_eval.json
//! ```
//!
//! A block size of `0` means "one block spanning the whole batch".

use chassis::lower_fpcore;
use chassis::rng::Rng;
use fpcore::eval::semantic_bits;
use fpcore::Symbol;
use std::time::{Duration, Instant};
use targets::analysis::{self, Mode};
use targets::{eval_float_expr_indexed, Columns, FloatExpr, Target};

/// Targets the sweep covers: an all-emulated target (c99), two with native
/// approximate operators (vdt, avx), and a minimal arithmetic one (arith-fma).
const TARGETS: &[&str] = &["c99", "vdt", "avx", "arith-fma"];

/// Default RNG seed (overridable with `--seed`): the point sets — and
/// therefore the bit-identity check — are reproducible across runs and
/// machines.
const SEED: u64 = 0x5EED_E7A1;

struct Options {
    points: usize,
    repeats: usize,
    seed: u64,
    /// Block sizes to sweep; `0` means one block spanning the whole batch.
    block_sizes: Vec<usize>,
    /// Floor on scalar-bytecode / tree-walk aggregate throughput.
    min_speedup: f64,
    /// Floor on block / scalar-bytecode aggregate throughput.
    min_block_speedup: f64,
    /// Absolute block-aggregate floors per target: `(name, points/sec)`.
    min_target_pps: Vec<(String, f64)>,
    /// Relative floors per target: `(name, ratio)` — block aggregate must be
    /// at least `ratio` × the same run's libm kernel-sweep geometric mean.
    min_target_rel: Vec<(String, f64)>,
    out: String,
}

impl Options {
    /// Strict parsing: this binary *is* a CI gate, so an unknown flag or an
    /// unparsable value aborts (exit 2) instead of silently falling back to a
    /// default that could leave the gate disabled.
    fn from_args() -> Options {
        let mut options = Options {
            points: 2048,
            repeats: 5,
            seed: SEED,
            block_sizes: vec![8, 64, 256, 0],
            min_speedup: 0.0,
            min_block_speedup: 0.0,
            min_target_pps: Vec::new(),
            min_target_rel: Vec::new(),
            out: "BENCH_eval.json".to_owned(),
        };
        let usage = "usage: eval_throughput [--points N] [--repeats N] \
                     [--seed N] [--block-sizes N,M,...] [--min-speedup X] \
                     [--min-block-speedup X] [--min-target-pps name=PPS,...] \
                     [--min-target-rel name=RATIO,...] [--out PATH]";
        fn floors(list: &str, flag: &str, usage: &str) -> Vec<(String, f64)> {
            list.split(',')
                .map(|entry| {
                    let Some((name, value)) = entry.split_once('=') else {
                        eprintln!("bad {flag} entry {entry:?}\n{usage}");
                        std::process::exit(2);
                    };
                    let value: f64 = value.trim().parse().unwrap_or_else(|_| {
                        eprintln!("bad number in {entry:?}\n{usage}");
                        std::process::exit(2);
                    });
                    (name.trim().to_owned(), value)
                })
                .collect()
        }
        fn value<T: std::str::FromStr>(args: &[String], i: usize, usage: &str) -> T {
            args.get(i + 1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("bad or missing value for {}\n{usage}", args[i]);
                    std::process::exit(2);
                })
        }
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--points" => options.points = value(&args, i, usage),
                "--repeats" => options.repeats = value(&args, i, usage),
                "--seed" => options.seed = value(&args, i, usage),
                "--block-sizes" => {
                    let list: String = value(&args, i, usage);
                    options.block_sizes = list
                        .split(',')
                        .map(|tok| {
                            tok.trim().parse().unwrap_or_else(|_| {
                                eprintln!("bad block size {tok:?} in {list:?}\n{usage}");
                                std::process::exit(2);
                            })
                        })
                        .collect();
                    if options.block_sizes.is_empty() {
                        eprintln!("--block-sizes needs at least one size\n{usage}");
                        std::process::exit(2);
                    }
                }
                "--min-speedup" => options.min_speedup = value(&args, i, usage),
                "--min-block-speedup" => options.min_block_speedup = value(&args, i, usage),
                "--min-target-pps" => {
                    let list: String = value(&args, i, usage);
                    options
                        .min_target_pps
                        .extend(floors(&list, "--min-target-pps", usage));
                }
                "--min-target-rel" => {
                    let list: String = value(&args, i, usage);
                    options
                        .min_target_rel
                        .extend(floors(&list, "--min-target-rel", usage));
                }
                "--out" => options.out = value(&args, i, usage),
                other => {
                    eprintln!("unknown argument {other}\n{usage}");
                    std::process::exit(2);
                }
            }
            i += 2;
        }
        options
    }

    /// The width a swept size denotes for a batch of `points` (0 = whole batch).
    fn width_of(&self, size: usize) -> usize {
        if size == 0 {
            self.points
        } else {
            size
        }
    }
}

/// One (benchmark, target) measurement.
struct Case {
    benchmark: &'static str,
    target: &'static str,
    /// Operator-tree nodes in the lowered program.
    tree_size: usize,
    /// Instructions in the compiled program (smaller when CSE shared work).
    instrs: usize,
    /// Instructions after dead-code elimination.
    instrs_opt: usize,
    /// Register-slab height of the fresh program.
    regs: usize,
    /// Register-slab height after liveness-driven compaction.
    regs_opt: usize,
    /// Selects the interval analysis proved uniform over the sampled domain.
    uniform_selects: usize,
    /// Transcendental calls proved to stay on the kernel's safe range.
    safe_calls: usize,
    interp_best: Duration,
    bytecode_best: Duration,
    /// Best sweep per swept block size, parallel to `Options::block_sizes`.
    block_best: Vec<Duration>,
}

/// Deterministic sample points: per variable, a log-uniform magnitude in
/// `[1e-6, 1e6]` with random sign. Preconditions are irrelevant here — the
/// engines must agree on *every* input, including ones that produce NaN — so
/// no filtering is done.
fn generate_points(rng: &mut Rng, n_vars: usize, n_points: usize) -> Vec<Vec<f64>> {
    (0..n_points)
        .map(|_| {
            (0..n_vars)
                .map(|_| {
                    let magnitude = 10f64.powf(rng.range_f64(-6.0, 6.0));
                    if rng.below(2) == 0 {
                        magnitude
                    } else {
                        -magnitude
                    }
                })
                .collect()
        })
        .collect()
}

/// Best-of-N sweep time for one evaluation closure over all points.
fn best_sweep(repeats: usize, mut sweep: impl FnMut() -> f64) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        std::hint::black_box(sweep());
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
    }
    best.max(Duration::from_nanos(1))
}

/// Returns the case's measurements plus its bit-identity mismatch count.
fn measure(
    target: &Target,
    target_name: &'static str,
    benchmark: &'static str,
    expr: &FloatExpr,
    domains: &[(Symbol, (f64, f64))],
    options: &Options,
    stream: u64,
) -> (Case, usize) {
    let mut mismatches = 0usize;
    let mismatches = &mut mismatches;
    let vars = expr.variables();
    let mut rng = Rng::for_stream(options.seed, stream);
    let rows = generate_points(&mut rng, vars.len(), options.points);
    let points = Columns::from_rows(vars.len(), &rows);

    // Compile, verify, optimize, verify again. A diagnostic here is a
    // compiler or optimizer bug, so it is fatal rather than a gate failure.
    let program = targets::compile(target, expr);
    let violations = analysis::verify_with_target(&program, target, Mode::Ssa);
    assert!(
        violations.is_empty(),
        "{benchmark} on {target_name}: fresh program failed IR verification:\n{}",
        analysis::verify::render(&violations)
    );
    let (optimized, stats) = analysis::optimize(&program);
    let violations = analysis::verify_with_target(&optimized, target, Mode::Executable);
    assert!(
        violations.is_empty(),
        "{benchmark} on {target_name}: optimized program failed IR verification:\n{}",
        analysis::verify::render(&violations)
    );
    let ia = analysis::interval_analysis(&program, Some(target), domains);

    let columns = program.bind_columns(&vars);
    let mut regs = program.new_regs();
    let opt_columns = optimized.bind_columns(&vars);
    let mut opt_regs = optimized.new_regs();

    // Bit-identity first. The tree walk is the reference; the scalar bytecode
    // engine — on both the fresh and the optimized program — and the block
    // engine at every swept size must match it exactly (through
    // `semantic_bits`: NaN sign/payload is codegen-dependent and exempt).
    let reference: Vec<u64> = rows
        .iter()
        .map(|point| semantic_bits(eval_float_expr_indexed(target, expr, &vars, point)))
        .collect();
    for (point, &want) in rows.iter().zip(&reference) {
        let byte = program.eval_point(&columns, point, &mut regs);
        if semantic_bits(byte) != want {
            *mismatches += 1;
            eprintln!(
                "BIT MISMATCH (scalar bytecode): {benchmark} on {target_name} at {point:?}: \
                 tree walk {:#018x}, bytecode {:#018x}",
                want,
                byte.to_bits()
            );
        }
        let opt = optimized.eval_point(&opt_columns, point, &mut opt_regs);
        if semantic_bits(opt) != want {
            *mismatches += 1;
            eprintln!(
                "BIT MISMATCH (optimized bytecode): {benchmark} on {target_name} at {point:?}: \
                 tree walk {:#018x}, optimized {:#018x}",
                want,
                opt.to_bits()
            );
        }
    }
    let mut block_out = vec![0.0f64; options.points];
    for &size in &options.block_sizes {
        let width = options.width_of(size);
        let mut block_regs = optimized.new_block_regs(width);
        optimized.eval_range(&opt_columns, &points, 0, &mut block_regs, &mut block_out);
        for (i, (got, &want)) in block_out.iter().zip(&reference).enumerate() {
            if semantic_bits(*got) != want {
                *mismatches += 1;
                eprintln!(
                    "BIT MISMATCH (block {width}): {benchmark} on {target_name} at {:?}: \
                     tree walk {:#018x}, block {:#018x}",
                    rows[i],
                    want,
                    got.to_bits()
                );
            }
        }
    }

    let interp_best = best_sweep(options.repeats, || {
        let mut sink = 0.0;
        for point in &rows {
            let v = eval_float_expr_indexed(target, expr, &vars, point);
            sink += if v.is_finite() { v } else { 0.0 };
        }
        sink
    });
    // The timed bytecode and block runs use the optimized program — the one
    // production evaluation paths execute (`targets::compile_with_options`).
    let bytecode_best = best_sweep(options.repeats, || {
        let mut sink = 0.0;
        for point in &rows {
            let v = optimized.eval_point(&opt_columns, point, &mut opt_regs);
            sink += if v.is_finite() { v } else { 0.0 };
        }
        sink
    });
    let block_best: Vec<Duration> = options
        .block_sizes
        .iter()
        .map(|&size| {
            let width = options.width_of(size);
            let mut block_regs = optimized.new_block_regs(width);
            best_sweep(options.repeats, || {
                optimized.eval_range(&opt_columns, &points, 0, &mut block_regs, &mut block_out);
                let mut sink = 0.0;
                for &v in &block_out {
                    sink += if v.is_finite() { v } else { 0.0 };
                }
                sink
            })
        })
        .collect();

    let case = Case {
        benchmark,
        target: target_name,
        tree_size: expr.size(),
        instrs: stats.instrs_before,
        instrs_opt: stats.instrs_after,
        regs: stats.regs_before,
        regs_opt: stats.regs_after,
        uniform_selects: ia.uniform_selects.len(),
        safe_calls: ia.safe_calls.len(),
        interp_best,
        bytecode_best,
        block_best,
    };
    (case, *mismatches)
}

/// Corpus-wide aggregates: points/sec per mode plus the chosen block size.
struct Totals {
    interp_pps: f64,
    bytecode_pps: f64,
    /// Aggregate points/sec per swept block size, parallel to the sweep list.
    block_pps: Vec<f64>,
    /// Index (into the sweep list) of the block size with the best aggregate.
    chosen: usize,
}

impl Totals {
    fn compute(options: &Options, cases: &[Case]) -> Totals {
        let total_points = (cases.len() * options.points) as f64;
        let interp: f64 = cases.iter().map(|c| c.interp_best.as_secs_f64()).sum();
        let bytecode: f64 = cases.iter().map(|c| c.bytecode_best.as_secs_f64()).sum();
        let block_pps: Vec<f64> = (0..options.block_sizes.len())
            .map(|s| {
                let secs: f64 = cases.iter().map(|c| c.block_best[s].as_secs_f64()).sum();
                total_points / secs
            })
            .collect();
        let chosen = block_pps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map_or(0, |(i, _)| i);
        Totals {
            interp_pps: total_points / interp,
            bytecode_pps: total_points / bytecode,
            block_pps,
            chosen,
        }
    }

    /// Scalar bytecode vs. tree walk.
    fn bytecode_speedup(&self) -> f64 {
        self.bytecode_pps / self.interp_pps
    }

    /// Block mode (at the chosen size) vs. scalar bytecode.
    fn block_speedup(&self) -> f64 {
        self.block_pps[self.chosen] / self.bytecode_pps
    }
}

/// Per-target aggregate block throughput (points/sec at the corpus-chosen
/// block size), in `TARGETS` order.
fn per_target_block_pps(options: &Options, cases: &[Case], totals: &Totals) -> Vec<(String, f64)> {
    TARGETS
        .iter()
        .filter_map(|target_name| {
            let subset: Vec<&Case> = cases.iter().filter(|c| c.target == *target_name).collect();
            if subset.is_empty() {
                return None;
            }
            let pts = (subset.len() * options.points) as f64;
            let secs: f64 = subset
                .iter()
                .map(|c| c.block_best[totals.chosen].as_secs_f64())
                .sum();
            Some((target_name.to_string(), pts / secs))
        })
        .collect()
}

/// One row of the per-operator kernel throughput table (schema 3).
struct OpKernel {
    name: &'static str,
    arity: u32,
    vecmath_pps: f64,
    libm_pps: f64,
}

/// Measures each registered vecmath kernel's lane-sweep throughput against a
/// per-lane host-libm loop, over the same log-uniform input distribution as
/// the corpus sweep (log-magnitude in [1e-6, 1e6], both signs; the log
/// family takes magnitudes so most lanes stay in-domain).
fn bench_op_kernels(options: &Options) -> Vec<OpKernel> {
    const LANES: usize = 4096;
    const SWEEPS: usize = 16;
    let mut rng = Rng::for_stream(options.seed, 0x0FED);
    let signed: Vec<f64> = (0..LANES)
        .map(|_| {
            let magnitude = 10f64.powf(rng.range_f64(-6.0, 6.0));
            if rng.below(2) == 0 {
                magnitude
            } else {
                -magnitude
            }
        })
        .collect();
    let magnitudes: Vec<f64> = signed.iter().map(|x| x.abs()).collect();
    let mut out = vec![0.0; LANES];
    let mut time = |f: &mut dyn FnMut(&mut [f64])| -> f64 {
        f(&mut out); // warmup
        let mut best = Duration::MAX;
        for _ in 0..options.repeats.max(1) {
            let start = Instant::now();
            for _ in 0..SWEEPS {
                f(&mut out);
            }
            best = best.min(start.elapsed());
        }
        std::hint::black_box(&out);
        (LANES * SWEEPS) as f64 / best.max(Duration::from_nanos(1)).as_secs_f64()
    };
    let mut table = Vec::new();
    for kernel in vecmath::KERNELS1 {
        let input = if matches!(kernel.name, "log" | "log2" | "log10" | "log1p") {
            &magnitudes
        } else {
            &signed
        };
        let vecmath_pps = time(&mut |out| (kernel.sweep)(out, input));
        let libm_pps = time(&mut |out| {
            for (o, &x) in out.iter_mut().zip(input) {
                *o = (kernel.reference)(x);
            }
        });
        table.push(OpKernel {
            name: kernel.name,
            arity: 1,
            vecmath_pps,
            libm_pps,
        });
    }
    for kernel in vecmath::KERNELS2 {
        let a = if kernel.name == "pow" {
            &magnitudes
        } else {
            &signed
        };
        let vecmath_pps = time(&mut |out| (kernel.sweep)(out, a, &signed));
        let libm_pps = time(&mut |out| {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(&signed) {
                *o = (kernel.reference)(x, y);
            }
        });
        table.push(OpKernel {
            name: kernel.name,
            arity: 2,
            vecmath_pps,
            libm_pps,
        });
    }
    table
}

/// Geometric mean of the per-operator host-libm sweep throughput — the
/// machine-speed yardstick the `--min-target-rel` gate divides by. Measured
/// in the same run, so the ratio is stable across hardware generations in a
/// way an absolute points/sec floor is not.
fn libm_geomean_pps(op_kernels: &[OpKernel]) -> f64 {
    let logs: f64 = op_kernels.iter().map(|k| k.libm_pps.ln()).sum();
    (logs / op_kernels.len().max(1) as f64).exp()
}

/// This run's headline numbers as a one-line JSON history entry.
fn history_entry(
    options: &Options,
    n_cases: usize,
    totals: &Totals,
    per_target: &[(String, f64)],
) -> String {
    let targets: Vec<String> = per_target
        .iter()
        .map(|(name, pps)| format!("\"{name}\": {pps:.1}"))
        .collect();
    format!(
        "{{\"schema_version\": 4, \"seed\": {}, \"points_per_case\": {}, \"cases\": {}, \
         \"interp_points_per_sec\": {:.1}, \"bytecode_points_per_sec\": {:.1}, \
         \"block_points_per_sec\": {:.1}, \"per_target_block_points_per_sec\": {{{}}}}}",
        options.seed,
        options.points,
        n_cases,
        totals.interp_pps,
        totals.bytecode_pps,
        totals.block_pps[totals.chosen],
        targets.join(", ")
    )
}

/// Prior history entries to carry forward from the existing out file. A
/// schema-3 or -4 file contributes its `history` array verbatim; a legacy schema-2
/// file (the pre-vecmath baseline) is summarized into a synthesized entry so
/// the bench trajectory starts at the old numbers.
fn prior_history(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    if let Some(start) = text.find("\"history\": [") {
        let rest = &text[start + "\"history\": [".len()..];
        let Some(end) = rest.find(']') else {
            return Vec::new();
        };
        return rest[..end]
            .lines()
            .map(|line| line.trim().trim_end_matches(',').to_owned())
            .filter(|line| line.starts_with('{'))
            .collect();
    }
    // Legacy schema 2: pull the headline numbers out of the hand-rolled
    // format (first occurrence of each field is the top-level/totals one).
    let field = |name: &str| -> Option<f64> {
        let at = text.find(&format!("\"{name}\": "))?;
        let rest = &text[at + name.len() + 4..];
        let end = rest.find([',', '}', '\n'])?;
        rest[..end].trim().parse().ok()
    };
    let block = (|| {
        let chosen = field("chosen_block_size")?;
        let at = text.find("\"block_points_per_sec\": {")?;
        let rest = &text[at..];
        let key = format!("\"{}\": ", chosen as u64);
        let k = rest.find(&key)?;
        let rest = &rest[k + key.len()..];
        let end = rest.find([',', '}'])?;
        rest[..end].trim().parse::<f64>().ok()
    })();
    match (
        field("schema_version"),
        field("seed"),
        field("points_per_case"),
        field("interp_points_per_sec"),
        field("bytecode_points_per_sec"),
        block,
    ) {
        (Some(schema), Some(seed), Some(points), Some(interp), Some(byte), Some(block)) => {
            vec![format!(
                "{{\"schema_version\": {schema}, \"seed\": {seed}, \"points_per_case\": {points}, \
                 \"interp_points_per_sec\": {interp}, \"bytecode_points_per_sec\": {byte}, \
                 \"block_points_per_sec\": {block}}}"
            )]
        }
        _ => Vec::new(),
    }
}

/// Renders the results as JSON (hand-rolled: the workspace has no registry
/// access, hence no serde).
fn to_json(
    options: &Options,
    cases: &[Case],
    totals: &Totals,
    per_target: &[(String, f64)],
    op_kernels: &[OpKernel],
    history: &[String],
) -> String {
    let pps = |d: Duration| options.points as f64 / d.as_secs_f64();
    let sizes_json = |values: &[f64]| {
        let entries: Vec<String> = options
            .block_sizes
            .iter()
            .zip(values)
            .map(|(size, v)| format!("\"{size}\": {v:.1}"))
            .collect();
        format!("{{{}}}", entries.join(", "))
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"eval_throughput\",\n");
    out.push_str("  \"schema_version\": 4,\n");
    out.push_str(&format!("  \"points_per_case\": {},\n", options.points));
    out.push_str(&format!("  \"repeats\": {},\n", options.repeats));
    out.push_str(&format!("  \"seed\": {},\n", options.seed));
    let sizes: Vec<String> = options.block_sizes.iter().map(usize::to_string).collect();
    out.push_str(&format!("  \"block_sizes\": [{}],\n", sizes.join(", ")));
    out.push_str("  \"total\": {\n");
    out.push_str(&format!(
        "    \"interp_points_per_sec\": {:.1},\n",
        totals.interp_pps
    ));
    out.push_str(&format!(
        "    \"bytecode_points_per_sec\": {:.1},\n",
        totals.bytecode_pps
    ));
    out.push_str(&format!(
        "    \"block_points_per_sec\": {},\n",
        sizes_json(&totals.block_pps)
    ));
    out.push_str(&format!(
        "    \"chosen_block_size\": {},\n",
        options.block_sizes[totals.chosen]
    ));
    let targets: Vec<String> = per_target
        .iter()
        .map(|(name, pps)| format!("\"{name}\": {pps:.1}"))
        .collect();
    out.push_str(&format!(
        "    \"per_target_block_points_per_sec\": {{{}}},\n",
        targets.join(", ")
    ));
    out.push_str(&format!(
        "    \"bytecode_speedup\": {:.3},\n",
        totals.bytecode_speedup()
    ));
    out.push_str(&format!(
        "    \"block_speedup_vs_bytecode\": {:.3},\n",
        totals.block_speedup()
    ));
    out.push_str(&format!(
        "    \"block_speedup_vs_interp\": {:.3}\n",
        totals.block_pps[totals.chosen] / totals.interp_pps
    ));
    out.push_str("  },\n");
    // Aggregate optimizer and interval-analysis statistics (schema 4): the
    // register-slab rows are what liveness-driven compaction saves the block
    // engine per worker.
    let sum = |f: fn(&Case) -> usize| -> usize { cases.iter().map(f).sum() };
    out.push_str("  \"ir\": {\n");
    out.push_str(&format!(
        "    \"instrs_before_dce\": {},\n    \"instrs_after_dce\": {},\n",
        sum(|c| c.instrs),
        sum(|c| c.instrs_opt)
    ));
    out.push_str(&format!(
        "    \"register_slab_rows_before\": {},\n    \"register_slab_rows_after\": {},\n",
        sum(|c| c.regs),
        sum(|c| c.regs_opt)
    ));
    out.push_str(&format!(
        "    \"uniform_selects\": {},\n    \"safe_transcendental_calls\": {},\n",
        sum(|c| c.uniform_selects),
        sum(|c| c.safe_calls)
    ));
    out.push_str(&format!(
        "    \"libm_kernel_geomean_points_per_sec\": {:.1}\n",
        libm_geomean_pps(op_kernels)
    ));
    out.push_str("  },\n");
    out.push_str("  \"op_kernels\": [\n");
    for (i, k) in op_kernels.iter().enumerate() {
        let comma = if i + 1 < op_kernels.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"arity\": {}, \"vecmath_points_per_sec\": {:.1}, \
             \"libm_points_per_sec\": {:.1}, \"speedup\": {:.3}}}{comma}\n",
            k.name,
            k.arity,
            k.vecmath_pps,
            k.libm_pps,
            k.vecmath_pps / k.libm_pps
        ));
    }
    out.push_str("  ],\n");
    // One entry per recorded run, oldest first: the bench trajectory.
    out.push_str("  \"history\": [\n");
    for (i, entry) in history.iter().enumerate() {
        let comma = if i + 1 < history.len() { "," } else { "" };
        out.push_str(&format!("    {entry}{comma}\n"));
    }
    out.push_str("  ],\n");
    out.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        let block: Vec<f64> = case.block_best.iter().map(|&d| pps(d)).collect();
        out.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"target\": \"{}\", \"tree_size\": {}, \
             \"instrs\": {}, \"instrs_opt\": {}, \"regs\": {}, \"regs_opt\": {}, \
             \"interp_points_per_sec\": {:.1}, \
             \"bytecode_points_per_sec\": {:.1}, \"block_points_per_sec\": {}, \
             \"speedup\": {:.3}}}{comma}\n",
            case.benchmark,
            case.target,
            case.tree_size,
            case.instrs,
            case.instrs_opt,
            case.regs,
            case.regs_opt,
            pps(case.interp_best),
            pps(case.bytecode_best),
            sizes_json(&block),
            pps(case.bytecode_best) / pps(case.interp_best),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let options = Options::from_args();
    let mut cases: Vec<Case> = Vec::new();
    let mut mismatches = 0usize;
    let mut stream = 0u64;

    // A misnamed target is reported (by `resolve_targets`) and skipped — the
    // rest of the corpus still measures.
    let resolved = chassis_bench::resolve_targets(TARGETS);
    for target_name in TARGETS {
        let Some(target) = resolved.iter().find(|t| t.name == *target_name) else {
            continue;
        };
        for benchmark in benchsuite::all() {
            stream += 1;
            let core = benchmark.fpcore();
            // Benchmarks using operators the target lacks are skipped, like
            // everywhere else in the harness.
            let Ok(program) = lower_fpcore(&core, target) else {
                continue;
            };
            let domains = analysis::domains_from_pre(core.pre.as_ref());
            let (case, diverged) = measure(
                target,
                target_name,
                benchmark.name,
                &program,
                &domains,
                &options,
                stream,
            );
            mismatches += diverged;
            cases.push(case);
        }
    }

    if cases.is_empty() {
        eprintln!("error: no benchmark lowered onto any target");
        std::process::exit(1);
    }
    let totals = Totals::compute(&options, &cases);
    let per_target = per_target_block_pps(&options, &cases, &totals);
    let op_kernels = bench_op_kernels(&options);
    let mut history = prior_history(&options.out);
    history.push(history_entry(&options, cases.len(), &totals, &per_target));

    println!(
        "eval_throughput: {} cases ({} benchmarks x {} targets reachable), {} points each",
        cases.len(),
        benchsuite::all().len(),
        TARGETS.len(),
        options.points
    );
    for target_name in TARGETS {
        let subset: Vec<&Case> = cases.iter().filter(|c| c.target == *target_name).collect();
        if subset.is_empty() {
            continue;
        }
        let pts = (subset.len() * options.points) as f64;
        let interp: f64 = subset.iter().map(|c| c.interp_best.as_secs_f64()).sum();
        let byte: f64 = subset.iter().map(|c| c.bytecode_best.as_secs_f64()).sum();
        let block: f64 = subset
            .iter()
            .map(|c| c.block_best[totals.chosen].as_secs_f64())
            .sum();
        println!(
            "  {target_name:>10}: tree-walk {:>12.0} pts/s | bytecode {:>12.0} pts/s | \
             block {:>12.0} pts/s | {:>5.2}x / {:>5.2}x ({} cases)",
            pts / interp,
            pts / byte,
            pts / block,
            interp / byte,
            pts / block / (pts / interp),
            subset.len()
        );
    }
    println!("  block-size sweep (corpus aggregate):");
    for (size, pps) in options.block_sizes.iter().zip(&totals.block_pps) {
        let label = if *size == 0 {
            "whole-batch".to_owned()
        } else {
            size.to_string()
        };
        let chosen = if options.block_sizes[totals.chosen] == *size {
            "  <- chosen"
        } else {
            ""
        };
        println!("  {label:>12}: {pps:>12.0} pts/s{chosen}");
    }
    println!(
        "  {:>10}: tree-walk {:>12.0} pts/s | bytecode {:>12.0} pts/s | block {:>12.0} pts/s",
        "TOTAL", totals.interp_pps, totals.bytecode_pps, totals.block_pps[totals.chosen]
    );
    println!(
        "  speedups: bytecode/tree-walk {:.2}x | block/bytecode {:.2}x | block/tree-walk {:.2}x",
        totals.bytecode_speedup(),
        totals.block_speedup(),
        totals.block_pps[totals.chosen] / totals.interp_pps
    );
    let sum = |f: fn(&Case) -> usize| -> usize { cases.iter().map(f).sum() };
    println!(
        "  ir: {} -> {} instrs (DCE), {} -> {} register-slab rows (compaction), \
         {} uniform selects, {} safe transcendental calls",
        sum(|c| c.instrs),
        sum(|c| c.instrs_opt),
        sum(|c| c.regs),
        sum(|c| c.regs_opt),
        sum(|c| c.uniform_selects),
        sum(|c| c.safe_calls)
    );
    println!("  math-kernel sweeps (corpus input distribution, per operator):");
    for k in &op_kernels {
        println!(
            "  {:>10}: vecmath {:>12.0} pts/s | libm {:>12.0} pts/s | {:>5.2}x",
            k.name,
            k.vecmath_pps,
            k.libm_pps,
            k.vecmath_pps / k.libm_pps
        );
    }

    let json = to_json(
        &options,
        &cases,
        &totals,
        &per_target,
        &op_kernels,
        &history,
    );
    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("error: cannot write {}: {e}", options.out);
        std::process::exit(1);
    }
    println!("wrote {}", options.out);

    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} point(s) diverged across the engines");
        std::process::exit(1);
    }
    println!("bit-identity: OK (every point, every case, every engine and block size)");

    if options.min_speedup > 0.0 && totals.bytecode_speedup() < options.min_speedup {
        eprintln!(
            "FAIL: corpus-wide bytecode speedup {:.2}x is below the gate ({:.2}x)",
            totals.bytecode_speedup(),
            options.min_speedup
        );
        std::process::exit(1);
    }
    if options.min_block_speedup > 0.0 && totals.block_speedup() < options.min_block_speedup {
        eprintln!(
            "FAIL: corpus-wide block/bytecode speedup {:.2}x is below the gate ({:.2}x)",
            totals.block_speedup(),
            options.min_block_speedup
        );
        std::process::exit(1);
    }
    for (name, floor) in &options.min_target_pps {
        let Some((_, pps)) = per_target.iter().find(|(n, _)| n == name) else {
            eprintln!("FAIL: --min-target-pps names unknown target {name:?}");
            std::process::exit(2);
        };
        if pps < floor {
            eprintln!(
                "FAIL: {name} block aggregate {pps:.0} pts/s is below the floor ({floor:.0})"
            );
            std::process::exit(1);
        }
    }
    if !options.min_target_rel.is_empty() {
        let yardstick = libm_geomean_pps(&op_kernels);
        println!(
            "  relative gate yardstick: libm kernel-sweep geomean {yardstick:.0} pts/s (same run)"
        );
        for (name, ratio) in &options.min_target_rel {
            let Some((_, pps)) = per_target.iter().find(|(n, _)| n == name) else {
                eprintln!("FAIL: --min-target-rel names unknown target {name:?}");
                std::process::exit(2);
            };
            let achieved = pps / yardstick;
            if achieved < *ratio {
                eprintln!(
                    "FAIL: {name} block aggregate {pps:.0} pts/s is {achieved:.2}x the libm \
                     kernel geomean, below the relative floor ({ratio:.2}x)"
                );
                std::process::exit(1);
            }
            println!("  {name}: {achieved:.2}x the libm kernel geomean (floor {ratio:.2}x) OK");
        }
    }
}
