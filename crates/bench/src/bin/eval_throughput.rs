//! Throughput comparison of the tree-walk interpreter vs. the bytecode
//! evaluator, with a bit-identity check — the CI perf gate for the evaluation
//! hot path.
//!
//! For every corpus benchmark × a spread of builtin targets, this binary
//! lowers the benchmark directly onto the target, generates a deterministic
//! set of sample points, and
//!
//! 1. **asserts bit-identity**: the compiled program must reproduce the
//!    tree-walk interpreter's output exactly, on every point (exit code 1
//!    otherwise);
//! 2. **measures throughput**: best-of-N sweeps over all points for each
//!    evaluator, reported as points/second;
//! 3. **records the trajectory**: writes `BENCH_eval.json` so CI can archive
//!    the numbers run over run;
//! 4. **gates**: with `--min-speedup X`, exits non-zero when the corpus-wide
//!    bytecode/tree-walk speedup falls below `X`.
//!
//! ```text
//! cargo run --release -p chassis-bench --bin eval_throughput -- \
//!     --points 2048 --repeats 5 --min-speedup 1.0 --out BENCH_eval.json
//! ```

use chassis::lower_fpcore;
use chassis::rng::Rng;
use std::time::{Duration, Instant};
use targets::{builtin, eval_float_expr_indexed, FloatExpr, Target};

/// Targets the sweep covers: an all-emulated target (c99), two with native
/// approximate operators (vdt, avx), and a minimal arithmetic one (arith-fma).
const TARGETS: &[&str] = &["c99", "vdt", "avx", "arith-fma"];

/// Fixed RNG seed: the point sets — and therefore the bit-identity check —
/// are reproducible across runs and machines.
const SEED: u64 = 0x5EED_E7A1;

struct Options {
    points: usize,
    repeats: usize,
    min_speedup: f64,
    out: String,
}

impl Options {
    /// Strict parsing: this binary *is* a CI gate, so an unknown flag or an
    /// unparsable value aborts (exit 2) instead of silently falling back to a
    /// default that could leave the gate disabled.
    fn from_args() -> Options {
        let mut options = Options {
            points: 2048,
            repeats: 5,
            min_speedup: 0.0,
            out: "BENCH_eval.json".to_owned(),
        };
        let usage = "usage: eval_throughput [--points N] [--repeats N] \
                     [--min-speedup X] [--out PATH]";
        fn value<T: std::str::FromStr>(args: &[String], i: usize, usage: &str) -> T {
            args.get(i + 1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("bad or missing value for {}\n{usage}", args[i]);
                    std::process::exit(2);
                })
        }
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--points" => options.points = value(&args, i, usage),
                "--repeats" => options.repeats = value(&args, i, usage),
                "--min-speedup" => options.min_speedup = value(&args, i, usage),
                "--out" => options.out = value(&args, i, usage),
                other => {
                    eprintln!("unknown argument {other}\n{usage}");
                    std::process::exit(2);
                }
            }
            i += 2;
        }
        options
    }
}

/// One (benchmark, target) measurement.
struct Case {
    benchmark: &'static str,
    target: &'static str,
    /// Operator-tree nodes in the lowered program.
    tree_size: usize,
    /// Instructions in the compiled program (smaller when CSE shared work).
    instrs: usize,
    interp_pps: f64,
    bytecode_pps: f64,
    interp_best: Duration,
    bytecode_best: Duration,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.bytecode_pps / self.interp_pps
    }
}

/// Deterministic sample points: per variable, a log-uniform magnitude in
/// `[1e-6, 1e6]` with random sign. Preconditions are irrelevant here — the
/// two evaluators must agree on *every* input, including ones that produce
/// NaN — so no filtering is done.
fn generate_points(rng: &mut Rng, n_vars: usize, n_points: usize) -> Vec<Vec<f64>> {
    (0..n_points)
        .map(|_| {
            (0..n_vars)
                .map(|_| {
                    let magnitude = 10f64.powf(rng.range_f64(-6.0, 6.0));
                    if rng.below(2) == 0 {
                        magnitude
                    } else {
                        -magnitude
                    }
                })
                .collect()
        })
        .collect()
}

/// Best-of-N sweep time for one evaluation closure over all points.
fn best_sweep(repeats: usize, mut sweep: impl FnMut() -> f64) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        std::hint::black_box(sweep());
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
    }
    best.max(Duration::from_nanos(1))
}

fn measure(
    target: &Target,
    target_name: &'static str,
    benchmark: &'static str,
    expr: &FloatExpr,
    options: &Options,
    stream: u64,
    mismatches: &mut usize,
) -> Case {
    let vars = expr.variables();
    let mut rng = Rng::for_stream(SEED, stream);
    let points = generate_points(&mut rng, vars.len(), options.points);

    let program = targets::compile(target, expr);
    let columns = program.bind_columns(&vars);
    let mut regs = program.new_regs();

    // Bit-identity first: every point, tree walk vs. bytecode.
    for point in &points {
        let tree = eval_float_expr_indexed(target, expr, &vars, point);
        let byte = program.eval_point(&columns, point, &mut regs);
        if tree.to_bits() != byte.to_bits() {
            *mismatches += 1;
            eprintln!(
                "BIT MISMATCH: {benchmark} on {target_name} at {point:?}: \
                 tree walk {tree:?} ({:#018x}), bytecode {byte:?} ({:#018x})",
                tree.to_bits(),
                byte.to_bits()
            );
        }
    }

    let interp_best = best_sweep(options.repeats, || {
        let mut sink = 0.0;
        for point in &points {
            let v = eval_float_expr_indexed(target, expr, &vars, point);
            sink += if v.is_finite() { v } else { 0.0 };
        }
        sink
    });
    let bytecode_best = best_sweep(options.repeats, || {
        let mut sink = 0.0;
        for point in &points {
            let v = program.eval_point(&columns, point, &mut regs);
            sink += if v.is_finite() { v } else { 0.0 };
        }
        sink
    });

    let pps = |d: Duration| options.points as f64 / d.as_secs_f64();
    Case {
        benchmark,
        target: target_name,
        tree_size: expr.size(),
        instrs: program.num_instrs(),
        interp_pps: pps(interp_best),
        bytecode_pps: pps(bytecode_best),
        interp_best,
        bytecode_best,
    }
}

/// Renders the results as JSON (hand-rolled: the workspace has no registry
/// access, hence no serde).
fn to_json(options: &Options, cases: &[Case], totals: (f64, f64, f64)) -> String {
    let (interp_pps, bytecode_pps, speedup) = totals;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"eval_throughput\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"points_per_case\": {},\n", options.points));
    out.push_str(&format!("  \"repeats\": {},\n", options.repeats));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str("  \"total\": {\n");
    out.push_str(&format!(
        "    \"interp_points_per_sec\": {interp_pps:.1},\n"
    ));
    out.push_str(&format!(
        "    \"bytecode_points_per_sec\": {bytecode_pps:.1},\n"
    ));
    out.push_str(&format!("    \"speedup\": {speedup:.3}\n"));
    out.push_str("  },\n");
    out.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"target\": \"{}\", \"tree_size\": {}, \
             \"instrs\": {}, \"interp_points_per_sec\": {:.1}, \
             \"bytecode_points_per_sec\": {:.1}, \"speedup\": {:.3}}}{comma}\n",
            case.benchmark,
            case.target,
            case.tree_size,
            case.instrs,
            case.interp_pps,
            case.bytecode_pps,
            case.speedup()
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let options = Options::from_args();
    let mut cases: Vec<Case> = Vec::new();
    let mut mismatches = 0usize;
    let mut stream = 0u64;

    for target_name in TARGETS {
        let target = builtin::by_name(target_name).expect("builtin target");
        for benchmark in benchsuite::all() {
            stream += 1;
            let core = benchmark.fpcore();
            // Benchmarks using operators the target lacks are skipped, like
            // everywhere else in the harness.
            let Ok(program) = lower_fpcore(&core, &target) else {
                continue;
            };
            cases.push(measure(
                &target,
                target_name,
                benchmark.name,
                &program,
                &options,
                stream,
                &mut mismatches,
            ));
        }
    }

    assert!(!cases.is_empty(), "no benchmark lowered onto any target");
    let interp_secs: f64 = cases.iter().map(|c| c.interp_best.as_secs_f64()).sum();
    let bytecode_secs: f64 = cases.iter().map(|c| c.bytecode_best.as_secs_f64()).sum();
    let total_points = (cases.len() * options.points) as f64;
    let totals = (
        total_points / interp_secs,
        total_points / bytecode_secs,
        interp_secs / bytecode_secs,
    );

    println!(
        "eval_throughput: {} cases ({} benchmarks x {} targets reachable), {} points each",
        cases.len(),
        benchsuite::all().len(),
        TARGETS.len(),
        options.points
    );
    for target_name in TARGETS {
        let subset: Vec<&Case> = cases.iter().filter(|c| c.target == *target_name).collect();
        if subset.is_empty() {
            continue;
        }
        let interp: f64 = subset.iter().map(|c| c.interp_best.as_secs_f64()).sum();
        let byte: f64 = subset.iter().map(|c| c.bytecode_best.as_secs_f64()).sum();
        let pts = (subset.len() * options.points) as f64;
        println!(
            "  {target_name:>10}: tree-walk {:>12.0} pts/s | bytecode {:>12.0} pts/s | {:>5.2}x ({} cases)",
            pts / interp,
            pts / byte,
            interp / byte,
            subset.len()
        );
    }
    println!(
        "  {:>10}: tree-walk {:>12.0} pts/s | bytecode {:>12.0} pts/s | {:>5.2}x",
        "TOTAL", totals.0, totals.1, totals.2
    );

    let json = to_json(&options, &cases, totals);
    std::fs::write(&options.out, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", options.out));
    println!("wrote {}", options.out);

    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} point(s) diverged between tree walk and bytecode");
        std::process::exit(1);
    }
    println!("bit-identity: OK (every point, every case)");

    if options.min_speedup > 0.0 && totals.2 < options.min_speedup {
        eprintln!(
            "FAIL: corpus-wide speedup {:.2}x is below the gate ({:.2}x)",
            totals.2, options.min_speedup
        );
        std::process::exit(1);
    }
}
