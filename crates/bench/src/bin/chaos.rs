//! Chaos gate: the corpus must survive seeded fault injection.
//!
//! Runs a small corpus through [`Session::compile_many`] under hundreds of
//! seeded [`fault::FaultPlan`]s, each arming 1–3 named fault points
//! ([`fault::PIPELINE_SITES`]) with deterministic abort or panic actions.
//! The service-layer sites ([`fault::SERVICE_SITES`]) are exercised by the
//! daemon's own chaos tests in `tests/service.rs` instead. The gate
//! holds the resilience contract of docs/RESILIENCE.md:
//!
//! 1. **No process aborts.** Every injected panic is caught at a job
//!    boundary; an unwind escaping `compile_many` fails the gate.
//! 2. **Every cell is `Ok` or a typed error.** Each `Err` cell must render
//!    its `Display` and `source()` chain, and be classified by
//!    [`chassis::CompileError::kind`]; every failed cell must also have reported a
//!    [`Progress::JobFailed`] event.
//! 3. **The unarmed layer is free.** With an installed-but-empty plan the
//!    frontiers are bit-identical to a run with no plan at all.
//!
//! ```text
//! cargo run --release -p chassis-bench --bin chaos -- --plans 200 --limit 3
//! ```
//!
//! Exit status 1 on any violation; the run is deterministic per `--seed`.

use chassis::{Progress, SearchControl, Session};
use chassis_bench::{corpus_cores, grid_mismatches, resolve_targets, HarnessOptions, ResultGrid};
use fpcore::FPCore;
use std::error::Error as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use targets::Target;

/// Targets every plan compiles for: one all-emulated and one partly native
/// (same pair as `search_throughput`).
const TARGETS: &[&str] = &["c99", "arith-fma"];

type Grid = ResultGrid;

/// Parses `--plans N` (default 200). [`HarnessOptions::from_args`] ignores
/// flags it does not know, so the two parsers compose.
fn plans_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--plans") {
        Some(i) => args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("bad or missing value for --plans");
                std::process::exit(2);
            }),
        None => 200,
    }
}

/// One corpus run under a fresh session (sessions cache prepared state, so a
/// fresh one per run keeps every run independent and deterministic per seed).
fn run_corpus(
    cores: &[FPCore],
    target_list: &[Target],
    config: &chassis::Config,
    ctl: &SearchControl,
) -> Grid {
    Session::new(config.clone()).compile_many_with(cores, target_list, ctl)
}

/// Checks one fault-plan run's grid: every cell `Ok` or a *well-formed* typed
/// error. Returns the number of failed cells, or `Err` with a description of
/// the malformed cell.
fn check_grid(grid: &Grid) -> Result<usize, String> {
    let mut failed = 0;
    for (b, row) in grid.iter().enumerate() {
        for (t, cell) in row.iter().enumerate() {
            if let Err(e) = cell {
                failed += 1;
                // The whole taxonomy must render: Display, kind, and the
                // source() chain (a panic inside any of these is caught by
                // the per-plan boundary and fails the gate).
                let rendered = format!("{} [{}]", e, e.kind());
                if rendered.is_empty() {
                    return Err(format!("benchmark {b}, target {t}: empty error rendering"));
                }
                let mut source = e.source();
                let mut depth = 0;
                while let Some(cause) = source {
                    depth += 1;
                    if depth > 8 {
                        return Err(format!("benchmark {b}, target {t}: cyclic source chain"));
                    }
                    source = cause.source();
                }
            }
        }
    }
    Ok(failed)
}

fn main() {
    let options = HarnessOptions::from_args();
    let n_plans = plans_from_args();

    // A micro search configuration: the gate exercises control flow, not
    // search quality, so a few points and one iteration per job keep hundreds
    // of corpus runs fast.
    let mut config = options.config();
    config.train_points = 8;
    config.test_points = 8;
    config.improve.iterations = 1;
    config.improve.isel.node_limit = 1_000;
    config.improve.isel.iter_limit = 3;
    let seed = config.seed;

    let benchmarks = {
        let limited = HarnessOptions {
            limit: options.limit.min(3),
            ..options
        };
        limited.benchmarks()
    };
    let cores: Vec<FPCore> = corpus_cores(&benchmarks);
    let target_list: Vec<Target> = resolve_targets(TARGETS);
    println!(
        "chaos: {} benchmarks x {} targets, {} fault plans, seed {seed}",
        cores.len(),
        target_list.len(),
        n_plans
    );

    // Gate 3: the unarmed fault layer is invisible. Run once with no plan,
    // once with an installed-but-empty plan (the slow path armed, nothing
    // firing), and require bit-identical grids.
    let ctl = SearchControl::new();
    let baseline = run_corpus(&cores, &target_list, &config, &ctl);
    let empty_run = {
        let _armed = fault::install(fault::FaultPlan::new());
        run_corpus(&cores, &target_list, &config, &ctl)
    };
    let drift = grid_mismatches(&baseline, &empty_run, true);
    if !drift.is_empty() {
        eprintln!("FAIL: an installed empty fault plan changed the corpus result:");
        for m in &drift {
            eprintln!("  {m}");
        }
        std::process::exit(1);
    }
    let baseline_failures = match check_grid(&baseline) {
        Ok(n) => n,
        Err(why) => {
            eprintln!("FAIL: baseline grid malformed: {why}");
            std::process::exit(1);
        }
    };
    println!(
        "baseline: {} cells, {baseline_failures} failed, empty plan bit-identical",
        baseline.len() * target_list.len()
    );

    // Injected panics are expected by the hundreds below: silence the default
    // "thread panicked" hook so real diagnostics stay readable. Escapes are
    // still detected — by the catch_unwind around each plan run.
    std::panic::set_hook(Box::new(|_| {}));

    let mut escaped = 0usize;
    let mut malformed = 0usize;
    let mut event_mismatches = 0usize;
    let mut total_fires = 0u64;
    let mut total_failed = 0usize;
    let mut plans_with_fires = 0u64;
    for p in 0..n_plans {
        // Seed over the pipeline subset only: the service sites (store.*,
        // service.accept) are unreachable from a bare corpus run, and a plan
        // arming only dead sites would water the gate down.
        let plan = fault::FaultPlan::seeded(seed.wrapping_add(p), fault::PIPELINE_SITES);
        let armed = fault::install(plan.clone());
        let job_failed_events = AtomicUsize::new(0);
        let observer = |event: &Progress| {
            if matches!(event, Progress::JobFailed { .. }) {
                job_failed_events.fetch_add(1, Ordering::Relaxed);
            }
        };
        let ctl = SearchControl::new().with_progress(&observer);
        // Gate 1: a panic escaping compile_many is a process-level failure.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_corpus(&cores, &target_list, &config, &ctl)
        }));
        let fires = armed.fires();
        drop(armed);
        total_fires += fires;
        if fires > 0 {
            plans_with_fires += 1;
        }
        match outcome {
            Ok(grid) => match check_grid(&grid) {
                // Gate 2: typed, well-formed errors only — and one JobFailed
                // event observed per failed cell.
                Ok(failed) => {
                    total_failed += failed;
                    let events = job_failed_events.load(Ordering::Relaxed);
                    if events != failed {
                        eprintln!(
                            "FAIL: plan {p} ({plan}): {failed} failed cells but \
                             {events} JobFailed events"
                        );
                        event_mismatches += 1;
                    }
                }
                Err(why) => {
                    eprintln!("FAIL: plan {p} ({plan}): {why}");
                    malformed += 1;
                }
            },
            Err(_) => {
                eprintln!("FAIL: plan {p} ({plan}): a panic escaped compile_many");
                escaped += 1;
            }
        }
    }
    let _ = std::panic::take_hook();

    println!(
        "{n_plans} plans: {total_fires} faults fired ({plans_with_fires} plans hit), \
         {total_failed} jobs failed with typed errors"
    );
    if escaped > 0 || malformed > 0 || event_mismatches > 0 {
        eprintln!(
            "FAIL: {escaped} escaped panic(s), {malformed} malformed grid(s), \
             {event_mismatches} event mismatch(es)"
        );
        std::process::exit(1);
    }
    if n_plans > 0 && total_fires == 0 {
        eprintln!("FAIL: no fault ever fired — the harness is not injecting");
        std::process::exit(1);
    }
    println!("chaos: OK (no aborts, every failure typed, unarmed layer invisible)");
}
