//! Regenerates the three case studies of Section 6.4:
//!
//! 1. the half-b quadratic formula on AVX (FMA variants and `rcp`),
//! 2. the ellipse coefficient on Julia (`sind` / `cosd` / `deg2rad` / `abs2`),
//! 3. the inverse hyperbolic cotangent on fdlibm (`log1pmd`).
//!
//! ```text
//! cargo run --release -p chassis-bench --bin case_studies [-- --seed N]
//! ```

use chassis::Session;
use chassis_bench::{run_chassis_full, HarnessOptions};
use fpcore::parse_fpcore;
use targets::builtin;

fn study(session: &Session, title: &str, target_name: &str, source: &str, highlight: &[&str]) {
    let target = builtin::by_name(target_name).expect("builtin target");
    let core = parse_fpcore(source).expect("case study parses");
    println!("\n=== {title} (target: {target_name}) ===");
    println!("input: {core}");
    match run_chassis_full(session, &target, &core) {
        None => println!("  compilation failed (sampling or unsupported)"),
        Some(result) => {
            println!(
                "  initial: cost {:8.1}  accuracy {:5.1} bits   {}",
                result.initial.cost, result.initial.accuracy_bits, result.initial.rendered
            );
            for imp in &result.implementations {
                println!(
                    "  output:  cost {:8.1}  accuracy {:5.1} bits   {}",
                    imp.cost, imp.accuracy_bits, imp.rendered
                );
            }
            let used: Vec<&str> = highlight
                .iter()
                .copied()
                .filter(|h| {
                    result
                        .implementations
                        .iter()
                        .any(|i| i.rendered.contains(h))
                })
                .collect();
            println!("  target-specific operators used: {used:?}");
        }
    }
}

fn main() {
    let session = HarnessOptions::from_args().session();
    study(
        &session,
        "Quadratic formula (half-b form)",
        "avx",
        "(FPCore ((! :precision binary32 a) (! :precision binary32 b2) (! :precision binary32 c)) :precision binary32 :name \"quadratic (paper 6.4)\" :pre (and (> a 0.001) (< a 100) (> b2 0.01) (< b2 100) (> c 0.001) (< c 1) (> (- (* b2 b2) (* a c)) 0.0001)) (/ (+ (- b2) (sqrt (- (* b2 b2) (* a c)))) a))",
        &["fmadd", "fmsub", "fnmadd", "fnmsub", "rcp.f32", "rsqrt.f32"],
    );
    study(
        &session,
        "Ellipse implicit-equation coefficient",
        "julia",
        "(FPCore (a b theta) :name \"ellipse coefficient (paper 6.4)\" :pre (and (> a 0.01) (< a 100) (> b 0.01) (< b 100) (> theta -360) (< theta 360)) (+ (* (* a a) (* (sin (* (/ PI 180) theta)) (sin (* (/ PI 180) theta)))) (* (* b b) (* (cos (* (/ PI 180) theta)) (cos (* (/ PI 180) theta))))))",
        &["sind.f64", "cosd.f64", "deg2rad.f64", "abs2.f64", "sinpi.f64"],
    );
    study(
        &session,
        "Inverse hyperbolic cotangent",
        "fdlibm",
        "(FPCore (x) :name \"acoth (paper 6.4)\" :pre (and (> x -0.9) (< x 0.9) (!= x 0)) (* (/ 1 2) (log (/ (+ 1 x) (- 1 x)))))",
        &["log1pmd.f64", "log1p.f64", "atanh.f64"],
    );
}
