//! Regenerates Figure 9: Chassis' speedup *over Herbie's output programs* at
//! matched accuracy, per target.
//!
//! This is the alternative view of the Figure 8 data: instead of normalizing by
//! the initial input programs, each accuracy level is normalized by the cost of
//! Herbie's cheapest program reaching that accuracy.
//!
//! Like fig8, the corpus is prepared once through a session — sampling, ground
//! truth, and the target-agnostic Herbie run happen per benchmark, not per
//! (benchmark, target).
//!
//! ```text
//! cargo run --release -p chassis-bench --bin fig9_over_herbie -- --limit 5 [--seed N]
//! ```

use chassis_bench::{
    geometric_mean, herbie_transcribed_outcome, prepare_corpus, run_prepared_corpus,
    BenchmarkOutcome, HarnessOptions,
};
use targets::builtin;

fn main() {
    let options = HarnessOptions::from_args();
    let benchmarks = options.benchmarks();
    let session = options.session();
    println!(
        "Figure 9: Chassis speedup over Herbie at matched accuracy ({} benchmarks, seed {})",
        benchmarks.len(),
        session.seed()
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12}  {:>10}",
        "target", "low acc", "mid acc", "high acc", "benchmarks"
    );

    let prepared = prepare_corpus(&session, &benchmarks, true);
    for target in builtin::all_targets() {
        let mut per_level: Vec<Vec<f64>> = vec![Vec::new(), Vec::new(), Vec::new()];
        let mut counted = 0usize;
        // Search both systems per benchmark in parallel against the shared
        // prepared state, then aggregate the comparable pairs in corpus order.
        let pairs = run_prepared_corpus(&prepared, |pb| {
            (
                pb.prepared
                    .compile(&target)
                    .ok()
                    .map(|r| BenchmarkOutcome::from_result(pb.benchmark.name, &r)),
                herbie_transcribed_outcome(&target, pb),
            )
        });
        for (chassis, herbie) in pairs {
            let (Some(chassis), Some(herbie)) = (chassis, herbie) else {
                continue;
            };
            counted += 1;
            // Accuracy levels: span Herbie's frontier from its cheapest to its
            // most accurate output.
            let herbie_min = herbie
                .frontier
                .iter()
                .map(|p| p.accuracy_bits)
                .fold(f64::INFINITY, f64::min);
            let herbie_max = herbie
                .frontier
                .iter()
                .map(|p| p.accuracy_bits)
                .fold(f64::NEG_INFINITY, f64::max);
            for (level_idx, t) in [0.1, 0.5, 0.9].iter().enumerate() {
                let threshold = herbie_min + (herbie_max - herbie_min) * t;
                let (Some(h), Some(c)) = (
                    herbie.cheapest_at_least(threshold),
                    chassis.cheapest_at_least(threshold),
                ) else {
                    continue;
                };
                per_level[level_idx].push(h.cost / c.cost.max(1e-9));
            }
        }
        println!(
            "{:<12} {:>11.2}x {:>11.2}x {:>11.2}x  {:>10}",
            target.name,
            geometric_mean(&per_level[0]),
            geometric_mean(&per_level[1]),
            geometric_mean(&per_level[2]),
            counted
        );
    }
    println!(
        "\n(values > 1 mean Chassis' program is cheaper than Herbie's at that accuracy level;"
    );
    println!(" 'high acc' is the regime the paper notes Herbie is especially tuned for)");
    println!(
        "(prepared {} benchmarks once for {} target sweeps)",
        session.prepare_count(),
        builtin::all_targets().len()
    );
}
