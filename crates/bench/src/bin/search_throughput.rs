//! End-to-end search throughput: corpus compiles under the serial/uniform
//! baseline vs. the mixed-precision ground-truth engine vs. the fully
//! parallel search — with a corpus-wide frontier bit-identity check. This is
//! the CI perf gate for the search loop itself (the improve/regimes phases),
//! complementing `eval_throughput` (the per-point evaluation hot path) and
//! `par_speedup` (the accuracy-sweep primitive).
//!
//! Three configurations compile the same corpus at the same seed:
//!
//! 1. `serial_uniform` — one thread, `TruthEngine::Uniform`: the pre-parallel,
//!    pre-adaptive baseline;
//! 2. `serial_adaptive` — one thread, `TruthEngine::Adaptive`: isolates the
//!    mixed-precision ground-truth win (selective re-evaluation of
//!    non-converged nodes, cross-expression reuse, DAG balancing);
//! 3. `parallel_adaptive` — all cores, `TruthEngine::Adaptive`: adds
//!    intra-compilation parallelism (candidate batches, scoring, regime
//!    sweeps) and the `compile_many` job fan-out.
//!
//! Every configuration must produce **bit-identical frontiers** (same
//! programs, same costs, same error bits) on every `(benchmark, target)`
//! cell — exit 1 otherwise. Each configuration runs the corpus twice through
//! one session: the *cold* sweep pays sampling, ground truth, and search; the
//! *warm* sweep replays it against the session's prepared state and populated
//! ground-truth caches.
//!
//! Per-phase wall-clock (lowering/improve/regimes/final), saturation time,
//! candidates scored, and the ground-truth cache counters are aggregated from
//! each result's `SearchStats` and archived in `BENCH_search.json` (schema 1)
//! with a `history` array carrying prior runs forward.
//!
//! Gates (machine-relative by construction — both sides of each ratio are
//! measured in the same run on the same machine):
//!
//! * `--min-par-speedup X` requires cold corpus wall-clock of
//!   `serial_adaptive` ≥ X × `parallel_adaptive` (skipped on one core);
//! * `--min-gt-speedup X` requires ground-truth eval time of
//!   `serial_uniform` ≥ X × `serial_adaptive`.
//!
//! ```text
//! cargo run --release -p chassis-bench --bin search_throughput -- \
//!     --limit 8 --min-par-speedup 2 --min-gt-speedup 1.5 --out BENCH_search.json
//! ```

use chassis::{par, Config, SearchStats, Session, TruthEngine};
use chassis_bench::{corpus_cores, grid_mismatches, HarnessOptions, ResultGrid};
use fpcore::FPCore;
use std::time::{Duration, Instant};
use targets::Target;

/// Targets every sweep compiles for: one all-emulated (c99) and one
/// native-arithmetic (arith-fma) target.
const TARGETS: &[&str] = &["c99", "arith-fma"];

struct Options {
    limit: usize,
    seed: Option<u64>,
    thorough: bool,
    min_par_speedup: f64,
    min_gt_speedup: f64,
    out: String,
}

impl Options {
    /// Strict parsing: this binary is a CI gate, so an unknown flag or an
    /// unparsable value aborts (exit 2) instead of silently falling back to a
    /// default that could leave the gate disabled.
    fn from_args() -> Options {
        let mut options = Options {
            limit: 8,
            seed: None,
            thorough: false,
            min_par_speedup: 0.0,
            min_gt_speedup: 0.0,
            out: "BENCH_search.json".to_owned(),
        };
        let usage = "usage: search_throughput [--limit N] [--full] [--seed N] \
                     [--thorough] [--min-par-speedup X] [--min-gt-speedup X] \
                     [--out PATH]";
        fn value<T: std::str::FromStr>(args: &[String], i: usize, usage: &str) -> T {
            args.get(i + 1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("bad or missing value for {}\n{usage}", args[i]);
                    std::process::exit(2);
                })
        }
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--limit" => {
                    options.limit = value(&args, i, usage);
                    i += 2;
                }
                "--full" => {
                    options.limit = usize::MAX;
                    i += 1;
                }
                "--seed" => {
                    options.seed = Some(value(&args, i, usage));
                    i += 2;
                }
                "--thorough" => {
                    options.thorough = true;
                    i += 1;
                }
                "--min-par-speedup" => {
                    options.min_par_speedup = value(&args, i, usage);
                    i += 2;
                }
                "--min-gt-speedup" => {
                    options.min_gt_speedup = value(&args, i, usage);
                    i += 2;
                }
                "--out" => {
                    options.out = args.get(i + 1).cloned().unwrap_or_else(|| {
                        eprintln!("missing value for --out\n{usage}");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                other => {
                    eprintln!("unknown option {other:?}\n{usage}");
                    std::process::exit(2);
                }
            }
        }
        options
    }

    fn config(&self) -> Config {
        let harness = HarnessOptions {
            limit: self.limit,
            fast: !self.thorough,
            seed: self.seed,
        };
        harness.config()
    }

    fn corpus(&self) -> Vec<FPCore> {
        let harness = HarnessOptions {
            limit: self.limit,
            fast: !self.thorough,
            seed: self.seed,
        };
        corpus_cores(&harness.benchmarks())
    }
}

/// Aggregated outcome of one corpus sweep configuration.
struct Sweep {
    label: &'static str,
    cold: Duration,
    warm: Duration,
    lowering: Duration,
    improve: Duration,
    regimes: Duration,
    final_evaluation: Duration,
    saturation: Duration,
    candidates_scored: usize,
    jobs_failed: usize,
    gt_eval: Duration,
    gt_node_evals: u64,
    gt_evals_saved: u64,
    gt_hits: usize,
    gt_misses: usize,
    balanced: usize,
    rows: ResultGrid,
}

fn run_sweep(
    label: &'static str,
    cores: &[FPCore],
    target_list: &[Target],
    config: Config,
) -> Sweep {
    let session = Session::new(config);
    let started = Instant::now();
    let rows = session.compile_many(cores, target_list);
    let cold = started.elapsed();
    let started = Instant::now();
    let _warm_rows = session.compile_many(cores, target_list);
    let warm = started.elapsed();

    // A failed cell is reported and skipped — the sweep keeps going and the
    // aggregate counts it, exactly like a corpus run in production would.
    for (b, row) in rows.iter().enumerate() {
        for (t, cell) in row.iter().enumerate() {
            if let Err(e) = cell {
                eprintln!(
                    "warning: {label}: benchmark {b}, target {t} failed ({}): {e}",
                    e.kind()
                );
            }
        }
    }
    let agg = SearchStats::aggregate(&rows);
    Sweep {
        label,
        cold,
        warm,
        lowering: agg.lowering,
        improve: agg.improve,
        regimes: agg.regimes,
        final_evaluation: agg.final_evaluation,
        saturation: agg.saturation,
        candidates_scored: agg.candidates_scored,
        jobs_failed: agg.jobs_failed,
        gt_eval: agg.truths.eval_time,
        gt_node_evals: agg.truths.node_evals,
        gt_evals_saved: agg.truths.evals_saved(),
        gt_hits: agg.truths.hits,
        gt_misses: agg.truths.misses,
        balanced: agg.truths.balanced,
        rows,
    }
}

/// Asserts two corpus sweeps produced bit-identical frontiers everywhere.
/// Error cells are matched loosely (`strict_errors = false`): engine choice
/// may legitimately change a failure's detail, but never Ok vs. Err.
fn assert_identical(reference: &Sweep, other: &Sweep) -> bool {
    let mismatches = grid_mismatches(&reference.rows, &other.rows, false);
    for m in &mismatches {
        eprintln!("error: {m} ({} vs {})", reference.label, other.label);
    }
    mismatches.is_empty()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn sweep_json(s: &Sweep) -> String {
    format!(
        "{{\"cold_ms\": {:.1}, \"warm_ms\": {:.1}, \"lowering_ms\": {:.1}, \
         \"improve_ms\": {:.1}, \"regimes_ms\": {:.1}, \"final_ms\": {:.1}, \
         \"saturation_ms\": {:.1}, \"candidates_scored\": {}, \"jobs_failed\": {}, \
         \"gt_eval_ms\": {:.1}, \"gt_node_evals\": {}, \"gt_evals_saved\": {}, \
         \"gt_hits\": {}, \"gt_misses\": {}, \"balanced\": {}}}",
        ms(s.cold),
        ms(s.warm),
        ms(s.lowering),
        ms(s.improve),
        ms(s.regimes),
        ms(s.final_evaluation),
        ms(s.saturation),
        s.candidates_scored,
        s.jobs_failed,
        ms(s.gt_eval),
        s.gt_node_evals,
        s.gt_evals_saved,
        s.gt_hits,
        s.gt_misses,
        s.balanced,
    )
}

/// Prior history entries carried forward from an existing out file.
fn prior_history(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Some(start) = text.find("\"history\": [") else {
        return Vec::new();
    };
    let rest = &text[start + "\"history\": [".len()..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end]
        .lines()
        .map(|line| line.trim().trim_end_matches(',').to_owned())
        .filter(|line| line.starts_with('{'))
        .collect()
}

fn to_json(
    seed: u64,
    n_benchmarks: usize,
    cores_available: usize,
    sweeps: &[&Sweep],
    par_speedup: f64,
    gt_speedup: f64,
    history: &[String],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"benchmarks\": {n_benchmarks},\n"));
    let names: Vec<String> = TARGETS.iter().map(|t| format!("\"{t}\"")).collect();
    out.push_str(&format!("  \"targets\": [{}],\n", names.join(", ")));
    out.push_str(&format!("  \"cores\": {cores_available},\n"));
    out.push_str("  \"runs\": {\n");
    for (i, sweep) in sweeps.iter().enumerate() {
        let comma = if i + 1 < sweeps.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {}{comma}\n",
            sweep.label,
            sweep_json(sweep)
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"par_speedup\": {par_speedup:.2},\n  \"gt_speedup\": {gt_speedup:.2},\n"
    ));
    out.push_str("  \"history\": [\n");
    for (i, entry) in history.iter().enumerate() {
        let comma = if i + 1 < history.len() { "," } else { "" };
        out.push_str(&format!("    {entry}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let options = Options::from_args();
    let cores_list = options.corpus();
    let target_list: Vec<Target> = chassis_bench::resolve_targets(TARGETS);
    let seed = options.config().seed;
    let cores_available = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "{} benchmarks x {} targets, seed {seed}, {cores_available} core(s) available\n",
        cores_list.len(),
        target_list.len()
    );

    par::set_thread_count(1);
    let mut config = options.config();
    config.truth_engine = TruthEngine::Uniform;
    let serial_uniform = run_sweep("serial_uniform", &cores_list, &target_list, config);

    let mut config = options.config();
    config.truth_engine = TruthEngine::Adaptive;
    let serial_adaptive = run_sweep("serial_adaptive", &cores_list, &target_list, config.clone());

    par::set_thread_count(0);
    let workers = par::effective_threads(usize::MAX);
    let parallel_adaptive = run_sweep("parallel_adaptive", &cores_list, &target_list, config);

    let identical = assert_identical(&serial_uniform, &serial_adaptive)
        & assert_identical(&serial_uniform, &parallel_adaptive);

    let sweeps = [&serial_uniform, &serial_adaptive, &parallel_adaptive];
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>12}",
        "run", "cold ms", "warm ms", "improve", "regimes", "gt ms", "gt evals", "gt saved"
    );
    for s in sweeps {
        println!(
            "{:<18} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>10} {:>12}",
            s.label,
            ms(s.cold),
            ms(s.warm),
            ms(s.improve),
            ms(s.regimes),
            ms(s.gt_eval),
            s.gt_node_evals,
            s.gt_evals_saved,
        );
    }

    let par_speedup =
        serial_adaptive.cold.as_secs_f64() / parallel_adaptive.cold.as_secs_f64().max(1e-12);
    let gt_speedup =
        serial_uniform.gt_eval.as_secs_f64() / serial_adaptive.gt_eval.as_secs_f64().max(1e-12);
    let end_to_end =
        serial_uniform.cold.as_secs_f64() / parallel_adaptive.cold.as_secs_f64().max(1e-12);
    println!(
        "\nparallel speedup ({workers} workers): {par_speedup:.2}x   \
         ground-truth speedup (uniform/adaptive): {gt_speedup:.2}x   \
         end-to-end (baseline/full): {end_to_end:.2}x"
    );
    println!(
        "frontiers bit-identical across engines and thread counts: {}",
        if identical { "yes" } else { "NO" }
    );

    let mut history = prior_history(&options.out);
    history.push(format!(
        "{{\"schema_version\": 1, \"seed\": {seed}, \"benchmarks\": {}, \"cores\": {cores_available}, \
         \"serial_uniform_cold_ms\": {:.1}, \"serial_adaptive_cold_ms\": {:.1}, \
         \"parallel_adaptive_cold_ms\": {:.1}, \"par_speedup\": {par_speedup:.2}, \
         \"gt_speedup\": {gt_speedup:.2}, \"end_to_end_speedup\": {end_to_end:.2}}}",
        cores_list.len(),
        ms(serial_uniform.cold),
        ms(serial_adaptive.cold),
        ms(parallel_adaptive.cold),
    ));
    let json = to_json(
        seed,
        cores_list.len(),
        cores_available,
        &sweeps,
        par_speedup,
        gt_speedup,
        &history,
    );
    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("error: cannot write {}: {e}", options.out);
        std::process::exit(1);
    }
    println!("wrote {}", options.out);

    if !identical {
        eprintln!("error: search results changed across engines/thread counts");
        std::process::exit(1);
    }
    if options.min_par_speedup > 0.0 {
        if cores_available == 1 {
            println!("(single core: --min-par-speedup gate skipped)");
        } else if par_speedup < options.min_par_speedup {
            eprintln!(
                "error: parallel speedup {par_speedup:.2}x below the floor {:.2}x",
                options.min_par_speedup
            );
            std::process::exit(1);
        }
    }
    if options.min_gt_speedup > 0.0 && gt_speedup < options.min_gt_speedup {
        eprintln!(
            "error: ground-truth speedup {gt_speedup:.2}x below the floor {:.2}x",
            options.min_gt_speedup
        );
        std::process::exit(1);
    }
}
