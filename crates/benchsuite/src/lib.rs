//! # benchsuite
//!
//! A benchmark corpus for the Chassis reproduction, mirroring the *sources and
//! shape* of the 547-benchmark Herbie 2.0.2 suite used in the paper's evaluation:
//! numerical-analysis textbook kernels (Hamming), quadratic/cubic formula
//! variants, math-library identities, and geometry / physics / statistics
//! kernels. Each benchmark is a self-contained FPCore with a precondition
//! describing its interesting input domain.
//!
//! The corpus is smaller than Herbie's (the aggregate Pareto curves only need a
//! representative spread of accuracy-limited and cost-limited kernels), but every
//! benchmark is a real expression drawn from the same literature.

pub mod corpus;

pub use corpus::{all, by_group, by_name, groups, Benchmark};

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_fpcore;

    #[test]
    fn corpus_is_nonempty_and_diverse() {
        let benchmarks = all();
        assert!(
            benchmarks.len() >= 50,
            "expected a substantial corpus, got {}",
            benchmarks.len()
        );
        assert!(groups().len() >= 5);
        for group in groups() {
            assert!(
                by_group(group).len() >= 4,
                "group {group} should have several benchmarks"
            );
        }
    }

    #[test]
    fn every_benchmark_parses() {
        for b in all() {
            let core = parse_fpcore(b.source)
                .unwrap_or_else(|e| panic!("benchmark {} does not parse: {e}", b.name));
            assert!(!core.args.is_empty() || core.body.variables().is_empty());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|b| b.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate benchmark names");
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("quadratic-formula-positive-root").is_some());
        assert!(by_name("does-not-exist").is_none());
    }
}
