//! The benchmark corpus.

use fpcore::{parse_fpcore, FPCore};

/// One benchmark: a name, the group it belongs to, and its FPCore source.
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// Unique benchmark name.
    pub name: &'static str,
    /// Source group (mirrors the Herbie suite's directory structure).
    pub group: &'static str,
    /// FPCore source text.
    pub source: &'static str,
}

impl Benchmark {
    /// Parses the benchmark into an [`FPCore`].
    ///
    /// # Panics
    ///
    /// Panics if the embedded source is malformed (checked by the test suite).
    pub fn fpcore(&self) -> FPCore {
        parse_fpcore(self.source)
            .unwrap_or_else(|e| panic!("benchmark {} is malformed: {e}", self.name))
    }
}

macro_rules! benchmarks {
    ($(($name:literal, $group:literal, $source:literal)),+ $(,)?) => {
        &[ $( Benchmark { name: $name, group: $group, source: $source } ),+ ]
    };
}

/// The full corpus.
pub const CORPUS: &[Benchmark] = benchmarks![
    // ----------------------------------------------------------------- hamming
    (
        "sqrt-add-one-minus-sqrt",
        "hamming",
        "(FPCore (x) :name \"sqrt(x+1) - sqrt(x)\" :pre (and (> x 1) (< x 1e15)) (- (sqrt (+ x 1)) (sqrt x)))"
    ),
    (
        "expm1-over-x",
        "hamming",
        "(FPCore (x) :name \"(exp(x)-1)/x\" :pre (and (> x -1) (< x 1) (!= x 0)) (/ (- (exp x) 1) x))"
    ),
    (
        "one-minus-cos-over-sq",
        "hamming",
        "(FPCore (x) :name \"(1-cos(x))/x^2\" :pre (and (> x 1e-8) (< x 1)) (/ (- 1 (cos x)) (* x x)))"
    ),
    (
        "log-one-plus-over-x",
        "hamming",
        "(FPCore (x) :name \"log(1+x)/x\" :pre (and (> x 1e-12) (< x 1)) (/ (log (+ 1 x)) x))"
    ),
    (
        "sin-minus-x-over-cube",
        "hamming",
        "(FPCore (x) :name \"(x-sin(x))/x^3\" :pre (and (> x 1e-4) (< x 1)) (/ (- x (sin x)) (* x (* x x))))"
    ),
    (
        "tan-minus-sin",
        "hamming",
        "(FPCore (x) :name \"tan(x) - sin(x)\" :pre (and (> x 1e-6) (< x 1)) (- (tan x) (sin x)))"
    ),
    (
        "sqrt-diff-of-squares",
        "hamming",
        "(FPCore (x y) :name \"sqrt(x^2 - y^2)\" :pre (and (> x 1) (< x 1e6) (> y 0) (< y 1)) (sqrt (- (* x x) (* y y))))"
    ),
    (
        "exp-minus-exp-neg",
        "hamming",
        "(FPCore (x) :name \"2 sinh via exp\" :pre (and (> x 1e-8) (< x 1)) (- (exp x) (exp (- x))))"
    ),
    (
        "cos-diff-identity",
        "hamming",
        "(FPCore (x eps) :name \"cos(x+eps) - cos(x)\" :pre (and (> x 0) (< x 6) (> eps 1e-9) (< eps 1e-3)) (- (cos (+ x eps)) (cos x)))"
    ),
    (
        "quadrature-small-angle",
        "hamming",
        "(FPCore (x) :name \"1 - cos^2\" :pre (and (> x 1e-8) (< x 1e-2)) (- 1 (* (cos x) (cos x))))"
    ),
    (
        "log-quotient",
        "hamming",
        "(FPCore (x) :name \"log((x+1)/x)\" :pre (and (> x 1) (< x 1e12)) (log (/ (+ x 1) x)))"
    ),
    (
        "inverse-sum-difference",
        "hamming",
        "(FPCore (x) :name \"1/(x+1) - 1/x\" :pre (and (> x 1) (< x 1e10)) (- (/ 1 (+ x 1)) (/ 1 x)))"
    ),
    // ------------------------------------------------------------- quadratics
    (
        "quadratic-formula-positive-root",
        "quadratics",
        "(FPCore (a b c) :name \"quadratic formula (+)\" :pre (and (> a 1e-3) (< a 1e3) (> b 1e-2) (< b 1e4) (> c 1e-3) (< c 1) (> (- (* b b) (* 4 (* a c))) 0)) (/ (+ (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a)))"
    ),
    (
        "quadratic-formula-negative-root",
        "quadratics",
        "(FPCore (a b c) :name \"quadratic formula (-)\" :pre (and (> a 1e-3) (< a 1e3) (> b 1e-2) (< b 1e4) (> c 1e-3) (< c 1) (> (- (* b b) (* 4 (* a c))) 0)) (/ (- (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a)))"
    ),
    (
        "quadratic-halfb",
        "quadratics",
        "(FPCore (a b2 c) :name \"half-b quadratic (paper case study)\" :pre (and (> a 1e-3) (< a 1e3) (> b2 1e-2) (< b2 1e4) (> c 1e-3) (< c 1) (> (- (* b2 b2) (* a c)) 0)) (/ (+ (- b2) (sqrt (- (* b2 b2) (* a c)))) a))"
    ),
    (
        "discriminant",
        "quadratics",
        "(FPCore (a b c) :name \"discriminant\" :pre (and (> a 1e-6) (< a 1e6) (> b 1e-6) (< b 1e6) (> c 1e-6) (< c 1e6)) (- (* b b) (* 4 (* a c))))"
    ),
    (
        "vieta-product",
        "quadratics",
        "(FPCore (a b c) :name \"root product via Vieta\" :pre (and (> a 1e-3) (< a 1e3) (> b 1) (< b 1e4) (> c 1e-3) (< c 1e3)) (/ c a))"
    ),
    (
        "cubic-depressed-shift",
        "quadratics",
        "(FPCore (a b) :name \"depressed cubic shift\" :pre (and (> a 1e-3) (< a 1e3) (> b 1e-3) (< b 1e3)) (- b (/ (* a a) 3)))"
    ),
    (
        "poly-eval-horner3",
        "quadratics",
        "(FPCore (x) :name \"cubic polynomial, expanded\" :pre (and (> x -10) (< x 10)) (+ (+ (+ (* 2 (* x (* x x))) (* 3 (* x x))) (* 4 x)) 5))"
    ),
    (
        "poly-root-residual",
        "quadratics",
        "(FPCore (x) :name \"(x-1)(x-2) expanded\" :pre (and (> x 0.5) (< x 3)) (+ (- (* x x) (* 3 x)) 2))"
    ),
    // -------------------------------------------------------------------- trig
    (
        "ellipse-coefficient",
        "trig",
        "(FPCore (a b theta) :name \"ellipse coefficient (paper case study)\" :pre (and (> a 1e-3) (< a 1e3) (> b 1e-3) (< b 1e3) (> theta -360) (< theta 360)) (+ (* (* a a) (* (sin (* (/ PI 180) theta)) (sin (* (/ PI 180) theta)))) (* (* b b) (* (cos (* (/ PI 180) theta)) (cos (* (/ PI 180) theta))))))"
    ),
    (
        "haversine-kernel",
        "trig",
        "(FPCore (dlat dlon lat1 lat2) :name \"haversine kernel\" :pre (and (> dlat -3) (< dlat 3) (> dlon -3) (< dlon 3) (> lat1 -1.5) (< lat1 1.5) (> lat2 -1.5) (< lat2 1.5)) (+ (* (sin (/ dlat 2)) (sin (/ dlat 2))) (* (* (cos lat1) (cos lat2)) (* (sin (/ dlon 2)) (sin (/ dlon 2))))))"
    ),
    (
        "sin-sum-identity",
        "trig",
        "(FPCore (a b) :name \"sin(a+b)\" :pre (and (> a -3) (< a 3) (> b -3) (< b 3)) (sin (+ a b)))"
    ),
    (
        "tan-half-angle",
        "trig",
        "(FPCore (x) :name \"tan half angle\" :pre (and (> x 1e-6) (< x 1.5)) (/ (- 1 (cos x)) (sin x)))"
    ),
    (
        "cot-difference",
        "trig",
        "(FPCore (x) :name \"1/tan - cos/sin\" :pre (and (> x 0.01) (< x 1.5)) (- (/ 1 (tan x)) (/ (cos x) (sin x))))"
    ),
    (
        "atan-quotient",
        "trig",
        "(FPCore (y x) :name \"atan2 via atan\" :pre (and (> x 0.01) (< x 1e3) (> y 0.01) (< y 1e3)) (atan (/ y x)))"
    ),
    (
        "asin-sqrt",
        "trig",
        "(FPCore (x) :name \"asin(sqrt(x))\" :pre (and (> x 1e-6) (< x 0.999)) (asin (sqrt x)))"
    ),
    (
        "degrees-to-radians-sin",
        "trig",
        "(FPCore (d) :name \"sin of degrees\" :pre (and (> d -720) (< d 720)) (sin (* d (/ PI 180))))"
    ),
    (
        "chord-length",
        "trig",
        "(FPCore (r theta) :name \"chord length\" :pre (and (> r 0.01) (< r 1e3) (> theta 1e-4) (< theta 3)) (* (* 2 r) (sin (/ theta 2))))"
    ),
    (
        "sinc",
        "trig",
        "(FPCore (x) :name \"sinc\" :pre (and (> x 1e-9) (< x 10)) (/ (sin x) x))"
    ),
    // ------------------------------------------------------------------ logexp
    (
        "acoth-paper",
        "logexp",
        "(FPCore (x) :name \"inverse hyperbolic cotangent (paper case study)\" :pre (and (> x -0.9) (< x 0.9) (!= x 0)) (* (/ 1 2) (log (/ (+ 1 x) (- 1 x)))))"
    ),
    (
        "acoth-log1p-form",
        "logexp",
        "(FPCore (x) :name \"acoth via log1p\" :pre (and (> x -0.9) (< x 0.9)) (* 0.5 (- (log1p x) (log1p (- x)))))"
    ),
    (
        "log-sum-exp-2",
        "logexp",
        "(FPCore (a b) :name \"logaddexp\" :pre (and (> a -20) (< a 20) (> b -20) (< b 20)) (log (+ (exp a) (exp b))))"
    ),
    (
        "logistic",
        "logexp",
        "(FPCore (x) :name \"logistic function\" :pre (and (> x -30) (< x 30)) (/ 1 (+ 1 (exp (- x)))))"
    ),
    (
        "logit",
        "logexp",
        "(FPCore (p) :name \"logit\" :pre (and (> p 1e-6) (< p 0.999999)) (log (/ p (- 1 p))))"
    ),
    (
        "softplus",
        "logexp",
        "(FPCore (x) :name \"softplus\" :pre (and (> x -30) (< x 30)) (log (+ 1 (exp x))))"
    ),
    (
        "exp-diff-quotient",
        "logexp",
        "(FPCore (x h) :name \"exp difference quotient\" :pre (and (> x -5) (< x 5) (> h 1e-9) (< h 1e-2)) (/ (- (exp (+ x h)) (exp x)) h))"
    ),
    (
        "log-ratio-close",
        "logexp",
        "(FPCore (x y) :name \"log of close ratio\" :pre (and (> x 1) (< x 1e6) (> y 1) (< y 1e6)) (log (/ x y)))"
    ),
    (
        "pow-via-exp-log",
        "logexp",
        "(FPCore (x y) :name \"x^y\" :pre (and (> x 0.1) (< x 100) (> y -5) (< y 5)) (pow x y))"
    ),
    (
        "exp-sq-difference",
        "logexp",
        "(FPCore (x) :name \"exp(x)^2 - exp(2x)\" :pre (and (> x -10) (< x 10)) (- (* (exp x) (exp x)) (exp (* 2 x))))"
    ),
    (
        "entropy-term",
        "logexp",
        "(FPCore (p) :name \"entropy term\" :pre (and (> p 1e-9) (< p 1)) (- (* p (log p))))"
    ),
    (
        "geometric-mean-2",
        "logexp",
        "(FPCore (a b) :name \"geometric mean\" :pre (and (> a 1e-6) (< a 1e6) (> b 1e-6) (< b 1e6)) (exp (/ (+ (log a) (log b)) 2)))"
    ),
    // ---------------------------------------------------------------- geometry
    (
        "hypotenuse",
        "geometry",
        "(FPCore (x y) :name \"hypotenuse\" :pre (and (> x 1e-6) (< x 1e8) (> y 1e-6) (< y 1e8)) (sqrt (+ (* x x) (* y y))))"
    ),
    (
        "hypotenuse-3d",
        "geometry",
        "(FPCore (x y z) :name \"3D vector norm\" :pre (and (> x 1e-3) (< x 1e6) (> y 1e-3) (< y 1e6) (> z 1e-3) (< z 1e6)) (sqrt (+ (* x x) (+ (* y y) (* z z)))))"
    ),
    (
        "triangle-area-heron",
        "geometry",
        "(FPCore (a b c) :name \"Heron's formula\" :pre (and (> a 1) (< a 100) (> b 1) (< b 100) (> c 1) (< c 100) (> (+ a b) c) (> (+ b c) a) (> (+ a c) b)) (sqrt (* (* (/ (+ (+ a b) c) 2) (- (/ (+ (+ a b) c) 2) a)) (* (- (/ (+ (+ a b) c) 2) b) (- (/ (+ (+ a b) c) 2) c)))))"
    ),
    (
        "unit-vector-x",
        "geometry",
        "(FPCore (x y) :name \"normalize x component\" :pre (and (> x 1e-3) (< x 1e6) (> y 1e-3) (< y 1e6)) (/ x (sqrt (+ (* x x) (* y y)))))"
    ),
    (
        "dot-product-2d",
        "geometry",
        "(FPCore (ax ay bx by) :name \"2D dot product\" :pre (and (> ax -1e3) (< ax 1e3) (> ay -1e3) (< ay 1e3) (> bx -1e3) (< bx 1e3) (> by -1e3) (< by 1e3)) (+ (* ax bx) (* ay by)))"
    ),
    (
        "cross-product-z",
        "geometry",
        "(FPCore (ax ay bx by) :name \"2D cross product\" :pre (and (> ax 0.1) (< ax 1e3) (> ay 0.1) (< ay 1e3) (> bx 0.1) (< bx 1e3) (> by 0.1) (< by 1e3)) (- (* ax by) (* ay bx)))"
    ),
    (
        "sphere-cap-volume",
        "geometry",
        "(FPCore (r h) :name \"spherical cap volume\" :pre (and (> r 0.1) (< r 1e3) (> h 0.01) (< h 0.2)) (* (* (/ PI 3) (* h h)) (- (* 3 r) h)))"
    ),
    (
        "circle-segment-area",
        "geometry",
        "(FPCore (r theta) :name \"circular segment area\" :pre (and (> r 0.1) (< r 1e3) (> theta 1e-3) (< theta 3)) (* (* 0.5 (* r r)) (- theta (sin theta))))"
    ),
    (
        "distance-squared-diff",
        "geometry",
        "(FPCore (x1 x2) :name \"difference of squares distance\" :pre (and (> x1 1) (< x1 1e7) (> x2 1) (< x2 1e7)) (- (* x1 x1) (* x2 x2)))"
    ),
    (
        "slope",
        "geometry",
        "(FPCore (x1 y1 x2 y2) :name \"slope between points\" :pre (and (> x1 0) (< x1 1e3) (> y1 0) (< y1 1e3) (> x2 1e3) (< x2 2e3) (> y2 0) (< y2 1e3)) (/ (- y2 y1) (- x2 x1)))"
    ),
    // ----------------------------------------------------------------- physics
    (
        "relativistic-gamma",
        "physics",
        "(FPCore (beta) :name \"Lorentz factor\" :pre (and (> beta 1e-6) (< beta 0.999999)) (/ 1 (sqrt (- 1 (* beta beta)))))"
    ),
    (
        "kinetic-energy-relativistic",
        "physics",
        "(FPCore (m beta) :name \"relativistic kinetic energy factor\" :pre (and (> m 1e-3) (< m 1e3) (> beta 1e-6) (< beta 0.99)) (* m (- (/ 1 (sqrt (- 1 (* beta beta)))) 1)))"
    ),
    (
        "projectile-range",
        "physics",
        "(FPCore (v theta g) :name \"projectile range\" :pre (and (> v 0.1) (< v 1e3) (> theta 0.01) (< theta 1.5) (> g 9) (< g 10)) (/ (* (* v v) (sin (* 2 theta))) g))"
    ),
    (
        "pendulum-period",
        "physics",
        "(FPCore (l g) :name \"pendulum period\" :pre (and (> l 0.01) (< l 100) (> g 9) (< g 10)) (* (* 2 PI) (sqrt (/ l g))))"
    ),
    (
        "planck-radiation-tail",
        "physics",
        "(FPCore (x) :name \"Planck tail 1/(e^x - 1)\" :pre (and (> x 1e-6) (< x 30)) (/ 1 (- (exp x) 1)))"
    ),
    (
        "doppler-shift",
        "physics",
        "(FPCore (f v c) :name \"Doppler shift\" :pre (and (> f 1) (< f 1e9) (> v 0.1) (< v 300) (> c 299792457) (< c 299792459)) (* f (/ c (- c v))))"
    ),
    (
        "lens-equation",
        "physics",
        "(FPCore (do di) :name \"thin lens focal length\" :pre (and (> do 0.01) (< do 1e3) (> di 0.01) (< di 1e3)) (/ 1 (+ (/ 1 do) (/ 1 di))))"
    ),
    (
        "rms-velocity",
        "physics",
        "(FPCore (a b c) :name \"root mean square of three\" :pre (and (> a 1e-3) (< a 1e3) (> b 1e-3) (< b 1e3) (> c 1e-3) (< c 1e3)) (sqrt (/ (+ (* a a) (+ (* b b) (* c c))) 3)))"
    ),
    (
        "gravitational-potential-diff",
        "physics",
        "(FPCore (m r1 r2) :name \"potential energy difference\" :pre (and (> m 1e-3) (< m 1e6) (> r1 1) (< r1 1e6) (> r2 1) (< r2 1e6)) (* m (- (/ 1 r1) (/ 1 r2))))"
    ),
    (
        "snell-refraction",
        "physics",
        "(FPCore (n1 n2 theta) :name \"Snell's law sine\" :pre (and (> n1 1) (< n1 2) (> n2 1) (< n2 2) (> theta 0.01) (< theta 1.5)) (asin (* (/ n1 n2) (sin theta))))"
    ),
    // -------------------------------------------------------------- statistics
    (
        "variance-two-pass-term",
        "statistics",
        "(FPCore (x mu) :name \"squared deviation\" :pre (and (> x -1e6) (< x 1e6) (> mu -1e6) (< mu 1e6)) (* (- x mu) (- x mu)))"
    ),
    (
        "variance-naive",
        "statistics",
        "(FPCore (sx sxx n) :name \"naive variance\" :pre (and (> n 2) (< n 1e6) (> sx 1) (< sx 1e6) (> sxx 1) (< sxx 1e9) (> (- (* n sxx) (* sx sx)) 0)) (/ (- (* n sxx) (* sx sx)) (* n (- n 1))))"
    ),
    (
        "gaussian-pdf-exponent",
        "statistics",
        "(FPCore (x mu sigma) :name \"Gaussian exponent\" :pre (and (> x -100) (< x 100) (> mu -100) (< mu 100) (> sigma 0.01) (< sigma 100)) (- (/ (* (- x mu) (- x mu)) (* 2 (* sigma sigma)))))"
    ),
    (
        "gaussian-pdf",
        "statistics",
        "(FPCore (x sigma) :name \"Gaussian density at mean offset x\" :pre (and (> x -30) (< x 30) (> sigma 0.1) (< sigma 10)) (/ (exp (- (/ (* x x) (* 2 (* sigma sigma))))) (* sigma (sqrt (* 2 PI)))))"
    ),
    (
        "log-likelihood-ratio",
        "statistics",
        "(FPCore (p q) :name \"log likelihood ratio term\" :pre (and (> p 1e-9) (< p 1) (> q 1e-9) (< q 1)) (* p (log (/ p q))))"
    ),
    (
        "odds-ratio",
        "statistics",
        "(FPCore (p q) :name \"odds ratio\" :pre (and (> p 1e-6) (< p 0.999) (> q 1e-6) (< q 0.999)) (/ (* p (- 1 q)) (* q (- 1 p))))"
    ),
    (
        "sigmoid-derivative",
        "statistics",
        "(FPCore (x) :name \"sigmoid derivative\" :pre (and (> x -30) (< x 30)) (* (/ 1 (+ 1 (exp (- x)))) (- 1 (/ 1 (+ 1 (exp (- x)))))))"
    ),
    (
        "welford-update",
        "statistics",
        "(FPCore (mean x n) :name \"Welford mean update\" :pre (and (> mean -1e6) (< mean 1e6) (> x -1e6) (< x 1e6) (> n 1) (< n 1e9)) (+ mean (/ (- x mean) n)))"
    ),
    // -------------------------------------------------------------- libraries
    (
        "fast-inverse-sqrt-use",
        "libraries",
        "(FPCore (x) :name \"reciprocal square root\" :pre (and (> x 1e-6) (< x 1e6)) (/ 1 (sqrt x)))"
    ),
    (
        "reciprocal",
        "libraries",
        "(FPCore (x) :name \"reciprocal\" :pre (and (> x 1e-6) (< x 1e6)) (/ 1 x))"
    ),
    (
        "fused-axpy",
        "libraries",
        "(FPCore (a x y) :name \"axpy kernel\" :pre (and (> a -1e3) (< a 1e3) (> x -1e3) (< x 1e3) (> y -1e3) (< y 1e3)) (+ (* a x) y))"
    ),
    (
        "polynomial-kernel-degree2",
        "libraries",
        "(FPCore (x y c) :name \"quadratic kernel\" :pre (and (> x -1e2) (< x 1e2) (> y -1e2) (< y 1e2) (> c 0) (< c 10)) (* (+ (* x y) c) (+ (* x y) c)))"
    ),
    (
        "smoothstep",
        "libraries",
        "(FPCore (x) :name \"smoothstep\" :pre (and (> x 0) (< x 1)) (* (* x x) (- 3 (* 2 x))))"
    ),
    (
        "lerp",
        "libraries",
        "(FPCore (a b t) :name \"linear interpolation\" :pre (and (> a -1e6) (< a 1e6) (> b -1e6) (< b 1e6) (> t 0) (< t 1)) (+ a (* t (- b a))))"
    ),
    (
        "hypot-scaled",
        "libraries",
        "(FPCore (x y) :name \"scaled hypot\" :pre (and (> x 1e-3) (< x 1e3) (> y 1e-3) (< y 1e3)) (* x (sqrt (+ 1 (/ (* y y) (* x x))))))"
    ),
    (
        "rsqrt-newton-step",
        "libraries",
        "(FPCore (x r) :name \"rsqrt Newton refinement\" :pre (and (> x 0.5) (< x 2) (> r 0.5) (< r 2)) (* r (- 1.5 (* (* 0.5 x) (* r r)))))"
    ),
    (
        "normalized-difference",
        "libraries",
        "(FPCore (a b) :name \"normalized difference index\" :pre (and (> a 1e-3) (< a 1e4) (> b 1e-3) (< b 1e4)) (/ (- a b) (+ a b)))"
    ),
    (
        "mean-of-two",
        "libraries",
        "(FPCore (a b) :name \"midpoint\" :pre (and (> a -1e15) (< a 1e15) (> b -1e15) (< b 1e15)) (/ (+ a b) 2))"
    ),
];

/// Every benchmark in the corpus.
pub fn all() -> &'static [Benchmark] {
    CORPUS
}

/// The distinct group names, in corpus order.
pub fn groups() -> Vec<&'static str> {
    let mut seen = Vec::new();
    for b in CORPUS {
        if !seen.contains(&b.group) {
            seen.push(b.group);
        }
    }
    seen
}

/// The benchmarks belonging to a group.
pub fn by_group(group: &str) -> Vec<&'static Benchmark> {
    CORPUS.iter().filter(|b| b.group == group).collect()
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<&'static Benchmark> {
    CORPUS.iter().find(|b| b.name == name)
}
