//! The e-graph data structure: hash-consed e-nodes grouped into e-classes.

use crate::analysis::Analysis;
use crate::language::{Id, Language, RecExpr};
use crate::unionfind::UnionFind;
use std::collections::{BTreeMap, HashMap};

/// An equivalence class of e-nodes.
#[derive(Clone, Debug)]
pub struct EClass<L, D> {
    /// The canonical id of this class (at the time of the last rebuild).
    pub id: Id,
    /// The e-nodes belonging to this class. Children ids are canonical after a
    /// [`EGraph::rebuild`].
    pub nodes: Vec<L>,
    /// The analysis datum for this class.
    pub data: D,
}

impl<L, D> EClass<L, D> {
    /// Number of e-nodes in the class.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the class holds no e-nodes (never the case for reachable classes).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// An e-graph over language `L` with analysis `A`.
///
/// See the crate-level documentation for an example.
#[derive(Clone, Debug)]
pub struct EGraph<L: Language, A: Analysis<L>> {
    unionfind: UnionFind,
    memo: HashMap<L, Id>,
    classes: BTreeMap<Id, EClass<L, A::Data>>,
    /// Set by `union`, cleared by `rebuild`. Searching a dirty e-graph is allowed
    /// but may miss congruent matches.
    dirty: bool,
    /// Total number of unions performed (used by the runner to detect saturation).
    union_count: usize,
}

impl<L: Language, A: Analysis<L>> Default for EGraph<L, A> {
    fn default() -> Self {
        EGraph {
            unionfind: UnionFind::new(),
            memo: HashMap::new(),
            classes: BTreeMap::new(),
            dirty: false,
            union_count: 0,
        }
    }
}

impl<L: Language, A: Analysis<L>> EGraph<L, A> {
    /// Creates an empty e-graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical representative of `id`.
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find(id)
    }

    /// Number of e-classes.
    pub fn number_of_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total number of e-nodes across all classes.
    pub fn number_of_nodes(&self) -> usize {
        self.classes.values().map(|c| c.nodes.len()).sum()
    }

    /// Total number of unions performed so far.
    pub fn union_count(&self) -> usize {
        self.union_count
    }

    /// True if unions have happened since the last [`rebuild`](Self::rebuild).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Iterates over all e-classes in a deterministic order.
    pub fn classes(&self) -> impl Iterator<Item = &EClass<L, A::Data>> {
        self.classes.values()
    }

    /// The e-class containing `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never returned by this e-graph.
    pub fn class(&self, id: Id) -> &EClass<L, A::Data> {
        let canon = self.find(id);
        self.classes
            .get(&canon)
            .expect("id does not belong to this e-graph")
    }

    /// The analysis datum of the class containing `id`.
    pub fn class_data(&self, id: Id) -> &A::Data {
        &self.class(id).data
    }

    /// Adds an e-node (canonicalizing its children), returning its e-class.
    /// Structurally identical e-nodes are deduplicated.
    pub fn add(&mut self, mut enode: L) -> Id {
        enode.update_children(|c| self.unionfind.find(c));
        if let Some(&id) = self.memo.get(&enode) {
            return self.find(id);
        }
        let data = A::make(self, &enode);
        let id = self.unionfind.make_set();
        self.classes.insert(
            id,
            EClass {
                id,
                nodes: vec![enode.clone()],
                data,
            },
        );
        self.memo.insert(enode, id);
        A::modify(self, id);
        self.find(id)
    }

    /// Adds every node of a [`RecExpr`], returning the e-class of its root.
    ///
    /// # Panics
    ///
    /// Panics if the expression is empty.
    pub fn add_expr(&mut self, expr: &RecExpr<L>) -> Id {
        assert!(!expr.is_empty(), "cannot add an empty expression");
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.nodes() {
            let canonical = node.map_children(|c| ids[c.index()]);
            ids.push(self.add(canonical));
        }
        *ids.last().expect("nonempty expression")
    }

    /// Looks up the e-class of an e-node without inserting it.
    pub fn lookup(&self, mut enode: L) -> Option<Id> {
        enode.update_children(|c| self.unionfind.find(c));
        self.memo.get(&enode).map(|&id| self.find(id))
    }

    /// Merges the e-classes of `a` and `b`. Returns the surviving canonical id and
    /// whether anything changed. Call [`rebuild`](Self::rebuild) before searching
    /// again to restore congruence.
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return (a, false);
        }
        let winner = self.unionfind.union(a, b);
        let loser = if winner == a { b } else { a };
        let loser_class = self.classes.remove(&loser).expect("loser class must exist");
        let winner_class = self
            .classes
            .get_mut(&winner)
            .expect("winner class must exist");
        winner_class.nodes.extend(loser_class.nodes);
        let data_changed = A::merge(&mut winner_class.data, loser_class.data);
        self.dirty = true;
        self.union_count += 1;
        if data_changed {
            A::modify(self, winner);
        }
        (winner, true)
    }

    /// Restores the e-graph invariants after unions: canonicalizes every e-node,
    /// re-establishes hash-consing, performs congruence-induced unions, and
    /// re-propagates analysis data, repeating until a fixed point.
    pub fn rebuild(&mut self) {
        loop {
            let congruence_changed = self.rebuild_classes();
            let analysis_changed = self.update_analysis();
            if !congruence_changed && !analysis_changed {
                break;
            }
        }
        self.dirty = false;
    }

    fn rebuild_classes(&mut self) -> bool {
        let ids: Vec<Id> = self.classes.keys().copied().collect();
        let mut new_memo: HashMap<L, Id> = HashMap::with_capacity(self.memo.len());
        let mut pending: Vec<(Id, Id)> = Vec::new();
        for id in ids {
            let uf = &self.unionfind;
            let class = self
                .classes
                .get_mut(&id)
                .expect("class keys are canonical between unions");
            for node in &mut class.nodes {
                node.update_children(|c| uf.find(c));
            }
            class.nodes.sort();
            class.nodes.dedup();
            for node in &class.nodes {
                match new_memo.entry(node.clone()) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != id {
                            pending.push((*e.get(), id));
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(id);
                    }
                }
            }
        }
        self.memo = new_memo;
        let mut changed = false;
        for (a, b) in pending {
            changed |= self.union(a, b).1;
        }
        changed
    }

    fn update_analysis(&mut self) -> bool {
        let mut changed = false;
        let ids: Vec<Id> = self.classes.keys().copied().collect();
        for id in ids {
            let id = self.find(id);
            if !self.classes.contains_key(&id) {
                continue;
            }
            let nodes = self.classes[&id].nodes.clone();
            for node in nodes {
                let data = A::make(self, &node);
                let id = self.find(id);
                let class = self
                    .classes
                    .get_mut(&id)
                    .expect("canonical class must exist");
                if A::merge(&mut class.data, data) {
                    changed = true;
                    A::modify(self, id);
                }
            }
        }
        changed
    }

    /// Extracts *some* concrete term from the class of `id` (the first found by a
    /// depth-first walk that avoids cycles). Mostly useful for debugging; use an
    /// [`crate::Extractor`] for cost-aware extraction.
    pub fn any_term(&self, id: Id) -> Option<RecExpr<L>> {
        fn go<L: Language, A: Analysis<L>>(
            eg: &EGraph<L, A>,
            id: Id,
            seen: &mut Vec<Id>,
            out: &mut RecExpr<L>,
        ) -> Option<Id> {
            let id = eg.find(id);
            if seen.contains(&id) {
                return None;
            }
            seen.push(id);
            // Prefer leaves so the walk terminates quickly.
            let mut nodes: Vec<&L> = eg.class(id).nodes.iter().collect();
            nodes.sort_by_key(|n| n.children().len());
            for node in nodes {
                let mut child_ids = Vec::with_capacity(node.children().len());
                let mut ok = true;
                for &c in node.children() {
                    match go(eg, c, seen, out) {
                        Some(cid) => child_ids.push(cid),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    let new_node = node.map_children(|c| {
                        let idx = node.children().iter().position(|&x| x == c).unwrap();
                        child_ids[idx]
                    });
                    seen.pop();
                    return Some(out.add(new_node));
                }
            }
            seen.pop();
            None
        }
        let mut out = RecExpr::new();
        let mut seen = Vec::new();
        go(self, id, &mut seen, &mut out).map(|_| out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::NoAnalysis;
    use crate::language::testlang::TestLang;

    type EG = EGraph<TestLang, NoAnalysis>;

    #[test]
    fn hash_consing_deduplicates() {
        let mut eg = EG::default();
        let x1 = eg.add(TestLang::Var("x"));
        let x2 = eg.add(TestLang::Var("x"));
        assert_eq!(x1, x2);
        assert_eq!(eg.number_of_classes(), 1);
        let y = eg.add(TestLang::Var("y"));
        assert_ne!(x1, y);
        assert_eq!(eg.number_of_nodes(), 2);
    }

    #[test]
    fn union_merges_classes() {
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let y = eg.add(TestLang::Var("y"));
        assert!(!eg.is_dirty());
        let (_, changed) = eg.union(x, y);
        assert!(changed);
        assert!(eg.is_dirty());
        eg.rebuild();
        assert_eq!(eg.find(x), eg.find(y));
        assert_eq!(eg.number_of_classes(), 1);
        assert_eq!(eg.class(x).len(), 2);
        let (_, changed_again) = eg.union(x, y);
        assert!(!changed_again);
    }

    #[test]
    fn congruence_closure() {
        // If x = y then f(x) = f(y) after rebuilding.
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let y = eg.add(TestLang::Var("y"));
        let fx = eg.add(TestLang::Neg([x]));
        let fy = eg.add(TestLang::Neg([y]));
        assert_ne!(eg.find(fx), eg.find(fy));
        eg.union(x, y);
        eg.rebuild();
        assert_eq!(eg.find(fx), eg.find(fy));
    }

    #[test]
    fn congruence_cascades() {
        // x = y implies g(f(x)) = g(f(y)) through two levels.
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let y = eg.add(TestLang::Var("y"));
        let fx = eg.add(TestLang::Neg([x]));
        let fy = eg.add(TestLang::Neg([y]));
        let gfx = eg.add(TestLang::Mul([fx, fx]));
        let gfy = eg.add(TestLang::Mul([fy, fy]));
        eg.union(x, y);
        eg.rebuild();
        assert_eq!(eg.find(gfx), eg.find(gfy));
    }

    #[test]
    fn add_expr_and_any_term() {
        let mut eg = EG::default();
        let mut expr = RecExpr::new();
        let x = expr.add(TestLang::Var("x"));
        let one = expr.add(TestLang::Num(1));
        let _sum = expr.add(TestLang::Add([x, one]));
        let root = eg.add_expr(&expr);
        assert_eq!(eg.number_of_nodes(), 3);
        let term = eg.any_term(root).expect("extractable term");
        assert_eq!(term.tree_size(term.root()), 3);
    }

    #[test]
    fn lookup_respects_canonicalization() {
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let y = eg.add(TestLang::Var("y"));
        let fx = eg.add(TestLang::Neg([x]));
        eg.union(x, y);
        eg.rebuild();
        // Looking up Neg(y) should find the same class as Neg(x).
        let found = eg.lookup(TestLang::Neg([y])).expect("congruent node");
        assert_eq!(found, eg.find(fx));
        assert_eq!(eg.lookup(TestLang::Var("zzz")), None);
    }

    #[test]
    fn self_cycle_via_union_is_handled() {
        // Create x + 0 and union it with x, producing a cyclic class; any_term
        // must still terminate and produce a finite term.
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let zero = eg.add(TestLang::Num(0));
        let sum = eg.add(TestLang::Add([x, zero]));
        eg.union(sum, x);
        eg.rebuild();
        assert_eq!(eg.find(sum), eg.find(x));
        let term = eg.any_term(x).expect("finite term");
        assert!(term.len() <= 3);
    }
}
