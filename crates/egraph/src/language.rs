//! The [`Language`] trait describing e-node shapes, e-class [`Id`]s, and the
//! [`RecExpr`] flattened term representation used for extraction results.

use std::fmt;

/// An e-class identifier.
///
/// Ids index into the e-graph's union-find; after unions, always canonicalize
/// through [`crate::EGraph::find`] before comparing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Id(pub(crate) u32);

impl Id {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for Id {
    fn from(i: usize) -> Id {
        Id(u32::try_from(i).expect("e-class id overflow"))
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({})", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An e-node language.
///
/// An e-node is an operator applied to e-class children. Implementations store
/// children as `Id`s and expose them through [`children`](Language::children) /
/// [`children_mut`](Language::children_mut). Equality and hashing must take the
/// operator *and* the children into account (derive them); the extra
/// [`matches_op`](Language::matches_op) method compares only the operator part and
/// is used by e-matching.
pub trait Language: Clone + Eq + std::hash::Hash + Ord + fmt::Debug {
    /// The children e-classes of this e-node.
    fn children(&self) -> &[Id];

    /// Mutable access to the children (used for canonicalization).
    fn children_mut(&mut self) -> &mut [Id];

    /// True when `self` and `other` are the same operator with the same arity,
    /// ignoring the children.
    fn matches_op(&self, other: &Self) -> bool;

    /// True for e-nodes without children.
    fn is_leaf(&self) -> bool {
        self.children().is_empty()
    }

    /// Applies `f` to each child id in place.
    fn update_children(&mut self, mut f: impl FnMut(Id) -> Id) {
        for c in self.children_mut() {
            *c = f(*c);
        }
    }

    /// Returns a copy with children mapped through `f`.
    fn map_children(&self, f: impl FnMut(Id) -> Id) -> Self {
        let mut node = self.clone();
        node.update_children(f);
        node
    }
}

/// A flattened term: a sequence of e-nodes whose children refer to *earlier*
/// positions in the sequence. The root is the last node.
///
/// This is the result type of extraction and the input type for bulk insertion.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecExpr<L> {
    nodes: Vec<L>,
}

impl<L> Default for RecExpr<L> {
    fn default() -> Self {
        RecExpr { nodes: Vec::new() }
    }
}

impl<L: Language> RecExpr<L> {
    /// Creates an empty term.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a node whose children must reference earlier positions, returning
    /// its position as an [`Id`].
    ///
    /// # Panics
    ///
    /// Panics if a child id references this node or a later position.
    pub fn add(&mut self, node: L) -> Id {
        for child in node.children() {
            assert!(
                child.index() < self.nodes.len(),
                "RecExpr children must reference earlier nodes"
            );
        }
        self.nodes.push(node);
        Id::from(self.nodes.len() - 1)
    }

    /// The node stored at `id`.
    pub fn node(&self, id: Id) -> &L {
        &self.nodes[id.index()]
    }

    /// The root node (last added).
    ///
    /// # Panics
    ///
    /// Panics if the expression is empty.
    pub fn root(&self) -> Id {
        assert!(!self.nodes.is_empty(), "empty RecExpr has no root");
        Id::from(self.nodes.len() - 1)
    }

    /// All nodes in insertion order.
    pub fn nodes(&self) -> &[L] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of nodes in the tree rooted at `id` (counting shared nodes each
    /// time they appear, i.e. the size of the unfolding).
    pub fn tree_size(&self, id: Id) -> usize {
        let node = self.node(id);
        1 + node
            .children()
            .iter()
            .map(|&c| self.tree_size(c))
            .sum::<usize>()
    }
}

impl<L: Language> FromIterator<L> for RecExpr<L> {
    fn from_iter<T: IntoIterator<Item = L>>(iter: T) -> Self {
        let mut expr = RecExpr::new();
        for node in iter {
            expr.add(node);
        }
        expr
    }
}

#[cfg(test)]
pub(crate) mod testlang {
    use super::*;

    /// A small arithmetic language used by the crate's unit tests.
    #[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
    pub enum TestLang {
        Num(i64),
        Var(&'static str),
        Add([Id; 2]),
        Mul([Id; 2]),
        Neg([Id; 1]),
    }

    impl Language for TestLang {
        fn children(&self) -> &[Id] {
            match self {
                TestLang::Num(_) | TestLang::Var(_) => &[],
                TestLang::Add(c) | TestLang::Mul(c) => c,
                TestLang::Neg(c) => c,
            }
        }

        fn children_mut(&mut self) -> &mut [Id] {
            match self {
                TestLang::Num(_) | TestLang::Var(_) => &mut [],
                TestLang::Add(c) | TestLang::Mul(c) => c,
                TestLang::Neg(c) => c,
            }
        }

        fn matches_op(&self, other: &Self) -> bool {
            match (self, other) {
                (TestLang::Num(a), TestLang::Num(b)) => a == b,
                (TestLang::Var(a), TestLang::Var(b)) => a == b,
                (TestLang::Add(_), TestLang::Add(_)) => true,
                (TestLang::Mul(_), TestLang::Mul(_)) => true,
                (TestLang::Neg(_), TestLang::Neg(_)) => true,
                _ => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testlang::TestLang;
    use super::*;

    #[test]
    fn recexpr_construction() {
        let mut e: RecExpr<TestLang> = RecExpr::new();
        assert!(e.is_empty());
        let x = e.add(TestLang::Var("x"));
        let one = e.add(TestLang::Num(1));
        let sum = e.add(TestLang::Add([x, one]));
        assert_eq!(e.len(), 3);
        assert_eq!(e.root(), sum);
        assert_eq!(e.tree_size(sum), 3);
        assert!(matches!(e.node(x), TestLang::Var("x")));
    }

    #[test]
    #[should_panic(expected = "earlier nodes")]
    fn recexpr_rejects_forward_references() {
        let mut e: RecExpr<TestLang> = RecExpr::new();
        e.add(TestLang::Add([Id::from(0usize), Id::from(1usize)]));
    }

    #[test]
    fn map_children() {
        let node = TestLang::Add([Id::from(0usize), Id::from(1usize)]);
        let mapped = node.map_children(|id| Id::from(id.index() + 10));
        assert_eq!(mapped.children(), &[Id::from(10usize), Id::from(11usize)]);
        assert!(node.matches_op(&mapped));
        assert!(!node.is_leaf());
        assert!(TestLang::Num(3).is_leaf());
    }

    #[test]
    fn tree_size_counts_unfolding() {
        let mut e: RecExpr<TestLang> = RecExpr::new();
        let x = e.add(TestLang::Var("x"));
        let sq = e.add(TestLang::Mul([x, x]));
        let out = e.add(TestLang::Add([sq, sq]));
        assert_eq!(e.tree_size(out), 7);
    }
}
