//! The equality-saturation runner: repeatedly applies a rule set until
//! saturation or until resource limits are hit.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::Language;
use crate::rewrite::Rewrite;
use std::time::{Duration, Instant};

/// Resource limits for a saturation run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunnerLimits {
    /// Maximum number of rule-application iterations.
    pub iter_limit: usize,
    /// Stop once the e-graph holds this many e-nodes (the paper uses 8000).
    pub node_limit: usize,
    /// Wall-clock budget for the whole run.
    pub time_limit: Duration,
    /// Cap on matches applied per rule per iteration (guards against explosive
    /// rules such as associativity).
    pub match_limit: usize,
}

impl Default for RunnerLimits {
    fn default() -> Self {
        RunnerLimits {
            iter_limit: 8,
            node_limit: 8_000,
            time_limit: Duration::from_secs(5),
            match_limit: 2_500,
        }
    }
}

/// Why a saturation run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// No rule produced any new equality.
    Saturated,
    /// The iteration limit was reached.
    IterLimit,
    /// The node limit was reached.
    NodeLimit,
    /// The time limit was reached.
    TimeLimit,
}

/// Statistics about a completed run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Number of iterations performed.
    pub iterations: usize,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// E-nodes in the final e-graph.
    pub nodes: usize,
    /// E-classes in the final e-graph.
    pub classes: usize,
    /// Total unions applied by rewrites.
    pub applied: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// Drives equality saturation over an e-graph.
#[derive(Clone, Debug, Default)]
pub struct Runner {
    limits: RunnerLimits,
}

impl Runner {
    /// A runner with default limits.
    pub fn new() -> Runner {
        Runner::default()
    }

    /// A runner with the given limits.
    pub fn with_limits(limits: RunnerLimits) -> Runner {
        Runner { limits }
    }

    /// The limits this runner enforces.
    pub fn limits(&self) -> RunnerLimits {
        self.limits
    }

    /// Runs the rules until saturation or a limit is reached. The e-graph is
    /// rebuilt after every iteration, so it is clean when this returns.
    pub fn run<L: Language, A: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, A>,
        rules: &[Rewrite<L, A>],
    ) -> RunReport {
        let start = Instant::now();
        let mut iterations = 0;
        let mut total_applied = 0;
        let stop_reason = loop {
            if iterations >= self.limits.iter_limit {
                break StopReason::IterLimit;
            }
            // Chaos harness: an armed abort behaves exactly like hitting the
            // node cap — the run stops with whatever equalities exist so far.
            if fault::point("egraph.saturate") {
                break StopReason::NodeLimit;
            }
            if egraph.number_of_nodes() >= self.limits.node_limit {
                break StopReason::NodeLimit;
            }
            if start.elapsed() >= self.limits.time_limit {
                break StopReason::TimeLimit;
            }

            // Search all rules against the current (clean) e-graph, then apply.
            // Searching before applying keeps one iteration's matches independent
            // of the order rules are listed in.
            let mut iteration_applied = 0;
            let mut all_matches = Vec::with_capacity(rules.len());
            for rule in rules {
                let mut matches = rule.search(egraph);
                if matches.len() > self.limits.match_limit {
                    matches.truncate(self.limits.match_limit);
                }
                all_matches.push(matches);
            }
            for (rule, matches) in rules.iter().zip(&all_matches) {
                iteration_applied += rule.apply(egraph, matches);
                if egraph.number_of_nodes() >= self.limits.node_limit {
                    break;
                }
            }
            egraph.rebuild();
            iterations += 1;
            total_applied += iteration_applied;

            if iteration_applied == 0 {
                break StopReason::Saturated;
            }
        };
        // Make sure the e-graph is clean even if we stopped mid-iteration.
        if egraph.is_dirty() {
            egraph.rebuild();
        }
        RunReport {
            iterations,
            stop_reason,
            nodes: egraph.number_of_nodes(),
            classes: egraph.number_of_classes(),
            applied: total_applied,
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::NoAnalysis;
    use crate::language::testlang::TestLang;
    use crate::language::Id;
    use crate::pattern::{PatVar, Pattern, PatternNode};

    type EG = EGraph<TestLang, NoAnalysis>;
    type RW = Rewrite<TestLang, NoAnalysis>;

    fn binary_pattern(make: fn([Id; 2]) -> TestLang, a: &str, b: &str) -> Pattern<TestLang> {
        Pattern::from_nodes(vec![
            PatternNode::Var(PatVar::new(a)),
            PatternNode::Var(PatVar::new(b)),
            PatternNode::ENode(make([Id::from(0usize), Id::from(1usize)])),
        ])
    }

    fn rules() -> Vec<RW> {
        vec![
            Rewrite::new(
                "commute-add",
                binary_pattern(TestLang::Add, "a", "b"),
                binary_pattern(TestLang::Add, "b", "a"),
            ),
            Rewrite::new(
                "commute-mul",
                binary_pattern(TestLang::Mul, "a", "b"),
                binary_pattern(TestLang::Mul, "b", "a"),
            ),
        ]
    }

    #[test]
    fn saturates_on_commutativity() {
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let y = eg.add(TestLang::Var("y"));
        let xy = eg.add(TestLang::Add([x, y]));
        let report = Runner::new().run(&mut eg, &rules());
        assert_eq!(report.stop_reason, StopReason::Saturated);
        assert!(report.iterations <= 3);
        let yx = eg.lookup(TestLang::Add([y, x])).unwrap();
        assert_eq!(eg.find(yx), eg.find(xy));
    }

    #[test]
    fn respects_iteration_limit() {
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let y = eg.add(TestLang::Var("y"));
        let _ = eg.add(TestLang::Add([x, y]));
        let limits = RunnerLimits {
            iter_limit: 0,
            ..RunnerLimits::default()
        };
        let report = Runner::with_limits(limits).run(&mut eg, &rules());
        assert_eq!(report.stop_reason, StopReason::IterLimit);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn respects_node_limit() {
        let mut eg = EG::default();
        let mut prev = eg.add(TestLang::Var("x"));
        for i in 0..20 {
            let n = eg.add(TestLang::Num(i));
            let sum = eg.add(TestLang::Add([prev, n]));
            prev = sum;
        }
        let limits = RunnerLimits {
            node_limit: 10,
            ..RunnerLimits::default()
        };
        let report = Runner::with_limits(limits).run(&mut eg, &rules());
        assert_eq!(report.stop_reason, StopReason::NodeLimit);
    }

    #[test]
    fn report_counts_are_consistent() {
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let y = eg.add(TestLang::Var("y"));
        let _ = eg.add(TestLang::Mul([x, y]));
        let report = Runner::new().run(&mut eg, &rules());
        assert_eq!(report.nodes, eg.number_of_nodes());
        assert_eq!(report.classes, eg.number_of_classes());
        assert!(report.applied >= 1);
    }
}
