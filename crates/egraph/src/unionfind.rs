//! A union-find (disjoint set) structure over e-class [`Id`]s.

use crate::language::Id;

/// Union-find with path compression.
///
/// Canonical representatives are chosen as the root reached by following parent
/// pointers; `union` makes the second argument's root point at the first's.
#[derive(Clone, Default, Debug)]
pub struct UnionFind {
    parents: Vec<u32>,
}

impl UnionFind {
    /// Creates an empty structure.
    pub fn new() -> UnionFind {
        UnionFind::default()
    }

    /// Adds a fresh singleton set and returns its id.
    pub fn make_set(&mut self) -> Id {
        let id = self.parents.len() as u32;
        self.parents.push(id);
        Id(id)
    }

    /// Number of ids ever created (not the number of distinct sets).
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if no ids have been created.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Finds the canonical representative of `id` without path compression.
    pub fn find(&self, mut id: Id) -> Id {
        loop {
            let parent = self.parents[id.0 as usize];
            if parent == id.0 {
                return id;
            }
            id = Id(parent);
        }
    }

    /// Finds the canonical representative of `id`, compressing paths along the way.
    pub fn find_mut(&mut self, id: Id) -> Id {
        let root = self.find(id);
        let mut cur = id.0;
        while cur != root.0 {
            let parent = self.parents[cur as usize];
            self.parents[cur as usize] = root.0;
            cur = parent;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; the canonical id of `a` wins.
    /// Returns the surviving representative.
    pub fn union(&mut self, a: Id, b: Id) -> Id {
        let ra = self.find_mut(a);
        let rb = self.find_mut(b);
        if ra != rb {
            self.parents[rb.0 as usize] = ra.0;
        }
        ra
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&self, a: Id, b: Id) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_sets() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        assert_ne!(a, b);
        assert_eq!(uf.find(a), a);
        assert!(!uf.same(a, b));
        assert_eq!(uf.len(), 2);
    }

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..10).map(|_| uf.make_set()).collect();
        uf.union(ids[0], ids[1]);
        uf.union(ids[2], ids[3]);
        uf.union(ids[0], ids[3]);
        for i in 0..4 {
            assert!(uf.same(ids[i], ids[0]), "id {i} should join the merged set");
        }
        assert!(!uf.same(ids[0], ids[4]));
        // The first argument's root survives.
        assert_eq!(uf.find(ids[3]), uf.find(ids[0]));
    }

    #[test]
    fn path_compression_preserves_roots() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..50).map(|_| uf.make_set()).collect();
        for w in ids.windows(2) {
            uf.union(w[0], w[1]);
        }
        let root = uf.find(ids[0]);
        for &id in &ids {
            assert_eq!(uf.find_mut(id), root);
        }
    }
}
