//! Rewrite rules: a searcher pattern, an applier pattern, and an optional
//! side condition.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::{Id, Language};
use crate::pattern::{Pattern, PatternMatch, Subst};
use std::fmt;
use std::sync::Arc;

/// A side condition evaluated on each match before the rewrite is applied.
pub type Condition<L, A> = Arc<dyn Fn(&EGraph<L, A>, Id, &Subst) -> bool + Send + Sync>;

/// A rewrite rule `lhs { rhs`.
///
/// Rules are applied *non-destructively*: the right-hand side is added to the
/// e-graph and unioned with the matched e-class, so the left-hand side remains
/// available (Section 3.3 of the paper).
#[derive(Clone)]
pub struct Rewrite<L: Language, A: Analysis<L>> {
    name: String,
    lhs: Pattern<L>,
    rhs: Pattern<L>,
    condition: Option<Condition<L, A>>,
}

impl<L: Language, A: Analysis<L>> fmt::Debug for Rewrite<L, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rewrite")
            .field("name", &self.name)
            .field("lhs", &self.lhs)
            .field("rhs", &self.rhs)
            .field("conditional", &self.condition.is_some())
            .finish()
    }
}

impl<L: Language, A: Analysis<L>> Rewrite<L, A> {
    /// Creates an unconditional rewrite.
    ///
    /// # Panics
    ///
    /// Panics if the right-hand side uses a metavariable that the left-hand side
    /// does not bind.
    pub fn new(name: impl Into<String>, lhs: Pattern<L>, rhs: Pattern<L>) -> Rewrite<L, A> {
        let lhs_vars = lhs.variables();
        for v in rhs.variables() {
            assert!(
                lhs_vars.contains(&v),
                "rewrite rhs uses unbound metavariable {v}"
            );
        }
        Rewrite {
            name: name.into(),
            lhs,
            rhs,
            condition: None,
        }
    }

    /// Adds a side condition (builder style).
    pub fn with_condition(mut self, condition: Condition<L, A>) -> Rewrite<L, A> {
        self.condition = Some(condition);
        self
    }

    /// The rule name (for reporting).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The left-hand-side pattern.
    pub fn lhs(&self) -> &Pattern<L> {
        &self.lhs
    }

    /// The right-hand-side pattern.
    pub fn rhs(&self) -> &Pattern<L> {
        &self.rhs
    }

    /// Finds every match of the left-hand side.
    pub fn search(&self, egraph: &EGraph<L, A>) -> Vec<PatternMatch> {
        self.lhs.search(egraph)
    }

    /// Applies the rule to previously found matches. Returns the number of
    /// e-class unions that actually changed the e-graph.
    pub fn apply(&self, egraph: &mut EGraph<L, A>, matches: &[PatternMatch]) -> usize {
        let mut applied = 0;
        for m in matches {
            if let Some(cond) = &self.condition {
                if !cond(egraph, m.class, &m.subst) {
                    continue;
                }
            }
            let new_id = self.rhs.instantiate(egraph, &m.subst);
            let (_, changed) = egraph.union(m.class, new_id);
            if changed {
                applied += 1;
            }
        }
        applied
    }

    /// Searches and applies in one step, returning the number of effective unions.
    pub fn run(&self, egraph: &mut EGraph<L, A>) -> usize {
        let matches = self.search(egraph);
        self.apply(egraph, &matches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::NoAnalysis;
    use crate::language::testlang::TestLang;
    use crate::pattern::{PatVar, PatternNode};

    type EG = EGraph<TestLang, NoAnalysis>;
    type RW = Rewrite<TestLang, NoAnalysis>;

    fn commute_add() -> RW {
        // (+ ?a ?b) => (+ ?b ?a)
        let lhs = Pattern::from_nodes(vec![
            PatternNode::Var(PatVar::new("a")),
            PatternNode::Var(PatVar::new("b")),
            PatternNode::ENode(TestLang::Add([Id::from(0usize), Id::from(1usize)])),
        ]);
        let rhs = Pattern::from_nodes(vec![
            PatternNode::Var(PatVar::new("b")),
            PatternNode::Var(PatVar::new("a")),
            PatternNode::ENode(TestLang::Add([Id::from(0usize), Id::from(1usize)])),
        ]);
        Rewrite::new("commute-add", lhs, rhs)
    }

    #[test]
    fn commutativity_is_applied_nondestructively() {
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let y = eg.add(TestLang::Var("y"));
        let xy = eg.add(TestLang::Add([x, y]));
        let rule = commute_add();
        let n = rule.run(&mut eg);
        eg.rebuild();
        assert!(n >= 1);
        // Both orientations are now present in the same class.
        let yx = eg.lookup(TestLang::Add([y, x])).expect("rewritten node");
        assert_eq!(eg.find(yx), eg.find(xy));
        // The original node is still there (non-destructive).
        assert!(eg.lookup(TestLang::Add([x, y])).is_some());
        // Re-running makes no further changes.
        let n2 = rule.run(&mut eg);
        eg.rebuild();
        assert_eq!(n2, 0);
    }

    #[test]
    fn conditions_gate_application() {
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let y = eg.add(TestLang::Var("y"));
        let _xy = eg.add(TestLang::Add([x, y]));
        let never = commute_add().with_condition(Arc::new(|_, _, _| false));
        assert_eq!(never.run(&mut eg), 0);
        let always = commute_add().with_condition(Arc::new(|_, _, _| true));
        assert!(always.run(&mut eg) > 0);
    }

    #[test]
    #[should_panic(expected = "unbound metavariable")]
    fn rhs_variables_must_be_bound() {
        let lhs: Pattern<TestLang> = Pattern::variable("a");
        let rhs: Pattern<TestLang> = Pattern::variable("zzz");
        let _rw: RW = Rewrite::new("bad", lhs, rhs);
    }
}
