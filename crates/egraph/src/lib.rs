//! # egraph
//!
//! A from-scratch e-graph and equality-saturation engine, providing the subset of
//! the `egg` library's functionality that the Chassis compiler needs:
//!
//! * hash-consed e-nodes grouped into e-classes over a union-find ([`EGraph`]),
//! * congruence closure via [`EGraph::rebuild`],
//! * e-class [`Analysis`] (used for constant folding and type tracking),
//! * syntactic [`Pattern`]s with backtracking e-matching,
//! * non-destructive [`Rewrite`] rules and a saturation [`Runner`] with node,
//!   iteration and time limits,
//! * greedy cost-based [`Extractor`]s over user-provided [`CostFunction`]s.
//!
//! The engine is deliberately simple: `rebuild` performs whole-graph congruence
//! repair rather than `egg`'s worklist-based repair, which is more than fast
//! enough at the e-graph sizes Chassis uses (the paper caps e-graphs at 8000
//! nodes).
//!
//! # Example
//!
//! ```
//! use egraph::{EGraph, Language, NoAnalysis, Id};
//!
//! // A tiny language: variables and binary `+`.
//! #[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
//! enum Math { Var(&'static str), Add([Id; 2]) }
//!
//! impl Language for Math {
//!     fn children(&self) -> &[Id] {
//!         match self { Math::Var(_) => &[], Math::Add(c) => c }
//!     }
//!     fn children_mut(&mut self) -> &mut [Id] {
//!         match self { Math::Var(_) => &mut [], Math::Add(c) => c }
//!     }
//!     fn matches_op(&self, other: &Self) -> bool {
//!         matches!((self, other), (Math::Add(_), Math::Add(_)))
//!             || self == other
//!     }
//! }
//!
//! let mut eg: EGraph<Math, NoAnalysis> = EGraph::default();
//! let x = eg.add(Math::Var("x"));
//! let y = eg.add(Math::Var("y"));
//! let xy = eg.add(Math::Add([x, y]));
//! let yx = eg.add(Math::Add([y, x]));
//! eg.union(xy, yx);
//! eg.rebuild();
//! assert_eq!(eg.find(xy), eg.find(yx));
//! ```

pub mod analysis;
pub mod egraph;
pub mod extract;
pub mod language;
pub mod pattern;
pub mod rewrite;
pub mod runner;
pub mod unionfind;

pub use analysis::{Analysis, NoAnalysis};
pub use egraph::{EClass, EGraph};
pub use extract::{CostFunction, Extractor, TreeSize};
pub use language::{Id, Language, RecExpr};
pub use pattern::{PatVar, Pattern, PatternNode, Subst};
pub use rewrite::Rewrite;
pub use runner::{RunReport, Runner, RunnerLimits, StopReason};
pub use unionfind::UnionFind;
