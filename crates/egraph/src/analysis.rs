//! E-class analyses: per-e-class semilattice data maintained across unions.
//!
//! An [`Analysis`] attaches a datum to every e-class (for example "the constant
//! value of every term in this class, if they all fold to one" or "the set of
//! floating-point types this class can be extracted at"). The datum is created
//! from each e-node by [`Analysis::make`] and merged across unions by
//! [`Analysis::merge`]; [`Analysis::modify`] can then add new e-nodes based on the
//! merged datum (this is how constant folding inserts literal nodes).

use crate::egraph::EGraph;
use crate::language::{Id, Language};
use std::fmt::Debug;

/// Per-e-class analysis data and how to maintain it.
pub trait Analysis<L: Language>: Sized {
    /// The per-e-class datum.
    type Data: Clone + Debug + PartialEq;

    /// Computes the datum for a single e-node, given the e-graph (from which the
    /// children's data can be read).
    fn make(egraph: &EGraph<L, Self>, enode: &L) -> Self::Data;

    /// Merges `b` into `a` when two e-classes are unioned. Returns `true` if `a`
    /// changed (used to trigger re-analysis of parents).
    fn merge(a: &mut Self::Data, b: Self::Data) -> bool;

    /// Hook called after an e-class's datum is created or changed; may add nodes
    /// or perform unions (e.g. constant folding).
    fn modify(_egraph: &mut EGraph<L, Self>, _id: Id) {}
}

/// The trivial analysis carrying no data.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct NoAnalysis;

impl<L: Language> Analysis<L> for NoAnalysis {
    type Data = ();

    fn make(_egraph: &EGraph<L, Self>, _enode: &L) -> Self::Data {}

    fn merge(_a: &mut Self::Data, _b: Self::Data) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::testlang::TestLang;

    /// Constant-folding analysis for the test language.
    #[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
    struct ConstFold;

    impl Analysis<TestLang> for ConstFold {
        type Data = Option<i64>;

        fn make(egraph: &EGraph<TestLang, Self>, enode: &TestLang) -> Self::Data {
            let c = |id: Id| *egraph.class_data(id);
            match enode {
                TestLang::Num(n) => Some(*n),
                TestLang::Var(_) => None,
                TestLang::Add([a, b]) => Some(c(*a)? + c(*b)?),
                TestLang::Mul([a, b]) => Some(c(*a)? * c(*b)?),
                TestLang::Neg([a]) => Some(-c(*a)?),
            }
        }

        fn merge(a: &mut Self::Data, b: Self::Data) -> bool {
            if a.is_none() && b.is_some() {
                *a = b;
                true
            } else {
                false
            }
        }

        fn modify(egraph: &mut EGraph<TestLang, Self>, id: Id) {
            if let Some(n) = *egraph.class_data(id) {
                let lit = egraph.add(TestLang::Num(n));
                egraph.union(id, lit);
            }
        }
    }

    #[test]
    fn constant_folding_through_analysis() {
        let mut eg: EGraph<TestLang, ConstFold> = EGraph::default();
        let two = eg.add(TestLang::Num(2));
        let three = eg.add(TestLang::Num(3));
        let sum = eg.add(TestLang::Add([two, three]));
        eg.rebuild();
        assert_eq!(*eg.class_data(sum), Some(5));
        // The modify hook should have inserted the literal 5 into the same class.
        let five = eg.add(TestLang::Num(5));
        assert_eq!(eg.find(five), eg.find(sum));
    }

    #[test]
    fn merge_propagates_constants_across_union() {
        let mut eg: EGraph<TestLang, ConstFold> = EGraph::default();
        let x = eg.add(TestLang::Var("x"));
        let four = eg.add(TestLang::Num(4));
        assert_eq!(*eg.class_data(x), None);
        eg.union(x, four);
        eg.rebuild();
        assert_eq!(*eg.class_data(x), Some(4));
    }
}
