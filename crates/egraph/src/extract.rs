//! Cost-based extraction of concrete terms from an e-graph.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::{Id, Language, RecExpr};
use std::collections::HashMap;

/// A cost model over e-nodes.
///
/// The cost of an e-node is computed from the operator and the costs of the
/// cheapest known representatives of its children e-classes.
pub trait CostFunction<L: Language> {
    /// The cost type (must admit comparison; typically `f64` or `usize`).
    type Cost: PartialOrd + Clone + std::fmt::Debug;

    /// Cost of `enode` given a function returning the best known cost of each
    /// child e-class.
    fn cost(&mut self, enode: &L, child_cost: &mut dyn FnMut(Id) -> Self::Cost) -> Self::Cost;
}

/// Counts the number of nodes in the extracted tree (the simplest useful cost).
#[derive(Clone, Copy, Default, Debug)]
pub struct TreeSize;

impl<L: Language> CostFunction<L> for TreeSize {
    type Cost = usize;

    fn cost(&mut self, enode: &L, child_cost: &mut dyn FnMut(Id) -> usize) -> usize {
        1 + enode
            .children()
            .iter()
            .map(|&c| child_cost(c))
            .sum::<usize>()
    }
}

/// A greedy extractor: computes the lowest-cost representative of every e-class by
/// fixed-point iteration, then reads terms out bottom-up.
pub struct Extractor<'a, L: Language, A: Analysis<L>, CF: CostFunction<L>> {
    egraph: &'a EGraph<L, A>,
    cost_fn: CF,
    best: HashMap<Id, (CF::Cost, L)>,
}

impl<'a, L: Language, A: Analysis<L>, CF: CostFunction<L>> Extractor<'a, L, A, CF> {
    /// Builds the extractor, running the fixed-point cost computation.
    pub fn new(egraph: &'a EGraph<L, A>, cost_fn: CF) -> Self {
        let mut extractor = Extractor {
            egraph,
            cost_fn,
            best: HashMap::new(),
        };
        extractor.compute_costs();
        extractor
    }

    fn compute_costs(&mut self) {
        // Iterate to a fixed point: a class's best cost can only decrease, and
        // each pass propagates information one level further up, so this
        // terminates in at most `depth` passes.
        loop {
            let mut changed = false;
            for class in self.egraph.classes() {
                let id = self.egraph.find(class.id);
                for node in &class.nodes {
                    if let Some(cost) = self.node_cost(node) {
                        let better = match self.best.get(&id) {
                            None => true,
                            Some((best, _)) => cost < *best,
                        };
                        if better {
                            self.best.insert(id, (cost, node.clone()));
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn node_cost(&mut self, node: &L) -> Option<CF::Cost> {
        // All children must already have a known cost.
        for &c in node.children() {
            if !self.best.contains_key(&self.egraph.find(c)) {
                return None;
            }
        }
        let egraph = self.egraph;
        let best = &self.best;
        let mut child_cost = |id: Id| best[&egraph.find(id)].0.clone();
        Some(self.cost_fn.cost(node, &mut child_cost))
    }

    /// The best known cost of the class containing `id`, if any term is
    /// extractable from it.
    pub fn best_cost(&self, id: Id) -> Option<CF::Cost> {
        self.best.get(&self.egraph.find(id)).map(|(c, _)| c.clone())
    }

    /// Extracts the lowest-cost term rooted in the class of `id`.
    ///
    /// Returns `None` when the class contains no extractable term (possible when
    /// the cost function refuses some nodes, e.g. ill-typed ones).
    pub fn find_best(&self, id: Id) -> Option<(CF::Cost, RecExpr<L>)> {
        let id = self.egraph.find(id);
        let cost = self.best_cost(id)?;
        let mut expr = RecExpr::new();
        let mut cache: HashMap<Id, Id> = HashMap::new();
        let root = self.build(id, &mut expr, &mut cache)?;
        let _ = root;
        Some((cost, expr))
    }

    fn build(&self, id: Id, expr: &mut RecExpr<L>, cache: &mut HashMap<Id, Id>) -> Option<Id> {
        let id = self.egraph.find(id);
        if let Some(&done) = cache.get(&id) {
            return Some(done);
        }
        let (_, node) = self.best.get(&id)?;
        let mut child_ids = Vec::with_capacity(node.children().len());
        for &c in node.children() {
            child_ids.push(self.build(c, expr, cache)?);
        }
        let mut i = 0;
        let new_node = node.map_children(|_| {
            let mapped = child_ids[i];
            i += 1;
            mapped
        });
        let new_id = expr.add(new_node);
        cache.insert(id, new_id);
        Some(new_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::NoAnalysis;
    use crate::language::testlang::TestLang;

    type EG = EGraph<TestLang, NoAnalysis>;

    #[test]
    fn extracts_smaller_equivalent_term() {
        let mut eg = EG::default();
        // Represent x*2 and x+x in the same class; TreeSize prefers either (both
        // size 3), then union with just `x` and it should prefer `x`.
        let x = eg.add(TestLang::Var("x"));
        let two = eg.add(TestLang::Num(2));
        let mul = eg.add(TestLang::Mul([x, two]));
        let add = eg.add(TestLang::Add([x, x]));
        eg.union(mul, add);
        eg.rebuild();
        let ex = Extractor::new(&eg, TreeSize);
        let (cost, _) = ex.find_best(mul).unwrap();
        assert_eq!(cost, 3);
        eg.union(mul, x);
        eg.rebuild();
        let ex = Extractor::new(&eg, TreeSize);
        let (cost, term) = ex.find_best(mul).unwrap();
        assert_eq!(cost, 1);
        assert!(matches!(term.node(term.root()), TestLang::Var("x")));
    }

    #[test]
    fn extraction_handles_cycles() {
        // x = x + 0 introduces a cycle; extraction must still find the finite term.
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let zero = eg.add(TestLang::Num(0));
        let sum = eg.add(TestLang::Add([x, zero]));
        eg.union(sum, x);
        eg.rebuild();
        let ex = Extractor::new(&eg, TreeSize);
        let (cost, term) = ex.find_best(sum).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(term.len(), 1);
    }

    /// A cost function that refuses multiplication nodes entirely.
    struct NoMul;
    impl CostFunction<TestLang> for NoMul {
        type Cost = f64;
        fn cost(&mut self, enode: &TestLang, child_cost: &mut dyn FnMut(Id) -> f64) -> f64 {
            let base = match enode {
                TestLang::Mul(_) => f64::INFINITY,
                _ => 1.0,
            };
            base + enode.children().iter().map(|&c| child_cost(c)).sum::<f64>()
        }
    }

    #[test]
    fn infinite_costs_are_avoided_when_alternatives_exist() {
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let two = eg.add(TestLang::Num(2));
        let mul = eg.add(TestLang::Mul([x, two]));
        let add = eg.add(TestLang::Add([x, x]));
        eg.union(mul, add);
        eg.rebuild();
        let ex = Extractor::new(&eg, NoMul);
        let (cost, term) = ex.find_best(mul).unwrap();
        assert!(cost.is_finite());
        assert!(matches!(term.node(term.root()), TestLang::Add(_)));
    }

    #[test]
    fn shared_subterms_are_reused_in_recexpr() {
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let sq = eg.add(TestLang::Mul([x, x]));
        let out = eg.add(TestLang::Add([sq, sq]));
        let ex = Extractor::new(&eg, TreeSize);
        let (_, term) = ex.find_best(out).unwrap();
        // The RecExpr shares the repeated subterm, so it stores 3 nodes even
        // though the unfolded tree has 7.
        assert_eq!(term.len(), 3);
        assert_eq!(term.tree_size(term.root()), 7);
    }
}
