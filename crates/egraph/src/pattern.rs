//! Syntactic patterns over a [`Language`] and backtracking e-matching.

use crate::analysis::Analysis;
use crate::egraph::EGraph;
use crate::language::{Id, Language};
use std::collections::BTreeMap;
use std::fmt;

/// A pattern variable (a metavariable such as `?a` in a rewrite rule).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PatVar(pub String);

impl PatVar {
    /// Creates a pattern variable from its name (without any leading `?`).
    pub fn new(name: &str) -> PatVar {
        PatVar(name.trim_start_matches('?').to_owned())
    }
}

impl fmt::Display for PatVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A substitution binding pattern variables to e-classes.
pub type Subst = BTreeMap<PatVar, Id>;

/// One node of a pattern: either a metavariable or a concrete e-node whose
/// children refer to earlier pattern positions (like [`crate::RecExpr`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PatternNode<L> {
    /// A metavariable matching any e-class.
    Var(PatVar),
    /// A concrete operator whose children are pattern positions.
    ENode(L),
}

/// A pattern: a flattened tree of [`PatternNode`]s, root last.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Pattern<L> {
    nodes: Vec<PatternNode<L>>,
}

/// A single match of a pattern: the e-class it matched in and the substitution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PatternMatch {
    /// The e-class the pattern's root matched.
    pub class: Id,
    /// Bindings for the pattern's metavariables.
    pub subst: Subst,
}

impl<L: Language> Pattern<L> {
    /// Builds a pattern from flattened nodes (children must reference earlier
    /// positions; the root is the last node).
    ///
    /// # Panics
    ///
    /// Panics if the node list is empty or contains a forward reference.
    pub fn from_nodes(nodes: Vec<PatternNode<L>>) -> Pattern<L> {
        assert!(!nodes.is_empty(), "a pattern needs at least one node");
        for (i, n) in nodes.iter().enumerate() {
            if let PatternNode::ENode(e) = n {
                for c in e.children() {
                    assert!(
                        c.index() < i,
                        "pattern children must reference earlier nodes"
                    );
                }
            }
        }
        Pattern { nodes }
    }

    /// A pattern consisting of a single metavariable.
    pub fn variable(name: &str) -> Pattern<L> {
        Pattern {
            nodes: vec![PatternNode::Var(PatVar::new(name))],
        }
    }

    /// The flattened pattern nodes.
    pub fn nodes(&self) -> &[PatternNode<L>] {
        &self.nodes
    }

    /// The root position.
    pub fn root(&self) -> Id {
        Id::from(self.nodes.len() - 1)
    }

    /// The set of metavariables used in the pattern.
    pub fn variables(&self) -> Vec<PatVar> {
        let mut vars: Vec<PatVar> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                PatternNode::Var(v) => Some(v.clone()),
                PatternNode::ENode(_) => None,
            })
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// Searches the whole e-graph, returning every match in every e-class.
    pub fn search<A: Analysis<L>>(&self, egraph: &EGraph<L, A>) -> Vec<PatternMatch> {
        let mut out = Vec::new();
        for class in egraph.classes() {
            let matches = self.search_class(egraph, class.id);
            out.extend(matches.into_iter().map(|subst| PatternMatch {
                class: class.id,
                subst,
            }));
        }
        out
    }

    /// Searches a single e-class, returning the substitutions under which the
    /// pattern's root matches it.
    pub fn search_class<A: Analysis<L>>(&self, egraph: &EGraph<L, A>, class: Id) -> Vec<Subst> {
        self.match_at(egraph, self.root(), egraph.find(class), Subst::new())
    }

    fn match_at<A: Analysis<L>>(
        &self,
        egraph: &EGraph<L, A>,
        pat: Id,
        class: Id,
        subst: Subst,
    ) -> Vec<Subst> {
        let class = egraph.find(class);
        match &self.nodes[pat.index()] {
            PatternNode::Var(v) => match subst.get(v) {
                Some(&bound) => {
                    if egraph.find(bound) == class {
                        vec![subst]
                    } else {
                        vec![]
                    }
                }
                None => {
                    let mut subst = subst;
                    subst.insert(v.clone(), class);
                    vec![subst]
                }
            },
            PatternNode::ENode(pnode) => {
                let mut out = Vec::new();
                for enode in &egraph.class(class).nodes {
                    if !enode.matches_op(pnode) || enode.children().len() != pnode.children().len()
                    {
                        continue;
                    }
                    let mut substs = vec![subst.clone()];
                    for (pc, ec) in pnode.children().iter().zip(enode.children()) {
                        let mut next = Vec::new();
                        for s in substs {
                            next.extend(self.match_at(egraph, *pc, *ec, s));
                        }
                        substs = next;
                        if substs.is_empty() {
                            break;
                        }
                    }
                    out.extend(substs);
                }
                out
            }
        }
    }

    /// Instantiates the pattern under `subst`, adding the resulting term to the
    /// e-graph and returning its e-class.
    ///
    /// # Panics
    ///
    /// Panics if a metavariable in the pattern is unbound in `subst`.
    pub fn instantiate<A: Analysis<L>>(&self, egraph: &mut EGraph<L, A>, subst: &Subst) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let id = match node {
                PatternNode::Var(v) => *subst
                    .get(v)
                    .unwrap_or_else(|| panic!("unbound pattern variable {v}")),
                PatternNode::ENode(e) => {
                    let concrete = e.map_children(|c| ids[c.index()]);
                    egraph.add(concrete)
                }
            };
            ids.push(id);
        }
        *ids.last().expect("patterns are nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::NoAnalysis;
    use crate::language::testlang::TestLang;

    type EG = EGraph<TestLang, NoAnalysis>;

    /// Pattern for `(+ ?a ?b)`.
    fn add_pattern() -> Pattern<TestLang> {
        Pattern::from_nodes(vec![
            PatternNode::Var(PatVar::new("a")),
            PatternNode::Var(PatVar::new("b")),
            PatternNode::ENode(TestLang::Add([Id::from(0usize), Id::from(1usize)])),
        ])
    }

    /// Pattern for `(+ ?a ?a)`.
    fn double_pattern() -> Pattern<TestLang> {
        Pattern::from_nodes(vec![
            PatternNode::Var(PatVar::new("a")),
            PatternNode::ENode(TestLang::Add([Id::from(0usize), Id::from(0usize)])),
        ])
    }

    #[test]
    fn matches_simple_addition() {
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let y = eg.add(TestLang::Var("y"));
        let sum = eg.add(TestLang::Add([x, y]));
        let matches = add_pattern().search(&eg);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].class, sum);
        assert_eq!(matches[0].subst[&PatVar::new("a")], x);
        assert_eq!(matches[0].subst[&PatVar::new("b")], y);
    }

    #[test]
    fn nonlinear_pattern_requires_equal_classes() {
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let y = eg.add(TestLang::Var("y"));
        let _xy = eg.add(TestLang::Add([x, y]));
        let xx = eg.add(TestLang::Add([x, x]));
        let matches = double_pattern().search(&eg);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].class, xx);
        // After x = y, both additions match the non-linear pattern.
        eg.union(x, y);
        eg.rebuild();
        let matches = double_pattern().search(&eg);
        assert_eq!(matches.len(), 1, "x+y and x+x are now the same e-class");
    }

    #[test]
    fn instantiation_adds_term() {
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let mut subst = Subst::new();
        subst.insert(PatVar::new("a"), x);
        subst.insert(PatVar::new("b"), x);
        let id = add_pattern().instantiate(&mut eg, &subst);
        assert_eq!(eg.lookup(TestLang::Add([x, x])), Some(eg.find(id)));
    }

    #[test]
    fn pattern_variables_listed() {
        assert_eq!(
            add_pattern().variables(),
            vec![PatVar::new("a"), PatVar::new("b")]
        );
        assert_eq!(double_pattern().variables(), vec![PatVar::new("a")]);
    }

    #[test]
    fn nested_pattern_matching() {
        // Pattern: (* ?a (+ ?b ?c))
        let pat = Pattern::from_nodes(vec![
            PatternNode::Var(PatVar::new("a")),
            PatternNode::Var(PatVar::new("b")),
            PatternNode::Var(PatVar::new("c")),
            PatternNode::ENode(TestLang::Add([Id::from(1usize), Id::from(2usize)])),
            PatternNode::ENode(TestLang::Mul([Id::from(0usize), Id::from(3usize)])),
        ]);
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let y = eg.add(TestLang::Var("y"));
        let z = eg.add(TestLang::Var("z"));
        let sum = eg.add(TestLang::Add([y, z]));
        let prod = eg.add(TestLang::Mul([x, sum]));
        let matches = pat.search(&eg);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].class, prod);
        assert_eq!(matches[0].subst[&PatVar::new("a")], x);
    }

    #[test]
    fn matches_multiply_represented_classes() {
        // When an e-class has several e-nodes matching the pattern with different
        // substitutions, all of them are reported.
        let mut eg = EG::default();
        let x = eg.add(TestLang::Var("x"));
        let y = eg.add(TestLang::Var("y"));
        let xy = eg.add(TestLang::Add([x, y]));
        let yx = eg.add(TestLang::Add([y, x]));
        eg.union(xy, yx);
        eg.rebuild();
        let matches = add_pattern().search(&eg);
        assert_eq!(matches.len(), 2);
    }
}
