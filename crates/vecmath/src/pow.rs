//! `pow` and `hypot`, built on the exp/log machinery.
//!
//! `pow(x, y) = 2^(y·log2|x|)` needs the exponent product to ~2⁻⁶⁰ — a plain
//! double loses up to `|y·log2 x| · 2⁻⁵³` relative accuracy in the result —
//! so `log2|x|` is computed in double-double (Dekker two-sum/two-product, no
//! hardware FMA required) and the product is carried as a hi/lo pair into a
//! double-double `exp2`. The IEEE special-case zoo is resolved with mask
//! blends after the core.

use crate::exp::exp_rational;
use crate::{poly, rint_i32, scale2, sel, sweep2};

const TWO54: f64 = 18014398509481984.0;
const SQRT_HALF: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// `2·log2(e)` split into hi/lo doubles (hi + lo accurate to ~107 bits).
const L2E_H: f64 = 2.8853900817779268;
const L2E_L: f64 = 4.0710547481862066e-17;

/// atanh series coefficients `1/23 … 1/3` (in `z²`, highest power first).
const ATANH_C: [f64; 11] = [
    1.0 / 23.0,
    1.0 / 21.0,
    1.0 / 19.0,
    1.0 / 17.0,
    1.0 / 15.0,
    1.0 / 13.0,
    1.0 / 11.0,
    1.0 / 9.0,
    1.0 / 7.0,
    1.0 / 5.0,
    1.0 / 3.0,
];

/// Exact sum: `a + b = s + e` with `s = fl(a + b)`.
#[inline(always)]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    (s, (a - (s - bb)) + (b - bb))
}

/// Dekker split of a double into two 26-bit halves.
#[inline(always)]
fn split(a: f64) -> (f64, f64) {
    const C: f64 = 134217729.0; // 2^27 + 1
    let t = C * a;
    let hi = t - (t - a);
    (hi, a - hi)
}

/// Exact product: `a·b = p + e` with `p = fl(a·b)` (Dekker, no FMA).
#[inline(always)]
fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let (ah, al) = split(a);
    let (bh, bl) = split(b);
    (p, ((ah * bh - p) + ah * bl + al * bh) + al * bl)
}

/// `log2(x)` as a hi/lo pair, accurate to ~2⁻⁶⁰ relative, for positive
/// finite `x` (other inputs produce defined garbage the caller blends away).
/// The exponent is exact; the mantissa log uses the atanh series on
/// `z = (m−1)/(m+1)` with `z` itself carried in double-double.
#[inline(always)]
fn log2_dd(x: f64) -> (f64, f64) {
    let tiny = x < f64::MIN_POSITIVE;
    let xs = sel(tiny, x * TWO54, x);
    let bits = xs.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i64 as f64 - 1022.0 - sel(tiny, 54.0, 0.0);
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FE0_0000_0000_0000);
    let lt = m < SQRT_HALF;
    let e = e - sel(lt, 1.0, 0.0);
    let m = sel(lt, m + m, m);
    let a = m - 1.0; // exact: m ∈ [√½, √2)
    let (bh, bl) = two_sum(m, 1.0);
    let zh = a / bh;
    let (p, pe) = two_prod(zh, bh);
    let zl = (((a - p) - pe) - zh * bl) / bh;
    let zz = zh * zh;
    let tail = zz * zh * poly(zz, &ATANH_C) + zl;
    let (sh, sl) = two_sum(zh, tail);
    let (mh, me) = two_prod(sh, L2E_H);
    let ml = me + sh * L2E_L + sl * L2E_H;
    let (rh, re) = two_sum(e, mh);
    (rh, re + ml)
}

/// `2^(h + l)` for a double-double exponent, subnormal-safe.
#[inline(always)]
fn exp2_dd(h: f64, l: f64) -> f64 {
    let hc = h.clamp(-1100.0, 1100.0);
    let (n, k) = rint_i32(hc);
    let r = (hc - n) + l; // hc − n is exact (|hc − n| ≤ ½)
                          // Blended-away lanes skip the real rescale (subnormal-assist avoidance,
                          // see `exp`).
    let dead = (h >= 1100.0) | (h <= -1100.0);
    let k = if dead { 0 } else { k };
    let v = scale2(exp_rational(r * std::f64::consts::LN_2), k);
    let v = sel(h >= 1100.0, f64::INFINITY, v);
    sel(h <= -1100.0, 0.0, v)
}

/// `xʸ` with full IEEE 754 special-case semantics. Documented bound: ≤ 4 ULP
/// for finite results (the double-double exponent keeps the error flat in
/// `|y·log2 x|`, unlike a naive `exp(y·ln x)`).
// inline(always): the body is big enough that the normal inliner leaves it
// out of the sweep loop, which would keep the loop scalar.
#[inline(always)]
pub fn pow(x: f64, y: f64) -> f64 {
    let ax = x.abs();
    let (lh, ll) = log2_dd(ax);
    // Clamping y is safe: whenever |y| > 2⁶³ and x ≠ 1, |y·log2 x| is far
    // beyond the overflow/underflow cutoffs either way, and it keeps the
    // Dekker split finite.
    let yc = y.clamp(-9.223372036854776e18, 9.223372036854776e18);
    let (th, tl) = two_prod(yc, lh);
    let r = exp2_dd(th, yc * ll + tl);
    // IEEE special cases, in increasing override priority. Integer-ness of y
    // via trunc comparisons (branch-free, vectorizable): every |y| ≥ 2⁵³ is
    // an even integer, and trunc(y/2) == y/2 exactly detects evenness below
    // that; ±∞ classify as integers here, which the dedicated ∞ blends
    // below override.
    let y_int = y.trunc() == y;
    let y_odd = y_int & ((0.5 * y).trunc() != 0.5 * y);
    let r = sel(x < 0.0 && y_odd, -r, r);
    let r = sel(x < 0.0 && !y_int, f64::NAN, r);
    let r = sel(ax == 0.0 && y > 0.0, sel(y_odd, x, 0.0), r);
    let r = sel(
        ax == 0.0 && y < 0.0,
        sel(y_odd, f64::INFINITY.copysign(x), f64::INFINITY),
        r,
    );
    let r = sel(x == f64::INFINITY, sel(y < 0.0, 0.0, f64::INFINITY), r);
    let r = sel(
        x == f64::NEG_INFINITY,
        sel(
            y > 0.0,
            sel(y_odd, f64::NEG_INFINITY, f64::INFINITY),
            sel(y_odd, -0.0, 0.0),
        ),
        r,
    );
    let r = sel(y == f64::INFINITY, sel(ax < 1.0, 0.0, f64::INFINITY), r);
    let r = sel(y == f64::NEG_INFINITY, sel(ax < 1.0, f64::INFINITY, 0.0), r);
    let r = sel(ax == 1.0 && y.is_infinite(), 1.0, r);
    let r = sel(x.is_nan() || y.is_nan(), f64::NAN, r);
    let r = sel(x == 1.0, 1.0, r);
    sel(y == 0.0, 1.0, r)
}

/// Branch-free `√(x² + y²)` without intermediate overflow/underflow (the
/// smaller magnitude is divided by the larger). Documented bound: ≤ 3 ULP.
#[inline]
pub fn hypot(x: f64, y: f64) -> f64 {
    let ax = x.abs();
    let ay = y.abs();
    let m = ax.max(ay);
    let n = ax.min(ay);
    let t = n / m;
    let r = m * (1.0 + t * t).sqrt();
    let r = sel(n == 0.0, m, r);
    let r = sel(x.is_nan() || y.is_nan(), f64::NAN, r);
    sel(ax == f64::INFINITY || ay == f64::INFINITY, f64::INFINITY, r)
}

sweep2!(
    /// Lane-sweep form of [`pow`] (identical per-lane operations).
    pow_sweep,
    pow
);
sweep2!(
    /// Lane-sweep form of [`hypot`] (identical per-lane operations).
    hypot_sweep,
    hypot
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::ulps;

    #[test]
    fn dekker_primitives_are_exact() {
        let (s, e) = two_sum(1e16, 1.0);
        assert_eq!(s, 1e16);
        assert_eq!(e, 1.0);
        let (p, err) = two_prod(1.0 + 2f64.powi(-30), 1.0 + 2f64.powi(-30));
        // (1+2⁻³⁰)² = 1 + 2⁻²⁹ + 2⁻⁶⁰: the 2⁻⁶⁰ term lands in the error word.
        assert_eq!(p, 1.0 + 2f64.powi(-29));
        assert_eq!(err, 2f64.powi(-60));
    }

    #[test]
    fn pow_exactness_on_easy_cases() {
        assert_eq!(pow(2.0, 10.0), 1024.0);
        assert_eq!(pow(2.0, -1.0), 0.5);
        assert_eq!(pow(10.0, 2.0), 100.0);
        assert_eq!(pow(4.0, 0.5), 2.0);
        assert_eq!(pow(-2.0, 3.0), -8.0);
        assert_eq!(pow(-2.0, 2.0), 4.0);
        assert!(pow(-2.0, 0.5).is_nan());
    }

    #[test]
    fn pow_handles_large_exponent_products() {
        // |y·log2 x| near the overflow cutoff: the double-double exponent
        // must keep the error flat where exp(y·ln x) would drift hundreds of
        // ULP.
        for &(x, y) in &[
            (1.0000000001f64, 1e10f64),
            (0.999999999f64, 1e9),
            (3.1459f64, 600.0),
            (1e300f64, 1.02),
            (2.5e-200f64, -1.5),
        ] {
            let (got, want) = (pow(x, y), x.powf(y));
            assert!(
                ulps(got, want) <= 6,
                "pow({x:e}, {y:e}): {got:e} vs {want:e} ({} ulps)",
                ulps(got, want)
            );
        }
    }

    #[test]
    fn integer_exponent_detection() {
        assert_eq!(pow(-2.0, 3.0), -8.0); // odd integer
        assert_eq!(pow(-2.0, 2.0), 4.0); // even integer
        assert!(pow(-2.0, 2.5).is_nan()); // non-integer
        assert_eq!(pow(-1.0, 1e300), 1.0); // huge doubles are even integers
                                           // ulp = 0.5 region: half-integers are not integers, odd integers are
                                           // still odd.
        assert_eq!(pow(-1.0, 2f64.powi(51) + 1.0), -1.0);
        assert!(pow(-1.5, 2f64.powi(51) + 0.5).is_nan());
    }

    #[test]
    fn hypot_basics() {
        assert_eq!(hypot(3.0, 4.0), 5.0);
        assert_eq!(hypot(-3.0, 4.0), 5.0);
        assert_eq!(hypot(0.0, -0.0), 0.0);
        assert_eq!(hypot(5.0, 0.0), 5.0);
        assert_eq!(hypot(f64::INFINITY, f64::NAN), f64::INFINITY);
        assert_eq!(hypot(f64::NAN, f64::NEG_INFINITY), f64::INFINITY);
        assert!(hypot(f64::NAN, 1.0).is_nan());
        // No intermediate overflow / underflow.
        assert!(ulps(hypot(1e300, 1e300), 1e300f64.hypot(1e300)) <= 3);
        assert!(ulps(hypot(1e-300, 1e-300), 1e-300f64.hypot(1e-300)) <= 3);
    }
}
