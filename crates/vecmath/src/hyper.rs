//! Hyperbolic kernels, built on the [`exp`](crate::exp) core: rational
//! small-argument paths (Cephes) where cancellation would bite, exponential
//! identities elsewhere, and a squared-half-exponent path where `exp(|x|)`
//! itself would overflow before the hyperbolic does.

use crate::{exp, poly, sel, sweep1};

/// Taylor coefficients of `(sinh x − x)/x³` in `z = x²` (highest power
/// first): `1/(2k+3)!` down to `1/3!`. For |x| ≤ 1 the truncation error is
/// below 2⁻⁶⁵ of the series value.
const SINH_C: [f64; 9] = [
    8.22063524662432972e-18, // 1/19!
    2.81145725434552076e-15, // 1/17!
    7.64716373181981648e-13, // 1/15!
    1.60590438368216146e-10, // 1/13!
    2.50521083854417188e-8,  // 1/11!
    2.75573192239858907e-6,  // 1/9!
    1.98412698412698413e-4,  // 1/7!
    8.33333333333333333e-3,  // 1/5!
    1.66666666666666667e-1,  // 1/3!
];

const TANH_P: [f64; 3] = [
    -9.64399179425052238628E-1,
    -9.92877231001918586564E1,
    -1.61468768441708447952E3,
];
const TANH_Q: [f64; 4] = [
    1.0,
    1.12811678491632931402E2,
    2.23548839060100448583E3,
    4.84406305325125486048E3,
];

/// Above this, `exp(|x|)` overflows but cosh/sinh may still be finite:
/// switch to `(½·e^{|x|/2})·e^{|x|/2}`.
const EXP_SAFE: f64 = 709.0;

/// Branch-free hyperbolic sine. Documented bound: ≤ 4 ULP (≤ 1 ULP for
/// |x| ≤ 1 via the odd rational).
#[inline]
pub fn sinh(x: f64) -> f64 {
    let ax = x.abs();
    let z = x * x;
    let small = x + x * z * poly(z, &SINH_C);
    let t = exp(ax);
    let mid = 0.5 * t - 0.5 / t;
    let w = exp(0.5 * ax);
    let big = (0.5 * w) * w;
    let large = sel(ax < EXP_SAFE, mid, big).copysign(x);
    sel(ax <= 1.0, small, large)
}

/// Branch-free hyperbolic cosine. Documented bound: ≤ 4 ULP.
#[inline]
pub fn cosh(x: f64) -> f64 {
    let ax = x.abs();
    let t = exp(ax);
    let mid = 0.5 * t + 0.5 / t;
    let w = exp(0.5 * ax);
    let big = (0.5 * w) * w;
    sel(ax < EXP_SAFE, mid, big)
}

/// Branch-free hyperbolic tangent. Documented bound: ≤ 3 ULP.
#[inline]
pub fn tanh(x: f64) -> f64 {
    let ax = x.abs();
    let z = x * x;
    let small = x + x * z * poly(z, &TANH_P) / poly(z, &TANH_Q);
    let e2 = exp(2.0 * ax);
    let large = 1.0 - 2.0 / (e2 + 1.0);
    let large = sel(ax > 19.0, 1.0, large);
    let r = sel(ax <= 0.625, small, large.copysign(x));
    // The rational tail turns −0 into +0 (signed-zero addition); restore it.
    sel(x == 0.0, x, r)
}

sweep1!(
    /// Lane-sweep form of [`sinh`] (identical per-lane operations).
    sinh_sweep,
    sinh
);
sweep1!(
    /// Lane-sweep form of [`cosh`] (identical per-lane operations).
    cosh_sweep,
    cosh
);
sweep1!(
    /// Lane-sweep form of [`tanh`] (identical per-lane operations).
    tanh_sweep,
    tanh
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::ulps;

    #[test]
    fn hyperbolic_specials() {
        assert_eq!(sinh(0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(sinh(-0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(cosh(0.0), 1.0);
        assert_eq!(tanh(-0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(sinh(f64::INFINITY), f64::INFINITY);
        assert_eq!(sinh(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert_eq!(cosh(f64::NEG_INFINITY), f64::INFINITY);
        assert_eq!(tanh(f64::INFINITY), 1.0);
        assert_eq!(tanh(f64::NEG_INFINITY), -1.0);
        for f in [sinh, cosh, tanh] {
            assert!(f(f64::NAN).is_nan());
        }
        // Subnormals pass straight through the odd rationals.
        assert_eq!(sinh(5e-324).to_bits(), 5e-324f64.to_bits());
        assert_eq!(tanh(-5e-324).to_bits(), (-5e-324f64).to_bits());
    }

    #[test]
    fn overflow_margin_stays_finite() {
        // exp(x) overflows at ~709.78 but sinh/cosh only at ~710.47: the
        // squared-half-exponent path must keep the margin finite.
        for &x in &[709.9, 710.2, 710.4] {
            assert!(sinh(x).is_finite(), "sinh({x}) overflowed early");
            assert!(cosh(x).is_finite(), "cosh({x}) overflowed early");
            assert!(ulps(sinh(x), x.sinh()) <= 6, "sinh({x})");
            assert!(ulps(cosh(x), x.cosh()) <= 6, "cosh({x})");
        }
        assert_eq!(sinh(711.0), f64::INFINITY);
        assert_eq!(cosh(-711.0), f64::INFINITY);
    }
}
