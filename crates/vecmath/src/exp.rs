//! `exp` and `expm1`: Cody–Waite reduction to |r| ≤ ½ln2 plus a Padé-style
//! rational core (Cephes coefficients), rescaled through exponent bits.

use crate::{poly, rint_i32, scale2, sel, sweep1};

/// log2(e), the reduction constant.
const LOG2E: f64 = std::f64::consts::LOG2_E;
/// Cody–Waite split of ln2: `C1 + C2 = ln2` with `C1` exactly representable
/// in few bits, so `x - n*C1` is exact for every reduction multiple `n`.
const C1: f64 = 6.93145751953125E-1;
const C2: f64 = 1.42860682030941723212E-6;

/// Rational core: `exp(r) = 1 + 2·p/(Q(r²) − p)` with `p = r·P(r²)`.
pub(crate) const EXP_P: [f64; 3] = [
    1.26177193074810590878E-4,
    3.02994407707441961300E-2,
    9.99999999999999999910E-1,
];
pub(crate) const EXP_Q: [f64; 4] = [
    3.00198505138664455042E-6,
    2.52448340349684104192E-3,
    2.27265548208155028766E-1,
    2.00000000000000000005E0,
];

/// Above this, `exp` overflows to +∞; below the negation of
/// [`EXP_UNDERFLOW`], it underflows to +0.
const EXP_OVERFLOW: f64 = 709.782712893384;
const EXP_UNDERFLOW: f64 = -745.13321910194122;

/// The rational core on an already-reduced argument |r| ≤ ½ln2 + slop.
#[inline(always)]
pub(crate) fn exp_rational(r: f64) -> f64 {
    let rr = r * r;
    let p = r * poly(rr, &EXP_P);
    1.0 + 2.0 * p / (poly(rr, &EXP_Q) - p)
}

/// Branch-free `eˣ`. Documented bound: ≤ 2 ULP over the full domain
/// (including subnormal results, which absorb one extra rounding from the
/// two-step rescale).
// Written as two explicit comparisons, not a range-contains: `dead` must be
// false for NaN so the NaN flows through the float side untouched.
#[allow(clippy::manual_range_contains)]
#[inline]
pub fn exp(x: f64) -> f64 {
    // The clamp keeps the integer reduction finite for huge/infinite inputs
    // (their results are blended below); NaN passes through untouched.
    let xc = x.clamp(-746.0, 710.0);
    let (n, k) = rint_i32(xc * LOG2E);
    let r = (xc - n * C1) - n * C2;
    // Lanes whose result the blends below replace with ∞/0 must not run the
    // rescale at their real exponent: a deeply underflowing multiply takes a
    // ~100-cycle subnormal assist per lane, for a value that is thrown away.
    let dead = (x > EXP_OVERFLOW) | (x < EXP_UNDERFLOW);
    let k = if dead { 0 } else { k };
    let v = scale2(exp_rational(r), k);
    let v = sel(x > EXP_OVERFLOW, f64::INFINITY, v);
    sel(x < EXP_UNDERFLOW, 0.0, v)
}

/// Half of ln2: below this magnitude `expm1` uses the unreduced rational core
/// minus its leading 1 (no cancellation), above it `exp(x) − 1`.
const EXPM1_SWITCH: f64 = 0.34657359027997264;

/// Branch-free `eˣ − 1`. Documented bound: ≤ 4 ULP (the worst case sits just
/// above the switch point, where the subtraction amplifies `exp`'s error by
/// ~3×; the small-argument core itself is ~1 ULP).
#[inline]
pub fn expm1(x: f64) -> f64 {
    let rr = x * x;
    let p = x * poly(rr, &EXP_P);
    let small = 2.0 * p / (poly(rr, &EXP_Q) - p);
    let big = exp(x) - 1.0;
    sel(x.abs() <= EXPM1_SWITCH, small, big)
}

sweep1!(
    /// Lane-sweep form of [`exp`] (identical per-lane operations).
    exp_sweep,
    exp
);
sweep1!(
    /// Lane-sweep form of [`expm1`] (identical per-lane operations).
    expm1_sweep,
    expm1
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_specials() {
        assert_eq!(exp(0.0), 1.0);
        assert_eq!(exp(-0.0), 1.0);
        assert_eq!(exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(exp(f64::NEG_INFINITY), 0.0);
        assert!(exp(f64::NAN).is_nan());
        assert_eq!(exp(1000.0), f64::INFINITY);
        assert_eq!(exp(-1000.0), 0.0);
        // Subnormal results.
        let tiny = exp(-745.0);
        assert!(
            tiny > 0.0 && tiny < f64::MIN_POSITIVE,
            "exp(-745) = {tiny:e}"
        );
    }

    #[test]
    fn expm1_specials() {
        assert_eq!(expm1(0.0), 0.0);
        assert_eq!(expm1(-0.0), -0.0);
        assert_eq!(expm1(f64::NEG_INFINITY), -1.0);
        assert_eq!(expm1(f64::INFINITY), f64::INFINITY);
        assert!(expm1(f64::NAN).is_nan());
        // Tiny arguments: expm1(x) == x to the last bit.
        for &x in &[1e-20, -1e-20, 5e-324, -5e-324, 1e-300] {
            assert_eq!(expm1(x).to_bits(), x.to_bits(), "expm1({x:e})");
        }
    }
}
