//! The logarithm family: a shared branch-free core (exponent extraction via
//! bits, mantissa normalized to [√½, √2), Cephes rational body) combined with
//! base-specific split constants, plus `log1p` with an exact-difference
//! correction term.

use crate::{poly, sel, sweep1};

const SQRT_HALF: f64 = std::f64::consts::FRAC_1_SQRT_2;
/// 2^54, the subnormal pre-scale.
const TWO54: f64 = 18014398509481984.0;

/// Cephes `log` rational: `log(1+f) = f + f·f²·P(f)/Q(f) − f²/2`.
const LOG_P: [f64; 6] = [
    1.01875663804580931796E-4,
    4.97494994976747001425E-1,
    4.70579119878881725854E0,
    1.44989225341610930846E1,
    1.79368678507819816313E1,
    7.70838733755885391666E0,
];
const LOG_Q: [f64; 6] = [
    1.0,
    1.12873587189167450590E1,
    4.52279145837532221105E1,
    8.29875266912776603211E1,
    7.11544750618563894466E1,
    2.31251620126765340583E1,
];

/// Split of ln2 (`LN2_HI + LN2_LO = ln2`); the high part is exact in a few
/// bits so `e·LN2_HI` is exact for every integer exponent `e`.
const LN2_HI: f64 = 0.693359375;
const LN2_LO: f64 = -2.121944400546905827679e-4;

/// log2(e) − 1, used to assemble `log2` from the natural-log core without a
/// lossy full multiplication.
const LOG2EA: f64 = 4.4269504088896340735992e-1;

/// Splits of log10(2) and log10(e) for `log10`.
const L102A: f64 = 3.0078125E-1;
const L102B: f64 = 2.48745663981195213739E-4;
const L10EA: f64 = 4.3359375E-1;
const L10EB: f64 = 7.00731903251827651129E-4;

/// The shared core: for a positive normal/subnormal `x = m·2^e` with
/// `m ∈ [√½, √2)`, returns `(f, y, e)` such that `log(x) = f + y + e·ln2`,
/// with `f = m − 1` and `y` the rational tail. Non-positive and non-finite
/// inputs produce defined garbage that [`log_specials`] blends away.
#[inline(always)]
fn log_core(x: f64) -> (f64, f64, f64) {
    let tiny = x < f64::MIN_POSITIVE;
    let xs = sel(tiny, x * TWO54, x);
    let bits = xs.to_bits();
    let e_raw = ((bits >> 52) & 0x7ff) as i64 as f64 - 1022.0 - sel(tiny, 54.0, 0.0);
    // Mantissa in [0.5, 1).
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FE0_0000_0000_0000);
    let lt = m < SQRT_HALF;
    let e = e_raw - sel(lt, 1.0, 0.0);
    let f = sel(lt, m + m, m) - 1.0;
    let z = f * f;
    let y = f * (z * poly(f, &LOG_P) / poly(f, &LOG_Q)) - 0.5 * z;
    (f, y, e)
}

/// The IEEE edge blends shared by the whole family: `log(±0) = −∞`,
/// `log(x<0) = NaN`, `log(+∞) = +∞`, NaN propagates.
#[inline(always)]
fn log_specials(x: f64, r: f64) -> f64 {
    let r = sel(x == 0.0, f64::NEG_INFINITY, r);
    let r = sel(x < 0.0, f64::NAN, r);
    let r = sel(x == f64::INFINITY, f64::INFINITY, r);
    sel(x.is_nan(), x, r)
}

/// Branch-free natural logarithm. Documented bound: ≤ 2 ULP over the full
/// domain (subnormals included).
#[inline]
pub fn log(x: f64) -> f64 {
    let (f, y, e) = log_core(x);
    let r = (f + (y + e * LN2_LO)) + e * LN2_HI;
    log_specials(x, r)
}

/// Branch-free base-2 logarithm. Documented bound: ≤ 2 ULP.
#[inline]
pub fn log2(x: f64) -> f64 {
    let (f, y, e) = log_core(x);
    let r = ((((y * LOG2EA) + f * LOG2EA) + y) + f) + e;
    log_specials(x, r)
}

/// Branch-free base-10 logarithm. Documented bound: ≤ 2 ULP.
#[inline]
pub fn log10(x: f64) -> f64 {
    let (f, y, e) = log_core(x);
    let r = y * L10EB + f * L10EB + e * L102B + y * L10EA + f * L10EA + e * L102A;
    log_specials(x, r)
}

/// Branch-free `log(1 + x)`: evaluates `log(u)` at `u = 1 + x` and repairs
/// the rounding of the addition with the exact-difference correction
/// `(u−1 − x)/u` (Goldberg/HP-35 trick), which also makes tiny arguments
/// return `x` itself to the last bit. Documented bound: ≤ 3 ULP, including
/// near the branch cut at −1.
#[inline]
pub fn log1p(x: f64) -> f64 {
    let u = 1.0 + x;
    let d = u - 1.0;
    let lg = log(u);
    let r = lg - (d - x) / u;
    let r = sel(x == -1.0, f64::NEG_INFINITY, r);
    sel(x == f64::INFINITY, f64::INFINITY, r)
}

sweep1!(
    /// Lane-sweep form of [`log`] (identical per-lane operations).
    log_sweep,
    log
);
sweep1!(
    /// Lane-sweep form of [`log2`] (identical per-lane operations).
    log2_sweep,
    log2
);
sweep1!(
    /// Lane-sweep form of [`log10`] (identical per-lane operations).
    log10_sweep,
    log10
);
sweep1!(
    /// Lane-sweep form of [`log1p`] (identical per-lane operations).
    log1p_sweep,
    log1p
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_specials_match_ieee() {
        for f in [log, log2, log10] {
            assert_eq!(f(1.0), 0.0);
            assert_eq!(f(0.0), f64::NEG_INFINITY);
            assert_eq!(f(-0.0), f64::NEG_INFINITY);
            assert!(f(-1.0).is_nan());
            assert!(f(f64::NEG_INFINITY).is_nan());
            assert_eq!(f(f64::INFINITY), f64::INFINITY);
            assert!(f(f64::NAN).is_nan());
        }
        assert_eq!(log2(1024.0), 10.0);
        assert_eq!(log10(1e6), 6.0);
        // Exact powers stay exact through the subnormal pre-scale (5e-324 is
        // 2^-1074; spelled as a literal because powi(-1074) underflows via
        // 1/2^1074 in debug builds).
        assert_eq!(log2(5e-324), -1074.0);
    }

    #[test]
    fn log1p_specials_and_tiny() {
        assert_eq!(log1p(0.0), 0.0);
        assert_eq!(log1p(-0.0), -0.0);
        assert_eq!(log1p(-1.0), f64::NEG_INFINITY);
        assert!(log1p(-1.5).is_nan());
        assert_eq!(log1p(f64::INFINITY), f64::INFINITY);
        assert!(log1p(f64::NAN).is_nan());
        for &x in &[1e-20, -1e-20, 5e-324, 1e-300, -1e-300] {
            assert_eq!(log1p(x).to_bits(), x.to_bits(), "log1p({x:e})");
        }
        // Near the branch cut: compare against libm.
        for i in 1..1000 {
            let x = -1.0 + i as f64 * 1e-9;
            let got = log1p(x);
            let want = x.ln_1p();
            assert!(
                crate::tests::ulps(got, want) <= 4,
                "log1p({x}): {got} vs {want}"
            );
        }
    }
}
