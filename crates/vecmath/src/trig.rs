//! Trigonometric kernels: `sin`, `cos`, `tan` with a three-part Cody–Waite
//! π/2 reduction (exact for quotients up to ~2²⁰, covering |x| ≤ 10⁶) and the
//! Cephes polynomial cores, plus a fully branch-free `atan`.
//!
//! Beyond the Cody–Waite range the reduction would need Payne–Hanek-style
//! extended precision; those rare lanes fall back to the host libm in a
//! separate fixup pass so the hot loop stays branch-free (the scalar form
//! branches on exactly the same predicate, keeping the pairing rule intact).

use crate::{poly, rint_i32, sel};

/// Three-part split of π/2 (each part exactly representable in ~33 bits, so
/// `q·PI2_A` and `q·PI2_B` are exact for |q| < 2²⁰).
const PI2_A: f64 = 1.57079625129699707031e0;
const PI2_B: f64 = 7.54978941586159635336e-8;
const PI2_C: f64 = 5.39030285815811905290e-15;

/// Largest |x| the in-line reduction handles; beyond it, libm takes over.
const SINCOS_MAX: f64 = 1.0e6;

/// True when `x` needs the libm slow path: out of the Cody–Waite range, or
/// so close to a nonzero multiple of π/2 that the reduced argument cancels
/// below the ~103 bits the three-part split carries (the threshold keeps the
/// reduction's relative error under ~0.1 ULP; floats adjacent to k·π/2 — the
/// worst case — fall back). Both the scalar forms and the sweep fixup pass
/// branch on exactly this predicate, so the pairing rule holds.
// The negated comparison is load-bearing: `!(|x| <= MAX)` is true for NaN,
// which must take the slow path.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline(always)]
fn needs_slow_path(x: f64) -> bool {
    // Branch-free (non-short-circuit `|`) so the fixup pre-scan vectorizes;
    // the reduction below is garbage-but-defined for huge/non-finite x.
    let (q, _) = rint_i32(x * std::f64::consts::FRAC_2_PI);
    let z = ((x - q * PI2_A) - q * PI2_B) - q * PI2_C;
    !(x.abs() <= SINCOS_MAX) | (z.abs() < q.abs() * 4e-15)
}

/// Overwrites `out[i]` with `f(a[i])` wherever [`needs_slow_path`] holds.
/// A branch-free vector pre-scan decides whether *any* lane needs fixing;
/// only then does the per-lane pass run, so the common all-fast block costs
/// one cheap sweep over the inputs.
#[inline(always)]
fn trig_fixup(out: &mut [f64], a: &[f64], f: impl Fn(f64) -> f64) {
    let mut any = false;
    for &x in a {
        any |= needs_slow_path(x);
    }
    if any {
        for (o, &x) in out.iter_mut().zip(a) {
            if needs_slow_path(x) {
                *o = f(x);
            }
        }
    }
}

const SIN_C: [f64; 6] = [
    1.58962301576546568060E-10,
    -2.50507477628578072866E-8,
    2.75573136213857245213E-6,
    -1.98412698295895385996E-4,
    8.33333333332211858878E-3,
    -1.66666666666666307295E-1,
];
const COS_C: [f64; 6] = [
    -1.13585365213876817300E-11,
    2.08757008419747316778E-9,
    -2.75573141792967388112E-7,
    2.48015872888517179954E-5,
    -1.38888888888730564116E-3,
    4.16666666666665929218E-2,
];

const TAN_P: [f64; 3] = [
    -1.30936939181383777646E4,
    1.15351664838587416140E6,
    -1.79565251976484877988E7,
];
const TAN_Q: [f64; 5] = [
    1.0,
    1.36812963470692954678E4,
    -1.32089234440210967447E6,
    2.50083801823357915839E7,
    -5.38695755929454629881E7,
];

/// Reduces `x` to `z ∈ [−π/4, π/4]` with quadrant index `k`
/// (`x = k·π/2 + z`). Valid for |x| ≤ [`SINCOS_MAX`].
#[inline(always)]
fn reduce_pi2(x: f64) -> (f64, i32) {
    let (q, k) = rint_i32(x * std::f64::consts::FRAC_2_PI);
    let z = ((x - q * PI2_A) - q * PI2_B) - q * PI2_C;
    (z, k)
}

#[inline(always)]
fn sin_poly(z: f64, zz: f64) -> f64 {
    z + z * (zz * poly(zz, &SIN_C))
}

#[inline(always)]
fn cos_poly(zz: f64) -> f64 {
    1.0 - 0.5 * zz + zz * (zz * poly(zz, &COS_C))
}

/// Picks `t` where `mask` is all-ones, `e` where it is zero — an explicit
/// bitwise blend. The compiler turns a bool select between two *expensive*
/// expressions into a branch, which defeats vectorization and mispredicts on
/// random quadrants; the bit form stays straight-line.
#[inline(always)]
fn blend_bits(mask: u64, t: f64, e: f64) -> f64 {
    f64::from_bits((t.to_bits() & mask) | (e.to_bits() & !mask))
}

#[inline(always)]
fn sin_core(x: f64) -> f64 {
    let (z, k) = reduce_pi2(x);
    let zz = z * z;
    let use_cos = ((k & 1) as u64).wrapping_neg();
    let v = blend_bits(use_cos, cos_poly(zz), sin_poly(z, zz));
    // Quadrants 2 and 3 negate: flip the sign bit directly.
    let v = f64::from_bits(v.to_bits() ^ (((k as u64) & 2) << 62));
    // The polynomial tail turns −0 into +0 (−0 + +0 = +0); restore it.
    sel(x == 0.0, x, v)
}

#[inline(always)]
fn cos_core(x: f64) -> f64 {
    let (z, k) = reduce_pi2(x);
    let zz = z * z;
    let use_sin = ((k & 1) as u64).wrapping_neg();
    let v = blend_bits(use_sin, sin_poly(z, zz), cos_poly(zz));
    // Quadrants 1 and 2 negate.
    f64::from_bits(v.to_bits() ^ (((k.wrapping_add(1) as u64) & 2) << 62))
}

#[inline(always)]
fn tan_core(x: f64) -> f64 {
    let (z, k) = reduce_pi2(x);
    let zz = z * z;
    let t = z + z * (zz * poly(zz, &TAN_P) / poly(zz, &TAN_Q));
    let t = sel((k & 1) != 0, -1.0 / t, t);
    sel(x == 0.0, x, t)
}

/// Sine. Documented bound: ≤ 2.5 ULP (libm handles |x| > 10⁶ and
/// deep-cancellation points next to multiples of π/2).
#[inline]
pub fn sin(x: f64) -> f64 {
    if needs_slow_path(x) {
        x.sin()
    } else {
        sin_core(x)
    }
}

/// Cosine. Documented bound: ≤ 2.5 ULP (see [`sin`] for the slow-path rule).
#[inline]
pub fn cos(x: f64) -> f64 {
    if needs_slow_path(x) {
        x.cos()
    } else {
        cos_core(x)
    }
}

/// Tangent. Documented bound: ≤ 4 ULP (see [`sin`] for the slow-path rule).
#[inline]
pub fn tan(x: f64) -> f64 {
    if needs_slow_path(x) {
        x.tan()
    } else {
        tan_core(x)
    }
}

#[inline(always)]
fn sin_sweep_body(out: &mut [f64], a: &[f64]) {
    for (o, &x) in out.iter_mut().zip(a) {
        *o = sin_core(x);
    }
    trig_fixup(out, a, f64::sin);
}

#[inline(always)]
fn cos_sweep_body(out: &mut [f64], a: &[f64]) {
    for (o, &x) in out.iter_mut().zip(a) {
        *o = cos_core(x);
    }
    trig_fixup(out, a, f64::cos);
}

#[inline(always)]
fn tan_sweep_body(out: &mut [f64], a: &[f64]) {
    for (o, &x) in out.iter_mut().zip(a) {
        *o = tan_core(x);
    }
    trig_fixup(out, a, f64::tan);
}

crate::dispatch_sweep1!(
    /// Lane-sweep form of [`sin`]: a branch-free main pass over every lane,
    /// then a fixup pass for the rare slow-path lanes (same per-lane
    /// operations as the scalar form on both sides of the predicate).
    sin_sweep,
    sin_sweep_body
);
crate::dispatch_sweep1!(
    /// Lane-sweep form of [`cos`] (see [`sin_sweep`]).
    cos_sweep,
    cos_sweep_body
);
crate::dispatch_sweep1!(
    /// Lane-sweep form of [`tan`] (see [`sin_sweep`]).
    tan_sweep,
    tan_sweep_body
);

const ATAN_P: [f64; 5] = [
    -8.750608600031904122785E-1,
    -1.615753718733365076637E1,
    -7.500855792314704667340E1,
    -1.228866684490136173410E2,
    -6.485021904942025371773E1,
];
const ATAN_Q: [f64; 6] = [
    1.0,
    2.485846490142306297962E1,
    1.650270098316988542046E2,
    4.328810604912902668951E2,
    4.853903996359136964868E2,
    1.945506571482613964425E2,
];
/// tan(3π/8), the upper range-reduction threshold.
const T3P8: f64 = 2.41421356237309504880;
/// The low word of π/2 (π/2 = FRAC_PI_2 + MOREBITS).
const MOREBITS: f64 = 6.123233995736765886130E-17;

/// Branch-free arctangent (valid over the full domain, no fallback).
/// Documented bound: ≤ 2 ULP.
#[inline]
pub fn atan(x: f64) -> f64 {
    let ax = x.abs();
    let big = ax > T3P8;
    let mid = ax > 0.66;
    let xr = sel(big, -1.0 / ax, sel(mid, (ax - 1.0) / (ax + 1.0), ax));
    let base = sel(
        big,
        std::f64::consts::FRAC_PI_2,
        sel(mid, std::f64::consts::FRAC_PI_4, 0.0),
    );
    let low = sel(big, MOREBITS, sel(mid, 0.5 * MOREBITS, 0.0));
    let z = xr * xr;
    let p = z * poly(z, &ATAN_P) / poly(z, &ATAN_Q);
    let r = ((xr * p + xr) + low) + base;
    sel(x.is_sign_negative(), -r, r)
}

crate::sweep1!(
    /// Lane-sweep form of [`atan`] (identical per-lane operations).
    atan_sweep,
    atan
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::ulps;

    #[test]
    fn trig_specials() {
        assert_eq!(sin(0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(sin(-0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(cos(0.0), 1.0);
        assert_eq!(tan(-0.0).to_bits(), (-0.0f64).to_bits());
        for f in [sin, cos, tan] {
            assert!(f(f64::NAN).is_nan());
            assert!(f(f64::INFINITY).is_nan());
            assert!(f(f64::NEG_INFINITY).is_nan());
        }
        // Subnormals: sin(x) == x, tan(x) == x, cos(x) == 1.
        assert_eq!(sin(5e-324).to_bits(), 5e-324f64.to_bits());
        assert_eq!(tan(5e-324).to_bits(), 5e-324f64.to_bits());
        assert_eq!(cos(5e-324), 1.0);
    }

    #[test]
    fn huge_arguments_fall_back_to_libm() {
        for &x in &[1e7, -3.7e9, 1e200, 4.56e15] {
            assert_eq!(sin(x).to_bits(), x.sin().to_bits(), "sin({x:e})");
            assert_eq!(cos(x).to_bits(), x.cos().to_bits(), "cos({x:e})");
            assert_eq!(tan(x).to_bits(), x.tan().to_bits(), "tan({x:e})");
        }
    }

    #[test]
    fn deep_cancellation_points_fall_back_to_libm() {
        // The doubles nearest k·π/2 reduce to ~1e-16·k, far below what the
        // three-part reduction can resolve accurately; they must take the
        // libm path in both the scalar and sweep forms.
        let points: Vec<f64> = (1..40)
            .map(|k| k as f64 * std::f64::consts::FRAC_PI_2)
            .collect();
        let mut out = vec![0.0; points.len()];
        sin_sweep(&mut out, &points);
        for (&x, &got) in points.iter().zip(&out) {
            assert_eq!(got.to_bits(), x.sin().to_bits(), "sin({x})");
            assert_eq!(sin(x).to_bits(), x.sin().to_bits(), "scalar sin({x})");
            assert_eq!(cos(x).to_bits(), x.cos().to_bits(), "cos({x})");
            assert_eq!(tan(x).to_bits(), x.tan().to_bits(), "tan({x})");
        }
    }

    #[test]
    fn atan_specials() {
        assert_eq!(atan(0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(atan(-0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(atan(f64::INFINITY), std::f64::consts::FRAC_PI_2);
        assert_eq!(atan(f64::NEG_INFINITY), -std::f64::consts::FRAC_PI_2);
        assert!(atan(f64::NAN).is_nan());
        assert!(ulps(atan(1.0), std::f64::consts::FRAC_PI_4) <= 1);
    }

    #[test]
    fn quadrant_logic_is_right() {
        // Walk a couple of full periods comparing against libm.
        for i in -1000..1000 {
            let x = i as f64 * 0.0157;
            assert!(ulps(sin(x), x.sin()) <= 3, "sin({x})");
            assert!(ulps(cos(x), x.cos()) <= 3, "cos({x})");
            assert!(ulps(tan(x), x.tan()) <= 5, "tan({x})");
        }
    }
}
