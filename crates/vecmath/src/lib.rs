//! # vecmath
//!
//! Portable, branch-free, block-wide kernels for the hot transcendental
//! functions of the evaluation pipeline: `exp`, `expm1`, `log`, `log1p`,
//! `log2`, `log10`, `sin`, `cos`, `tan`, `sinh`, `cosh`, `tanh`, `atan`,
//! plus `pow` and `hypot` built on top of them.
//!
//! ## The scalar / lane-sweep pairing rule
//!
//! Every kernel ships in two forms:
//!
//! * a **scalar** form (`exp(x)`), used by the tree-walk interpreter and the
//!   scalar bytecode engine via `fpcore::eval::apply_op1`/`apply_op2`;
//! * a **lane-sweep** form (`exp_sweep(out, a)`), used by the block engine to
//!   process a whole lane slice per instruction dispatch.
//!
//! The invariant that makes the whole system hang together is **bit
//! identity**: the sweep form executes the *identical* operation sequence per
//! lane as the scalar form, so the three evaluation engines agree bit for bit
//! at every block width. The rule for adding a kernel is therefore:
//!
//! 1. write a branch-free scalar core (`*_core`) — range reduction with
//!    integer exponent extraction or Cody–Waite splits, a Horner polynomial
//!    or rational body, and *mask blends* (the crate-internal `sel` helper)
//!    for special values; no data-dependent branches, no calls into libm on
//!    the main path;
//! 2. define the sweep form as a plain per-lane loop over that same core, so
//!    the compiler can auto-vectorize it and equality per lane holds by
//!    construction;
//! 3. if a slow path is unavoidable (e.g. `sin`/`cos`/`tan` beyond the
//!    Cody–Waite range fall back to libm argument reduction), the scalar form
//!    must branch on *exactly* the predicate the sweep form's fixup pass
//!    re-applies per lane, so the two forms still agree everywhere;
//! 4. register the kernel in [`KERNELS1`] / [`KERNELS2`] with its documented
//!    ULP bound — CI sweeps each kernel's domain (plus NaN, infinities,
//!    signed zeros, subnormals and near-branch-cut points) against the Rival
//!    ground truth and fails if the measured error exceeds the bound.
//!
//! ## Accuracy contract
//!
//! Each kernel documents a maximum error bound in units in the last place
//! (ULP) against the correctly rounded result; the property suite in
//! `tests/vecmath_ulp.rs` enforces it. The cores are Cephes-style rational
//! and polynomial approximations (the same family vdt and SLEEF descend
//! from), which keep every kernel within 4 ULP and the exponential /
//! logarithm family within ~1–2 ULP.
//!
//! This crate depends on nothing (not even `fpcore`): it is pure `f64`
//! math, safe to reuse from any layer.

// The Cephes-family coefficient tables and split constants are quoted
// verbatim from their derivations, with more decimal digits than a double
// resolves; trimming them would obscure the provenance.
#![allow(clippy::excessive_precision)]

mod exp;
mod hyper;
mod log;
mod pow;
mod trig;

pub use exp::{exp, exp_sweep, expm1, expm1_sweep};
pub use hyper::{cosh, cosh_sweep, sinh, sinh_sweep, tanh, tanh_sweep};
pub use log::{log, log10, log10_sweep, log1p, log1p_sweep, log2, log2_sweep, log_sweep};
pub use pow::{hypot, hypot_sweep, pow, pow_sweep};
pub use trig::{atan, atan_sweep, cos, cos_sweep, sin, sin_sweep, tan, tan_sweep};

/// Branch-free select: compiles to a conditional move / SIMD blend, not a
/// branch, inside the sweep loops.
#[inline(always)]
pub(crate) fn sel(c: bool, t: f64, e: f64) -> f64 {
    if c {
        t
    } else {
        e
    }
}

/// `1.5 * 2^52`: adding and subtracting this rounds a double to the nearest
/// integer (ties to even) without `round()`/`floor()` libm calls, and the low
/// 32 bits of the sum's mantissa hold the integer in two's complement for
/// |x| < 2^31 — the classic SSE trick.
pub(crate) const RINT_MAGIC: f64 = 6755399441055744.0;

/// Rounds to the nearest integer, returning it both as a double and as an
/// `i32`. Valid for |x| < 2^31; out-of-range and non-finite inputs produce
/// garbage-but-defined values that callers blend away.
#[inline(always)]
pub(crate) fn rint_i32(x: f64) -> (f64, i32) {
    let t = x + RINT_MAGIC;
    let k = t.to_bits() as i32;
    (t - RINT_MAGIC, k)
}

/// `x * 2^k` built from exponent bits, safe down to subnormal results (the
/// scale is applied in two halves so each factor stays a normal number).
/// `k` is clamped to a range where the arithmetic cannot overflow; callers
/// relying on clamped `k` always have a NaN/infinity flowing through the
/// float side, so the clamped result is blended away.
#[inline(always)]
pub(crate) fn scale2(x: f64, k: i32) -> f64 {
    let k = k.clamp(-2200, 2200);
    let k1 = k >> 1;
    x * pow2i(k1) * pow2i(k - k1)
}

/// `2^k` from bits; `k` must keep the biased exponent within `u64` shifting
/// range (guaranteed by [`scale2`]'s clamp).
#[inline(always)]
fn pow2i(k: i32) -> f64 {
    f64::from_bits(((k + 1023) as i64 as u64) << 52)
}

/// Horner evaluation with a compile-time-known coefficient count (the slice
/// is always a `const` array, so the loop unrolls fully).
#[inline(always)]
pub(crate) fn poly(x: f64, c: &[f64]) -> f64 {
    let mut r = c[0];
    for &k in &c[1..] {
        r = r * x + k;
    }
    r
}

/// Cached runtime check for AVX2. The sweep loops are compiled twice — once
/// with the build's baseline features and once as an
/// `#[target_feature(enable = "avx2")]` clone — and dispatched here, so a
/// baseline (SSE2) build still runs 4-wide on modern x86-64. Bit identity is
/// unaffected: the clone executes the same IEEE-754 operations per lane,
/// only in wider registers (FMA contraction is never enabled).
#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn have_avx2() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let yes = std::arch::is_x86_feature_detected!("avx2");
            STATE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
        s => s == 2,
    }
}

/// Wraps a unary sweep body in the AVX2 runtime dispatch (see
/// [`have_avx2`]). `$body` must be an `#[inline(always)]` function so the
/// AVX2 clone recompiles the whole loop — scalar core included — with wider
/// vectors.
macro_rules! dispatch_sweep1 {
    ($(#[$doc:meta])* $name:ident, $body:path) => {
        $(#[$doc])*
        pub fn $name(out: &mut [f64], a: &[f64]) {
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2")]
                unsafe fn avx2(out: &mut [f64], a: &[f64]) {
                    $body(out, a)
                }
                if crate::have_avx2() {
                    // SAFETY: AVX2 support was verified at runtime; the
                    // clone runs the identical per-lane IEEE operations.
                    unsafe {
                        return avx2(out, a);
                    }
                }
            }
            $body(out, a)
        }
    };
}

/// Generates the lane-sweep form of a kernel as a per-lane loop over its
/// scalar form — the pairing rule's step 2 — with the AVX2 dispatch.
macro_rules! sweep1 {
    ($(#[$doc:meta])* $name:ident, $scalar:path) => {
        $(#[$doc])*
        pub fn $name(out: &mut [f64], a: &[f64]) {
            #[inline(always)]
            fn body(out: &mut [f64], a: &[f64]) {
                for (o, &x) in out.iter_mut().zip(a) {
                    *o = $scalar(x);
                }
            }
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2")]
                unsafe fn avx2(out: &mut [f64], a: &[f64]) {
                    body(out, a)
                }
                if crate::have_avx2() {
                    // SAFETY: AVX2 support was verified at runtime; the
                    // clone runs the identical per-lane IEEE operations.
                    unsafe {
                        return avx2(out, a);
                    }
                }
            }
            body(out, a)
        }
    };
}
macro_rules! sweep2 {
    ($(#[$doc:meta])* $name:ident, $scalar:path) => {
        $(#[$doc])*
        pub fn $name(out: &mut [f64], a: &[f64], b: &[f64]) {
            #[inline(always)]
            fn body(out: &mut [f64], a: &[f64], b: &[f64]) {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = $scalar(x, y);
                }
            }
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2")]
                unsafe fn avx2(out: &mut [f64], a: &[f64], b: &[f64]) {
                    body(out, a, b)
                }
                if crate::have_avx2() {
                    // SAFETY: see sweep1.
                    unsafe {
                        return avx2(out, a, b);
                    }
                }
            }
            body(out, a, b)
        }
    };
}
pub(crate) use {dispatch_sweep1, sweep1, sweep2};

/// The closed input range on which a kernel's *main* polynomial/table path is
/// exact-by-contract: inputs inside it never trigger the kernel's
/// special-case handling (overflow/underflow clamps, subnormal rescaling,
/// saturation, or the out-of-range libm fallback of the trig kernels).
///
/// The bounds are deliberately conservative (well inside the true switch-over
/// thresholds). They exist for *static analysis*: the `targets::analysis`
/// interval pass uses them to annotate call sites whose argument range
/// provably stays on the main path. The annotation is advisory — dispatch is
/// never changed by it, so bit-identity across engines is unaffected.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SafeRange {
    /// Smallest input on the main path.
    pub lo: f64,
    /// Largest input on the main path.
    pub hi: f64,
}

impl SafeRange {
    /// True when the closed interval `[lo, hi]` lies inside the safe range.
    pub fn contains_interval(&self, lo: f64, hi: f64) -> bool {
        self.lo <= lo && hi <= self.hi
    }
}

/// A registered unary kernel: the scalar/sweep pair, the host-libm function
/// it replaces, and its documented accuracy bound (enforced against Rival by
/// the ULP property suite).
pub struct Kernel1 {
    /// Kernel name, matching the `RealOp` it implements (lowercase).
    pub name: &'static str,
    /// Scalar form (what `fpcore::eval::apply_op1` routes to).
    pub scalar: fn(f64) -> f64,
    /// Lane-sweep form (what the block engine dispatches to).
    pub sweep: fn(&mut [f64], &[f64]),
    /// The host libm operation this kernel replaces (the `libm-calls` path).
    pub reference: fn(f64) -> f64,
    /// Documented maximum error vs. the correctly rounded result, in ULP.
    pub max_ulp: f64,
    /// Input range on which no special-case path is taken (see [`SafeRange`]).
    pub safe: SafeRange,
}

/// A registered binary kernel (see [`Kernel1`]).
pub struct Kernel2 {
    pub name: &'static str,
    pub scalar: fn(f64, f64) -> f64,
    pub sweep: fn(&mut [f64], &[f64], &[f64]),
    pub reference: fn(f64, f64) -> f64,
    pub max_ulp: f64,
    /// Special-case-free range of the first argument (see [`SafeRange`]).
    pub safe_a: SafeRange,
    /// Special-case-free range of the second argument.
    pub safe_b: SafeRange,
}

/// Looks up a unary kernel by the identity of its sweep function (the handle
/// compiled programs carry), for annotation purposes.
pub fn kernel1_for_sweep(sweep: fn(&mut [f64], &[f64])) -> Option<&'static Kernel1> {
    KERNELS1.iter().find(|k| k.sweep as usize == sweep as usize)
}

/// Looks up a binary kernel by the identity of its sweep function.
pub fn kernel2_for_sweep(sweep: fn(&mut [f64], &[f64], &[f64])) -> Option<&'static Kernel2> {
    KERNELS2.iter().find(|k| k.sweep as usize == sweep as usize)
}

/// Looks up a unary kernel by name (the lowercase `RealOp` spelling).
pub fn kernel1_by_name(name: &str) -> Option<&'static Kernel1> {
    KERNELS1.iter().find(|k| k.name == name)
}

/// Looks up a binary kernel by name.
pub fn kernel2_by_name(name: &str) -> Option<&'static Kernel2> {
    KERNELS2.iter().find(|k| k.name == name)
}

/// Largest magnitude the normal-range `log`-family kernels accept without
/// subnormal rescaling at the bottom or ±inf handling at the top.
const MAX_NORMAL: f64 = 1.7e308;
/// Smallest positive normal double, rounded up a touch (2.2250738585072014e-308).
const MIN_NORMAL: f64 = 2.3e-308;

/// Every unary kernel, with its documented ULP bound.
pub const KERNELS1: &[Kernel1] = &[
    Kernel1 {
        name: "exp",
        scalar: exp,
        sweep: exp_sweep,
        reference: f64::exp,
        max_ulp: 2.0,
        safe: SafeRange {
            lo: -700.0,
            hi: 700.0,
        },
    },
    Kernel1 {
        name: "expm1",
        scalar: expm1,
        sweep: expm1_sweep,
        reference: f64::exp_m1,
        max_ulp: 4.0,
        safe: SafeRange {
            lo: -700.0,
            hi: 700.0,
        },
    },
    Kernel1 {
        name: "log",
        scalar: log,
        sweep: log_sweep,
        reference: f64::ln,
        max_ulp: 2.0,
        safe: SafeRange {
            lo: MIN_NORMAL,
            hi: MAX_NORMAL,
        },
    },
    Kernel1 {
        name: "log1p",
        scalar: log1p,
        sweep: log1p_sweep,
        reference: f64::ln_1p,
        max_ulp: 3.0,
        safe: SafeRange {
            lo: -0.9,
            hi: MAX_NORMAL,
        },
    },
    Kernel1 {
        name: "log2",
        scalar: log2,
        sweep: log2_sweep,
        reference: f64::log2,
        max_ulp: 2.0,
        safe: SafeRange {
            lo: MIN_NORMAL,
            hi: MAX_NORMAL,
        },
    },
    Kernel1 {
        name: "log10",
        scalar: log10,
        sweep: log10_sweep,
        reference: f64::log10,
        max_ulp: 2.0,
        safe: SafeRange {
            lo: MIN_NORMAL,
            hi: MAX_NORMAL,
        },
    },
    Kernel1 {
        name: "sin",
        scalar: sin,
        sweep: sin_sweep,
        reference: f64::sin,
        max_ulp: 2.5,
        safe: SafeRange {
            lo: -0.78,
            hi: 0.78,
        },
    },
    Kernel1 {
        name: "cos",
        scalar: cos,
        sweep: cos_sweep,
        reference: f64::cos,
        max_ulp: 2.5,
        safe: SafeRange {
            lo: -0.78,
            hi: 0.78,
        },
    },
    Kernel1 {
        name: "tan",
        scalar: tan,
        sweep: tan_sweep,
        reference: f64::tan,
        max_ulp: 4.0,
        safe: SafeRange {
            lo: -0.78,
            hi: 0.78,
        },
    },
    Kernel1 {
        name: "sinh",
        scalar: sinh,
        sweep: sinh_sweep,
        reference: f64::sinh,
        max_ulp: 4.0,
        safe: SafeRange {
            lo: -700.0,
            hi: 700.0,
        },
    },
    Kernel1 {
        name: "cosh",
        scalar: cosh,
        sweep: cosh_sweep,
        reference: f64::cosh,
        max_ulp: 4.0,
        safe: SafeRange {
            lo: -700.0,
            hi: 700.0,
        },
    },
    Kernel1 {
        name: "tanh",
        scalar: tanh,
        sweep: tanh_sweep,
        reference: f64::tanh,
        max_ulp: 3.0,
        safe: SafeRange {
            lo: -18.0,
            hi: 18.0,
        },
    },
    Kernel1 {
        name: "atan",
        scalar: atan,
        sweep: atan_sweep,
        reference: f64::atan,
        max_ulp: 2.0,
        safe: SafeRange {
            lo: -MAX_NORMAL,
            hi: MAX_NORMAL,
        },
    },
];

/// Every binary kernel, with its documented ULP bound.
pub const KERNELS2: &[Kernel2] = &[
    Kernel2 {
        name: "pow",
        scalar: pow,
        sweep: pow_sweep,
        reference: f64::powf,
        max_ulp: 4.0,
        safe_a: SafeRange { lo: 0.5, hi: 2.0 },
        safe_b: SafeRange {
            lo: -512.0,
            hi: 512.0,
        },
    },
    Kernel2 {
        name: "hypot",
        scalar: hypot,
        sweep: hypot_sweep,
        reference: f64::hypot,
        max_ulp: 3.0,
        safe_a: SafeRange {
            lo: -1.0e150,
            hi: 1.0e150,
        },
        safe_b: SafeRange {
            lo: -1.0e150,
            hi: 1.0e150,
        },
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    /// ULP distance between two doubles of the same sign class (test helper).
    pub(crate) fn ulps(a: f64, b: f64) -> u64 {
        if a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()) {
            return 0;
        }
        if a.is_nan() || b.is_nan() {
            return u64::MAX;
        }
        // Monotone mapping of the float order onto u64 (±0 share a key).
        let key = |x: f64| {
            let b = x.to_bits();
            if b >> 63 == 0 {
                b + (1u64 << 63)
            } else {
                (1u64 << 63).wrapping_sub(b.wrapping_sub(1u64 << 63))
            }
        };
        key(a).abs_diff(key(b))
    }

    #[test]
    fn rint_magic_rounds_to_nearest() {
        for (x, want) in [
            (0.0, 0),
            (0.4, 0),
            (0.6, 1),
            (-0.6, -1),
            (2.5, 2), // ties to even
            (3.5, 4),
            (-2.5, -2),
            (1e6 + 0.25, 1_000_000),
            (-123456.75, -123457),
        ] {
            let (f, k) = rint_i32(x);
            assert_eq!(k, want, "rint_i32({x})");
            assert_eq!(f, want as f64, "rint_i32({x}) float part");
        }
    }

    #[test]
    fn scale2_reaches_subnormals_and_overflow() {
        assert_eq!(scale2(1.0, 0), 1.0);
        assert_eq!(scale2(1.0, -1074), 5e-324);
        assert_eq!(scale2(1.5, 1023), 1.5 * 2f64.powi(1023));
        assert_eq!(scale2(1.0, 1100), f64::INFINITY);
        assert_eq!(scale2(1.0, -1200), 0.0);
        assert!(scale2(f64::NAN, 12345678).is_nan());
    }

    #[test]
    fn every_kernel_scalar_and_sweep_agree_bitwise() {
        // The pairing rule, spot-checked over a mixed bag of inputs including
        // every special class. The integration suite does this corpus-wide.
        let inputs: Vec<f64> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            -0.5,
            3.25e-3,
            7.5,
            -12.25,
            1e-300,
            -1e-300,
            5e-324,
            1e300,
            -1e300,
            708.5,
            -708.5,
            1e7,
            -1e7,
            1e16,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            std::f64::consts::PI,
            -std::f64::consts::FRAC_PI_2,
        ];
        let mut out = vec![0.0; inputs.len()];
        for k in KERNELS1 {
            (k.sweep)(&mut out, &inputs);
            for (&x, &got) in inputs.iter().zip(&out) {
                let want = (k.scalar)(x);
                assert_eq!(
                    want.to_bits(),
                    got.to_bits(),
                    "{}: sweep diverges from scalar at {x:e} ({want:e} vs {got:e})",
                    k.name
                );
            }
        }
        let b: Vec<f64> = inputs.iter().rev().copied().collect();
        for k in KERNELS2 {
            (k.sweep)(&mut out, &inputs, &b);
            for i in 0..inputs.len() {
                let want = (k.scalar)(inputs[i], b[i]);
                assert_eq!(
                    want.to_bits(),
                    out[i].to_bits(),
                    "{}: sweep diverges from scalar at ({:e}, {:e})",
                    k.name,
                    inputs[i],
                    b[i]
                );
            }
        }
    }

    #[test]
    fn kernels_track_libm_closely_on_benign_sweeps() {
        // Not the accuracy gate (that is the Rival ULP suite) — a coarse
        // guard that every coefficient table is right: vs. libm, which is
        // itself within ~1 ULP, every kernel must stay within a few ULP.
        for k in KERNELS1 {
            let domain: Vec<f64> = match k.name {
                "exp" | "expm1" => (-600..600).map(|i| i as f64 * 1.171).collect(),
                "log" | "log2" | "log10" => (1..1200)
                    .map(|i| (i as f64 * 0.37).exp2() * 1e-60)
                    .collect(),
                "log1p" => (-999..4000).map(|i| i as f64 * 1e-3).collect(),
                "sin" | "cos" | "tan" | "atan" => (-4000..4000).map(|i| i as f64 * 0.251).collect(),
                "sinh" | "cosh" => (-500..500).map(|i| i as f64 * 1.4).collect(),
                "tanh" => (-400..400).map(|i| i as f64 * 0.05).collect(),
                _ => unreachable!("unregistered kernel {}", k.name),
            };
            for &x in &domain {
                let got = (k.scalar)(x);
                let want = (k.reference)(x);
                assert!(
                    ulps(got, want) <= k.max_ulp as u64 + 2,
                    "{}({x:e}): kernel {got:e} vs libm {want:e} ({} ulps)",
                    k.name,
                    ulps(got, want)
                );
            }
        }
    }

    #[test]
    fn binary_kernels_track_libm() {
        for i in -60..60 {
            for j in -40..40 {
                let x = (i as f64 * 0.23).exp2();
                let y = j as f64 * 0.37;
                let (got, want) = (pow(x, y), x.powf(y));
                assert!(
                    ulps(got, want) <= 6,
                    "pow({x:e}, {y:e}): {got:e} vs {want:e} ({} ulps)",
                    ulps(got, want)
                );
                let h = i as f64 * 1.7e3;
                let (got, want) = (hypot(h, y * 100.0), h.hypot(y * 100.0));
                assert!(
                    ulps(got, want) <= 4,
                    "hypot({h:e}, {:e}): {got:e} vs {want:e}",
                    y * 100.0
                );
            }
        }
    }

    #[test]
    fn ieee_special_cases_match_libm_exactly() {
        // Special-value semantics (±0, ±inf, NaN, domain edges) must agree
        // with the host libm bit for bit: these are exactly specified by
        // IEEE 754 and the engines' NaN-handling depends on them.
        let specials = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            -2.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            5e-324,
            -5e-324,
            f64::MAX,
            f64::MIN,
        ];
        for k in KERNELS1 {
            for &x in &specials {
                let got = (k.scalar)(x);
                let want = (k.reference)(x);
                assert!(
                    got.to_bits() == want.to_bits() || super::tests::ulps(got, want) <= 4,
                    "{}({x:e}): {got:e} (bits {:#x}) vs libm {want:e} ({:#x})",
                    k.name,
                    got.to_bits(),
                    want.to_bits()
                );
            }
        }
        // pow's special-case zoo is fully specified by IEEE 754; require
        // exact agreement with the host implementation on a grid of specials.
        for &x in &specials {
            for &y in &specials {
                let (got, want) = (pow(x, y), x.powf(y));
                assert!(
                    got.to_bits() == want.to_bits()
                        || (got.is_nan() && want.is_nan())
                        || (!want.is_nan() && !got.is_nan() && super::tests::ulps(got, want) <= 4),
                    "pow({x:e}, {y:e}): {got:e} ({:#x}) vs libm {want:e} ({:#x})",
                    got.to_bits(),
                    want.to_bits()
                );
                let (got, want) = (hypot(x, y), x.hypot(y));
                assert!(
                    got.to_bits() == want.to_bits()
                        || (got.is_nan() && want.is_nan())
                        || (!want.is_nan() && !got.is_nan() && super::tests::ulps(got, want) <= 3),
                    "hypot({x:e}, {y:e}): {got:e} vs libm {want:e}"
                );
            }
        }
    }
}
