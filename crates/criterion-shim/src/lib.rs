//! A dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate provides the
//! subset of criterion's API that the workspace benches use — `Criterion`
//! configuration builders, `bench_function`/`Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple wall-clock
//! harness: each benchmark is warmed up, then run for the configured measurement
//! time, and the mean, best, and worst iteration times are printed.
//!
//! Timings from this shim are comparable across runs on the same machine but
//! lack criterion's statistical machinery (outlier rejection, regression
//! detection); swap the path dependency back to the real criterion when
//! registry access is available.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the target number of measured samples.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.warm_up_time,
            measuring: false,
        };
        // Warm-up: run without recording.
        f(&mut bencher);
        // Measurement: record per-iteration times until the budget is spent or
        // the sample target is reached, re-invoking the routine as needed.
        bencher.measuring = true;
        bencher.budget = self.measurement_time;
        let start = Instant::now();
        while bencher.samples.len() < self.sample_size && start.elapsed() < self.measurement_time {
            f(&mut bencher);
        }
        report(id, &bencher.samples);
        self
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} no samples collected");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let best = samples.iter().min().copied().unwrap_or_default();
    let worst = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{id:<40} mean {:>12} best {:>12} worst {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(best),
        fmt_duration(worst),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Passed to each benchmark closure; times the routine given to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    measuring: bool,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording one sample per call while measuring.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        loop {
            let iteration = Instant::now();
            black_box(routine());
            let elapsed = iteration.elapsed();
            if self.measuring {
                self.samples.push(elapsed);
            }
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        let mut runs = 0u32;
        c.bench_function("shim_smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            });
        });
        assert!(runs > 0);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
