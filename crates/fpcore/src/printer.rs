//! Pretty-printers: S-expression (FPCore) output and C-like infix output.

use crate::ast::{Expr, FPCore, RealOp};
use std::fmt::Write;

/// Renders an expression as an FPCore S-expression.
pub fn to_sexpr(expr: &Expr) -> String {
    let mut out = String::new();
    write_sexpr(expr, &mut out);
    out
}

fn write_sexpr(expr: &Expr, out: &mut String) {
    match expr {
        Expr::Num(c) => {
            let _ = write!(out, "{c}");
        }
        Expr::Var(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Op(RealOp::Neg, args) => {
            out.push_str("(- ");
            write_sexpr(&args[0], out);
            out.push(')');
        }
        Expr::Op(op, args) => {
            let _ = write!(out, "({}", op.name());
            for a in args {
                out.push(' ');
                write_sexpr(a, out);
            }
            out.push(')');
        }
        Expr::If(c, t, e) => {
            out.push_str("(if ");
            write_sexpr(c, out);
            out.push(' ');
            write_sexpr(t, out);
            out.push(' ');
            write_sexpr(e, out);
            out.push(')');
        }
    }
}

/// Renders an entire FPCore form as an S-expression.
pub fn fpcore_to_sexpr(core: &FPCore) -> String {
    let mut out = String::from("(FPCore (");
    for (i, (name, ty)) in core.args.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        if *ty == crate::FpType::Binary64 {
            let _ = write!(out, "{name}");
        } else {
            let _ = write!(out, "(! :precision {} {})", ty.name(), name);
        }
    }
    out.push(')');
    if let Some(name) = &core.name {
        let _ = write!(out, " :name \"{name}\"");
    }
    if core.precision != crate::FpType::Binary64 {
        let _ = write!(out, " :precision {}", core.precision.name());
    }
    if let Some(pre) = &core.pre {
        let _ = write!(out, " :pre {}", to_sexpr(pre));
    }
    let _ = write!(out, " {})", to_sexpr(&core.body));
    out
}

fn precedence(op: RealOp) -> u8 {
    use RealOp::*;
    match op {
        Or => 1,
        And => 2,
        Eq | Ne | Lt | Gt | Le | Ge => 3,
        Add | Sub => 4,
        Mul | Div => 5,
        Neg | Not => 6,
        _ => 7,
    }
}

fn infix_symbol(op: RealOp) -> Option<&'static str> {
    use RealOp::*;
    Some(match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Lt => "<",
        Gt => ">",
        Le => "<=",
        Ge => ">=",
        Eq => "==",
        Ne => "!=",
        And => "&&",
        Or => "||",
        _ => return None,
    })
}

/// Renders an expression in C-like infix syntax, used for human-readable reports
/// and the C output format of target descriptions.
pub fn to_infix(expr: &Expr) -> String {
    fn go(expr: &Expr, parent_prec: u8, out: &mut String) {
        match expr {
            Expr::Num(c) => {
                let _ = write!(out, "{c}");
            }
            Expr::Var(v) => {
                let _ = write!(out, "{v}");
            }
            Expr::Op(op, args) => {
                if let Some(sym) = infix_symbol(*op) {
                    let prec = precedence(*op);
                    let need_parens = prec < parent_prec;
                    if need_parens {
                        out.push('(');
                    }
                    go(&args[0], prec, out);
                    let _ = write!(out, " {sym} ");
                    go(&args[1], prec + 1, out);
                    if need_parens {
                        out.push(')');
                    }
                } else if *op == RealOp::Neg {
                    out.push_str("-(");
                    go(&args[0], 0, out);
                    out.push(')');
                } else if *op == RealOp::Not {
                    out.push_str("!(");
                    go(&args[0], 0, out);
                    out.push(')');
                } else {
                    let _ = write!(out, "{}(", op.name());
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        go(a, 0, out);
                    }
                    out.push(')');
                }
            }
            Expr::If(c, t, e) => {
                out.push('(');
                go(c, 0, out);
                out.push_str(" ? ");
                go(t, 0, out);
                out.push_str(" : ");
                go(e, 0, out);
                out.push(')');
            }
        }
    }
    let mut out = String::new();
    go(expr, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_fpcore};

    #[test]
    fn sexpr_round_trip() {
        for src in [
            "(+ x 1)",
            "(- x)",
            "(if (< x 0) (- x) x)",
            "(fma a b c)",
            "(* PI (sqrt x))",
        ] {
            let e = parse_expr(src).unwrap();
            assert_eq!(parse_expr(&to_sexpr(&e)).unwrap(), e, "src = {src}");
        }
    }

    #[test]
    fn fpcore_round_trip() {
        let src = "(FPCore (x y) :name \"hyp\" :pre (> x 0) (hypot x y))";
        let core = parse_fpcore(src).unwrap();
        let printed = fpcore_to_sexpr(&core);
        let reparsed = parse_fpcore(&printed).unwrap();
        assert_eq!(core, reparsed);
    }

    #[test]
    fn infix_output() {
        let e = parse_expr("(/ (+ a b) (* c (- d)))").unwrap();
        assert_eq!(to_infix(&e), "(a + b) / (c * -(d))");
        let e = parse_expr("(if (< x 0) (exp x) (log x))").unwrap();
        assert_eq!(to_infix(&e), "(x < 0 ? exp(x) : log(x))");
    }

    #[test]
    fn infix_respects_precedence() {
        let e = parse_expr("(* (+ a b) c)").unwrap();
        assert_eq!(to_infix(&e), "(a + b) * c");
        let e = parse_expr("(+ a (* b c))").unwrap();
        assert_eq!(to_infix(&e), "a + b * c");
    }
}
