//! Floating-point representation types used by Chassis.
//!
//! Real-number expressions are untyped; floating-point operators are typed by the
//! representation they consume and produce. Chassis only distinguishes the IEEE
//! binary formats it can lower to (plus booleans for comparison and conditional
//! operators).

use std::fmt;

/// A floating-point (or boolean) representation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub enum FpType {
    /// IEEE 754 binary32 (single precision).
    Binary32,
    /// IEEE 754 binary64 (double precision).
    #[default]
    Binary64,
    /// Boolean values produced by comparisons and consumed by conditionals.
    Bool,
}

impl FpType {
    /// The number of significand bits (including the implicit bit), which is the
    /// `p` used by the paper's accuracy metric `p - log2(ULPs)`.
    ///
    /// # Panics
    ///
    /// Panics when called on [`FpType::Bool`], which has no significand.
    pub fn precision_bits(self) -> u32 {
        match self {
            FpType::Binary32 => 24,
            FpType::Binary64 => 53,
            FpType::Bool => panic!("booleans have no significand"),
        }
    }

    /// Exponent width in bits.
    ///
    /// # Panics
    ///
    /// Panics when called on [`FpType::Bool`].
    pub fn exponent_bits(self) -> u32 {
        match self {
            FpType::Binary32 => 8,
            FpType::Binary64 => 11,
            FpType::Bool => panic!("booleans have no exponent"),
        }
    }

    /// Returns `true` for numeric formats (everything except `Bool`).
    pub fn is_numeric(self) -> bool {
        !matches!(self, FpType::Bool)
    }

    /// FPCore name of this type (`binary32`, `binary64`, `bool`).
    pub fn name(self) -> &'static str {
        match self {
            FpType::Binary32 => "binary32",
            FpType::Binary64 => "binary64",
            FpType::Bool => "bool",
        }
    }

    /// Parses an FPCore precision name.
    pub fn from_name(name: &str) -> Option<FpType> {
        match name {
            "binary32" | "float32" | "single" => Some(FpType::Binary32),
            "binary64" | "float64" | "double" => Some(FpType::Binary64),
            "bool" => Some(FpType::Bool),
            _ => None,
        }
    }

    /// All numeric formats, widest first.
    pub fn numeric() -> [FpType; 2] {
        [FpType::Binary64, FpType::Binary32]
    }
}

impl fmt::Display for FpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_bits_match_ieee() {
        assert_eq!(FpType::Binary32.precision_bits(), 24);
        assert_eq!(FpType::Binary64.precision_bits(), 53);
        assert_eq!(FpType::Binary32.exponent_bits(), 8);
        assert_eq!(FpType::Binary64.exponent_bits(), 11);
    }

    #[test]
    fn names_round_trip() {
        for t in [FpType::Binary32, FpType::Binary64, FpType::Bool] {
            assert_eq!(FpType::from_name(t.name()), Some(t));
        }
        assert_eq!(FpType::from_name("double"), Some(FpType::Binary64));
        assert_eq!(FpType::from_name("quad"), None);
    }

    #[test]
    fn default_is_double() {
        assert_eq!(FpType::default(), FpType::Binary64);
    }

    #[test]
    fn numeric_flag() {
        assert!(FpType::Binary32.is_numeric());
        assert!(FpType::Binary64.is_numeric());
        assert!(!FpType::Bool.is_numeric());
    }
}
