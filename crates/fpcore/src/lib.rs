//! # fpcore
//!
//! An implementation of the [FPCore](https://fpbench.org) interchange format for
//! real-number expressions, used as the input (and default output) language of the
//! Chassis target-aware numerical compiler.
//!
//! The crate provides:
//!
//! * an interned [`Symbol`] type for variable and benchmark names,
//! * a [`RealOp`] vocabulary of real-number operators (arithmetic, transcendental,
//!   comparison and boolean operators),
//! * an exact [`Constant`] literal type backed by rational numbers,
//! * the [`Expr`] expression tree and the [`FPCore`] top-level form
//!   (arguments, `:pre` precondition, `:name`, `:precision`, body),
//! * an S-expression [`parser`] and [`printer`],
//! * a plain `f64` [`eval`]uator used for quick checks and for the
//!   traditional-compiler baseline.
//!
//! # Example
//!
//! ```
//! use fpcore::parse_fpcore;
//!
//! let core = parse_fpcore("(FPCore (x) :name \"inverse\" (/ 1 x))").unwrap();
//! assert_eq!(core.args.len(), 1);
//! assert_eq!(core.name.as_deref(), Some("inverse"));
//! ```

pub mod ast;
pub mod constant;
pub mod eval;
pub mod hash;
pub mod parser;
pub mod printer;
pub mod rational;
pub mod symbol;
pub mod types;

pub use ast::{Expr, FPCore, RealOp};
pub use constant::Constant;
pub use parser::{parse_expr, parse_fpcore, parse_fpcores, ParseError};
pub use printer::{to_infix, to_sexpr};
pub use rational::Rational;
pub use symbol::Symbol;
pub use types::FpType;
