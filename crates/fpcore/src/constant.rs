//! Numeric and boolean literal constants.

use crate::rational::Rational;
use std::fmt;

/// A literal constant appearing in an FPCore expression.
///
/// Numeric literals are kept exact as [`Rational`]s; the mathematical constants
/// `PI` and `E` are kept symbolic so the ground-truth evaluator can compute them
/// to whatever precision it needs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Constant {
    /// An exact rational literal such as `1`, `-2.5`, or `1e-3`.
    Rational(Rational),
    /// The circle constant, π.
    Pi,
    /// Euler's number, e.
    E,
    /// Positive infinity.
    Infinity,
    /// Negative infinity.
    NegInfinity,
    /// Not-a-number.
    Nan,
    /// Boolean truth values (used in preconditions).
    Bool(bool),
}

impl Constant {
    /// An integer constant.
    pub fn integer(n: i128) -> Constant {
        Constant::Rational(Rational::integer(n))
    }

    /// Parses a constant token (`PI`, `E`, `INFINITY`, `NAN`, `TRUE`, `FALSE`,
    /// or a numeric literal).
    pub fn parse(token: &str) -> Option<Constant> {
        match token {
            "PI" => Some(Constant::Pi),
            "E" => Some(Constant::E),
            "INFINITY" => Some(Constant::Infinity),
            "NAN" => Some(Constant::Nan),
            "TRUE" => Some(Constant::Bool(true)),
            "FALSE" => Some(Constant::Bool(false)),
            _ => Rational::parse(token).map(Constant::Rational),
        }
    }

    /// Approximate `f64` value (for quick evaluation and sampling hints).
    pub fn to_f64(&self) -> f64 {
        match self {
            Constant::Rational(r) => r.to_f64(),
            Constant::Pi => std::f64::consts::PI,
            Constant::E => std::f64::consts::E,
            Constant::Infinity => f64::INFINITY,
            Constant::NegInfinity => f64::NEG_INFINITY,
            Constant::Nan => f64::NAN,
            Constant::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Returns the rational value if the constant is an exact rational.
    pub fn as_rational(&self) -> Option<Rational> {
        match self {
            Constant::Rational(r) => Some(*r),
            _ => None,
        }
    }

    /// True if this is the exact integer `n`.
    pub fn is_integer(&self, n: i128) -> bool {
        matches!(self, Constant::Rational(r) if *r == Rational::integer(n))
    }
}

// Constants participate in hash-consing inside the e-graph, so they need `Eq`
// and `Hash`. NaN never equals itself under `PartialEq` for floats, but our
// representation is symbolic, so structural equality is well-defined.
impl Eq for Constant {}

impl std::hash::Hash for Constant {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Constant::Rational(r) => {
                0u8.hash(state);
                r.hash(state);
            }
            Constant::Pi => 1u8.hash(state),
            Constant::E => 2u8.hash(state),
            Constant::Infinity => 3u8.hash(state),
            Constant::NegInfinity => 4u8.hash(state),
            Constant::Nan => 5u8.hash(state),
            Constant::Bool(b) => {
                6u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl Constant {
    fn order_key(&self) -> (u8, Rational, bool) {
        match self {
            Constant::Rational(r) => (0, *r, false),
            Constant::Pi => (1, Rational::zero(), false),
            Constant::E => (2, Rational::zero(), false),
            Constant::Infinity => (3, Rational::zero(), false),
            Constant::NegInfinity => (4, Rational::zero(), false),
            Constant::Nan => (5, Rational::zero(), false),
            Constant::Bool(b) => (6, Rational::zero(), *b),
        }
    }
}

// A total order is needed so constants can live inside e-nodes (which are sorted
// and deduplicated); the particular order is arbitrary but consistent with `Eq`.
impl PartialOrd for Constant {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Constant {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.order_key().cmp(&other.order_key())
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Rational(r) => write!(f, "{r}"),
            Constant::Pi => write!(f, "PI"),
            Constant::E => write!(f, "E"),
            Constant::Infinity => write!(f, "INFINITY"),
            Constant::NegInfinity => write!(f, "(- INFINITY)"),
            Constant::Nan => write!(f, "NAN"),
            Constant::Bool(true) => write!(f, "TRUE"),
            Constant::Bool(false) => write!(f, "FALSE"),
        }
    }
}

impl From<i128> for Constant {
    fn from(n: i128) -> Constant {
        Constant::integer(n)
    }
}

impl From<Rational> for Constant {
    fn from(r: Rational) -> Constant {
        Constant::Rational(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_named_constants() {
        assert_eq!(Constant::parse("PI"), Some(Constant::Pi));
        assert_eq!(Constant::parse("E"), Some(Constant::E));
        assert_eq!(Constant::parse("INFINITY"), Some(Constant::Infinity));
        assert_eq!(Constant::parse("NAN"), Some(Constant::Nan));
        assert_eq!(Constant::parse("TRUE"), Some(Constant::Bool(true)));
        assert_eq!(Constant::parse("nope"), None);
    }

    #[test]
    fn parse_numeric() {
        assert_eq!(Constant::parse("42"), Some(Constant::integer(42)));
        assert_eq!(
            Constant::parse("-0.5"),
            Some(Constant::Rational(Rational::new(-1, 2)))
        );
    }

    #[test]
    fn f64_values() {
        assert_eq!(Constant::Pi.to_f64(), std::f64::consts::PI);
        assert!(Constant::Nan.to_f64().is_nan());
        assert_eq!(Constant::integer(3).to_f64(), 3.0);
    }

    #[test]
    fn integer_check() {
        assert!(Constant::integer(1).is_integer(1));
        assert!(!Constant::integer(2).is_integer(1));
        assert!(!Constant::Pi.is_integer(1));
    }

    #[test]
    fn display() {
        assert_eq!(Constant::integer(2).to_string(), "2");
        assert_eq!(Constant::Pi.to_string(), "PI");
        assert_eq!(Constant::Bool(false).to_string(), "FALSE");
    }
}
