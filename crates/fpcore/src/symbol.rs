//! Interned strings for variable names and identifiers.
//!
//! A [`Symbol`] is a cheap, copyable handle (`u32` index) into a global string
//! interner. Two symbols created from equal strings compare equal and hash
//! identically, which makes them suitable as keys throughout the compiler.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned identifier.
///
/// # Example
///
/// ```
/// use fpcore::Symbol;
/// let a = Symbol::from("x");
/// let b = Symbol::from("x");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "x");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            ids: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name` and returns its symbol.
    pub fn new(name: &str) -> Symbol {
        let mut int = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = int.ids.get(name) {
            return Symbol(id);
        }
        // Interned strings are deliberately leaked: the set of distinct
        // identifiers in a compilation session is small and bounded.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = int.names.len() as u32;
        int.names.push(leaked);
        int.ids.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(&self) -> &'static str {
        let int = interner().lock().expect("symbol interner poisoned");
        int.names[self.0 as usize]
    }

    /// Returns the raw interner index. Stable within a process only.
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::new(&s)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("alpha");
        let b = Symbol::new("alpha");
        let c = Symbol::new("beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn round_trips_string() {
        let s = Symbol::new("some_var_name");
        assert_eq!(s.as_str(), "some_var_name");
        assert_eq!(s.to_string(), "some_var_name");
    }

    #[test]
    fn debug_is_nonempty() {
        let s = Symbol::new("x");
        assert!(format!("{s:?}").contains('x'));
    }

    #[test]
    fn many_symbols_distinct() {
        let syms: Vec<Symbol> = (0..100).map(|i| Symbol::new(&format!("v{i}"))).collect();
        for (i, a) in syms.iter().enumerate() {
            for (j, b) in syms.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
    }
}
