//! S-expression parser for FPCore benchmarks and bare expressions.
//!
//! The grammar is the subset of FPCore 1.2 used by the Herbie benchmark suite:
//!
//! ```text
//! fpcore ::= ( FPCore symbol? ( arg* ) property* expr )
//! arg    ::= symbol | ( ! :precision prec symbol )
//! expr   ::= number | constant | symbol
//!          | ( op expr+ ) | ( if expr expr expr ) | ( let ( (sym expr)* ) expr )
//! property ::= :name string | :pre expr | :precision prec | :<other> datum
//! ```
//!
//! `let` bindings are eliminated by substitution at parse time, since the rest of
//! the compiler works on pure expression trees.

use crate::ast::{Expr, FPCore, RealOp};
use crate::constant::Constant;
use crate::symbol::Symbol;
use crate::types::FpType;
use std::fmt;

/// An error produced while parsing FPCore text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed S-expression datum.
#[derive(Clone, PartialEq, Debug)]
enum Sexpr {
    Atom(String),
    Str(String),
    List(Vec<Sexpr>),
}

struct Lexer<'a> {
    text: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Lexer<'a> {
        Lexer {
            text: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_trivia(&mut self) {
        while self.pos < self.text.len() {
            let b = self.text[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b';' {
                while self.pos < self.text.len() && self.text[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_trivia();
        self.text.get(self.pos).copied()
    }

    fn parse_datum(&mut self) -> Result<Sexpr, ParseError> {
        match self.peek() {
            None => Err(ParseError::new("unexpected end of input")),
            Some(b'(') | Some(b'[') => {
                let close = if self.text[self.pos] == b'(' {
                    b')'
                } else {
                    b']'
                };
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    match self.peek() {
                        None => return Err(ParseError::new("unterminated list")),
                        Some(b) if b == close => {
                            self.pos += 1;
                            return Ok(Sexpr::List(items));
                        }
                        Some(b')') | Some(b']') => {
                            return Err(ParseError::new("mismatched bracket"))
                        }
                        Some(_) => items.push(self.parse_datum()?),
                    }
                }
            }
            Some(b')') | Some(b']') => Err(ParseError::new("unexpected closing bracket")),
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.text.len() && self.text[self.pos] != b'"' {
                    self.pos += 1;
                }
                if self.pos >= self.text.len() {
                    return Err(ParseError::new("unterminated string"));
                }
                let s = String::from_utf8_lossy(&self.text[start..self.pos]).into_owned();
                self.pos += 1;
                Ok(Sexpr::Str(s))
            }
            Some(_) => {
                let start = self.pos;
                while self.pos < self.text.len() {
                    let b = self.text[self.pos];
                    if b.is_ascii_whitespace() || b == b'(' || b == b')' || b == b'[' || b == b']' {
                        break;
                    }
                    self.pos += 1;
                }
                let s = String::from_utf8_lossy(&self.text[start..self.pos]).into_owned();
                Ok(Sexpr::Atom(s))
            }
        }
    }

    fn at_end(&mut self) -> bool {
        self.peek().is_none()
    }
}

fn expr_from_sexpr(sexpr: &Sexpr) -> Result<Expr, ParseError> {
    match sexpr {
        Sexpr::Str(s) => Err(ParseError::new(format!("unexpected string {s:?}"))),
        Sexpr::Atom(tok) => {
            if let Some(c) = Constant::parse(tok) {
                Ok(Expr::Num(c))
            } else if tok.starts_with(|c: char| c.is_ascii_digit()) {
                Err(ParseError::new(format!("malformed number {tok:?}")))
            } else {
                Ok(Expr::Var(Symbol::new(tok)))
            }
        }
        Sexpr::List(items) => {
            let (head, rest) = items
                .split_first()
                .ok_or_else(|| ParseError::new("empty application"))?;
            let head = match head {
                Sexpr::Atom(a) => a.as_str(),
                _ => return Err(ParseError::new("application head must be a symbol")),
            };
            match head {
                "if" => {
                    if rest.len() != 3 {
                        return Err(ParseError::new("if expects 3 arguments"));
                    }
                    Ok(Expr::If(
                        Box::new(expr_from_sexpr(&rest[0])?),
                        Box::new(expr_from_sexpr(&rest[1])?),
                        Box::new(expr_from_sexpr(&rest[2])?),
                    ))
                }
                "let" | "let*" => {
                    if rest.len() != 2 {
                        return Err(ParseError::new("let expects bindings and a body"));
                    }
                    let Sexpr::List(bindings) = &rest[0] else {
                        return Err(ParseError::new("let bindings must be a list"));
                    };
                    let mut body = expr_from_sexpr(&rest[1])?;
                    // Substitute bindings in reverse so later bindings may refer to
                    // earlier ones (let* semantics, a superset of let for the corpus).
                    let mut parsed: Vec<(Symbol, Expr)> = Vec::new();
                    for b in bindings {
                        match b {
                            Sexpr::List(pair) if pair.len() == 2 => {
                                let name = match &pair[0] {
                                    Sexpr::Atom(a) => Symbol::new(a),
                                    _ => {
                                        return Err(ParseError::new(
                                            "let binding name must be a symbol",
                                        ))
                                    }
                                };
                                let mut value = expr_from_sexpr(&pair[1])?;
                                for (prev_name, prev_value) in &parsed {
                                    value = value.substitute(*prev_name, prev_value);
                                }
                                parsed.push((name, value));
                            }
                            _ => return Err(ParseError::new("malformed let binding")),
                        }
                    }
                    for (name, value) in parsed.iter().rev() {
                        body = body.substitute(*name, value);
                    }
                    Ok(body)
                }
                "-" if rest.len() == 1 => Ok(Expr::un(RealOp::Neg, expr_from_sexpr(&rest[0])?)),
                "+" | "*" | "and" | "or" if rest.len() > 2 => {
                    // Fold variadic forms left-associatively.
                    let op = RealOp::from_name(head).expect("known variadic operator");
                    let mut iter = rest.iter();
                    let mut acc = expr_from_sexpr(iter.next().expect("nonempty"))?;
                    for arg in iter {
                        acc = Expr::bin(op, acc, expr_from_sexpr(arg)?);
                    }
                    Ok(acc)
                }
                _ => {
                    let op = RealOp::from_name(head)
                        .ok_or_else(|| ParseError::new(format!("unknown operator {head:?}")))?;
                    if rest.len() != op.arity() {
                        return Err(ParseError::new(format!(
                            "operator {head} expects {} argument(s), got {}",
                            op.arity(),
                            rest.len()
                        )));
                    }
                    let args = rest
                        .iter()
                        .map(expr_from_sexpr)
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(Expr::Op(op, args))
                }
            }
        }
    }
}

fn fpcore_from_sexpr(sexpr: &Sexpr) -> Result<FPCore, ParseError> {
    let Sexpr::List(items) = sexpr else {
        return Err(ParseError::new("FPCore must be a list"));
    };
    let mut iter = items.iter();
    match iter.next() {
        Some(Sexpr::Atom(a)) if a == "FPCore" => {}
        _ => return Err(ParseError::new("expected (FPCore ...)")),
    }
    let mut rest: Vec<&Sexpr> = iter.collect();
    if rest.is_empty() {
        return Err(ParseError::new("FPCore missing argument list and body"));
    }

    // Optional identifier before the argument list.
    let mut name: Option<String> = None;
    if let Sexpr::Atom(a) = rest[0] {
        name = Some(a.clone());
        rest.remove(0);
    }

    let args_sexpr = rest
        .first()
        .ok_or_else(|| ParseError::new("FPCore missing argument list"))?;
    let Sexpr::List(args_list) = args_sexpr else {
        return Err(ParseError::new("FPCore arguments must be a list"));
    };
    let mut args = Vec::new();
    for a in args_list {
        match a {
            Sexpr::Atom(sym) => args.push((Symbol::new(sym), FpType::Binary64)),
            Sexpr::List(ann) => {
                // (! :precision binary32 x)
                let mut arg_ty = FpType::Binary64;
                let mut arg_name = None;
                let mut i = 0;
                while i < ann.len() {
                    match &ann[i] {
                        Sexpr::Atom(t) if t == "!" => i += 1,
                        Sexpr::Atom(t) if t == ":precision" => {
                            if let Some(Sexpr::Atom(p)) = ann.get(i + 1) {
                                arg_ty = FpType::from_name(p).ok_or_else(|| {
                                    ParseError::new(format!("unknown precision {p:?}"))
                                })?;
                            }
                            i += 2;
                        }
                        Sexpr::Atom(t) if t.starts_with(':') => i += 2,
                        Sexpr::Atom(sym) => {
                            arg_name = Some(Symbol::new(sym));
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                let sym =
                    arg_name.ok_or_else(|| ParseError::new("annotated argument missing name"))?;
                args.push((sym, arg_ty));
            }
            Sexpr::Str(_) => return Err(ParseError::new("argument cannot be a string")),
        }
    }
    rest.remove(0);

    // Properties come in (:key datum) pairs; the final datum is the body.
    let body_sexpr = rest
        .pop()
        .ok_or_else(|| ParseError::new("FPCore missing body"))?;
    let mut pre = None;
    let mut precision = FpType::Binary64;
    let mut i = 0;
    while i < rest.len() {
        let key = match rest[i] {
            Sexpr::Atom(a) if a.starts_with(':') => a.as_str(),
            other => {
                return Err(ParseError::new(format!(
                    "expected property keyword, got {other:?}"
                )))
            }
        };
        let value = rest
            .get(i + 1)
            .ok_or_else(|| ParseError::new(format!("property {key} missing value")))?;
        match key {
            ":name" => {
                if let Sexpr::Str(s) | Sexpr::Atom(s) = value {
                    name = Some(s.clone());
                }
            }
            ":pre" => pre = Some(expr_from_sexpr(value)?),
            ":precision" => {
                if let Sexpr::Atom(p) = value {
                    precision = FpType::from_name(p)
                        .ok_or_else(|| ParseError::new(format!("unknown precision {p:?}")))?;
                }
            }
            // Other properties (:spec, :cite, :herbie-target, ...) are ignored.
            _ => {}
        }
        i += 2;
    }

    Ok(FPCore {
        name,
        args,
        pre,
        precision,
        body: expr_from_sexpr(body_sexpr)?,
    })
}

/// Parses a bare expression, e.g. `(+ x 1)`.
pub fn parse_expr(text: &str) -> Result<Expr, ParseError> {
    let mut lexer = Lexer::new(text);
    let datum = lexer.parse_datum()?;
    if !lexer.at_end() {
        return Err(ParseError::new("trailing input after expression"));
    }
    expr_from_sexpr(&datum)
}

/// Parses a single `(FPCore ...)` form.
pub fn parse_fpcore(text: &str) -> Result<FPCore, ParseError> {
    let mut lexer = Lexer::new(text);
    let datum = lexer.parse_datum()?;
    if !lexer.at_end() {
        return Err(ParseError::new("trailing input after FPCore"));
    }
    fpcore_from_sexpr(&datum)
}

/// Parses a file containing any number of `(FPCore ...)` forms.
pub fn parse_fpcores(text: &str) -> Result<Vec<FPCore>, ParseError> {
    let mut lexer = Lexer::new(text);
    let mut out = Vec::new();
    while !lexer.at_end() {
        let datum = lexer.parse_datum()?;
        out.push(fpcore_from_sexpr(&datum)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_expression() {
        let e = parse_expr("(+ (* x x) 1)").unwrap();
        assert_eq!(e.size(), 5);
        assert_eq!(e.variables().len(), 1);
    }

    #[test]
    fn parses_unary_minus_and_variadic_plus() {
        let e = parse_expr("(- x)").unwrap();
        assert!(matches!(e, Expr::Op(RealOp::Neg, _)));
        let e = parse_expr("(+ a b c d)").unwrap();
        assert_eq!(e.variables().len(), 4);
    }

    #[test]
    fn parses_constants() {
        let e = parse_expr("(* PI 2)").unwrap();
        assert_eq!(e.size(), 3);
        let e = parse_expr("-1.5e3").unwrap();
        assert!(matches!(e, Expr::Num(_)));
    }

    #[test]
    fn parses_if_and_comparison() {
        let e = parse_expr("(if (< x 0) (- x) x)").unwrap();
        assert!(e.has_if());
    }

    #[test]
    fn let_is_substituted() {
        let e = parse_expr("(let ((t (+ x 1))) (* t t))").unwrap();
        assert_eq!(e, parse_expr("(* (+ x 1) (+ x 1))").unwrap());
        let e = parse_expr("(let* ((a (+ x 1)) (b (* a 2))) b)").unwrap();
        assert_eq!(e, parse_expr("(* (+ x 1) 2)").unwrap());
    }

    #[test]
    fn parses_full_fpcore() {
        let src = r#"
            (FPCore (a b c)
              :name "quadratic formula"
              :pre (and (> a 0) (> (* b b) (* 4 (* a c))))
              (/ (+ (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a)))
        "#;
        let core = parse_fpcore(src).unwrap();
        assert_eq!(core.name.as_deref(), Some("quadratic formula"));
        assert_eq!(core.args.len(), 3);
        assert!(core.pre.is_some());
        assert_eq!(core.precision, FpType::Binary64);
    }

    #[test]
    fn parses_annotated_argument_precision() {
        let core =
            parse_fpcore("(FPCore ((! :precision binary32 x) y) :precision binary32 (+ x y))")
                .unwrap();
        assert_eq!(core.args[0].1, FpType::Binary32);
        assert_eq!(core.args[1].1, FpType::Binary64);
        assert_eq!(core.precision, FpType::Binary32);
    }

    #[test]
    fn parses_multiple_cores_and_comments() {
        let src = "; a comment\n(FPCore (x) x)\n(FPCore (y) (exp y))";
        let cores = parse_fpcores(src).unwrap();
        assert_eq!(cores.len(), 2);
    }

    #[test]
    fn reports_errors() {
        assert!(parse_expr("(+ x").is_err());
        assert!(parse_expr("(unknown x)").is_err());
        assert!(parse_expr("(sqrt x y)").is_err());
        assert!(parse_fpcore("(NotFPCore (x) x)").is_err());
        assert!(parse_expr("(+ x 1) junk").is_err());
    }

    #[test]
    fn round_trip_through_printer() {
        let src = "(/ (- (exp x) 1) x)";
        let e = parse_expr(src).unwrap();
        let printed = crate::printer::to_sexpr(&e);
        let reparsed = parse_expr(&printed).unwrap();
        assert_eq!(e, reparsed);
    }
}
