//! Plain `f64` evaluation of real expressions.
//!
//! This evaluator applies each real operator using the host's `f64` primitives. It
//! is *not* the ground truth (that is the `rival` crate's job); it is used for
//! precondition filtering during sampling, for quick sanity checks, and as the
//! "naive direct lowering" the traditional-compiler baseline starts from.

use crate::ast::{Expr, RealOp};
use crate::symbol::Symbol;
use std::collections::HashMap;

/// An assignment of `f64` values to variables.
pub type Env = HashMap<Symbol, f64>;

/// A source of variable values for evaluation.
///
/// Implemented for [`Env`] and for `[(Symbol, f64)]` slices; evaluation hot
/// loops (the emulated-operator interpreter in `targets`) provide their own
/// allocation-free implementations.
pub trait Bindings {
    /// The value bound to `var`, if any.
    fn value_of(&self, var: Symbol) -> Option<f64>;
}

impl Bindings for Env {
    fn value_of(&self, var: Symbol) -> Option<f64> {
        self.get(&var).copied()
    }
}

impl Bindings for [(Symbol, f64)] {
    fn value_of(&self, var: Symbol) -> Option<f64> {
        self.iter().find(|(v, _)| *v == var).map(|(_, x)| *x)
    }
}

/// Applies a real operator to `f64` arguments using host arithmetic.
///
/// Boolean results are encoded as `1.0` / `0.0`.
///
/// # Panics
///
/// Panics if the argument count does not match the operator's arity.
pub fn apply_op_f64(op: RealOp, args: &[f64]) -> f64 {
    assert_eq!(args.len(), op.arity(), "arity mismatch applying {op}");
    let b = |x: f64| x != 0.0;
    let from_bool = |x: bool| if x { 1.0 } else { 0.0 };
    match op {
        RealOp::Add => args[0] + args[1],
        RealOp::Sub => args[0] - args[1],
        RealOp::Mul => args[0] * args[1],
        RealOp::Div => args[0] / args[1],
        RealOp::Neg => -args[0],
        RealOp::Fabs => args[0].abs(),
        RealOp::Sqrt => args[0].sqrt(),
        RealOp::Cbrt => args[0].cbrt(),
        RealOp::Fma => args[0].mul_add(args[1], args[2]),
        RealOp::Hypot => args[0].hypot(args[1]),
        RealOp::Pow => args[0].powf(args[1]),
        RealOp::Fmod => args[0] % args[1],
        RealOp::Fdim => {
            if args[0] > args[1] {
                args[0] - args[1]
            } else {
                0.0
            }
        }
        RealOp::Copysign => args[0].copysign(args[1]),
        RealOp::Fmin => args[0].min(args[1]),
        RealOp::Fmax => args[0].max(args[1]),
        RealOp::Floor => args[0].floor(),
        RealOp::Ceil => args[0].ceil(),
        RealOp::Round => args[0].round(),
        RealOp::Trunc => args[0].trunc(),
        RealOp::Exp => args[0].exp(),
        RealOp::Exp2 => args[0].exp2(),
        RealOp::Expm1 => args[0].exp_m1(),
        RealOp::Log => args[0].ln(),
        RealOp::Log2 => args[0].log2(),
        RealOp::Log10 => args[0].log10(),
        RealOp::Log1p => args[0].ln_1p(),
        RealOp::Sin => args[0].sin(),
        RealOp::Cos => args[0].cos(),
        RealOp::Tan => args[0].tan(),
        RealOp::Asin => args[0].asin(),
        RealOp::Acos => args[0].acos(),
        RealOp::Atan => args[0].atan(),
        RealOp::Atan2 => args[0].atan2(args[1]),
        RealOp::Sinh => args[0].sinh(),
        RealOp::Cosh => args[0].cosh(),
        RealOp::Tanh => args[0].tanh(),
        RealOp::Asinh => args[0].asinh(),
        RealOp::Acosh => args[0].acosh(),
        RealOp::Atanh => args[0].atanh(),
        RealOp::Lt => from_bool(args[0] < args[1]),
        RealOp::Gt => from_bool(args[0] > args[1]),
        RealOp::Le => from_bool(args[0] <= args[1]),
        RealOp::Ge => from_bool(args[0] >= args[1]),
        RealOp::Eq => from_bool(args[0] == args[1]),
        RealOp::Ne => from_bool(args[0] != args[1]),
        RealOp::And => from_bool(b(args[0]) && b(args[1])),
        RealOp::Or => from_bool(b(args[0]) || b(args[1])),
        RealOp::Not => from_bool(!b(args[0])),
    }
}

/// Evaluates `expr` under `env` using `f64` arithmetic for every operator.
///
/// Unbound variables evaluate to NaN rather than erroring, which is convenient
/// during sampling (a NaN precondition is treated as unsatisfied).
pub fn eval_f64(expr: &Expr, env: &Env) -> f64 {
    eval_f64_in(expr, env)
}

/// Evaluates `expr` against any [`Bindings`] implementation.
pub fn eval_f64_in<B: Bindings + ?Sized>(expr: &Expr, env: &B) -> f64 {
    match expr {
        Expr::Num(c) => c.to_f64(),
        Expr::Var(v) => env.value_of(*v).unwrap_or(f64::NAN),
        Expr::Op(op, args) => {
            let vals: Vec<f64> = args.iter().map(|a| eval_f64_in(a, env)).collect();
            apply_op_f64(*op, &vals)
        }
        Expr::If(c, t, e) => {
            if eval_f64_in(c, env) != 0.0 {
                eval_f64_in(t, env)
            } else {
                eval_f64_in(e, env)
            }
        }
    }
}

/// Evaluates a boolean expression (such as a precondition), treating NaN as false.
pub fn eval_bool(expr: &Expr, env: &Env) -> bool {
    let v = eval_f64(expr, env);
    !v.is_nan() && v != 0.0
}

/// Constant folding helper: evaluates a *closed* expression (no variables).
///
/// Returns `None` if the expression has free variables.
pub fn eval_closed(expr: &Expr) -> Option<f64> {
    if expr.variables().is_empty() {
        Some(eval_f64(expr, &Env::new()))
    } else {
        None
    }
}

/// Builds an environment from parallel slices of names and values.
pub fn env_from(names: &[Symbol], values: &[f64]) -> Env {
    names.iter().copied().zip(values.iter().copied()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn eval_src(src: &str, bindings: &[(&str, f64)]) -> f64 {
        let expr = parse_expr(src).unwrap();
        let env: Env = bindings.iter().map(|(n, v)| (Symbol::new(n), *v)).collect();
        eval_f64(&expr, &env)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_src("(+ x 1)", &[("x", 2.0)]), 3.0);
        assert_eq!(eval_src("(/ x y)", &[("x", 1.0), ("y", 4.0)]), 0.25);
        assert_eq!(
            eval_src("(fma a b c)", &[("a", 2.0), ("b", 3.0), ("c", 1.0)]),
            7.0
        );
    }

    #[test]
    fn transcendental() {
        assert!((eval_src("(exp 1)", &[]) - std::f64::consts::E).abs() < 1e-15);
        assert!((eval_src("(sin PI)", &[])).abs() < 1e-15);
        assert!((eval_src("(log (exp 3))", &[]) - 3.0).abs() < 1e-14);
    }

    #[test]
    fn conditionals_and_booleans() {
        assert_eq!(eval_src("(if (< x 0) (- x) x)", &[("x", -5.0)]), 5.0);
        assert_eq!(eval_src("(if (< x 0) (- x) x)", &[("x", 5.0)]), 5.0);
        let pre = parse_expr("(and (> x 0) (< x 1))").unwrap();
        let mut env = Env::new();
        env.insert(Symbol::new("x"), 0.5);
        assert!(eval_bool(&pre, &env));
        env.insert(Symbol::new("x"), 2.0);
        assert!(!eval_bool(&pre, &env));
    }

    #[test]
    fn unbound_variable_is_nan() {
        assert!(eval_src("(+ zz 1)", &[]).is_nan());
        let pre = parse_expr("(> zz 0)").unwrap();
        assert!(!eval_bool(&pre, &Env::new()));
    }

    #[test]
    fn closed_evaluation() {
        let e = parse_expr("(* 6 7)").unwrap();
        assert_eq!(eval_closed(&e), Some(42.0));
        let e = parse_expr("(* x 7)").unwrap();
        assert_eq!(eval_closed(&e), None);
    }

    #[test]
    fn every_operator_is_executable() {
        for &op in RealOp::ALL {
            let args = vec![0.5; op.arity()];
            let v = apply_op_f64(op, &args);
            // The value itself is operator-specific; we only require that the call
            // completes and produces a float (possibly NaN for domain errors).
            let _ = v;
        }
    }
}
