//! Plain `f64` evaluation of real expressions.
//!
//! This evaluator applies each real operator using the host's `f64` primitives. It
//! is *not* the ground truth (that is the `rival` crate's job); it is used for
//! precondition filtering during sampling, for quick sanity checks, and as the
//! "naive direct lowering" the traditional-compiler baseline starts from.
//!
//! # Math-kernel routing
//!
//! The hot transcendentals (`exp`/`expm1`/`log`/`log1p`/`log2`/`log10`/
//! `sin`/`cos`/`tan`/`sinh`/`cosh`/`tanh`/`atan`, plus `pow`/`hypot`) are
//! routed through the `vecmath` kernels rather than the host libm. Every
//! evaluation engine — the tree walk, the scalar bytecode machine, and the
//! block engine (via [`sweep_op1`]/[`sweep_op2`], whose lane-sweep forms run
//! the identical per-lane operation sequence) — therefore computes the exact
//! same bits. Building with the `libm-calls` feature flips the routing back
//! to the host libm *everywhere at once*, which keeps the engines mutually
//! bit-identical in that configuration too; it exists for differential
//! debugging and for measuring the libm baseline.

use crate::ast::{Expr, RealOp};
use crate::symbol::Symbol;
use std::collections::HashMap;

/// The transcendental routing layer: `vecmath` kernels by default, host libm
/// under the `libm-calls` feature. Only referenced from [`apply_op1`] /
/// [`apply_op2`] and the sweep forms, so the switch stays in one place.
mod route {
    #[cfg(not(feature = "libm-calls"))]
    pub use vecmath::{
        atan, cos, cosh, exp, expm1, hypot, log, log10, log1p, log2, pow, sin, sinh, tan, tanh,
    };

    #[cfg(feature = "libm-calls")]
    mod libm {
        pub fn exp(x: f64) -> f64 {
            x.exp()
        }
        pub fn expm1(x: f64) -> f64 {
            x.exp_m1()
        }
        pub fn log(x: f64) -> f64 {
            x.ln()
        }
        pub fn log1p(x: f64) -> f64 {
            x.ln_1p()
        }
        pub fn log2(x: f64) -> f64 {
            x.log2()
        }
        pub fn log10(x: f64) -> f64 {
            x.log10()
        }
        pub fn sin(x: f64) -> f64 {
            x.sin()
        }
        pub fn cos(x: f64) -> f64 {
            x.cos()
        }
        pub fn tan(x: f64) -> f64 {
            x.tan()
        }
        pub fn sinh(x: f64) -> f64 {
            x.sinh()
        }
        pub fn cosh(x: f64) -> f64 {
            x.cosh()
        }
        pub fn tanh(x: f64) -> f64 {
            x.tanh()
        }
        pub fn atan(x: f64) -> f64 {
            x.atan()
        }
        pub fn pow(x: f64, y: f64) -> f64 {
            x.powf(y)
        }
        pub fn hypot(x: f64, y: f64) -> f64 {
            x.hypot(y)
        }
    }
    #[cfg(feature = "libm-calls")]
    pub use libm::*;
}

/// An assignment of `f64` values to variables.
pub type Env = HashMap<Symbol, f64>;

/// A source of variable values for evaluation.
///
/// Implemented for [`Env`] and for `[(Symbol, f64)]` slices; evaluation hot
/// loops (the emulated-operator interpreter in `targets`) provide their own
/// allocation-free implementations.
pub trait Bindings {
    /// The value bound to `var`, if any.
    fn value_of(&self, var: Symbol) -> Option<f64>;
}

impl Bindings for Env {
    fn value_of(&self, var: Symbol) -> Option<f64> {
        self.get(&var).copied()
    }
}

impl Bindings for [(Symbol, f64)] {
    fn value_of(&self, var: Symbol) -> Option<f64> {
        self.iter().find(|(v, _)| *v == var).map(|(_, x)| *x)
    }
}

/// Applies a real operator to `f64` arguments using host arithmetic.
///
/// Boolean results are encoded as `1.0` / `0.0`.
///
/// # Panics
///
/// Panics if the argument count does not match the operator's arity.
pub fn apply_op_f64(op: RealOp, args: &[f64]) -> f64 {
    assert_eq!(args.len(), op.arity(), "arity mismatch applying {op}");
    match op.arity() {
        1 => apply_op1(op, args[0]),
        2 => apply_op2(op, args[0], args[1]),
        _ => apply_op3(op, args[0], args[1], args[2]),
    }
}

/// Applies a unary real operator. Shared by the tree-walk evaluator and the
/// bytecode register machine (`targets::compile`), so both paths execute the
/// exact same host operation and stay bit-identical.
///
/// # Panics
///
/// Panics if `op` is not unary.
pub fn apply_op1(op: RealOp, a: f64) -> f64 {
    let from_bool = |x: bool| if x { 1.0 } else { 0.0 };
    match op {
        RealOp::Neg => -a,
        RealOp::Fabs => a.abs(),
        RealOp::Sqrt => a.sqrt(),
        RealOp::Cbrt => a.cbrt(),
        RealOp::Floor => a.floor(),
        RealOp::Ceil => a.ceil(),
        RealOp::Round => a.round(),
        RealOp::Trunc => a.trunc(),
        RealOp::Exp => route::exp(a),
        RealOp::Exp2 => a.exp2(),
        RealOp::Expm1 => route::expm1(a),
        RealOp::Log => route::log(a),
        RealOp::Log2 => route::log2(a),
        RealOp::Log10 => route::log10(a),
        RealOp::Log1p => route::log1p(a),
        RealOp::Sin => route::sin(a),
        RealOp::Cos => route::cos(a),
        RealOp::Tan => route::tan(a),
        RealOp::Asin => a.asin(),
        RealOp::Acos => a.acos(),
        RealOp::Atan => route::atan(a),
        RealOp::Sinh => route::sinh(a),
        RealOp::Cosh => route::cosh(a),
        RealOp::Tanh => route::tanh(a),
        RealOp::Asinh => a.asinh(),
        RealOp::Acosh => a.acosh(),
        RealOp::Atanh => a.atanh(),
        RealOp::Not => from_bool(a == 0.0),
        _ => panic!("{op} is not unary"),
    }
}

/// Applies a binary real operator (see [`apply_op1`]).
///
/// # Panics
///
/// Panics if `op` is not binary.
pub fn apply_op2(op: RealOp, a: f64, b: f64) -> f64 {
    let t = |x: f64| x != 0.0;
    let from_bool = |x: bool| if x { 1.0 } else { 0.0 };
    match op {
        RealOp::Add => a + b,
        RealOp::Sub => a - b,
        RealOp::Mul => a * b,
        RealOp::Div => a / b,
        RealOp::Hypot => route::hypot(a, b),
        RealOp::Pow => route::pow(a, b),
        RealOp::Fmod => a % b,
        RealOp::Fdim => {
            if a > b {
                a - b
            } else {
                0.0
            }
        }
        RealOp::Copysign => a.copysign(b),
        RealOp::Fmin => a.min(b),
        RealOp::Fmax => a.max(b),
        RealOp::Atan2 => a.atan2(b),
        RealOp::Lt => from_bool(a < b),
        RealOp::Gt => from_bool(a > b),
        RealOp::Le => from_bool(a <= b),
        RealOp::Ge => from_bool(a >= b),
        RealOp::Eq => from_bool(a == b),
        RealOp::Ne => from_bool(a != b),
        RealOp::And => from_bool(t(a) && t(b)),
        RealOp::Or => from_bool(t(a) || t(b)),
        _ => panic!("{op} is not binary"),
    }
}

/// Applies a ternary real operator (see [`apply_op1`]).
///
/// # Panics
///
/// Panics if `op` is not ternary.
pub fn apply_op3(op: RealOp, a: f64, b: f64, c: f64) -> f64 {
    match op {
        RealOp::Fma => a.mul_add(b, c),
        _ => panic!("{op} is not ternary"),
    }
}

/// Block-wide form of [`apply_op1`]: writes `apply_op1(op, a[i])` to
/// `out[i]` for every lane.
///
/// For operators with a `vecmath` kernel this dispatches to the kernel's
/// lane-sweep form, which executes the identical per-lane operation sequence
/// as the scalar kernel — so the result is bit-identical to the per-lane
/// loop while auto-vectorizing. Other operators (and every operator under
/// the `libm-calls` feature) run the plain per-lane loop.
///
/// # Panics
///
/// Panics if `op` is not unary.
pub fn sweep_op1(op: RealOp, out: &mut [f64], a: &[f64]) {
    #[cfg(not(feature = "libm-calls"))]
    match op {
        RealOp::Exp => return vecmath::exp_sweep(out, a),
        RealOp::Expm1 => return vecmath::expm1_sweep(out, a),
        RealOp::Log => return vecmath::log_sweep(out, a),
        RealOp::Log1p => return vecmath::log1p_sweep(out, a),
        RealOp::Log2 => return vecmath::log2_sweep(out, a),
        RealOp::Log10 => return vecmath::log10_sweep(out, a),
        RealOp::Sin => return vecmath::sin_sweep(out, a),
        RealOp::Cos => return vecmath::cos_sweep(out, a),
        RealOp::Tan => return vecmath::tan_sweep(out, a),
        RealOp::Sinh => return vecmath::sinh_sweep(out, a),
        RealOp::Cosh => return vecmath::cosh_sweep(out, a),
        RealOp::Tanh => return vecmath::tanh_sweep(out, a),
        RealOp::Atan => return vecmath::atan_sweep(out, a),
        _ => {}
    }
    for (o, &x) in out.iter_mut().zip(a) {
        *o = apply_op1(op, x);
    }
}

/// Block-wide form of [`apply_op2`] (see [`sweep_op1`]).
///
/// # Panics
///
/// Panics if `op` is not binary.
pub fn sweep_op2(op: RealOp, out: &mut [f64], a: &[f64], b: &[f64]) {
    #[cfg(not(feature = "libm-calls"))]
    match op {
        RealOp::Pow => return vecmath::pow_sweep(out, a, b),
        RealOp::Hypot => return vecmath::hypot_sweep(out, a, b),
        _ => {}
    }
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = apply_op2(op, x, y);
    }
}

/// Evaluates `expr` under `env` using `f64` arithmetic for every operator.
///
/// Unbound variables evaluate to NaN rather than erroring, which is convenient
/// during sampling (a NaN precondition is treated as unsatisfied).
pub fn eval_f64(expr: &Expr, env: &Env) -> f64 {
    eval_f64_in(expr, env)
}

/// Evaluates `expr` against any [`Bindings`] implementation.
pub fn eval_f64_in<B: Bindings + ?Sized>(expr: &Expr, env: &B) -> f64 {
    match expr {
        Expr::Num(c) => c.to_f64(),
        Expr::Var(v) => env.value_of(*v).unwrap_or(f64::NAN),
        Expr::Op(op, args) => {
            let vals: Vec<f64> = args.iter().map(|a| eval_f64_in(a, env)).collect();
            apply_op_f64(*op, &vals)
        }
        Expr::If(c, t, e) => {
            if eval_f64_in(c, env) != 0.0 {
                eval_f64_in(t, env)
            } else {
                eval_f64_in(e, env)
            }
        }
    }
}

/// Evaluates a boolean expression (such as a precondition), treating NaN as false.
pub fn eval_bool(expr: &Expr, env: &Env) -> bool {
    let v = eval_f64(expr, env);
    !v.is_nan() && v != 0.0
}

/// Constant folding helper: evaluates a *closed* expression (no variables).
///
/// Returns `None` if the expression has free variables.
pub fn eval_closed(expr: &Expr) -> Option<f64> {
    if expr.variables().is_empty() {
        Some(eval_f64(expr, &Env::new()))
    } else {
        None
    }
}

/// Builds an environment from parallel slices of names and values.
pub fn env_from(names: &[Symbol], values: &[f64]) -> Env {
    names.iter().copied().zip(values.iter().copied()).collect()
}

/// The bits of `x` for *semantic* comparison: every NaN collapses to the one
/// canonical quiet NaN, everything else (including signed zeros) compares by
/// exact bit pattern.
///
/// The engines' bit-identity contract is stated modulo this normalization.
/// IEEE 754 (§6.3) leaves the sign and payload of a NaN *produced by an
/// arithmetic operation* unspecified, and real hardware disagrees: x86
/// propagates the first NaN operand of `mulsd`/`mulpd` (so LLVM, which treats
/// `fmul` as commutative, may swap operands between a scalar loop and its
/// auto-vectorized clone and flip which NaN comes out — observed as a
/// NaN *sign* flip at exactly-vector-multiple block widths in release
/// builds), while RISC-V canonicalizes every NaN result in hardware. No
/// portable program can depend on those bits, so differential tests and the
/// corpus bit-identity gates compare through this function. Non-NaN results
/// remain exact to the last bit.
#[inline]
pub fn semantic_bits(x: f64) -> u64 {
    if x.is_nan() {
        f64::NAN.to_bits()
    } else {
        x.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn eval_src(src: &str, bindings: &[(&str, f64)]) -> f64 {
        let expr = parse_expr(src).unwrap();
        let env: Env = bindings.iter().map(|(n, v)| (Symbol::new(n), *v)).collect();
        eval_f64(&expr, &env)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_src("(+ x 1)", &[("x", 2.0)]), 3.0);
        assert_eq!(eval_src("(/ x y)", &[("x", 1.0), ("y", 4.0)]), 0.25);
        assert_eq!(
            eval_src("(fma a b c)", &[("a", 2.0), ("b", 3.0), ("c", 1.0)]),
            7.0
        );
    }

    #[test]
    fn transcendental() {
        assert!((eval_src("(exp 1)", &[]) - std::f64::consts::E).abs() < 1e-15);
        assert!((eval_src("(sin PI)", &[])).abs() < 1e-15);
        assert!((eval_src("(log (exp 3))", &[]) - 3.0).abs() < 1e-14);
    }

    #[test]
    fn conditionals_and_booleans() {
        assert_eq!(eval_src("(if (< x 0) (- x) x)", &[("x", -5.0)]), 5.0);
        assert_eq!(eval_src("(if (< x 0) (- x) x)", &[("x", 5.0)]), 5.0);
        let pre = parse_expr("(and (> x 0) (< x 1))").unwrap();
        let mut env = Env::new();
        env.insert(Symbol::new("x"), 0.5);
        assert!(eval_bool(&pre, &env));
        env.insert(Symbol::new("x"), 2.0);
        assert!(!eval_bool(&pre, &env));
    }

    #[test]
    fn unbound_variable_is_nan() {
        assert!(eval_src("(+ zz 1)", &[]).is_nan());
        let pre = parse_expr("(> zz 0)").unwrap();
        assert!(!eval_bool(&pre, &Env::new()));
    }

    #[test]
    fn closed_evaluation() {
        let e = parse_expr("(* 6 7)").unwrap();
        assert_eq!(eval_closed(&e), Some(42.0));
        let e = parse_expr("(* x 7)").unwrap();
        assert_eq!(eval_closed(&e), None);
    }

    #[test]
    fn sweep_forms_are_bit_identical_to_scalar_application() {
        // The engine bit-identity contract at its root: for every unary and
        // binary operator, the block-wide sweep must reproduce the scalar
        // application exactly, lane for lane — in both routing
        // configurations (vecmath default and --features libm-calls).
        let inputs: Vec<f64> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            -0.5,
            2.75,
            -3.25,
            1e-300,
            -1e-300,
            5e-324,
            1e300,
            -1e300,
            709.5,
            -745.0,
            1e7,
            -1e7,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            std::f64::consts::PI,
        ];
        let b: Vec<f64> = inputs.iter().rev().copied().collect();
        let mut out = vec![0.0; inputs.len()];
        for &op in RealOp::ALL {
            match op.arity() {
                1 => {
                    sweep_op1(op, &mut out, &inputs);
                    for (&x, &got) in inputs.iter().zip(&out) {
                        let want = apply_op1(op, x);
                        assert_eq!(
                            want.to_bits(),
                            got.to_bits(),
                            "{op}: sweep diverges from scalar at {x:e}"
                        );
                    }
                }
                2 => {
                    sweep_op2(op, &mut out, &inputs, &b);
                    for i in 0..inputs.len() {
                        let want = apply_op2(op, inputs[i], b[i]);
                        assert_eq!(
                            want.to_bits(),
                            out[i].to_bits(),
                            "{op}: sweep diverges from scalar at ({:e}, {:e})",
                            inputs[i],
                            b[i]
                        );
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn every_operator_is_executable() {
        for &op in RealOp::ALL {
            let args = vec![0.5; op.arity()];
            let v = apply_op_f64(op, &args);
            // The value itself is operator-specific; we only require that the call
            // completes and produces a float (possibly NaN for domain errors).
            let _ = v;
        }
    }
}
