//! The FPCore expression tree and top-level benchmark form.

use crate::constant::Constant;
use crate::symbol::Symbol;
use crate::types::FpType;
use std::collections::BTreeSet;
use std::fmt;

/// A real-number operator.
///
/// These are the *mathematical* operators: they denote functions over the extended
/// reals, not any particular floating-point implementation. Targets relate their
/// floating-point operators back to expressions over this vocabulary (the
/// "desugaring" of the paper's Section 4.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum RealOp {
    // Arithmetic
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Fabs,
    Sqrt,
    Cbrt,
    Fma,
    Hypot,
    Pow,
    Fmod,
    Fdim,
    Copysign,
    Fmin,
    Fmax,
    Floor,
    Ceil,
    Round,
    Trunc,
    // Exponential / logarithmic
    Exp,
    Exp2,
    Expm1,
    Log,
    Log2,
    Log10,
    Log1p,
    // Trigonometric
    Sin,
    Cos,
    Tan,
    Asin,
    Acos,
    Atan,
    Atan2,
    // Hyperbolic
    Sinh,
    Cosh,
    Tanh,
    Asinh,
    Acosh,
    Atanh,
    // Comparison (produce booleans)
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    // Boolean connectives
    And,
    Or,
    Not,
}

impl RealOp {
    /// Every operator, in a stable order.
    pub const ALL: &'static [RealOp] = &[
        RealOp::Add,
        RealOp::Sub,
        RealOp::Mul,
        RealOp::Div,
        RealOp::Neg,
        RealOp::Fabs,
        RealOp::Sqrt,
        RealOp::Cbrt,
        RealOp::Fma,
        RealOp::Hypot,
        RealOp::Pow,
        RealOp::Fmod,
        RealOp::Fdim,
        RealOp::Copysign,
        RealOp::Fmin,
        RealOp::Fmax,
        RealOp::Floor,
        RealOp::Ceil,
        RealOp::Round,
        RealOp::Trunc,
        RealOp::Exp,
        RealOp::Exp2,
        RealOp::Expm1,
        RealOp::Log,
        RealOp::Log2,
        RealOp::Log10,
        RealOp::Log1p,
        RealOp::Sin,
        RealOp::Cos,
        RealOp::Tan,
        RealOp::Asin,
        RealOp::Acos,
        RealOp::Atan,
        RealOp::Atan2,
        RealOp::Sinh,
        RealOp::Cosh,
        RealOp::Tanh,
        RealOp::Asinh,
        RealOp::Acosh,
        RealOp::Atanh,
        RealOp::Lt,
        RealOp::Gt,
        RealOp::Le,
        RealOp::Ge,
        RealOp::Eq,
        RealOp::Ne,
        RealOp::And,
        RealOp::Or,
        RealOp::Not,
    ];

    /// Number of arguments the operator takes.
    pub fn arity(self) -> usize {
        use RealOp::*;
        match self {
            Neg | Fabs | Sqrt | Cbrt | Floor | Ceil | Round | Trunc | Exp | Exp2 | Expm1 | Log
            | Log2 | Log10 | Log1p | Sin | Cos | Tan | Asin | Acos | Atan | Sinh | Cosh | Tanh
            | Asinh | Acosh | Atanh | Not => 1,
            Add | Sub | Mul | Div | Hypot | Pow | Fmod | Fdim | Copysign | Fmin | Fmax | Atan2
            | Lt | Gt | Le | Ge | Eq | Ne | And | Or => 2,
            Fma => 3,
        }
    }

    /// FPCore spelling of the operator.
    pub fn name(self) -> &'static str {
        use RealOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Neg => "neg",
            Fabs => "fabs",
            Sqrt => "sqrt",
            Cbrt => "cbrt",
            Fma => "fma",
            Hypot => "hypot",
            Pow => "pow",
            Fmod => "fmod",
            Fdim => "fdim",
            Copysign => "copysign",
            Fmin => "fmin",
            Fmax => "fmax",
            Floor => "floor",
            Ceil => "ceil",
            Round => "round",
            Trunc => "trunc",
            Exp => "exp",
            Exp2 => "exp2",
            Expm1 => "expm1",
            Log => "log",
            Log2 => "log2",
            Log10 => "log10",
            Log1p => "log1p",
            Sin => "sin",
            Cos => "cos",
            Tan => "tan",
            Asin => "asin",
            Acos => "acos",
            Atan => "atan",
            Atan2 => "atan2",
            Sinh => "sinh",
            Cosh => "cosh",
            Tanh => "tanh",
            Asinh => "asinh",
            Acosh => "acosh",
            Atanh => "atanh",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            And => "and",
            Or => "or",
            Not => "not",
        }
    }

    /// Parses the FPCore spelling of an operator.
    ///
    /// Note that `-` is ambiguous between negation and subtraction; the parser
    /// resolves it by arity, and this function returns [`RealOp::Sub`].
    pub fn from_name(name: &str) -> Option<RealOp> {
        RealOp::ALL.iter().copied().find(|op| op.name() == name)
    }

    /// True for operators that produce a boolean result.
    pub fn is_predicate(self) -> bool {
        use RealOp::*;
        matches!(self, Lt | Gt | Le | Ge | Eq | Ne | And | Or | Not)
    }

    /// True for the boolean connectives (which also consume booleans).
    pub fn is_boolean_connective(self) -> bool {
        matches!(self, RealOp::And | RealOp::Or | RealOp::Not)
    }

    /// True for comparison operators.
    pub fn is_comparison(self) -> bool {
        use RealOp::*;
        matches!(self, Lt | Gt | Le | Ge | Eq | Ne)
    }
}

impl fmt::Display for RealOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A real-number expression.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A literal constant.
    Num(Constant),
    /// A free variable (one of the FPCore arguments).
    Var(Symbol),
    /// An operator applied to arguments. The argument count always equals
    /// [`RealOp::arity`].
    Op(RealOp, Vec<Expr>),
    /// A conditional expression `(if cond then else)`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A numeric literal from an integer.
    pub fn int(n: i128) -> Expr {
        Expr::Num(Constant::integer(n))
    }

    /// A variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(Symbol::new(name))
    }

    /// Applies `op` to `args`.
    ///
    /// # Panics
    ///
    /// Panics if the number of arguments does not match the operator's arity.
    pub fn op(op: RealOp, args: Vec<Expr>) -> Expr {
        assert_eq!(
            args.len(),
            op.arity(),
            "operator {op} expects {} argument(s), got {}",
            op.arity(),
            args.len()
        );
        Expr::Op(op, args)
    }

    /// Binary helper: `lhs op rhs`.
    pub fn bin(op: RealOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::op(op, vec![lhs, rhs])
    }

    /// Unary helper: `op arg`.
    pub fn un(op: RealOp, arg: Expr) -> Expr {
        Expr::op(op, vec![arg])
    }

    /// Children of this node (empty for leaves).
    pub fn children(&self) -> &[Expr] {
        match self {
            Expr::Num(_) | Expr::Var(_) => &[],
            Expr::Op(_, args) => args,
            Expr::If(_, _, _) => {
                // `If` stores boxes, not a slice; callers use `children_vec` instead.
                &[]
            }
        }
    }

    /// Children of this node as owned clones (works uniformly for `If`).
    pub fn children_vec(&self) -> Vec<Expr> {
        match self {
            Expr::Num(_) | Expr::Var(_) => vec![],
            Expr::Op(_, args) => args.clone(),
            Expr::If(c, t, e) => vec![(**c).clone(), (**t).clone(), (**e).clone()],
        }
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        1 + match self {
            Expr::Num(_) | Expr::Var(_) => 0,
            Expr::Op(_, args) => args.iter().map(Expr::size).sum(),
            Expr::If(c, t, e) => c.size() + t.size() + e.size(),
        }
    }

    /// Maximum depth of the expression tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + match self {
            Expr::Num(_) | Expr::Var(_) => 0,
            Expr::Op(_, args) => args.iter().map(Expr::depth).max().unwrap_or(0),
            Expr::If(c, t, e) => c.depth().max(t.depth()).max(e.depth()),
        }
    }

    /// The set of free variables, in sorted order.
    pub fn variables(&self) -> Vec<Symbol> {
        fn walk(e: &Expr, out: &mut BTreeSet<Symbol>) {
            match e {
                Expr::Num(_) => {}
                Expr::Var(v) => {
                    out.insert(*v);
                }
                Expr::Op(_, args) => args.iter().for_each(|a| walk(a, out)),
                Expr::If(c, t, el) => {
                    walk(c, out);
                    walk(t, out);
                    walk(el, out);
                }
            }
        }
        let mut set = BTreeSet::new();
        walk(self, &mut set);
        set.into_iter().collect()
    }

    /// All subexpressions, in pre-order (the expression itself first).
    pub fn subexpressions(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(e) = stack.pop() {
            out.push(e);
            match e {
                Expr::Num(_) | Expr::Var(_) => {}
                Expr::Op(_, args) => stack.extend(args.iter().rev()),
                Expr::If(c, t, el) => {
                    stack.push(el);
                    stack.push(t);
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Substitutes every free occurrence of `var` with `value`.
    pub fn substitute(&self, var: Symbol, value: &Expr) -> Expr {
        match self {
            Expr::Num(_) => self.clone(),
            Expr::Var(v) => {
                if *v == var {
                    value.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Op(op, args) => {
                Expr::Op(*op, args.iter().map(|a| a.substitute(var, value)).collect())
            }
            Expr::If(c, t, e) => Expr::If(
                Box::new(c.substitute(var, value)),
                Box::new(t.substitute(var, value)),
                Box::new(e.substitute(var, value)),
            ),
        }
    }

    /// Replaces the first subexpression structurally equal to `needle` with
    /// `replacement`, returning `None` if `needle` does not occur.
    pub fn replace_subexpr(&self, needle: &Expr, replacement: &Expr) -> Option<Expr> {
        if self == needle {
            return Some(replacement.clone());
        }
        match self {
            Expr::Num(_) | Expr::Var(_) => None,
            Expr::Op(op, args) => {
                for (i, arg) in args.iter().enumerate() {
                    if let Some(new_arg) = arg.replace_subexpr(needle, replacement) {
                        let mut new_args = args.clone();
                        new_args[i] = new_arg;
                        return Some(Expr::Op(*op, new_args));
                    }
                }
                None
            }
            Expr::If(c, t, e) => {
                if let Some(nc) = c.replace_subexpr(needle, replacement) {
                    return Some(Expr::If(Box::new(nc), t.clone(), e.clone()));
                }
                if let Some(nt) = t.replace_subexpr(needle, replacement) {
                    return Some(Expr::If(c.clone(), Box::new(nt), e.clone()));
                }
                if let Some(ne) = e.replace_subexpr(needle, replacement) {
                    return Some(Expr::If(c.clone(), t.clone(), Box::new(ne)));
                }
                None
            }
        }
    }

    /// True if the expression contains any conditional.
    pub fn has_if(&self) -> bool {
        match self {
            Expr::If(_, _, _) => true,
            Expr::Num(_) | Expr::Var(_) => false,
            Expr::Op(_, args) => args.iter().any(Expr::has_if),
        }
    }

    /// True if the expression is a boolean-valued expression (a comparison,
    /// connective, or boolean literal).
    pub fn is_boolean(&self) -> bool {
        match self {
            Expr::Num(Constant::Bool(_)) => true,
            Expr::Op(op, _) => op.is_predicate(),
            Expr::If(_, t, _) => t.is_boolean(),
            _ => false,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::to_sexpr(self))
    }
}

/// A top-level FPCore benchmark: arguments, metadata, precondition and body.
#[derive(Clone, PartialEq, Debug)]
pub struct FPCore {
    /// Optional benchmark name (`:name` property or identifier after `FPCore`).
    pub name: Option<String>,
    /// Formal arguments with their representation types.
    pub args: Vec<(Symbol, FpType)>,
    /// Optional precondition restricting valid inputs (`:pre`).
    pub pre: Option<Expr>,
    /// Output representation (`:precision`, defaults to binary64).
    pub precision: FpType,
    /// The real-number expression to implement.
    pub body: Expr,
}

impl FPCore {
    /// Creates an FPCore with the given argument names (all binary64) and body.
    pub fn new(args: &[&str], body: Expr) -> FPCore {
        FPCore {
            name: None,
            args: args
                .iter()
                .map(|a| (Symbol::new(a), FpType::Binary64))
                .collect(),
            pre: None,
            precision: FpType::Binary64,
            body,
        }
    }

    /// Sets the benchmark name (builder style).
    pub fn with_name(mut self, name: &str) -> FPCore {
        self.name = Some(name.to_owned());
        self
    }

    /// Sets the precondition (builder style).
    pub fn with_pre(mut self, pre: Expr) -> FPCore {
        self.pre = Some(pre);
        self
    }

    /// Sets the output precision (builder style).
    pub fn with_precision(mut self, precision: FpType) -> FPCore {
        self.precision = precision;
        self
    }

    /// The argument names in declaration order.
    pub fn arg_names(&self) -> Vec<Symbol> {
        self.args.iter().map(|(s, _)| *s).collect()
    }
}

impl fmt::Display for FPCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::fpcore_to_sexpr(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_expr() -> Expr {
        // (+ (* x x) (sqrt y))
        Expr::bin(
            RealOp::Add,
            Expr::bin(RealOp::Mul, Expr::var("x"), Expr::var("x")),
            Expr::un(RealOp::Sqrt, Expr::var("y")),
        )
    }

    #[test]
    fn arity_and_names_consistent() {
        for &op in RealOp::ALL {
            assert_eq!(RealOp::from_name(op.name()), Some(op), "op {op:?}");
            assert!(op.arity() >= 1 && op.arity() <= 3);
        }
        // `-` resolves to Sub (the parser handles unary minus separately).
        assert_eq!(RealOp::from_name("-"), Some(RealOp::Sub));
        assert_eq!(RealOp::from_name("frobnicate"), None);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn op_constructor_checks_arity() {
        let _ = Expr::op(RealOp::Add, vec![Expr::int(1)]);
    }

    #[test]
    fn size_depth_variables() {
        let e = sample_expr();
        assert_eq!(e.size(), 6);
        assert_eq!(e.depth(), 3);
        let vars = e.variables();
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&Symbol::new("x")));
        assert!(vars.contains(&Symbol::new("y")));
    }

    #[test]
    fn subexpressions_preorder() {
        let e = sample_expr();
        let subs = e.subexpressions();
        assert_eq!(subs.len(), 6);
        assert_eq!(subs[0], &e);
    }

    #[test]
    fn substitution() {
        let e = sample_expr();
        let replaced = e.substitute(Symbol::new("y"), &Expr::int(4));
        assert!(!replaced.variables().contains(&Symbol::new("y")));
        assert_eq!(replaced.size(), e.size());
    }

    #[test]
    fn replace_subexpr_first_occurrence() {
        let e = sample_expr();
        let needle = Expr::un(RealOp::Sqrt, Expr::var("y"));
        let out = e.replace_subexpr(&needle, &Expr::int(0)).unwrap();
        assert!(out.size() < e.size());
        assert!(e
            .replace_subexpr(&Expr::var("zzz"), &Expr::int(0))
            .is_none());
    }

    #[test]
    fn boolean_classification() {
        let cmp = Expr::bin(RealOp::Lt, Expr::var("x"), Expr::int(0));
        assert!(cmp.is_boolean());
        assert!(!sample_expr().is_boolean());
        let cond = Expr::If(
            Box::new(cmp.clone()),
            Box::new(Expr::int(1)),
            Box::new(Expr::int(2)),
        );
        assert!(cond.has_if());
        assert!(!sample_expr().has_if());
    }

    #[test]
    fn fpcore_builder() {
        let core = FPCore::new(&["x"], Expr::var("x"))
            .with_name("identity")
            .with_precision(FpType::Binary32);
        assert_eq!(core.name.as_deref(), Some("identity"));
        assert_eq!(core.precision, FpType::Binary32);
        assert_eq!(core.arg_names(), vec![Symbol::new("x")]);
    }
}
