//! Stable content hashing for cache keys.
//!
//! The compilation service (`crates/service`) keys its content-addressed
//! result store by a hash over the request's semantic content: the canonical
//! FPCore text, the target fingerprint, the seed, and the configuration
//! fingerprint. That key must be **stable** — equal across processes, runs,
//! and compiler versions — which rules out [`std::hash::DefaultHasher`]
//! (SipHash with unspecified keys, explicitly not guaranteed stable) and
//! anything seeded per process.
//!
//! [`ContentHasher`] is FNV-1a over two independent 64-bit lanes (distinct
//! offset bases, same prime), concatenated into a 128-bit digest. FNV-1a is
//! not cryptographic, and does not need to be here: the key guards a *cache*,
//! not a security boundary, and at 128 bits the collision probability across
//! even billions of distinct requests is negligible (birthday bound ≈ n²/2¹²⁹).
//! What matters is that the function is simple enough to specify exactly —
//! the on-disk store outlives any one binary, so the digest algorithm is part
//! of the store format (see `docs/SERVICE.md`).
//!
//! Every value feeds the hasher through an explicit, length-prefixed
//! byte encoding ([`ContentHasher::str`], [`ContentHasher::u64`], ...), so
//! two different field sequences cannot collide by concatenation ambiguity
//! ("ab" + "c" vs "a" + "bc").

use crate::ast::FPCore;

/// FNV-1a offset basis (the standard 64-bit value).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, independent offset basis for the high lane: the standard basis
/// hashed with itself, fixed here as a constant so the digest is fully
/// specified by this file.
const FNV_OFFSET_HI: u64 = 0xaf63_bd4c_8601_b7df;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A stable 128-bit content hasher (two independent FNV-1a lanes).
///
/// ```
/// use fpcore::hash::ContentHasher;
/// let mut h = ContentHasher::new();
/// h.str("hello");
/// h.u64(7);
/// let digest = h.digest();
/// assert_eq!(digest, {
///     let mut again = ContentHasher::new();
///     again.str("hello");
///     again.u64(7);
///     again.digest()
/// });
/// ```
#[derive(Clone, Debug)]
pub struct ContentHasher {
    lo: u64,
    hi: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        ContentHasher::new()
    }
}

impl ContentHasher {
    /// A fresh hasher.
    pub fn new() -> ContentHasher {
        ContentHasher {
            lo: FNV_OFFSET,
            hi: FNV_OFFSET_HI,
        }
    }

    /// Feeds raw bytes (no length prefix — use the typed feeders below for
    /// anything that concatenates fields).
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` as eight little-endian bytes.
    pub fn u64(&mut self, value: u64) {
        self.bytes(&value.to_le_bytes());
    }

    /// Feeds an `f64` by bit pattern (NaN payloads and signed zeros are
    /// distinct, exactly as the evaluation engines treat them).
    pub fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }

    /// Feeds a `u128` as sixteen little-endian bytes (low half first) — used
    /// to chain digests, e.g. feeding a target fingerprint into a request key.
    pub fn u128(&mut self, value: u128) {
        self.u64(value as u64);
        self.u64((value >> 64) as u64);
    }

    /// Feeds a string, length-prefixed so adjacent fields cannot alias.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// The 128-bit digest of everything fed so far.
    pub fn digest(&self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }

    /// The digest as 32 lowercase hex characters — the textual key format the
    /// service's store and wire protocol use.
    pub fn hex_digest(&self) -> String {
        format!("{:032x}", self.digest())
    }
}

/// The canonical text of an FPCore benchmark: printed from the parsed AST, so
/// whitespace, comments, number spellings that parse equal, and property
/// order in the source all collapse to one spelling. Two requests whose
/// FPCore sources differ only textually therefore hash to the same content
/// key.
pub fn canonical_text(core: &FPCore) -> String {
    crate::printer::fpcore_to_sexpr(core)
}

/// The stable 128-bit content hash of an FPCore benchmark (the hash of its
/// [`canonical_text`]).
pub fn fpcore_hash(core: &FPCore) -> u128 {
    let mut h = ContentHasher::new();
    h.str(&canonical_text(core));
    h.digest()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_fpcore;

    #[test]
    fn digests_are_stable_across_runs() {
        // Golden values: these must never change, because on-disk store
        // entries written by one build must be found by the next. If this
        // test fails, the digest algorithm changed and the store format
        // version must be bumped.
        let mut h = ContentHasher::new();
        assert_eq!(h.digest(), 0xaf63bd4c8601b7dfcbf29ce484222325);
        h.str("chassis");
        h.u64(20250413);
        assert_eq!(h.hex_digest(), "43fb4e0f5f288a0b5f472abb4db8dfe5");
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let mut a = ContentHasher::new();
        a.str("ab");
        a.str("c");
        let mut b = ContentHasher::new();
        b.str("a");
        b.str("bc");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn canonical_text_collapses_formatting() {
        let a = parse_fpcore("(FPCore (x) :pre (> x 0) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
        let b =
            parse_fpcore("(FPCore   (x)\n   :pre (> x 0)\n   (- (sqrt (+ x 1))\n      (sqrt x)))")
                .unwrap();
        assert_eq!(canonical_text(&a), canonical_text(&b));
        assert_eq!(fpcore_hash(&a), fpcore_hash(&b));
        let c = parse_fpcore("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))").unwrap();
        assert_ne!(fpcore_hash(&a), fpcore_hash(&c), "the :pre is content");
    }
}
