//! Exact rational arithmetic for FPCore numeric literals.
//!
//! FPCore literals such as `1.5`, `1e-3` or `4/3` denote exact real numbers. Chassis
//! keeps literals exact (rather than rounding them to `f64` at parse time) so that
//! ground-truth evaluation and constant folding do not silently lose accuracy.
//!
//! The representation is `num / den` with `num: i128`, `den: u128`, always reduced
//! and with `den > 0`. Overflowing operations saturate by rounding through `f64`;
//! the magnitudes appearing in benchmark literals are far below that point.

use std::cmp::Ordering;
use std::fmt;

/// An exact rational number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rational {
    num: i128,
    den: u128,
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl Rational {
    /// Creates a reduced rational. `den` must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: u128) -> Rational {
        assert!(den != 0, "rational denominator must be non-zero");
        let g = gcd(num.unsigned_abs(), den);
        Rational {
            num: num / g as i128,
            den: den / g,
        }
    }

    /// The integer `n`.
    pub fn integer(n: i128) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// Zero.
    pub fn zero() -> Rational {
        Rational::integer(0)
    }

    /// One.
    pub fn one() -> Rational {
        Rational::integer(1)
    }

    /// Numerator (signed).
    pub fn numerator(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denominator(&self) -> u128 {
        self.den
    }

    /// True if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True if the value is negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Nearest `f64` (correct to within one rounding of the division).
    pub fn to_f64(&self) -> f64 {
        // Exact when both parts convert exactly; otherwise one extra rounding,
        // which is acceptable for display and for sampling hints. Ground-truth
        // evaluation converts rationals through the big-float layer instead.
        self.num as f64 / self.den as f64
    }

    /// Exact conversion from a finite `f64`.
    ///
    /// Returns `None` for NaN or infinities.
    pub fn from_f64(x: f64) -> Option<Rational> {
        if !x.is_finite() {
            return None;
        }
        if x == 0.0 {
            return Some(Rational::zero());
        }
        let bits = x.to_bits();
        let sign = if bits >> 63 == 1 { -1i128 } else { 1i128 };
        let exp = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mant, e) = if exp == 0 {
            (frac as i128, -1074i64)
        } else {
            ((frac | (1 << 52)) as i128, exp - 1075)
        };
        let mant = sign * mant;
        if e >= 0 {
            if e > 70 {
                // Magnitude too large for exact i128 representation; fall back to an
                // integer approximation (only reachable for astronomically large
                // literals, which the corpus does not contain).
                return Some(Rational::integer(x as i128));
            }
            Some(Rational::integer(mant << e))
        } else {
            let shift = (-e) as u32;
            if shift >= 127 {
                // Subnormal-range values: represent with the largest expressible
                // denominator; the error is below 2^-126.
                return Some(Rational::new(mant, 1u128 << 126));
            }
            Some(Rational::new(mant, 1u128 << shift))
        }
    }

    fn checked_add(&self, other: &Rational) -> Option<Rational> {
        let den = self.den.checked_mul(other.den)?;
        let a = self.num.checked_mul(other.den as i128)?;
        let b = other.num.checked_mul(self.den as i128)?;
        Some(Rational::new(a.checked_add(b)?, den))
    }

    fn checked_mul(&self, other: &Rational) -> Option<Rational> {
        let den = self.den.checked_mul(other.den)?;
        let num = self.num.checked_mul(other.num)?;
        Some(Rational::new(num, den))
    }

    /// Sum, falling back to an `f64` round trip on overflow.
    pub fn add(&self, other: &Rational) -> Rational {
        self.checked_add(other)
            .or_else(|| Rational::from_f64(self.to_f64() + other.to_f64()))
            .unwrap_or_else(Rational::zero)
    }

    /// Product, falling back to an `f64` round trip on overflow.
    pub fn mul(&self, other: &Rational) -> Rational {
        self.checked_mul(other)
            .or_else(|| Rational::from_f64(self.to_f64() * other.to_f64()))
            .unwrap_or_else(Rational::zero)
    }

    /// Negation.
    pub fn neg(&self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }

    /// Multiplicative inverse. Returns `None` for zero.
    pub fn recip(&self) -> Option<Rational> {
        if self.num == 0 {
            None
        } else {
            let sign = if self.num < 0 { -1 } else { 1 };
            Some(Rational::new(
                sign * self.den as i128,
                self.num.unsigned_abs(),
            ))
        }
    }

    /// Parses a decimal or rational literal: `3`, `-2.5`, `1e-3`, `1.5e+2`, `4/3`.
    pub fn parse(text: &str) -> Option<Rational> {
        let text = text.trim();
        if let Some((n, d)) = text.split_once('/') {
            let num: i128 = n.parse().ok()?;
            let den: u128 = d.parse().ok()?;
            if den == 0 {
                return None;
            }
            return Some(Rational::new(num, den));
        }
        let (mantissa, exp10) = match text.split_once(['e', 'E']) {
            Some((m, e)) => (m, e.parse::<i32>().ok()?),
            None => (text, 0),
        };
        let negative = mantissa.starts_with('-');
        let mantissa = mantissa.trim_start_matches(['+', '-']);
        let (int_part, frac_part) = match mantissa.split_once('.') {
            Some((i, f)) => (i, f),
            None => (mantissa, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return None;
        }
        let digits: String = format!("{int_part}{frac_part}");
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut num: i128 = digits.parse().ok()?;
        if negative {
            num = -num;
        }
        let exp = exp10 - frac_part.len() as i32;
        let mut value = Rational::integer(num);
        if exp > 0 {
            for _ in 0..exp {
                value = value.mul(&Rational::integer(10));
            }
        } else {
            for _ in 0..(-exp) {
                value = value.mul(&Rational::new(1, 10));
            }
        }
        Some(value)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b and c/d via a*d vs c*b when that cannot overflow, otherwise
        // through f64 (sufficient for ordering heuristics).
        let lhs = self.num.checked_mul(other.den as i128);
        let rhs = other.num.checked_mul(self.den as i128);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_integers_and_decimals() {
        assert_eq!(Rational::parse("3"), Some(Rational::integer(3)));
        assert_eq!(Rational::parse("-2.5"), Some(Rational::new(-5, 2)));
        assert_eq!(Rational::parse("0.125"), Some(Rational::new(1, 8)));
        assert_eq!(Rational::parse("1e-3"), Some(Rational::new(1, 1000)));
        assert_eq!(Rational::parse("1.5e2"), Some(Rational::integer(150)));
        assert_eq!(Rational::parse("4/3"), Some(Rational::new(4, 3)));
        assert_eq!(Rational::parse("abc"), None);
        assert_eq!(Rational::parse("1/0"), None);
    }

    #[test]
    fn reduction_and_equality() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-6, 3), Rational::integer(-2));
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a.add(&b), Rational::new(5, 6));
        assert_eq!(a.mul(&b), Rational::new(1, 6));
        assert_eq!(a.neg(), Rational::new(-1, 2));
        assert_eq!(a.recip(), Some(Rational::integer(2)));
        assert_eq!(Rational::zero().recip(), None);
    }

    #[test]
    fn f64_round_trip_exact_values() {
        for x in [0.0, 1.0, -1.5, 0.1, 3.25e10, -7.625e-3, 2.0_f64.powi(-60)] {
            let r = Rational::from_f64(x).unwrap();
            assert_eq!(r.to_f64(), x, "round trip failed for {x}");
        }
        assert!(Rational::from_f64(f64::NAN).is_none());
        assert!(Rational::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::integer(-1) < Rational::zero());
        assert_eq!(
            Rational::new(2, 6).cmp(&Rational::new(1, 3)),
            Ordering::Equal
        );
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 4).to_string(), "3/4");
        assert_eq!(Rational::integer(7).to_string(), "7");
    }
}
