//! Outward-rounded interval arithmetic over [`BigFloat`]s.
//!
//! An [`Interval`] is a closed interval `[lo, hi]` whose endpoints are big-floats
//! rounded *outward* (lo toward −∞, hi toward +∞), so the true real value of the
//! expression being evaluated is always contained. Domain errors (log of a
//! negative number, division by an interval straddling zero, …) are signalled
//! through [`IntervalError`] and eventually become NaN or "unsamplable" results in
//! the evaluator.
//!
//! Transcendental functions are evaluated on both endpoints at the working
//! precision and widened by a fixed slop (the functions in [`crate::functions`]
//! are accurate to a couple of ulps), which keeps enclosures rigorous for the
//! narrow intervals produced when evaluating at exact floating-point points.

use crate::bigfloat::{BigFloat, RoundMode};
use crate::functions as fun;
use std::cmp::Ordering;

/// Number of ulps (at the working precision) by which transcendental results are
/// widened to account for approximation error in [`crate::functions`].
const FUNCTION_SLOP_ULPS: i64 = 8;

/// Why an interval operation could not produce an enclosure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IntervalError {
    /// The true result is a NaN for every point of the input interval
    /// (e.g. sqrt of a definitely-negative interval).
    Domain,
    /// The result cannot be bounded (e.g. division by an interval containing zero,
    /// or the input may or may not be in the function's domain).
    Unbounded,
}

/// A closed interval with big-float endpoints.
#[derive(Clone, Debug)]
pub struct Interval {
    /// Lower endpoint (rounded toward −∞).
    pub lo: BigFloat,
    /// Upper endpoint (rounded toward +∞).
    pub hi: BigFloat,
}

impl PartialEq for Interval {
    fn eq(&self, other: &Self) -> bool {
        self.lo.partial_cmp(&other.lo) == Some(Ordering::Equal)
            && self.hi.partial_cmp(&other.hi) == Some(Ordering::Equal)
    }
}

/// A three-valued boolean resulting from comparing intervals.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BoolInterval {
    /// The predicate may be true for some point.
    pub can_be_true: bool,
    /// The predicate may be false for some point.
    pub can_be_false: bool,
}

impl BoolInterval {
    /// A definite boolean.
    pub fn certain(value: bool) -> BoolInterval {
        BoolInterval {
            can_be_true: value,
            can_be_false: !value,
        }
    }

    /// The completely unknown boolean.
    pub fn unknown() -> BoolInterval {
        BoolInterval {
            can_be_true: true,
            can_be_false: true,
        }
    }

    /// Returns the definite value if there is one.
    pub fn definite(&self) -> Option<bool> {
        match (self.can_be_true, self.can_be_false) {
            (true, false) => Some(true),
            (false, true) => Some(false),
            _ => None,
        }
    }

    /// Logical and.
    pub fn and(&self, other: &BoolInterval) -> BoolInterval {
        BoolInterval {
            can_be_true: self.can_be_true && other.can_be_true,
            can_be_false: self.can_be_false || other.can_be_false,
        }
    }

    /// Logical or.
    pub fn or(&self, other: &BoolInterval) -> BoolInterval {
        BoolInterval {
            can_be_true: self.can_be_true || other.can_be_true,
            can_be_false: self.can_be_false && other.can_be_false,
        }
    }

    /// Logical not.
    pub fn not(&self) -> BoolInterval {
        BoolInterval {
            can_be_true: self.can_be_false,
            can_be_false: self.can_be_true,
        }
    }
}

type IResult = Result<Interval, IntervalError>;

impl Interval {
    /// The point interval for an exact `f64`.
    pub fn point_f64(x: f64) -> Interval {
        Interval {
            lo: BigFloat::from_f64(x),
            hi: BigFloat::from_f64(x),
        }
    }

    /// The point interval for an exact big-float.
    pub fn point(x: BigFloat) -> Interval {
        Interval {
            lo: x.clone(),
            hi: x,
        }
    }

    /// An interval from two endpoints (they must already be ordered).
    pub fn new(lo: BigFloat, hi: BigFloat) -> Interval {
        Interval { lo, hi }
    }

    /// True if either endpoint is NaN.
    pub fn has_nan(&self) -> bool {
        self.lo.is_nan() || self.hi.is_nan()
    }

    /// True if the interval is a single point (lo == hi numerically).
    pub fn is_point(&self) -> bool {
        self.lo.partial_cmp(&self.hi) == Some(Ordering::Equal)
    }

    /// True if the interval definitely contains zero in its interior or boundary.
    pub fn contains_zero(&self) -> bool {
        let zero = BigFloat::zero();
        self.lo.partial_cmp(&zero) != Some(Ordering::Greater)
            && self.hi.partial_cmp(&zero) != Some(Ordering::Less)
    }

    /// True if every point of the interval is strictly negative.
    pub fn is_strictly_negative(&self) -> bool {
        self.hi.partial_cmp(&BigFloat::zero()) == Some(Ordering::Less)
    }

    /// True if every point of the interval is strictly positive.
    pub fn is_strictly_positive(&self) -> bool {
        self.lo.partial_cmp(&BigFloat::zero()) == Some(Ordering::Greater)
    }

    /// Widens both endpoints outward by `ulps` units in the last place at
    /// precision `prec` (relative to each endpoint's own magnitude).
    fn widen(&self, ulps: i64, prec: u32) -> Interval {
        Interval {
            lo: nudge(&self.lo, -ulps, prec),
            hi: nudge(&self.hi, ulps, prec),
        }
    }

    /// Negation.
    pub fn neg(&self) -> Interval {
        Interval {
            lo: self.hi.neg(),
            hi: self.lo.neg(),
        }
    }

    /// Absolute value.
    pub fn fabs(&self) -> Interval {
        if self.is_strictly_negative() {
            self.neg()
        } else if self.contains_zero() {
            let hi_mag = max_bf(&self.lo.abs(), &self.hi.abs());
            Interval {
                lo: BigFloat::zero(),
                hi: hi_mag,
            }
        } else {
            self.clone()
        }
    }

    /// Addition.
    pub fn add(&self, other: &Interval, prec: u32) -> IResult {
        check_nan(self, other)?;
        Ok(Interval {
            lo: BigFloat::add(&self.lo, &other.lo, prec, RoundMode::Floor),
            hi: BigFloat::add(&self.hi, &other.hi, prec, RoundMode::Ceil),
        })
    }

    /// Subtraction.
    pub fn sub(&self, other: &Interval, prec: u32) -> IResult {
        self.add(&other.neg(), prec)
    }

    /// Multiplication (considers all endpoint products).
    pub fn mul(&self, other: &Interval, prec: u32) -> IResult {
        check_nan(self, other)?;
        let candidates = [
            BigFloat::mul(&self.lo, &other.lo, prec, RoundMode::Floor),
            BigFloat::mul(&self.lo, &other.hi, prec, RoundMode::Floor),
            BigFloat::mul(&self.hi, &other.lo, prec, RoundMode::Floor),
            BigFloat::mul(&self.hi, &other.hi, prec, RoundMode::Floor),
        ];
        let candidates_hi = [
            BigFloat::mul(&self.lo, &other.lo, prec, RoundMode::Ceil),
            BigFloat::mul(&self.lo, &other.hi, prec, RoundMode::Ceil),
            BigFloat::mul(&self.hi, &other.lo, prec, RoundMode::Ceil),
            BigFloat::mul(&self.hi, &other.hi, prec, RoundMode::Ceil),
        ];
        // 0 * inf produces NaN; treat such products as unbounded.
        if candidates.iter().any(BigFloat::is_nan) || candidates_hi.iter().any(BigFloat::is_nan) {
            return Err(IntervalError::Unbounded);
        }
        Ok(Interval {
            lo: min_of(&candidates),
            hi: max_of(&candidates_hi),
        })
    }

    /// Division. Division by an interval containing zero is unbounded.
    pub fn div(&self, other: &Interval, prec: u32) -> IResult {
        check_nan(self, other)?;
        if other.contains_zero() {
            // The quotient is unbounded unless the numerator is exactly zero too
            // (in which case the true value is NaN: 0/0) — either way we cannot
            // produce a finite enclosure, so report accordingly.
            if other.is_point() {
                return Err(IntervalError::Domain); // definite division by zero
            }
            return Err(IntervalError::Unbounded);
        }
        let candidates_lo = [
            BigFloat::div(&self.lo, &other.lo, prec, RoundMode::Floor),
            BigFloat::div(&self.lo, &other.hi, prec, RoundMode::Floor),
            BigFloat::div(&self.hi, &other.lo, prec, RoundMode::Floor),
            BigFloat::div(&self.hi, &other.hi, prec, RoundMode::Floor),
        ];
        let candidates_hi = [
            BigFloat::div(&self.lo, &other.lo, prec, RoundMode::Ceil),
            BigFloat::div(&self.lo, &other.hi, prec, RoundMode::Ceil),
            BigFloat::div(&self.hi, &other.lo, prec, RoundMode::Ceil),
            BigFloat::div(&self.hi, &other.hi, prec, RoundMode::Ceil),
        ];
        if candidates_lo.iter().any(BigFloat::is_nan) || candidates_hi.iter().any(BigFloat::is_nan)
        {
            return Err(IntervalError::Unbounded);
        }
        Ok(Interval {
            lo: min_of(&candidates_lo),
            hi: max_of(&candidates_hi),
        })
    }

    /// Square root. Definitely-negative inputs are a domain error; intervals that
    /// merely straddle zero are clamped at zero (the negative part would be NaN,
    /// which the evaluator accounts for separately through domain tracking).
    pub fn sqrt(&self, prec: u32) -> IResult {
        if self.has_nan() {
            return Err(IntervalError::Unbounded);
        }
        if self.is_strictly_negative() {
            return Err(IntervalError::Domain);
        }
        let lo = if self.lo.is_negative() {
            BigFloat::zero()
        } else {
            BigFloat::sqrt(&self.lo, prec, RoundMode::Floor)
        };
        Ok(Interval {
            lo,
            hi: BigFloat::sqrt(&self.hi, prec, RoundMode::Ceil),
        })
    }

    /// Applies a monotonically increasing function to both endpoints and widens.
    fn monotone_increasing(&self, f: impl Fn(&BigFloat, u32) -> BigFloat, prec: u32) -> IResult {
        if self.has_nan() {
            return Err(IntervalError::Unbounded);
        }
        let lo = f(&self.lo, prec);
        let hi = f(&self.hi, prec);
        if lo.is_nan() || hi.is_nan() {
            return Err(IntervalError::Domain);
        }
        Ok(Interval { lo, hi }.widen(FUNCTION_SLOP_ULPS, prec))
    }

    /// Exponential.
    pub fn exp(&self, prec: u32) -> IResult {
        self.monotone_increasing(fun::exp, prec)
    }

    /// exp(x) − 1.
    pub fn expm1(&self, prec: u32) -> IResult {
        self.monotone_increasing(fun::expm1, prec)
    }

    /// 2^x.
    pub fn exp2(&self, prec: u32) -> IResult {
        self.monotone_increasing(fun::exp2, prec)
    }

    /// Natural logarithm: requires a strictly positive interval.
    pub fn log(&self, prec: u32) -> IResult {
        if self.has_nan() {
            return Err(IntervalError::Unbounded);
        }
        if self.is_strictly_negative() || self.is_strictly_positive() {
            if self.is_strictly_negative() {
                return Err(IntervalError::Domain);
            }
            return self.monotone_increasing(fun::log, prec);
        }
        // The interval touches zero or spans it: log is unbounded below or the
        // domain is ambiguous; signal accordingly.
        if self.hi.partial_cmp(&BigFloat::zero()) == Some(Ordering::Equal) && self.is_point() {
            return Err(IntervalError::Domain);
        }
        Err(IntervalError::Unbounded)
    }

    /// log(1+x): requires the interval to stay above −1.
    pub fn log1p(&self, prec: u32) -> IResult {
        if self.has_nan() {
            return Err(IntervalError::Unbounded);
        }
        let minus_one = BigFloat::from_i64(-1);
        if self.hi.partial_cmp(&minus_one) == Some(Ordering::Less) {
            return Err(IntervalError::Domain);
        }
        if self.lo.partial_cmp(&minus_one) != Some(Ordering::Greater) {
            return Err(IntervalError::Unbounded);
        }
        self.monotone_increasing(fun::log1p, prec)
    }

    /// Base-2 logarithm.
    pub fn log2(&self, prec: u32) -> IResult {
        let natural = self.log(prec)?;
        let scale = Interval::point(fun::ln2(prec + 16));
        natural.div(&scale, prec)
    }

    /// Base-10 logarithm.
    pub fn log10(&self, prec: u32) -> IResult {
        let natural = self.log(prec)?;
        let scale = Interval::point(fun::ln10(prec + 16));
        natural.div(&scale, prec)
    }

    /// Cube root (odd, monotone increasing, defined everywhere).
    pub fn cbrt(&self, prec: u32) -> IResult {
        self.monotone_increasing(fun::cbrt, prec)
    }

    /// Sine. Wide intervals fall back to the trivial enclosure [−1, 1].
    pub fn sin(&self, prec: u32) -> IResult {
        self.trig(fun::sin, prec)
    }

    /// Cosine.
    pub fn cos(&self, prec: u32) -> IResult {
        self.trig(fun::cos, prec)
    }

    fn trig(&self, f: impl Fn(&BigFloat, u32) -> BigFloat, prec: u32) -> IResult {
        if self.has_nan() {
            return Err(IntervalError::Unbounded);
        }
        if self.lo.is_infinite() || self.hi.is_infinite() {
            return Err(IntervalError::Domain);
        }
        let lo_v = f(&self.lo, prec);
        let hi_v = f(&self.hi, prec);
        if lo_v.is_nan() || hi_v.is_nan() {
            return Err(IntervalError::Unbounded);
        }
        // For narrow intervals (the common case: the inputs are exact points) the
        // endpoint values bracket the range up to the quadratic term, which the
        // widening slop absorbs. For wide intervals use the trivial enclosure.
        if !narrow(self, prec) {
            return Ok(Interval {
                lo: BigFloat::from_i64(-1),
                hi: BigFloat::from_i64(1),
            });
        }
        Ok(Interval {
            lo: min_bf(&lo_v, &hi_v),
            hi: max_bf(&lo_v, &hi_v),
        }
        .widen(FUNCTION_SLOP_ULPS, prec))
    }

    /// Tangent (via sin/cos).
    pub fn tan(&self, prec: u32) -> IResult {
        let s = self.sin(prec)?;
        let c = self.cos(prec)?;
        s.div(&c, prec)
    }

    /// Arctangent.
    pub fn atan(&self, prec: u32) -> IResult {
        self.monotone_increasing(fun::atan, prec)
    }

    /// Arcsine (domain [−1, 1]).
    pub fn asin(&self, prec: u32) -> IResult {
        self.inverse_trig_domain()?;
        self.monotone_increasing(fun::asin, prec)
    }

    /// Arccosine (domain [−1, 1], decreasing).
    pub fn acos(&self, prec: u32) -> IResult {
        self.inverse_trig_domain()?;
        if self.has_nan() {
            return Err(IntervalError::Unbounded);
        }
        let lo = fun::acos(&self.hi, prec);
        let hi = fun::acos(&self.lo, prec);
        if lo.is_nan() || hi.is_nan() {
            return Err(IntervalError::Unbounded);
        }
        Ok(Interval { lo, hi }.widen(FUNCTION_SLOP_ULPS, prec))
    }

    fn inverse_trig_domain(&self) -> Result<(), IntervalError> {
        let one = BigFloat::from_i64(1);
        let minus_one = BigFloat::from_i64(-1);
        if self.lo.partial_cmp(&one) == Some(Ordering::Greater)
            || self.hi.partial_cmp(&minus_one) == Some(Ordering::Less)
        {
            return Err(IntervalError::Domain);
        }
        if self.lo.partial_cmp(&minus_one) == Some(Ordering::Less)
            || self.hi.partial_cmp(&one) == Some(Ordering::Greater)
        {
            return Err(IntervalError::Unbounded);
        }
        Ok(())
    }

    /// atan2(y, x) where `self` is y.
    pub fn atan2(&self, x: &Interval, prec: u32) -> IResult {
        check_nan(self, x)?;
        // Restrict to the common case where x does not straddle zero (otherwise
        // the angle range can wrap around ±π and we give up for this precision).
        if x.contains_zero() && !(self.is_strictly_positive() || self.is_strictly_negative()) {
            return Err(IntervalError::Unbounded);
        }
        let corners = [
            fun::atan2(&self.lo, &x.lo, prec),
            fun::atan2(&self.lo, &x.hi, prec),
            fun::atan2(&self.hi, &x.lo, prec),
            fun::atan2(&self.hi, &x.hi, prec),
        ];
        if corners.iter().any(BigFloat::is_nan) {
            return Err(IntervalError::Unbounded);
        }
        Ok(Interval {
            lo: min_of(&corners),
            hi: max_of(&corners),
        }
        .widen(FUNCTION_SLOP_ULPS, prec))
    }

    /// Hyperbolic sine.
    pub fn sinh(&self, prec: u32) -> IResult {
        self.monotone_increasing(fun::sinh, prec)
    }

    /// Hyperbolic cosine (monotone on each side of zero).
    pub fn cosh(&self, prec: u32) -> IResult {
        if self.has_nan() {
            return Err(IntervalError::Unbounded);
        }
        let lo_v = fun::cosh(&self.lo, prec);
        let hi_v = fun::cosh(&self.hi, prec);
        if lo_v.is_nan() || hi_v.is_nan() {
            return Err(IntervalError::Domain);
        }
        let (lo, hi) = if self.contains_zero() {
            (BigFloat::from_i64(1), max_bf(&lo_v, &hi_v))
        } else {
            (min_bf(&lo_v, &hi_v), max_bf(&lo_v, &hi_v))
        };
        Ok(Interval { lo, hi }.widen(FUNCTION_SLOP_ULPS, prec))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, prec: u32) -> IResult {
        self.monotone_increasing(fun::tanh, prec)
    }

    /// Inverse hyperbolic sine.
    pub fn asinh(&self, prec: u32) -> IResult {
        self.monotone_increasing(fun::asinh, prec)
    }

    /// Inverse hyperbolic cosine (domain [1, ∞)).
    pub fn acosh(&self, prec: u32) -> IResult {
        if self.has_nan() {
            return Err(IntervalError::Unbounded);
        }
        let one = BigFloat::from_i64(1);
        if self.hi.partial_cmp(&one) == Some(Ordering::Less) {
            return Err(IntervalError::Domain);
        }
        if self.lo.partial_cmp(&one) == Some(Ordering::Less) {
            return Err(IntervalError::Unbounded);
        }
        self.monotone_increasing(fun::acosh, prec)
    }

    /// Inverse hyperbolic tangent (domain (−1, 1)).
    pub fn atanh(&self, prec: u32) -> IResult {
        if self.has_nan() {
            return Err(IntervalError::Unbounded);
        }
        let one = BigFloat::from_i64(1);
        let minus_one = BigFloat::from_i64(-1);
        if self.lo.partial_cmp(&one) == Some(Ordering::Greater)
            || self.hi.partial_cmp(&minus_one) == Some(Ordering::Less)
        {
            return Err(IntervalError::Domain);
        }
        if self.lo.partial_cmp(&minus_one) != Some(Ordering::Greater)
            || self.hi.partial_cmp(&one) != Some(Ordering::Less)
        {
            return Err(IntervalError::Unbounded);
        }
        self.monotone_increasing(fun::atanh, prec)
    }

    /// Power x^y where `self` is the base.
    pub fn pow(&self, y: &Interval, prec: u32) -> IResult {
        check_nan(self, y)?;
        // Positive base: monotone in well-understood ways; evaluate the corners.
        if self.is_strictly_positive() {
            let corners = [
                fun::pow(&self.lo, &y.lo, prec),
                fun::pow(&self.lo, &y.hi, prec),
                fun::pow(&self.hi, &y.lo, prec),
                fun::pow(&self.hi, &y.hi, prec),
            ];
            if corners.iter().any(BigFloat::is_nan) {
                return Err(IntervalError::Unbounded);
            }
            return Ok(Interval {
                lo: min_of(&corners),
                hi: max_of(&corners),
            }
            .widen(FUNCTION_SLOP_ULPS, prec));
        }
        // Exact point cases (negative base with integer exponent, zero base).
        if self.is_point() && y.is_point() {
            let v = fun::pow(&self.lo, &y.lo, prec);
            if v.is_nan() {
                return Err(IntervalError::Domain);
            }
            return Ok(Interval::point(v).widen(FUNCTION_SLOP_ULPS, prec));
        }
        Err(IntervalError::Unbounded)
    }

    /// Hypotenuse sqrt(x² + y²).
    pub fn hypot(&self, other: &Interval, prec: u32) -> IResult {
        let a = self.fabs();
        let b = other.fabs();
        let corners_lo = [fun::hypot(&a.lo, &b.lo, prec)];
        let corners_hi = [fun::hypot(&a.hi, &b.hi, prec)];
        if corners_lo.iter().any(BigFloat::is_nan) || corners_hi.iter().any(BigFloat::is_nan) {
            return Err(IntervalError::Unbounded);
        }
        Ok(Interval {
            lo: corners_lo[0].clone(),
            hi: corners_hi[0].clone(),
        }
        .widen(FUNCTION_SLOP_ULPS, prec))
    }

    /// Fused multiply-add.
    pub fn fma(&self, b: &Interval, c: &Interval, prec: u32) -> IResult {
        self.mul(b, prec)?.add(c, prec)
    }

    /// Floating-point remainder (point inputs only; wide inputs are unbounded).
    pub fn fmod(&self, other: &Interval, prec: u32) -> IResult {
        check_nan(self, other)?;
        if !(self.is_point() && other.is_point()) {
            // fmod is discontinuous; evaluating on wide intervals is not useful
            // for ground-truth computation.
            return Err(IntervalError::Unbounded);
        }
        let v = fun::fmod(&self.lo, &other.lo, prec);
        if v.is_nan() {
            return Err(IntervalError::Domain);
        }
        Ok(Interval::point(v).widen(FUNCTION_SLOP_ULPS, prec))
    }

    /// Positive difference `max(x - y, 0)`.
    pub fn fdim(&self, other: &Interval, prec: u32) -> IResult {
        let diff = self.sub(other, prec)?;
        Ok(Interval {
            lo: max_bf(&diff.lo, &BigFloat::zero()),
            hi: max_bf(&diff.hi, &BigFloat::zero()),
        })
    }

    /// Minimum.
    pub fn fmin(&self, other: &Interval, _prec: u32) -> IResult {
        check_nan(self, other)?;
        Ok(Interval {
            lo: min_bf(&self.lo, &other.lo),
            hi: min_bf(&self.hi, &other.hi),
        })
    }

    /// Maximum.
    pub fn fmax(&self, other: &Interval, _prec: u32) -> IResult {
        check_nan(self, other)?;
        Ok(Interval {
            lo: max_bf(&self.lo, &other.lo),
            hi: max_bf(&self.hi, &other.hi),
        })
    }

    /// Copysign(x, y): |x| with the sign of y (point-sign intervals only).
    pub fn copysign(&self, sign: &Interval, _prec: u32) -> IResult {
        check_nan(self, sign)?;
        let mag = self.fabs();
        if sign.is_strictly_negative() {
            Ok(mag.neg())
        } else if sign.is_strictly_positive() || (sign.is_point() && !sign.lo.is_negative()) {
            Ok(mag)
        } else {
            Err(IntervalError::Unbounded)
        }
    }

    /// Floor function.
    pub fn floor(&self, _prec: u32) -> IResult {
        if self.has_nan() {
            return Err(IntervalError::Unbounded);
        }
        Ok(Interval {
            lo: self.lo.floor_int(),
            hi: self.hi.floor_int(),
        })
    }

    /// Ceiling function.
    pub fn ceil(&self, _prec: u32) -> IResult {
        if self.has_nan() {
            return Err(IntervalError::Unbounded);
        }
        Ok(Interval {
            lo: self.lo.ceil_int(),
            hi: self.hi.ceil_int(),
        })
    }

    /// Round-to-nearest (ties away from zero).
    pub fn round(&self, _prec: u32) -> IResult {
        if self.has_nan() {
            return Err(IntervalError::Unbounded);
        }
        Ok(Interval {
            lo: self.lo.round_int(),
            hi: self.hi.round_int(),
        })
    }

    /// Truncation toward zero.
    pub fn trunc(&self, _prec: u32) -> IResult {
        if self.has_nan() {
            return Err(IntervalError::Unbounded);
        }
        Ok(Interval {
            lo: self.lo.trunc(),
            hi: self.hi.trunc(),
        })
    }

    /// Three-valued `self < other`.
    pub fn lt(&self, other: &Interval) -> BoolInterval {
        compare(self, other, |o| o == Ordering::Less)
    }

    /// Three-valued `self > other`.
    pub fn gt(&self, other: &Interval) -> BoolInterval {
        compare(self, other, |o| o == Ordering::Greater)
    }

    /// Three-valued `self <= other`.
    pub fn le(&self, other: &Interval) -> BoolInterval {
        compare(self, other, |o| o != Ordering::Greater)
    }

    /// Three-valued `self >= other`.
    pub fn ge(&self, other: &Interval) -> BoolInterval {
        compare(self, other, |o| o != Ordering::Less)
    }

    /// Three-valued equality.
    pub fn eq_interval(&self, other: &Interval) -> BoolInterval {
        if self.has_nan() || other.has_nan() {
            return BoolInterval::unknown();
        }
        let definitely_disjoint = self.hi.partial_cmp(&other.lo) == Some(Ordering::Less)
            || other.hi.partial_cmp(&self.lo) == Some(Ordering::Less);
        if definitely_disjoint {
            return BoolInterval::certain(false);
        }
        if self.is_point()
            && other.is_point()
            && self.lo.partial_cmp(&other.lo) == Some(Ordering::Equal)
        {
            return BoolInterval::certain(true);
        }
        BoolInterval::unknown()
    }
}

fn check_nan(a: &Interval, b: &Interval) -> Result<(), IntervalError> {
    if a.has_nan() || b.has_nan() {
        Err(IntervalError::Unbounded)
    } else {
        Ok(())
    }
}

fn compare(a: &Interval, b: &Interval, pred: impl Fn(Ordering) -> bool) -> BoolInterval {
    if a.has_nan() || b.has_nan() {
        return BoolInterval::unknown();
    }
    // Compare the extreme cases: (a.lo vs b.hi) is the most "a < b" friendly,
    // (a.hi vs b.lo) the least.
    let most = a.lo.partial_cmp(&b.hi);
    let least = a.hi.partial_cmp(&b.lo);
    match (most, least) {
        (Some(m), Some(l)) => BoolInterval {
            can_be_true: pred(m),
            can_be_false: !pred(l),
        },
        _ => BoolInterval::unknown(),
    }
}

fn narrow(x: &Interval, prec: u32) -> bool {
    // An interval is "narrow" when its width is far below 1 in absolute terms or
    // far below the magnitude of its endpoints; this is the regime produced by
    // evaluating at exact points.
    if x.is_point() {
        return true;
    }
    let width = BigFloat::sub(&x.hi, &x.lo, prec, RoundMode::Ceil);
    match (width.magnitude(), x.hi.magnitude().or(x.lo.magnitude())) {
        (None, _) => true,
        (Some(w), Some(m)) => w < m - 20 || w < -20,
        (Some(w), None) => w < -20,
    }
}

fn nudge(x: &BigFloat, ulps: i64, prec: u32) -> BigFloat {
    if ulps == 0 || x.is_nan() || x.is_infinite() {
        return x.clone();
    }
    let mag = x.magnitude().unwrap_or(-(prec as i64));
    let step = crate::functions::mul_pow2(&BigFloat::from_i64(ulps), mag - prec as i64);
    let mode = if ulps > 0 {
        RoundMode::Ceil
    } else {
        RoundMode::Floor
    };
    BigFloat::add(x, &step, prec + 8, mode)
}

fn min_bf(a: &BigFloat, b: &BigFloat) -> BigFloat {
    match a.partial_cmp(b) {
        Some(Ordering::Greater) => b.clone(),
        _ => a.clone(),
    }
}

fn max_bf(a: &BigFloat, b: &BigFloat) -> BigFloat {
    match a.partial_cmp(b) {
        Some(Ordering::Less) => b.clone(),
        _ => a.clone(),
    }
}

fn min_of(xs: &[BigFloat]) -> BigFloat {
    xs.iter()
        .skip(1)
        .fold(xs[0].clone(), |acc, x| min_bf(&acc, x))
}

fn max_of(xs: &[BigFloat]) -> BigFloat {
    xs.iter()
        .skip(1)
        .fold(xs[0].clone(), |acc, x| max_bf(&acc, x))
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u32 = 96;

    fn pt(x: f64) -> Interval {
        Interval::point_f64(x)
    }

    fn contains(iv: &Interval, x: f64) -> bool {
        // `x` comes from the host libm, which may itself be a few ulps off; expand
        // the check by a small budget so we only catch genuine enclosure bugs.
        let lo = iv.lo.to_f64(RoundMode::Floor);
        let hi = iv.hi.to_f64(RoundMode::Ceil);
        let slack = 4.0 * (hi.abs().max(lo.abs()).max(1e-300) * f64::EPSILON);
        lo - slack <= x && x <= hi + slack
    }

    #[test]
    fn arithmetic_encloses_true_values() {
        let third = pt(1.0).div(&pt(3.0), P).unwrap();
        assert!(contains(&third, 1.0 / 3.0));
        assert!(!third.is_point());
        let sum = pt(0.1).add(&pt(0.2), P).unwrap();
        assert!(contains(&sum, 0.1 + 0.2));
        let prod = pt(-3.0).mul(&pt(7.0), P).unwrap();
        assert!(contains(&prod, -21.0));
        let diff = pt(1e16).sub(&pt(1.0), P).unwrap();
        assert!(contains(&diff, 1e16 - 1.0));
    }

    #[test]
    fn division_by_zero_interval() {
        assert_eq!(pt(1.0).div(&pt(0.0), P), Err(IntervalError::Domain));
        let straddling = Interval::new(BigFloat::from_f64(-1.0), BigFloat::from_f64(1.0));
        assert_eq!(pt(1.0).div(&straddling, P), Err(IntervalError::Unbounded));
    }

    #[test]
    fn sqrt_and_log_domains() {
        assert!(pt(4.0).sqrt(P).is_ok());
        assert_eq!(pt(-4.0).sqrt(P), Err(IntervalError::Domain));
        assert_eq!(pt(-1.0).log(P), Err(IntervalError::Domain));
        assert!(pt(2.0).log(P).is_ok());
        assert_eq!(pt(-3.0).log1p(P), Err(IntervalError::Domain));
    }

    #[test]
    fn transcendental_enclosures() {
        for x in [-2.5, -0.1, 0.0, 0.7, 3.0, 50.0] {
            assert!(contains(&pt(x).exp(P).unwrap(), x.exp()), "exp({x})");
            assert!(contains(&pt(x).sin(P).unwrap(), x.sin()), "sin({x})");
            assert!(contains(&pt(x).cos(P).unwrap(), x.cos()), "cos({x})");
            assert!(contains(&pt(x).atan(P).unwrap(), x.atan()), "atan({x})");
            assert!(contains(&pt(x).sinh(P).unwrap(), x.sinh()), "sinh({x})");
            assert!(contains(&pt(x).tanh(P).unwrap(), x.tanh()), "tanh({x})");
            assert!(contains(&pt(x).cbrt(P).unwrap(), x.cbrt()), "cbrt({x})");
        }
        for x in [0.001, 1.0, 42.0] {
            assert!(contains(&pt(x).log(P).unwrap(), x.ln()), "log({x})");
        }
    }

    #[test]
    fn interval_widths_are_tight() {
        // The enclosure of exp(1) should be only a few ulps wide at 96 bits,
        // so converting both ends to f64 gives the same number.
        let e = pt(1.0).exp(P).unwrap();
        assert_eq!(
            e.lo.to_f64(RoundMode::Nearest),
            e.hi.to_f64(RoundMode::Nearest),
            "enclosure should collapse to one double"
        );
    }

    #[test]
    fn wide_trig_falls_back_to_unit_interval() {
        let wide = Interval::new(BigFloat::from_f64(0.0), BigFloat::from_f64(100.0));
        let s = wide.sin(P).unwrap();
        assert_eq!(s.lo.to_f64(RoundMode::Floor), -1.0);
        assert_eq!(s.hi.to_f64(RoundMode::Ceil), 1.0);
    }

    #[test]
    fn comparisons_are_three_valued() {
        assert_eq!(pt(1.0).lt(&pt(2.0)).definite(), Some(true));
        assert_eq!(pt(2.0).lt(&pt(1.0)).definite(), Some(false));
        let around_zero = Interval::new(BigFloat::from_f64(-1e-30), BigFloat::from_f64(1e-30));
        assert_eq!(around_zero.lt(&pt(0.0)).definite(), None);
        assert_eq!(pt(3.0).eq_interval(&pt(3.0)).definite(), Some(true));
        assert_eq!(pt(3.0).eq_interval(&pt(4.0)).definite(), Some(false));
    }

    #[test]
    fn bool_interval_logic() {
        let t = BoolInterval::certain(true);
        let f = BoolInterval::certain(false);
        let u = BoolInterval::unknown();
        assert_eq!(t.and(&f).definite(), Some(false));
        assert_eq!(t.or(&f).definite(), Some(true));
        assert_eq!(t.and(&u).definite(), None);
        assert_eq!(f.and(&u).definite(), Some(false));
        assert_eq!(t.not().definite(), Some(false));
    }

    #[test]
    fn min_max_abs_and_rounding() {
        assert!(contains(&pt(-3.0).fabs(), 3.0));
        assert!(contains(&pt(2.5).fmin(&pt(1.5), P).unwrap(), 1.5));
        assert!(contains(&pt(2.5).fmax(&pt(1.5), P).unwrap(), 2.5));
        assert!(contains(&pt(2.7).floor(P).unwrap(), 2.0));
        assert!(contains(&pt(2.2).ceil(P).unwrap(), 3.0));
        assert!(contains(&pt(-2.5).round(P).unwrap(), -3.0));
        assert!(contains(&pt(-2.7).trunc(P).unwrap(), -2.0));
        assert!(contains(&pt(5.0).fdim(&pt(3.0), P).unwrap(), 2.0));
        assert!(contains(&pt(3.0).fdim(&pt(5.0), P).unwrap(), 0.0));
        assert!(contains(&pt(3.0).copysign(&pt(-1.0), P).unwrap(), -3.0));
    }

    #[test]
    fn power_and_hypot() {
        assert!(contains(&pt(2.0).pow(&pt(10.0), P).unwrap(), 1024.0));
        assert!(contains(&pt(-2.0).pow(&pt(3.0), P).unwrap(), -8.0));
        assert_eq!(pt(-2.0).pow(&pt(0.5), P), Err(IntervalError::Domain));
        assert!(contains(&pt(3.0).hypot(&pt(4.0), P).unwrap(), 5.0));
        assert!(contains(&pt(7.5).fmod(&pt(2.0), P).unwrap(), 1.5));
        assert!(contains(&pt(2.0).fma(&pt(3.0), &pt(1.0), P).unwrap(), 7.0));
    }
}
