//! Arbitrary-precision unsigned integers (the mantissa type for [`crate::BigFloat`]).
//!
//! Only the operations the big-float layer needs are provided: addition,
//! subtraction, schoolbook multiplication, shifts, comparison, bit access and
//! binary long division. Magnitudes are stored as little-endian `u64` limbs with
//! no leading zero limb.

use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing (most-significant) zero limbs.
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> BigUint {
        BigUint { limbs: vec![] }
    }

    /// One.
    pub fn one() -> BigUint {
        BigUint::from_u64(1)
    }

    /// From a single limb.
    pub fn from_u64(x: u64) -> BigUint {
        if x == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![x] }
        }
    }

    /// From a `u128`.
    pub fn from_u128(x: u128) -> BigUint {
        let lo = x as u64;
        let hi = (x >> 64) as u64;
        let mut v = BigUint {
            limbs: vec![lo, hi],
        };
        v.normalize();
        v
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_length(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// The value of bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        let off = i % 64;
        match self.limbs.get(limb) {
            Some(&l) => (l >> off) & 1 == 1,
            None => false,
        }
    }

    /// True if any bit strictly below `i` is set (used for rounding sticky bits).
    pub fn any_bit_below(&self, i: u64) -> bool {
        let full_limbs = (i / 64) as usize;
        let off = i % 64;
        for l in self.limbs.iter().take(full_limbs) {
            if *l != 0 {
                return true;
            }
        }
        if off > 0 {
            if let Some(&l) = self.limbs.get(full_limbs) {
                if l & ((1u64 << off) - 1) != 0 {
                    return true;
                }
            }
        }
        false
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: u64) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = (bits % 64) as u32;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Right shift by `bits` (truncating).
    pub fn shr(&self, bits: u64) -> BigUint {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (bits % 64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                limbs.push(lo | hi);
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut limbs = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            limbs.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            limbs.push(carry);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Adds a single `u64`.
    pub fn add_u64(&self, x: u64) -> BigUint {
        self.add(&BigUint::from_u64(x))
    }

    /// Subtraction; `self` must be at least `other`.
    ///
    /// # Panics
    ///
    /// Panics if `self < other`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp_mag(other) != Ordering::Less,
            "BigUint::sub underflow"
        );
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            limbs.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = limbs[i + j] as u128 + (a as u128) * (b as u128) + carry;
                limbs[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = limbs[k] as u128 + carry;
                limbs[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Magnitude comparison.
    pub fn cmp_mag(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Binary long division; returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self.cmp_mag(divisor) == Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        let shift = self.bit_length() - divisor.bit_length();
        let mut remainder = self.clone();
        let mut quotient_bits: Vec<u64> = vec![0; (shift / 64 + 1) as usize];
        let mut current = divisor.shl(shift);
        let mut bit = shift as i64;
        while bit >= 0 {
            if remainder.cmp_mag(&current) != Ordering::Less {
                remainder = remainder.sub(&current);
                quotient_bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
            }
            current = current.shr(1);
            bit -= 1;
        }
        let mut q = BigUint {
            limbs: quotient_bits,
        };
        q.normalize();
        (q, remainder)
    }

    /// Integer square root (floor), via Newton's method.
    pub fn isqrt(&self) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        // Initial guess: 2^(ceil(bits/2)), always an over-estimate.
        let mut x = BigUint::one().shl(self.bit_length().div_ceil(2));
        loop {
            // x' = (x + n / x) / 2
            let (q, _) = self.div_rem(&x);
            let next = x.add(&q).shr(1);
            if next.cmp_mag(&x) != Ordering::Less {
                break;
            }
            x = next;
        }
        // Newton from above lands on floor(sqrt(n)) or one too high; correct it.
        while x.mul(&x).cmp_mag(self) == Ordering::Greater {
            x = x.sub(&BigUint::one());
        }
        // And make sure we are not one too low either.
        loop {
            let next = x.add(&BigUint::one());
            if next.mul(&next).cmp_mag(self) == Ordering::Greater {
                break;
            }
            x = next;
        }
        x
    }

    /// Low 64 bits (lossy for larger values).
    pub fn to_u64_lossy(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// The top `n` bits as a `u64` (with `n <= 64`), i.e. the integer formed by
    /// the most significant `n` bits.
    pub fn top_bits(&self, n: u64) -> u64 {
        debug_assert!(n <= 64);
        let len = self.bit_length();
        if len <= n {
            self.to_u64_padded()
        } else {
            self.shr(len - n).to_u64_padded()
        }
    }

    fn to_u64_padded(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(x: u128) -> BigUint {
        BigUint::from_u128(x)
    }

    #[test]
    fn construction_and_bits() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::zero().bit_length(), 0);
        assert_eq!(BigUint::from_u64(1).bit_length(), 1);
        assert_eq!(BigUint::from_u64(255).bit_length(), 8);
        assert_eq!(big(1u128 << 100).bit_length(), 101);
        assert!(big(1u128 << 100).bit(100));
        assert!(!big(1u128 << 100).bit(99));
    }

    #[test]
    fn add_sub_round_trip() {
        let a = big(0xFFFF_FFFF_FFFF_FFFF_FFFF);
        let b = big(0x1_0000_0000);
        let sum = a.add(&b);
        assert_eq!(sum.sub(&b), a);
        assert_eq!(sum.sub(&a), b);
        assert_eq!(a.add(&BigUint::zero()), a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = BigUint::from_u64(1).sub(&BigUint::from_u64(2));
    }

    #[test]
    fn multiplication() {
        let a = big(u128::from(u64::MAX));
        let b = big(u128::from(u64::MAX));
        let prod = a.mul(&b);
        assert_eq!(prod, big(u128::from(u64::MAX) * u128::from(u64::MAX)));
        assert!(a.mul(&BigUint::zero()).is_zero());
        // (2^100)^2 = 2^200
        let sq = big(1u128 << 100).mul(&big(1u128 << 100));
        assert_eq!(sq.bit_length(), 201);
        assert!(sq.bit(200));
    }

    #[test]
    fn shifts() {
        let a = big(0b1011);
        assert_eq!(a.shl(3), big(0b1011000));
        assert_eq!(a.shl(100).shr(100), a);
        assert_eq!(a.shr(2), big(0b10));
        assert_eq!(a.shr(10), BigUint::zero());
        assert!(a.shl(64).bit(64));
    }

    #[test]
    fn sticky_bits() {
        let a = big(0b101000);
        assert!(!a.any_bit_below(3));
        assert!(a.any_bit_below(4));
        assert!(!BigUint::zero().any_bit_below(64));
    }

    #[test]
    fn division() {
        let a = big(1234567890123456789012345678u128);
        let b = big(97531);
        let (q, r) = a.div_rem(&b);
        assert_eq!(
            q.mul(&b).add(&r),
            a,
            "quotient * divisor + remainder must equal dividend"
        );
        assert!(r.cmp_mag(&b) == Ordering::Less);
        // Exact division
        let (q, r) = big(1u128 << 90).div_rem(&big(1u128 << 30));
        assert_eq!(q, big(1u128 << 60));
        assert!(r.is_zero());
        // Divisor larger than dividend
        let (q, r) = big(5).div_rem(&big(100));
        assert!(q.is_zero());
        assert_eq!(r, big(5));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = big(5).div_rem(&BigUint::zero());
    }

    #[test]
    fn integer_sqrt() {
        for n in [0u128, 1, 2, 3, 4, 15, 16, 17, 1_000_000, 999_999_999_999] {
            let s = big(n).isqrt();
            let s_val = s.to_u64_lossy() as u128;
            assert!(s_val * s_val <= n);
            assert!((s_val + 1) * (s_val + 1) > n, "sqrt({n}) too small");
        }
        // A large perfect square: (2^80 + 3)^2
        let root = big((1u128 << 80) + 3);
        let square = root.mul(&root);
        assert_eq!(square.isqrt(), root);
    }

    #[test]
    fn top_bits() {
        let a = big(0b1101_0000_0000);
        assert_eq!(a.top_bits(4), 0b1101);
        assert_eq!(a.top_bits(2), 0b11);
        assert_eq!(BigUint::from_u64(7).top_bits(10), 7);
    }

    #[test]
    fn comparison() {
        assert_eq!(big(5).cmp_mag(&big(5)), Ordering::Equal);
        assert_eq!(big(4).cmp_mag(&big(5)), Ordering::Less);
        assert_eq!(
            big(1u128 << 70).cmp_mag(&big(u64::MAX as u128)),
            Ordering::Greater
        );
    }
}
