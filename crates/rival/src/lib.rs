//! # rival
//!
//! A reimplementation of the Rival interval-arithmetic approach used by Herbie and
//! Chassis to compute *correctly rounded* ("ground truth") results of real-number
//! expressions at IEEE binary32/binary64.
//!
//! The stack is:
//!
//! * [`BigUint`] — arbitrary-precision unsigned integers (mantissas),
//! * [`BigFloat`] — arbitrary-precision binary floating point with directed
//!   rounding ([`RoundMode`]),
//! * [`functions`] — elementary functions (exp, log, trig, hyperbolic, pow, ...)
//!   accurate to a few ulps at any requested precision,
//! * [`Interval`] — outward-rounded interval arithmetic over big-floats,
//! * [`eval`] — evaluation of [`fpcore`] expressions over intervals with
//!   *precision escalation*: evaluate at increasing precision until the interval
//!   rounds to a single IEEE value (or the point is declared unsamplable).
//!
//! # Example
//!
//! ```
//! use rival::{ground_truth, GroundTruth};
//! use fpcore::{parse_expr, Symbol, FpType};
//!
//! // The true value of sqrt(x+1) - sqrt(x) at x = 1e15, correctly rounded.
//! let expr = parse_expr("(- (sqrt (+ x 1)) (sqrt x))").unwrap();
//! let env = vec![(Symbol::new("x"), 1e15)];
//! match ground_truth(&expr, &env, FpType::Binary64) {
//!     GroundTruth::Value(v) => assert!((v - 1.5811388300841893e-8).abs() < 1e-22),
//!     other => panic!("unexpected result {other:?}"),
//! }
//! ```

pub mod adaptive;
pub mod balance;
pub mod bigfloat;
pub mod bigint;
pub mod eval;
pub mod functions;
pub mod interval;

pub use adaptive::{AdaptiveStats, ExactRow, NodeIndex, PointOutcome};
pub use balance::{balance, balance_if_deep, depth};
pub use bigfloat::{pow2_f64, BigFloat, RoundMode};
pub use bigint::BigUint;
pub use eval::{ground_truth, ground_truth_with, Evaluator, GroundTruth, TruthError};
pub use interval::{BoolInterval, Interval};
