//! Elementary functions on [`BigFloat`]s.
//!
//! Every function takes a target precision `prec` (in bits) and internally works
//! at `prec + GUARD` bits, so the returned value is within a couple of ulps at
//! `prec` of the mathematically exact result. The interval layer widens results
//! by a conservative slop, so these functions do **not** need to be correctly
//! rounded — only accurate to a known, small number of ulps.
//!
//! Algorithms are the classical ones: argument reduction against cached
//! constants (π via Machin's formula, ln 2 via `2·atanh(1/3)`) followed by
//! Taylor / atanh series.

use crate::bigfloat::{BigFloat, RoundMode};
use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

/// Extra working bits used inside every function.
const GUARD: u32 = 32;

fn wp(prec: u32) -> u32 {
    prec + GUARD
}

type ConstCache = Mutex<HashMap<(&'static str, u32), BigFloat>>;

fn cache() -> &'static ConstCache {
    static CACHE: OnceLock<ConstCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn cached(name: &'static str, prec: u32, compute: impl FnOnce(u32) -> BigFloat) -> BigFloat {
    if let Some(v) = cache().lock().expect("constant cache").get(&(name, prec)) {
        return v.clone();
    }
    let value = compute(prec);
    cache()
        .lock()
        .expect("constant cache")
        .insert((name, prec), value.clone());
    value
}

fn add(a: &BigFloat, b: &BigFloat, p: u32) -> BigFloat {
    BigFloat::add(a, b, p, RoundMode::Nearest)
}
fn sub(a: &BigFloat, b: &BigFloat, p: u32) -> BigFloat {
    BigFloat::sub(a, b, p, RoundMode::Nearest)
}
fn mul(a: &BigFloat, b: &BigFloat, p: u32) -> BigFloat {
    BigFloat::mul(a, b, p, RoundMode::Nearest)
}
fn div(a: &BigFloat, b: &BigFloat, p: u32) -> BigFloat {
    BigFloat::div(a, b, p, RoundMode::Nearest)
}
fn int(n: i64) -> BigFloat {
    BigFloat::from_i64(n)
}

/// True when `|x| < 2^threshold_exp` (treats zero as below any threshold).
fn below_magnitude(x: &BigFloat, threshold_exp: i64) -> bool {
    match x.magnitude() {
        None => x.is_zero(),
        Some(m) => m < threshold_exp,
    }
}

/// arctan(1/n) for a small positive integer n, via the Taylor series.
fn atan_recip(n: i64, prec: u32) -> BigFloat {
    let p = wp(prec);
    let x = div(&int(1), &int(n), p);
    let x2 = mul(&x, &x, p);
    let mut term = x.clone();
    let mut sum = x.clone();
    let mut k: i64 = 1;
    loop {
        term = mul(&term, &x2, p);
        let contrib = div(&term, &int(2 * k + 1), p);
        if below_magnitude(&contrib, sum.magnitude().unwrap_or(0) - p as i64 - 2) {
            break;
        }
        sum = if k % 2 == 1 {
            sub(&sum, &contrib, p)
        } else {
            add(&sum, &contrib, p)
        };
        k += 1;
    }
    sum.round_to(prec, RoundMode::Nearest)
}

/// π to `prec` bits (Machin: π = 16·atan(1/5) − 4·atan(1/239)).
pub fn pi(prec: u32) -> BigFloat {
    cached("pi", prec, |prec| {
        let p = wp(prec) + 8;
        let a = atan_recip(5, p);
        let b = atan_recip(239, p);
        let sixteen_a = mul(&a, &int(16), p);
        let four_b = mul(&b, &int(4), p);
        sub(&sixteen_a, &four_b, p).round_to(prec, RoundMode::Nearest)
    })
}

/// ln 2 to `prec` bits (`2·atanh(1/3)`).
pub fn ln2(prec: u32) -> BigFloat {
    cached("ln2", prec, |prec| {
        let p = wp(prec) + 8;
        let third = div(&int(1), &int(3), p);
        mul(&atanh_series(&third, p), &int(2), p).round_to(prec, RoundMode::Nearest)
    })
}

/// ln 10 to `prec` bits.
pub fn ln10(prec: u32) -> BigFloat {
    cached("ln10", prec, |prec| {
        log(&int(10), wp(prec) + 8).round_to(prec, RoundMode::Nearest)
    })
}

/// Euler's number e to `prec` bits.
pub fn euler(prec: u32) -> BigFloat {
    cached("e", prec, |prec| {
        exp(&int(1), wp(prec) + 8).round_to(prec, RoundMode::Nearest)
    })
}

/// atanh via its Taylor series; requires `|x| < 1/2` for fast convergence.
fn atanh_series(x: &BigFloat, p: u32) -> BigFloat {
    let x2 = mul(x, x, p);
    let mut term = x.clone();
    let mut sum = x.clone();
    let mut k: i64 = 1;
    loop {
        term = mul(&term, &x2, p);
        let contrib = div(&term, &int(2 * k + 1), p);
        if contrib.is_zero()
            || below_magnitude(&contrib, sum.magnitude().unwrap_or(0) - p as i64 - 2)
        {
            break;
        }
        sum = add(&sum, &contrib, p);
        k += 1;
    }
    sum
}

/// e^x.
pub fn exp(x: &BigFloat, prec: u32) -> BigFloat {
    match x {
        BigFloat::NaN => return BigFloat::NaN,
        BigFloat::Inf { negative: true } => return BigFloat::zero(),
        BigFloat::Inf { negative: false } => return BigFloat::infinity(false),
        BigFloat::Zero { .. } => return int(1),
        _ => {}
    }
    // Values with |x| >= 2^62 overflow/underflow every representation we target.
    if let Some(m) = x.magnitude() {
        if m >= 62 {
            return if x.is_negative() {
                BigFloat::zero()
            } else {
                BigFloat::infinity(false)
            };
        }
    }
    let p = wp(prec) + 16;
    let l2 = ln2(p);
    // n = round(x / ln2); |r| <= ln2/2.
    let n_f = div(x, &l2, p).round_int();
    let n = bigfloat_to_i64(&n_f);
    let r = sub(x, &mul(&n_f, &l2, p), p);
    // Taylor series for exp(r).
    let mut term = int(1);
    let mut sum = int(1);
    let mut k: i64 = 1;
    loop {
        term = div(&mul(&term, &r, p), &int(k), p);
        if term.is_zero() || below_magnitude(&term, -(p as i64) - 2) {
            break;
        }
        sum = add(&sum, &term, p);
        k += 1;
        if k > 10_000 {
            break;
        }
    }
    mul_pow2(&sum, n).round_to(prec, RoundMode::Nearest)
}

/// exp(x) − 1, accurate near zero.
pub fn expm1(x: &BigFloat, prec: u32) -> BigFloat {
    match x {
        BigFloat::NaN => return BigFloat::NaN,
        BigFloat::Inf { negative: true } => return int(-1),
        BigFloat::Inf { negative: false } => return BigFloat::infinity(false),
        BigFloat::Zero { negative } => {
            return BigFloat::Zero {
                negative: *negative,
            }
        }
        _ => {}
    }
    let p = wp(prec) + 8;
    if below_magnitude(x, -1) {
        // |x| < 1/2: Taylor series starting at the linear term (no cancellation).
        let mut term = int(1);
        let mut sum = BigFloat::zero();
        let mut k: i64 = 1;
        loop {
            term = div(&mul(&term, x, p), &int(k), p);
            if term.is_zero() || below_magnitude(&term, x.magnitude().unwrap_or(0) - p as i64 - 2) {
                break;
            }
            sum = add(&sum, &term, p);
            k += 1;
            if k > 10_000 {
                break;
            }
        }
        sum.round_to(prec, RoundMode::Nearest)
    } else {
        sub(&exp(x, p), &int(1), p).round_to(prec, RoundMode::Nearest)
    }
}

/// Natural logarithm. `log(0) = -∞`, `log(x<0) = NaN`.
pub fn log(x: &BigFloat, prec: u32) -> BigFloat {
    match x {
        BigFloat::NaN => return BigFloat::NaN,
        BigFloat::Zero { .. } => return BigFloat::infinity(true),
        BigFloat::Inf { negative: false } => return BigFloat::infinity(false),
        BigFloat::Inf { negative: true } => return BigFloat::NaN,
        BigFloat::Finite { negative: true, .. } => return BigFloat::NaN,
        _ => {}
    }
    let p = wp(prec) + 8;
    let k = x.magnitude().expect("finite nonzero");
    // m = x / 2^k is in [1, 2).
    let m = mul_pow2(x, -k);
    // ln m = 2 atanh((m-1)/(m+1)), argument in [0, 1/3].
    let t = div(&sub(&m, &int(1), p), &add(&m, &int(1), p), p);
    let ln_m = mul(&atanh_series(&t, p), &int(2), p);
    let k_ln2 = mul(&int(k), &ln2(p), p);
    add(&k_ln2, &ln_m, p).round_to(prec, RoundMode::Nearest)
}

/// log(1 + x), accurate near zero. `log1p(-1) = -∞`, NaN below −1.
pub fn log1p(x: &BigFloat, prec: u32) -> BigFloat {
    match x {
        BigFloat::NaN => return BigFloat::NaN,
        BigFloat::Inf { negative: false } => return BigFloat::infinity(false),
        BigFloat::Inf { negative: true } => return BigFloat::NaN,
        BigFloat::Zero { negative } => {
            return BigFloat::Zero {
                negative: *negative,
            }
        }
        _ => {}
    }
    let p = wp(prec) + 8;
    let minus_one = int(-1);
    match x.partial_cmp(&minus_one) {
        Some(std::cmp::Ordering::Less) => return BigFloat::NaN,
        Some(std::cmp::Ordering::Equal) => return BigFloat::infinity(true),
        _ => {}
    }
    if below_magnitude(x, -1) {
        // log1p(x) = 2 atanh(x / (x + 2)), argument magnitude < 1/3.
        let t = div(x, &add(x, &int(2), p), p);
        mul(&atanh_series(&t, p), &int(2), p).round_to(prec, RoundMode::Nearest)
    } else {
        log(&add(&int(1), x, p), p).round_to(prec, RoundMode::Nearest)
    }
}

/// Base-2 logarithm.
pub fn log2(x: &BigFloat, prec: u32) -> BigFloat {
    let p = wp(prec) + 8;
    div(&log(x, p), &ln2(p), p).round_to(prec, RoundMode::Nearest)
}

/// Base-10 logarithm.
pub fn log10(x: &BigFloat, prec: u32) -> BigFloat {
    let p = wp(prec) + 8;
    div(&log(x, p), &ln10(p), p).round_to(prec, RoundMode::Nearest)
}

/// 2^x.
pub fn exp2(x: &BigFloat, prec: u32) -> BigFloat {
    let p = wp(prec) + 8;
    exp(&mul(x, &ln2(p), p), p).round_to(prec, RoundMode::Nearest)
}

/// Multiplies a big-float by 2^k exactly.
pub fn mul_pow2(x: &BigFloat, k: i64) -> BigFloat {
    match x {
        BigFloat::Finite {
            negative,
            exp,
            mant,
        } => BigFloat::Finite {
            negative: *negative,
            exp: exp + k,
            mant: mant.clone(),
        },
        other => other.clone(),
    }
}

fn bigfloat_to_i64(x: &BigFloat) -> i64 {
    // Used only for exponents and quadrant counts, which fit comfortably.
    let v = x.to_f64(RoundMode::Nearest);
    if v.is_nan() {
        0
    } else {
        v.clamp(i64::MIN as f64, i64::MAX as f64) as i64
    }
}

/// Splits sin/cos evaluation: returns (sin x, cos x).
pub fn sin_cos(x: &BigFloat, prec: u32) -> (BigFloat, BigFloat) {
    match x {
        BigFloat::NaN | BigFloat::Inf { .. } => return (BigFloat::NaN, BigFloat::NaN),
        BigFloat::Zero { negative } => {
            return (
                BigFloat::Zero {
                    negative: *negative,
                },
                int(1),
            )
        }
        _ => {}
    }
    let mag = x.magnitude().unwrap_or(0).max(0);
    // Argument reduction needs ~mag extra bits of π. Give up on astronomically
    // large arguments (the interval layer maps this to an unsamplable point).
    if mag > 4096 {
        return (BigFloat::NaN, BigFloat::NaN);
    }
    let p = wp(prec) + 16 + mag as u32;
    let pi_p = pi(p);
    let half_pi = mul_pow2(&pi_p, -1);
    // q = round(x / (π/2)); r = x − q·(π/2), |r| ≤ π/4 (+ rounding slop).
    let q = div(x, &half_pi, p).round_int();
    let r = sub(x, &mul(&q, &half_pi, p), p);
    let quadrant = mod4(&q);
    let (s, c) = sin_cos_taylor(&r, p);
    let out = match quadrant {
        0 => (s, c),
        1 => (c, s.neg()),
        2 => (s.neg(), c.neg()),
        3 => (c.neg(), s),
        _ => unreachable!(),
    };
    (
        out.0.round_to(prec, RoundMode::Nearest),
        out.1.round_to(prec, RoundMode::Nearest),
    )
}

fn mod4(q: &BigFloat) -> u8 {
    // q is an exact integer big-float; compute q mod 4 (non-negative result).
    let v = match q {
        BigFloat::Zero { .. } => 0i64,
        BigFloat::Finite {
            negative,
            exp,
            mant,
        } => {
            let low2 = if *exp >= 2 {
                0u64
            } else if *exp >= 0 {
                (mant.to_u64_lossy() << exp) & 3
            } else {
                (mant.shr((-exp) as u64).to_u64_lossy()) & 3
            };
            if *negative {
                -(low2 as i64)
            } else {
                low2 as i64
            }
        }
        _ => 0,
    };
    (v.rem_euclid(4)) as u8
}

fn sin_cos_taylor(r: &BigFloat, p: u32) -> (BigFloat, BigFloat) {
    // sin r = r - r³/3! + r⁵/5! - ...     cos r = 1 - r²/2! + r⁴/4! - ...
    let r2 = mul(r, r, p);
    let mut sin_sum = r.clone();
    let mut term = r.clone();
    let mut k: i64 = 1;
    loop {
        term = div(&mul(&term, &r2, p), &int((2 * k) * (2 * k + 1)), p);
        if term.is_zero() || below_magnitude(&term, -(p as i64) - 2) {
            break;
        }
        sin_sum = if k % 2 == 1 {
            sub(&sin_sum, &term, p)
        } else {
            add(&sin_sum, &term, p)
        };
        k += 1;
        if k > 10_000 {
            break;
        }
    }
    let mut cos_sum = int(1);
    let mut term = int(1);
    let mut k: i64 = 1;
    loop {
        term = div(&mul(&term, &r2, p), &int((2 * k - 1) * (2 * k)), p);
        if term.is_zero() || below_magnitude(&term, -(p as i64) - 2) {
            break;
        }
        cos_sum = if k % 2 == 1 {
            sub(&cos_sum, &term, p)
        } else {
            add(&cos_sum, &term, p)
        };
        k += 1;
        if k > 10_000 {
            break;
        }
    }
    (sin_sum, cos_sum)
}

/// sin x.
pub fn sin(x: &BigFloat, prec: u32) -> BigFloat {
    sin_cos(x, prec).0
}

/// cos x.
pub fn cos(x: &BigFloat, prec: u32) -> BigFloat {
    sin_cos(x, prec).1
}

/// tan x.
pub fn tan(x: &BigFloat, prec: u32) -> BigFloat {
    let p = wp(prec) + 8;
    let (s, c) = sin_cos(x, p);
    div(&s, &c, p).round_to(prec, RoundMode::Nearest)
}

/// arctan x.
pub fn atan(x: &BigFloat, prec: u32) -> BigFloat {
    match x {
        BigFloat::NaN => return BigFloat::NaN,
        BigFloat::Inf { negative } => {
            let half_pi = mul_pow2(&pi(prec + 8), -1).round_to(prec, RoundMode::Nearest);
            return if *negative { half_pi.neg() } else { half_pi };
        }
        BigFloat::Zero { negative } => {
            return BigFloat::Zero {
                negative: *negative,
            }
        }
        _ => {}
    }
    let p = wp(prec) + 8;
    let one = int(1);
    let ax = x.abs();
    // For |x| > 1 use atan(x) = π/2 − atan(1/x).
    if ax.partial_cmp(&one) == Some(std::cmp::Ordering::Greater) {
        let inner = atan(&div(&one, &ax, p), p);
        let half_pi = mul_pow2(&pi(p), -1);
        let result = sub(&half_pi, &inner, p);
        let signed = if x.is_negative() {
            result.neg()
        } else {
            result
        };
        return signed.round_to(prec, RoundMode::Nearest);
    }
    // Halve the argument until it is small: atan(x) = 2·atan(x / (1 + √(1+x²))).
    let mut halvings = 0;
    let mut y = ax.clone();
    while !below_magnitude(&y, -3) && halvings < 6 {
        let y2 = mul(&y, &y, p);
        let denom = add(
            &one,
            &BigFloat::sqrt(&add(&one, &y2, p), p, RoundMode::Nearest),
            p,
        );
        y = div(&y, &denom, p);
        halvings += 1;
    }
    // Taylor series.
    let y2 = mul(&y, &y, p);
    let mut term = y.clone();
    let mut sum = y.clone();
    let mut k: i64 = 1;
    loop {
        term = mul(&term, &y2, p);
        let contrib = div(&term, &int(2 * k + 1), p);
        if contrib.is_zero()
            || below_magnitude(&contrib, sum.magnitude().unwrap_or(0) - p as i64 - 2)
        {
            break;
        }
        sum = if k % 2 == 1 {
            sub(&sum, &contrib, p)
        } else {
            add(&sum, &contrib, p)
        };
        k += 1;
        if k > 10_000 {
            break;
        }
    }
    let mut result = sum;
    for _ in 0..halvings {
        result = mul_pow2(&result, 1);
    }
    let signed = if x.is_negative() {
        result.neg()
    } else {
        result
    };
    signed.round_to(prec, RoundMode::Nearest)
}

/// arcsin x (NaN outside [−1, 1]).
pub fn asin(x: &BigFloat, prec: u32) -> BigFloat {
    if x.is_nan() {
        return BigFloat::NaN;
    }
    let p = wp(prec) + 8;
    let one = int(1);
    let ax = x.abs();
    match ax.partial_cmp(&one) {
        Some(std::cmp::Ordering::Greater) | None => BigFloat::NaN,
        Some(std::cmp::Ordering::Equal) => {
            let half_pi = mul_pow2(&pi(p), -1).round_to(prec, RoundMode::Nearest);
            if x.is_negative() {
                half_pi.neg()
            } else {
                half_pi
            }
        }
        Some(_) => {
            // asin(x) = atan(x / sqrt(1 - x²)); 1 − x² via (1−x)(1+x) to limit
            // cancellation near ±1.
            let one_minus = sub(&one, x, p);
            let one_plus = add(&one, x, p);
            let denom = BigFloat::sqrt(&mul(&one_minus, &one_plus, p), p, RoundMode::Nearest);
            atan(&div(x, &denom, p), p).round_to(prec, RoundMode::Nearest)
        }
    }
}

/// arccos x (NaN outside [−1, 1]).
pub fn acos(x: &BigFloat, prec: u32) -> BigFloat {
    if x.is_nan() {
        return BigFloat::NaN;
    }
    let p = wp(prec) + 8;
    let a = asin(x, p);
    if a.is_nan() {
        return BigFloat::NaN;
    }
    sub(&mul_pow2(&pi(p), -1), &a, p).round_to(prec, RoundMode::Nearest)
}

/// atan2(y, x): the angle of the point (x, y).
pub fn atan2(y: &BigFloat, x: &BigFloat, prec: u32) -> BigFloat {
    if y.is_nan() || x.is_nan() {
        return BigFloat::NaN;
    }
    let p = wp(prec) + 8;
    if x.is_zero() && y.is_zero() {
        return BigFloat::zero();
    }
    if x.is_zero() {
        let half_pi = mul_pow2(&pi(p), -1);
        return if y.is_negative() {
            half_pi.neg().round_to(prec, RoundMode::Nearest)
        } else {
            half_pi.round_to(prec, RoundMode::Nearest)
        };
    }
    let base = atan(&div(y, x, p), p);
    let result = if !x.is_negative() {
        base
    } else if !y.is_negative() {
        add(&base, &pi(p), p)
    } else {
        sub(&base, &pi(p), p)
    };
    result.round_to(prec, RoundMode::Nearest)
}

/// sinh x.
pub fn sinh(x: &BigFloat, prec: u32) -> BigFloat {
    if x.is_nan() {
        return BigFloat::NaN;
    }
    if x.is_infinite() {
        return x.clone();
    }
    let p = wp(prec) + 8;
    // (expm1(x) − expm1(−x)) / 2 avoids cancellation for small x.
    let a = expm1(x, p);
    let b = expm1(&x.neg(), p);
    mul_pow2(&sub(&a, &b, p), -1).round_to(prec, RoundMode::Nearest)
}

/// cosh x.
pub fn cosh(x: &BigFloat, prec: u32) -> BigFloat {
    if x.is_nan() {
        return BigFloat::NaN;
    }
    if x.is_infinite() {
        return BigFloat::infinity(false);
    }
    let p = wp(prec) + 8;
    let a = exp(x, p);
    let b = exp(&x.neg(), p);
    mul_pow2(&add(&a, &b, p), -1).round_to(prec, RoundMode::Nearest)
}

/// tanh x.
pub fn tanh(x: &BigFloat, prec: u32) -> BigFloat {
    if x.is_nan() {
        return BigFloat::NaN;
    }
    if x.is_infinite() {
        return if x.is_negative() { int(-1) } else { int(1) };
    }
    if x.is_zero() {
        return x.clone();
    }
    let p = wp(prec) + 8;
    // tanh(x) = expm1(2x) / (expm1(2x) + 2), accurate for small |x|.
    let e = expm1(&mul_pow2(x, 1), p);
    if e.is_infinite() {
        return int(1).round_to(prec, RoundMode::Nearest);
    }
    div(&e, &add(&e, &int(2), p), p).round_to(prec, RoundMode::Nearest)
}

/// asinh x.
pub fn asinh(x: &BigFloat, prec: u32) -> BigFloat {
    if x.is_nan() || x.is_infinite() || x.is_zero() {
        return x.clone();
    }
    let p = wp(prec) + 8;
    let one = int(1);
    let ax = x.abs();
    let result = if ax.partial_cmp(&one) == Some(std::cmp::Ordering::Greater) {
        // log(|x| + sqrt(x² + 1))
        let inner = add(
            &ax,
            &BigFloat::sqrt(&add(&mul(&ax, &ax, p), &one, p), p, RoundMode::Nearest),
            p,
        );
        log(&inner, p)
    } else {
        // log1p(|x| + x² / (1 + sqrt(1 + x²))) — stable near zero.
        let x2 = mul(&ax, &ax, p);
        let denom = add(
            &one,
            &BigFloat::sqrt(&add(&one, &x2, p), p, RoundMode::Nearest),
            p,
        );
        log1p(&add(&ax, &div(&x2, &denom, p), p), p)
    };
    let signed = if x.is_negative() {
        result.neg()
    } else {
        result
    };
    signed.round_to(prec, RoundMode::Nearest)
}

/// acosh x (NaN below 1).
pub fn acosh(x: &BigFloat, prec: u32) -> BigFloat {
    if x.is_nan() {
        return BigFloat::NaN;
    }
    let p = wp(prec) + 8;
    let one = int(1);
    match x.partial_cmp(&one) {
        Some(std::cmp::Ordering::Less) | None => BigFloat::NaN,
        Some(std::cmp::Ordering::Equal) => BigFloat::zero(),
        Some(std::cmp::Ordering::Greater) => {
            if x.is_infinite() {
                return BigFloat::infinity(false);
            }
            // log(x + sqrt((x−1)(x+1)))
            let xm1 = sub(x, &one, p);
            let xp1 = add(x, &one, p);
            let root = BigFloat::sqrt(&mul(&xm1, &xp1, p), p, RoundMode::Nearest);
            log(&add(x, &root, p), p).round_to(prec, RoundMode::Nearest)
        }
    }
}

/// atanh x (±∞ at ±1, NaN outside [−1, 1]).
pub fn atanh(x: &BigFloat, prec: u32) -> BigFloat {
    if x.is_nan() {
        return BigFloat::NaN;
    }
    let p = wp(prec) + 8;
    let one = int(1);
    let ax = x.abs();
    match ax.partial_cmp(&one) {
        Some(std::cmp::Ordering::Greater) | None => BigFloat::NaN,
        Some(std::cmp::Ordering::Equal) => BigFloat::infinity(x.is_negative()),
        Some(_) => {
            // atanh(x) = (log1p(x) − log1p(−x)) / 2
            let a = log1p(x, p);
            let b = log1p(&x.neg(), p);
            mul_pow2(&sub(&a, &b, p), -1).round_to(prec, RoundMode::Nearest)
        }
    }
}

/// x^y over the reals (NaN for negative base with non-integer exponent).
pub fn pow(x: &BigFloat, y: &BigFloat, prec: u32) -> BigFloat {
    if x.is_nan() || y.is_nan() {
        return BigFloat::NaN;
    }
    let p = wp(prec) + 8;
    if y.is_zero() {
        return int(1);
    }
    if x.is_zero() {
        return if y.is_negative() {
            BigFloat::infinity(false)
        } else {
            BigFloat::zero()
        };
    }
    if !x.is_negative() {
        // exp(y · log x); add guard bits proportional to the magnitude of y·log x.
        let lx = log(x, p + 32);
        let extra = y
            .magnitude()
            .unwrap_or(0)
            .saturating_add(lx.magnitude().unwrap_or(0))
            .clamp(0, 256) as u32;
        let pp = p + extra;
        let lx = log(x, pp);
        return exp(&mul(y, &lx, pp), pp).round_to(prec, RoundMode::Nearest);
    }
    // Negative base: only integer exponents are defined over the reals.
    if y.is_integer() && !y.is_infinite() {
        let odd = {
            let half = mul_pow2(y, -1);
            !half.is_integer()
        };
        let mag = pow(&x.abs(), y, p);
        return if odd { mag.neg() } else { mag }.round_to(prec, RoundMode::Nearest);
    }
    BigFloat::NaN
}

/// Cube root (defined for negative inputs).
pub fn cbrt(x: &BigFloat, prec: u32) -> BigFloat {
    if x.is_nan() || x.is_zero() || x.is_infinite() {
        return x.clone();
    }
    let p = wp(prec) + 8;
    let third = div(&int(1), &int(3), p);
    let mag = exp(&mul(&log(&x.abs(), p), &third, p), p);
    let signed = if x.is_negative() { mag.neg() } else { mag };
    signed.round_to(prec, RoundMode::Nearest)
}

/// sqrt(x² + y²) without intermediate overflow concerns (big-float exponents are
/// effectively unbounded).
pub fn hypot(x: &BigFloat, y: &BigFloat, prec: u32) -> BigFloat {
    if x.is_nan() || y.is_nan() {
        return BigFloat::NaN;
    }
    let p = wp(prec) + 8;
    let sum = add(&mul(x, x, p), &mul(y, y, p), p);
    BigFloat::sqrt(&sum, p, RoundMode::Nearest).round_to(prec, RoundMode::Nearest)
}

/// Floating-point remainder with the sign of the dividend (C `fmod`).
pub fn fmod(x: &BigFloat, y: &BigFloat, prec: u32) -> BigFloat {
    if x.is_nan() || y.is_nan() || x.is_infinite() || y.is_zero() {
        return BigFloat::NaN;
    }
    if y.is_infinite() || x.is_zero() {
        return x.clone();
    }
    let mag_gap = x
        .magnitude()
        .unwrap_or(0)
        .saturating_sub(y.magnitude().unwrap_or(0));
    if mag_gap > 1 << 16 {
        // The quotient would need more bits than we are willing to compute.
        return BigFloat::NaN;
    }
    let p = wp(prec) + 16 + mag_gap.max(0) as u32;
    let q = div(x, y, p).trunc();
    sub(x, &mul(&q, y, p), p).round_to(prec, RoundMode::Nearest)
}

/// Fused multiply-add computed exactly before the final rounding.
pub fn fma(a: &BigFloat, b: &BigFloat, c: &BigFloat, prec: u32) -> BigFloat {
    let p_exact = 1 << 20; // effectively exact for the product
    let prod = BigFloat::mul(a, b, p_exact, RoundMode::Nearest);
    BigFloat::add(&prod, c, wp(prec), RoundMode::Nearest).round_to(prec, RoundMode::Nearest)
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u32 = 96;

    fn bf(x: f64) -> BigFloat {
        BigFloat::from_f64(x)
    }

    fn close(actual: &BigFloat, expected: f64, label: &str) {
        let got = actual.to_f64(RoundMode::Nearest);
        if expected.is_nan() {
            assert!(got.is_nan(), "{label}: expected NaN, got {got}");
            return;
        }
        if expected.is_infinite() {
            assert_eq!(got, expected, "{label}");
            return;
        }
        let ulps = ((got.to_bits() as i64) - (expected.to_bits() as i64)).unsigned_abs();
        // The reference here is the *host* libm, which itself may be several ulps
        // off for some functions; our implementations are compared against it only
        // as a sanity check, so allow a small shared budget.
        assert!(
            ulps <= 8,
            "{label}: got {got:e}, expected {expected:e} ({ulps} ulps apart)"
        );
    }

    #[test]
    fn constants() {
        close(&pi(P), std::f64::consts::PI, "pi");
        close(&ln2(P), std::f64::consts::LN_2, "ln2");
        close(&euler(P), std::f64::consts::E, "e");
        close(&ln10(P), std::f64::consts::LN_10, "ln10");
        // Higher precision must refine, not change, the value.
        let lo = pi(64).to_f64(RoundMode::Nearest);
        let hi = pi(512).to_f64(RoundMode::Nearest);
        assert_eq!(lo, hi);
    }

    #[test]
    fn exponential_family() {
        for x in [-20.0, -1.0, -1e-8, 0.0, 1e-12, 0.5, 1.0, 10.0, 300.0] {
            close(&exp(&bf(x), P), x.exp(), &format!("exp({x})"));
            close(&expm1(&bf(x), P), x.exp_m1(), &format!("expm1({x})"));
        }
        close(&exp(&bf(f64::NEG_INFINITY), P), 0.0, "exp(-inf)");
        close(&exp(&bf(800.0), P), f64::INFINITY, "exp(800) overflows f64");
        close(&exp2(&bf(10.0), P), 1024.0, "exp2(10)");
    }

    #[test]
    fn logarithm_family() {
        for x in [1e-300, 0.1, 0.5, 1.0, 2.0, 3.5, 1e10, 1e300] {
            close(&log(&bf(x), P), x.ln(), &format!("log({x})"));
            close(&log2(&bf(x), P), x.log2(), &format!("log2({x})"));
            close(&log10(&bf(x), P), x.log10(), &format!("log10({x})"));
        }
        for x in [-0.5, -1e-12, 1e-15, 0.5, 3.0] {
            close(&log1p(&bf(x), P), x.ln_1p(), &format!("log1p({x})"));
        }
        assert!(log(&bf(-1.0), P).is_nan());
        assert_eq!(
            log(&bf(0.0), P).to_f64(RoundMode::Nearest),
            f64::NEG_INFINITY
        );
        assert!(log1p(&bf(-2.0), P).is_nan());
    }

    #[test]
    fn trigonometric_family() {
        for x in [-10.0, -1.0, -1e-9, 0.0, 0.3, 1.0, 2.5, 100.0, 1e6] {
            close(&sin(&bf(x), P), x.sin(), &format!("sin({x})"));
            close(&cos(&bf(x), P), x.cos(), &format!("cos({x})"));
            close(&tan(&bf(x), P), x.tan(), &format!("tan({x})"));
        }
        assert!(sin(&bf(f64::INFINITY), P).is_nan());
    }

    #[test]
    fn inverse_trigonometric_family() {
        for x in [-0.99, -0.5, -1e-10, 0.0, 0.25, 0.7, 0.99] {
            close(&asin(&bf(x), P), x.asin(), &format!("asin({x})"));
            close(&acos(&bf(x), P), x.acos(), &format!("acos({x})"));
        }
        for x in [-1e6, -3.0, -1.0, -1e-10, 0.0, 0.5, 2.0, 1e10] {
            close(&atan(&bf(x), P), x.atan(), &format!("atan({x})"));
        }
        assert!(asin(&bf(1.5), P).is_nan());
        close(&asin(&bf(1.0), P), std::f64::consts::FRAC_PI_2, "asin(1)");
        for (y, x) in [
            (1.0, 1.0),
            (1.0, -1.0),
            (-1.0, -1.0),
            (-2.0, 0.5),
            (0.0, 1.0),
            (3.0, 0.0),
        ] {
            close(
                &atan2(&bf(y), &bf(x), P),
                y.atan2(x),
                &format!("atan2({y},{x})"),
            );
        }
    }

    #[test]
    fn hyperbolic_family() {
        for x in [-5.0, -1.0, -1e-9, 0.0, 1e-12, 0.5, 3.0, 20.0] {
            close(&sinh(&bf(x), P), x.sinh(), &format!("sinh({x})"));
            close(&cosh(&bf(x), P), x.cosh(), &format!("cosh({x})"));
            close(&tanh(&bf(x), P), x.tanh(), &format!("tanh({x})"));
            close(&asinh(&bf(x), P), x.asinh(), &format!("asinh({x})"));
        }
        for x in [1.0, 1.5, 10.0, 1e8] {
            close(&acosh(&bf(x), P), x.acosh(), &format!("acosh({x})"));
        }
        for x in [-0.99, -0.5, 0.0, 0.3, 0.99] {
            close(&atanh(&bf(x), P), x.atanh(), &format!("atanh({x})"));
        }
        assert!(acosh(&bf(0.5), P).is_nan());
        assert_eq!(atanh(&bf(1.0), P).to_f64(RoundMode::Nearest), f64::INFINITY);
    }

    #[test]
    fn power_family() {
        for (x, y) in [
            (2.0, 10.0),
            (2.0, -3.0),
            (0.5, 0.5),
            (10.0, 0.1),
            (1.5, 300.0),
            (-2.0, 3.0),
            (-2.0, 4.0),
        ] {
            close(&pow(&bf(x), &bf(y), P), x.powf(y), &format!("pow({x},{y})"));
        }
        assert!(pow(&bf(-2.0), &bf(0.5), P).is_nan());
        close(&pow(&bf(0.0), &bf(0.0), P), 1.0, "0^0");
        for x in [-27.0, -0.001, 0.0, 8.0, 1e30] {
            close(&cbrt(&bf(x), P), x.cbrt(), &format!("cbrt({x})"));
        }
    }

    #[test]
    fn misc_functions() {
        for (x, y) in [(3.0, 4.0), (1e200, 1e200), (-5.0, 12.0), (0.0, 0.0)] {
            close(
                &hypot(&bf(x), &bf(y), P),
                x.hypot(y),
                &format!("hypot({x},{y})"),
            );
        }
        for (x, y) in [(7.5, 2.0), (-7.5, 2.0), (1e10, 3.0), (5.0, 0.7)] {
            close(&fmod(&bf(x), &bf(y), P), x % y, &format!("fmod({x},{y})"));
        }
        for (a, b, c) in [(2.0, 3.0, 4.0), (1e8, 1e8, -1e16), (0.1, 0.2, 0.3)] {
            close(
                &fma(&bf(a), &bf(b), &bf(c), P),
                a.mul_add(b, c),
                &format!("fma({a},{b},{c})"),
            );
        }
    }
}
