//! Ground-truth evaluation of real expressions by precision escalation.
//!
//! Given an FPCore expression and exact floating-point inputs, the evaluator
//! computes an interval enclosure of the true real value at increasing working
//! precisions until the enclosure rounds to a single value of the target format
//! (binary32 or binary64). This mirrors the Rival library used by Herbie and
//! Chassis: the returned value is the *correctly rounded* result, which is the
//! reference every accuracy measurement in the compiler compares against.

use crate::bigfloat::{BigFloat, RoundMode};
use crate::functions as fun;
use crate::interval::{BoolInterval, Interval, IntervalError};
use fpcore::{Constant, Expr, FpType, RealOp, Symbol};
use std::collections::HashMap;

/// The result of ground-truth evaluation at a point.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum GroundTruth {
    /// The correctly rounded value in the target format (widened to `f64` for
    /// binary32 targets).
    Value(f64),
    /// The true result is a domain error (NaN under the paper's semantics).
    Nan,
    /// The evaluator could not decide the rounding even at its highest precision
    /// (the point is discarded from sampling, as in Herbie).
    Unsamplable,
}

impl GroundTruth {
    /// The numeric value, treating NaN results as `f64::NAN` and unsamplable
    /// points as `None`.
    pub fn value(&self) -> Option<f64> {
        match self {
            GroundTruth::Value(v) => Some(*v),
            GroundTruth::Nan => Some(f64::NAN),
            GroundTruth::Unsamplable => None,
        }
    }
}

/// Ground truth failed as a *whole* — not one discarded point, but a sweep
/// whose every attempt ended [`GroundTruth::Unsamplable`]. Following the Reval
/// paper, non-convergence is a first-class outcome of precision escalation
/// (the ladder topped out, it did not crash); this type is how callers report
/// it as a typed, recoverable error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TruthError {
    /// The precision ladder reached its highest rung without the enclosure
    /// rounding to a single value, at every point attempted.
    NonConverged {
        /// How many points failed to converge.
        points: usize,
        /// The top rung of the ladder (bits of working precision).
        max_precision: u32,
    },
}

impl std::fmt::Display for TruthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TruthError::NonConverged {
                points,
                max_precision,
            } => write!(
                f,
                "ground truth did not converge at {points} point(s) \
                 (precision ladder tops out at {max_precision} bits)"
            ),
        }
    }
}

impl std::error::Error for TruthError {}

/// Intermediate evaluation failures at a fixed precision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum EvalError {
    /// Definitely a NaN regardless of precision.
    Domain,
    /// Needs more precision (or is genuinely unbounded).
    Unbounded,
}

impl From<IntervalError> for EvalError {
    fn from(e: IntervalError) -> EvalError {
        match e {
            IntervalError::Domain => EvalError::Domain,
            IntervalError::Unbounded => EvalError::Unbounded,
        }
    }
}

/// A reusable ground-truth evaluator with a configurable precision ladder.
#[derive(Clone, Debug)]
pub struct Evaluator {
    precisions: Vec<u32>,
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator {
            precisions: vec![96, 192, 384, 768, 1536],
        }
    }
}

impl Evaluator {
    /// An evaluator with the default precision ladder (96 up to 1536 bits).
    pub fn new() -> Evaluator {
        Evaluator::default()
    }

    /// An evaluator with a custom precision ladder.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty.
    pub fn with_precisions(precisions: Vec<u32>) -> Evaluator {
        assert!(!precisions.is_empty(), "precision ladder cannot be empty");
        Evaluator { precisions }
    }

    /// Computes the correctly rounded value of `expr` at the given point.
    pub fn eval(&self, expr: &Expr, env: &[(Symbol, f64)], ty: FpType) -> GroundTruth {
        // Chaos harness: an armed abort forces the ladder's own
        // non-convergence outcome without running it.
        if fault::point("rival.eval") {
            return GroundTruth::Unsamplable;
        }
        let env: HashMap<Symbol, Interval> = env
            .iter()
            .map(|(s, v)| (*s, Interval::point_f64(*v)))
            .collect();
        for &prec in &self.precisions {
            match eval_interval(expr, &env, prec) {
                Err(EvalError::Domain) => return GroundTruth::Nan,
                Err(EvalError::Unbounded) => continue,
                Ok(interval) => {
                    if interval.has_nan() {
                        continue;
                    }
                    let (lo, hi) = round_to_type(&interval, ty);
                    // Numeric equality (rather than bit equality) so that an
                    // enclosure collapsing to [−0.0, +0.0] counts as decided.
                    if lo == hi {
                        return GroundTruth::Value(lo);
                    }
                    // Not yet decided; escalate precision.
                }
            }
        }
        GroundTruth::Unsamplable
    }

    /// Evaluates a boolean expression (e.g. a precondition) at a point, returning
    /// `None` when the truth value cannot be decided.
    pub fn eval_bool(&self, expr: &Expr, env: &[(Symbol, f64)]) -> Option<bool> {
        let env: HashMap<Symbol, Interval> = env
            .iter()
            .map(|(s, v)| (*s, Interval::point_f64(*v)))
            .collect();
        for &prec in &self.precisions {
            match eval_bool_interval(expr, &env, prec) {
                Err(EvalError::Domain) => return Some(false),
                Err(EvalError::Unbounded) => continue,
                Ok(b) => {
                    if let Some(v) = b.definite() {
                        return Some(v);
                    }
                }
            }
        }
        None
    }

    /// The precision ladder used by this evaluator.
    pub fn precisions(&self) -> &[u32] {
        &self.precisions
    }
}

pub(crate) fn round_to_type(interval: &Interval, ty: FpType) -> (f64, f64) {
    match ty {
        FpType::Binary64 => (
            interval.lo.to_f64(RoundMode::Nearest),
            interval.hi.to_f64(RoundMode::Nearest),
        ),
        FpType::Binary32 => (
            interval.lo.to_f32(RoundMode::Nearest) as f64,
            interval.hi.to_f32(RoundMode::Nearest) as f64,
        ),
        FpType::Bool => (
            interval.lo.to_f64(RoundMode::Nearest),
            interval.hi.to_f64(RoundMode::Nearest),
        ),
    }
}

pub(crate) fn constant_interval(c: &Constant, prec: u32) -> Result<Interval, EvalError> {
    match c {
        Constant::Rational(r) => {
            let lo =
                BigFloat::from_rational(r.numerator(), r.denominator(), prec, RoundMode::Floor);
            let hi = BigFloat::from_rational(r.numerator(), r.denominator(), prec, RoundMode::Ceil);
            Ok(Interval::new(lo, hi))
        }
        Constant::Pi => {
            let v = fun::pi(prec + 8);
            Ok(widen_point(v, prec))
        }
        Constant::E => {
            let v = fun::euler(prec + 8);
            Ok(widen_point(v, prec))
        }
        Constant::Infinity => Ok(Interval::point(BigFloat::infinity(false))),
        Constant::NegInfinity => Ok(Interval::point(BigFloat::infinity(true))),
        Constant::Nan => Err(EvalError::Domain),
        Constant::Bool(b) => Ok(Interval::point(BigFloat::from_i64(if *b { 1 } else { 0 }))),
    }
}

fn widen_point(v: BigFloat, prec: u32) -> Interval {
    // Constants computed by `functions` are accurate to a couple of ulps; widen by
    // rounding down/up one step at the target precision.
    let lo = v.round_to(prec, RoundMode::Floor);
    let hi = v.round_to(prec, RoundMode::Ceil);
    let step = fun::mul_pow2(
        &BigFloat::from_i64(4),
        v.magnitude().unwrap_or(0) - prec as i64,
    );
    Interval::new(
        BigFloat::sub(&lo, &step, prec + 8, RoundMode::Floor),
        BigFloat::add(&hi, &step, prec + 8, RoundMode::Ceil),
    )
}

fn eval_interval(
    expr: &Expr,
    env: &HashMap<Symbol, Interval>,
    prec: u32,
) -> Result<Interval, EvalError> {
    match expr {
        Expr::Num(c) => constant_interval(c, prec),
        Expr::Var(v) => env.get(v).cloned().ok_or(EvalError::Domain),
        Expr::If(cond, then_branch, else_branch) => {
            let c = eval_bool_interval(cond, env, prec)?;
            match c.definite() {
                Some(true) => eval_interval(then_branch, env, prec),
                Some(false) => eval_interval(else_branch, env, prec),
                None => Err(EvalError::Unbounded),
            }
        }
        Expr::Op(op, args) => {
            if op.is_predicate() {
                // A bare predicate in numeric position: treat true as 1, false as 0.
                let b = eval_bool_interval(expr, env, prec)?;
                return match b.definite() {
                    Some(v) => Ok(Interval::point(BigFloat::from_i64(if v { 1 } else { 0 }))),
                    None => Err(EvalError::Unbounded),
                };
            }
            let vals: Vec<Interval> = args
                .iter()
                .map(|a| eval_interval(a, env, prec))
                .collect::<Result<_, _>>()?;
            apply_real_op(*op, &vals, prec)
        }
    }
}

pub(crate) fn apply_real_op(
    op: RealOp,
    args: &[Interval],
    prec: u32,
) -> Result<Interval, EvalError> {
    use RealOp::*;
    let a = &args[0];
    let out = match op {
        Add => a.add(&args[1], prec),
        Sub => a.sub(&args[1], prec),
        Mul => a.mul(&args[1], prec),
        Div => a.div(&args[1], prec),
        Neg => Ok(a.neg()),
        Fabs => Ok(a.fabs()),
        Sqrt => a.sqrt(prec),
        Cbrt => a.cbrt(prec),
        Fma => a.fma(&args[1], &args[2], prec),
        Hypot => a.hypot(&args[1], prec),
        Pow => a.pow(&args[1], prec),
        Fmod => a.fmod(&args[1], prec),
        Fdim => a.fdim(&args[1], prec),
        Copysign => a.copysign(&args[1], prec),
        Fmin => a.fmin(&args[1], prec),
        Fmax => a.fmax(&args[1], prec),
        Floor => a.floor(prec),
        Ceil => a.ceil(prec),
        Round => a.round(prec),
        Trunc => a.trunc(prec),
        Exp => a.exp(prec),
        Exp2 => a.exp2(prec),
        Expm1 => a.expm1(prec),
        Log => a.log(prec),
        Log2 => a.log2(prec),
        Log10 => a.log10(prec),
        Log1p => a.log1p(prec),
        Sin => a.sin(prec),
        Cos => a.cos(prec),
        Tan => a.tan(prec),
        Asin => a.asin(prec),
        Acos => a.acos(prec),
        Atan => a.atan(prec),
        Atan2 => a.atan2(&args[1], prec),
        Sinh => a.sinh(prec),
        Cosh => a.cosh(prec),
        Tanh => a.tanh(prec),
        Asinh => a.asinh(prec),
        Acosh => a.acosh(prec),
        Atanh => a.atanh(prec),
        RealOp::Lt
        | RealOp::Gt
        | RealOp::Le
        | RealOp::Ge
        | RealOp::Eq
        | RealOp::Ne
        | RealOp::And
        | RealOp::Or
        | RealOp::Not => {
            unreachable!("predicates handled by eval_bool_interval")
        }
    };
    out.map_err(EvalError::from)
}

fn eval_bool_interval(
    expr: &Expr,
    env: &HashMap<Symbol, Interval>,
    prec: u32,
) -> Result<BoolInterval, EvalError> {
    match expr {
        Expr::Num(Constant::Bool(b)) => Ok(BoolInterval::certain(*b)),
        Expr::Op(op, args) if op.is_comparison() => {
            let lhs = eval_interval(&args[0], env, prec)?;
            let rhs = eval_interval(&args[1], env, prec)?;
            Ok(match op {
                RealOp::Lt => lhs.lt(&rhs),
                RealOp::Gt => lhs.gt(&rhs),
                RealOp::Le => lhs.le(&rhs),
                RealOp::Ge => lhs.ge(&rhs),
                RealOp::Eq => lhs.eq_interval(&rhs),
                RealOp::Ne => lhs.eq_interval(&rhs).not(),
                _ => unreachable!(),
            })
        }
        Expr::Op(RealOp::And, args) => {
            Ok(eval_bool_interval(&args[0], env, prec)?
                .and(&eval_bool_interval(&args[1], env, prec)?))
        }
        Expr::Op(RealOp::Or, args) => {
            Ok(eval_bool_interval(&args[0], env, prec)?
                .or(&eval_bool_interval(&args[1], env, prec)?))
        }
        Expr::Op(RealOp::Not, args) => Ok(eval_bool_interval(&args[0], env, prec)?.not()),
        Expr::If(cond, t, e) => {
            let c = eval_bool_interval(cond, env, prec)?;
            match c.definite() {
                Some(true) => eval_bool_interval(t, env, prec),
                Some(false) => eval_bool_interval(e, env, prec),
                None => Ok(BoolInterval::unknown()),
            }
        }
        // Any numeric expression in boolean position: nonzero means true.
        _ => {
            let v = eval_interval(expr, env, prec)?;
            Ok(v.eq_interval(&Interval::point_f64(0.0)).not())
        }
    }
}

/// Computes the correctly rounded value of `expr` at `env` in format `ty` using
/// the default precision ladder.
pub fn ground_truth(expr: &Expr, env: &[(Symbol, f64)], ty: FpType) -> GroundTruth {
    Evaluator::new().eval(expr, env, ty)
}

/// Computes the correctly rounded value with a caller-provided evaluator
/// (e.g. one with a shorter precision ladder for speed).
pub fn ground_truth_with(
    evaluator: &Evaluator,
    expr: &Expr,
    env: &[(Symbol, f64)],
    ty: FpType,
) -> GroundTruth {
    evaluator.eval(expr, env, ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_expr;

    fn gt(src: &str, bindings: &[(&str, f64)]) -> GroundTruth {
        let expr = parse_expr(src).unwrap();
        let env: Vec<(Symbol, f64)> = bindings.iter().map(|(n, v)| (Symbol::new(n), *v)).collect();
        ground_truth(&expr, &env, FpType::Binary64)
    }

    fn value(src: &str, bindings: &[(&str, f64)]) -> f64 {
        match gt(src, bindings) {
            GroundTruth::Value(v) => v,
            other => panic!("expected a value for {src}, got {other:?}"),
        }
    }

    #[test]
    fn simple_arithmetic_matches_f64() {
        assert_eq!(value("(+ 1 2)", &[]), 3.0);
        assert_eq!(value("(/ 1 4)", &[]), 0.25);
        assert_eq!(value("(* x x)", &[("x", 3.0)]), 9.0);
        assert_eq!(value("(sqrt 2)", &[]), 2.0_f64.sqrt());
    }

    #[test]
    fn correctly_rounds_inexact_results() {
        // 1/3 must round to the nearest double.
        assert_eq!(value("(/ 1 3)", &[]), 1.0 / 3.0);
        // 0.1 + 0.2 over the *reals* is 0.3, whose nearest double differs from the
        // floating-point sum 0.1f64 + 0.2f64.
        assert_eq!(value("(+ 1/10 2/10)", &[]), 0.3);
        assert_ne!(value("(+ 1/10 2/10)", &[]), 0.1 + 0.2);
    }

    #[test]
    fn catastrophic_cancellation_is_resolved_exactly() {
        // sqrt(x+1) - sqrt(x) at large x: the naive double evaluation loses most
        // of its digits; ground truth must match the accurate reformulation
        // 1 / (sqrt(x+1) + sqrt(x)).
        let x = 1e15;
        let truth = value("(- (sqrt (+ x 1)) (sqrt x))", &[("x", x)]);
        let accurate = 1.0 / ((x + 1.0).sqrt() + x.sqrt());
        assert_eq!(truth, accurate);
        let naive = (x + 1.0).sqrt() - x.sqrt();
        assert_ne!(truth, naive);
    }

    #[test]
    fn transcendental_ground_truth() {
        assert_eq!(value("(exp 1)", &[]), std::f64::consts::E);
        assert_eq!(value("(log E)", &[]), 1.0);
        assert!(value("(sin PI)", &[]).abs() < 1e-15);
        assert_eq!(value("(atan INFINITY)", &[]), std::f64::consts::FRAC_PI_2);
        // expm1 of a tiny number: the ground truth keeps the low-order bits.
        assert_eq!(value("(expm1 x)", &[("x", 1e-20)]), 1e-20);
    }

    #[test]
    fn domain_errors_are_nan() {
        assert_eq!(gt("(sqrt -1)", &[]), GroundTruth::Nan);
        assert_eq!(gt("(log x)", &[("x", -2.0)]), GroundTruth::Nan);
        assert_eq!(gt("(/ 1 0)", &[]), GroundTruth::Nan);
        assert_eq!(gt("(asin 2)", &[]), GroundTruth::Nan);
        assert_eq!(gt("NAN", &[]), GroundTruth::Nan);
    }

    #[test]
    fn conditionals_follow_ground_truth_branch() {
        assert_eq!(value("(if (< x 0) (- x) x)", &[("x", -3.0)]), 3.0);
        assert_eq!(value("(if (< x 0) (- x) x)", &[("x", 3.0)]), 3.0);
        // The condition compares exactly-representable values, so even an equality
        // test is decidable.
        assert_eq!(value("(if (== x 1) 10 20)", &[("x", 1.0)]), 10.0);
        assert_eq!(value("(if (== x 1) 10 20)", &[("x", 1.5)]), 20.0);
    }

    #[test]
    fn binary32_rounding() {
        let expr = parse_expr("(/ 1 3)").unwrap();
        let out = ground_truth(&expr, &[], FpType::Binary32);
        assert_eq!(out, GroundTruth::Value((1.0f32 / 3.0f32) as f64));
    }

    #[test]
    fn precondition_evaluation() {
        let ev = Evaluator::new();
        let pre = parse_expr("(and (> x 0) (< x 1))").unwrap();
        assert_eq!(ev.eval_bool(&pre, &[(Symbol::new("x"), 0.5)]), Some(true));
        assert_eq!(ev.eval_bool(&pre, &[(Symbol::new("x"), 2.0)]), Some(false));
    }

    #[test]
    fn infinities_propagate() {
        assert_eq!(value("(exp x)", &[("x", 1e9)]), f64::INFINITY);
        assert_eq!(value("(exp x)", &[("x", -1e9)]), 0.0);
        assert_eq!(value("(/ 1 x)", &[("x", f64::INFINITY)]), 0.0);
    }

    #[test]
    fn unbound_variable_is_nan() {
        assert_eq!(gt("(+ zz_unbound 1)", &[]), GroundTruth::Nan);
    }

    #[test]
    fn custom_precision_ladder() {
        let ev = Evaluator::with_precisions(vec![64]);
        let expr = parse_expr("(+ x 1)").unwrap();
        assert_eq!(
            ev.eval(&expr, &[(Symbol::new("x"), 2.0)], FpType::Binary64),
            GroundTruth::Value(3.0)
        );
        assert_eq!(ev.precisions(), &[64]);
    }
}
