//! Reval-style mixed-precision ground-truth evaluation.
//!
//! The uniform evaluator in [`crate::eval`] re-evaluates the *whole*
//! expression at each rung of the precision ladder until the enclosure rounds
//! to a single value of the target format. Most of that work is redundant:
//! subexpressions whose enclosure already collapsed to an exact point at a low
//! precision will produce the *same* point at every higher precision, so
//! re-deriving them is pure waste. This module tracks per-node convergence and
//! re-evaluates only the nodes that have not yet converged — the approach of
//! *Fast Mixed-Precision Real Evaluation* (Reval), restricted here to the
//! reuse rules under which the result is **provably bit-identical** to the
//! uniform evaluator:
//!
//! * A node's interval may be carried to higher rungs only when it is a
//!   **singleton** (`lo == hi`), because with outward rounding a singleton
//!   enclosure certifies the true real value is *exactly* that number.
//! * All of the node's children must themselves have been exact, so the
//!   operator was applied to precision-independent point inputs.
//! * The operator must be **exactly rounded** — implemented with directed
//!   [`crate::bigfloat::BigFloat`] rounding (`+ − × ÷ √ fma …`), not one of
//!   the slop-widened transcendental enclosures. For an exactly rounded
//!   operator, a point result at precision *p* is exactly representable at
//!   *p*, hence Floor- and Ceil-rounding at any precision ≥ *p* reproduce it
//!   bit for bit.
//!
//! Under these rules the memoized evaluation computes, at every rung, an
//! interval *identical* to the uniform evaluator's (induction over the tree),
//! so the final [`GroundTruth`] classification cannot drift. The same
//! argument justifies reusing a converged subexpression value **across
//! expressions** (different candidates sharing a subtree at the same point):
//! callers may seed an evaluation with `(first exact precision, value)` pairs
//! harvested from earlier evaluations and collect newly converged nodes for
//! future seeding.

use crate::eval::{
    apply_real_op, constant_interval, round_to_type, EvalError, Evaluator, GroundTruth,
};
use crate::interval::{BoolInterval, Interval};
use fpcore::{Constant, Expr, FpType, RealOp, Symbol};
use std::collections::HashMap;

/// Pre-order index of every node in an expression tree, identified by the
/// node's address (stable while the expression is borrowed).
///
/// Node ids are pre-order positions, so they are reproducible for equal trees
/// and independent of evaluation order (an `if` only walks the taken branch,
/// but ids come from this static walk).
pub struct NodeIndex<'e> {
    nodes: Vec<&'e Expr>,
    ids: HashMap<usize, usize>,
}

impl<'e> NodeIndex<'e> {
    /// Builds the index by a full pre-order walk of `root`.
    pub fn build(root: &'e Expr) -> NodeIndex<'e> {
        let mut index = NodeIndex {
            nodes: Vec::new(),
            ids: HashMap::new(),
        };
        index.walk(root);
        index
    }

    fn walk(&mut self, e: &'e Expr) {
        self.ids
            .insert(std::ptr::from_ref(e) as usize, self.nodes.len());
        self.nodes.push(e);
        match e {
            Expr::Num(_) | Expr::Var(_) => {}
            Expr::If(c, t, f) => {
                self.walk(c);
                self.walk(t);
                self.walk(f);
            }
            Expr::Op(_, args) => {
                for a in args {
                    self.walk(a);
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty index (never produced by [`NodeIndex::build`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with pre-order id `id`.
    pub fn node(&self, id: usize) -> &'e Expr {
        self.nodes[id]
    }

    /// The root expression the index was built from.
    pub fn root(&self) -> &'e Expr {
        self.nodes[0]
    }

    fn id(&self, e: &Expr) -> usize {
        self.ids[&(std::ptr::from_ref(e) as usize)]
    }
}

/// Exact values of one node across the points of a sweep: for each point,
/// the first ladder precision at which the node's enclosure collapsed to a
/// point, and that point value.
pub type ExactRow = Vec<Option<(u32, Interval)>>;

/// Work counters for adaptive evaluation, comparable against the uniform
/// evaluator (which performs one `node_evals` per node per rung).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct AdaptiveStats {
    /// Operator/constant nodes evaluated with interval arithmetic.
    pub node_evals: u64,
    /// Node evaluations skipped because the node converged at a lower rung of
    /// this same evaluation.
    pub node_reuses: u64,
    /// Node evaluations skipped because a caller-provided seed (a converged
    /// value from an earlier expression) applied.
    pub node_seeds: u64,
    /// Precision rungs attempted.
    pub rungs: u64,
}

impl AdaptiveStats {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &AdaptiveStats) {
        self.node_evals += other.node_evals;
        self.node_reuses += other.node_reuses;
        self.node_seeds += other.node_seeds;
        self.rungs += other.rungs;
    }
}

/// The result of adaptively evaluating one expression at one point.
pub struct PointOutcome {
    /// The ground truth, bit-identical to [`Evaluator::eval`].
    pub truth: GroundTruth,
    /// Newly converged non-trivial nodes: `(node id, first exact precision,
    /// exact value)`, suitable for seeding later evaluations of expressions
    /// sharing the subtree. Seeded nodes are not re-reported.
    pub exact: Vec<(usize, u32, Interval)>,
    /// Work counters for this point.
    pub stats: AdaptiveStats,
}

/// Ops whose interval implementation rounds endpoints with directed
/// [`crate::bigfloat::BigFloat`] operations only (no approximation slop), so a
/// singleton result at precision `p` is reproduced exactly at any precision
/// ≥ `p`. Transcendentals (and `pow`/`fmod`/`hypot`/`cbrt`, which widen by a
/// slop) are excluded; their results are practically never singletons anyway.
fn exactly_rounded(op: RealOp) -> bool {
    use RealOp::*;
    matches!(
        op,
        Add | Sub
            | Mul
            | Div
            | Neg
            | Fabs
            | Sqrt
            | Fma
            | Fdim
            | Fmin
            | Fmax
            | Copysign
            | Floor
            | Ceil
            | Round
            | Trunc
    )
}

struct Ctx<'a, 'e> {
    env: &'a HashMap<Symbol, Interval>,
    index: &'a NodeIndex<'e>,
    prec: u32,
    /// Converged singleton per node, valid for this and every higher rung.
    memo: &'a mut [Option<Interval>],
    /// First rung precision at which each node converged (for harvesting).
    exact_at: &'a mut [Option<u32>],
    /// Nodes satisfied from caller seeds (excluded from harvesting).
    seeded: &'a mut [bool],
    seeds: &'a [Option<ExactRow>],
    point: usize,
    stats: &'a mut AdaptiveStats,
}

impl Ctx<'_, '_> {
    fn seed_for(&self, id: usize) -> Option<&(u32, Interval)> {
        self.seeds
            .get(id)?
            .as_ref()?
            .get(self.point)?
            .as_ref()
            .filter(|(p, _)| *p <= self.prec)
    }
}

/// Evaluates one node, returning its enclosure and whether the value is
/// *exact* (a singleton derived from exact inputs through exactly rounded
/// operators — i.e. precision-independent from here on up).
fn eval_node(ctx: &mut Ctx, expr: &Expr) -> Result<(Interval, bool), EvalError> {
    let id = ctx.index.id(expr);
    if let Some(v) = &ctx.memo[id] {
        ctx.stats.node_reuses += 1;
        return Ok((v.clone(), true));
    }
    if let Some((_, v)) = ctx.seed_for(id) {
        let v = v.clone();
        ctx.stats.node_seeds += 1;
        ctx.memo[id] = Some(v.clone());
        ctx.seeded[id] = true;
        return Ok((v, true));
    }
    ctx.stats.node_evals += 1;
    let (interval, exact, memoizable) = match expr {
        Expr::Num(c) => {
            let iv = constant_interval(c, ctx.prec)?;
            let exact = iv.is_point() && !iv.has_nan();
            (iv, exact, false)
        }
        Expr::Var(v) => {
            let iv = ctx.env.get(v).cloned().ok_or(EvalError::Domain)?;
            (iv, true, false)
        }
        Expr::If(cond, then_branch, else_branch) => {
            let (c, cond_exact) = eval_bool_node(ctx, cond)?;
            match c.definite() {
                Some(taken) => {
                    let branch = if taken { then_branch } else { else_branch };
                    let (iv, branch_exact) = eval_node(ctx, branch)?;
                    // The `if` adds no rounding of its own: with an exact
                    // (hence rung-independent) condition and an exact branch
                    // value, the whole node is exact.
                    let exact = cond_exact && branch_exact;
                    (iv, exact, true)
                }
                None => return Err(EvalError::Unbounded),
            }
        }
        Expr::Op(op, _) if op.is_predicate() => {
            // A bare predicate in numeric position: true is 1, false is 0.
            let (b, bool_exact) = eval_bool_node(ctx, expr)?;
            match b.definite() {
                Some(v) => {
                    let iv = Interval::point(crate::bigfloat::BigFloat::from_i64(i64::from(v)));
                    (iv, bool_exact, true)
                }
                None => return Err(EvalError::Unbounded),
            }
        }
        Expr::Op(op, args) => {
            let mut vals = Vec::with_capacity(args.len());
            let mut args_exact = true;
            for a in args {
                let (iv, e) = eval_node(ctx, a)?;
                args_exact &= e;
                vals.push(iv);
            }
            let iv = apply_real_op(*op, &vals, ctx.prec)?;
            let exact = args_exact && exactly_rounded(*op) && iv.is_point() && !iv.has_nan();
            (iv, exact, true)
        }
    };
    if exact && memoizable {
        ctx.memo[id] = Some(interval.clone());
        ctx.exact_at[id].get_or_insert(ctx.prec);
    }
    Ok((interval, exact))
}

fn eval_bool_node(ctx: &mut Ctx, expr: &Expr) -> Result<(BoolInterval, bool), EvalError> {
    match expr {
        Expr::Num(Constant::Bool(b)) => Ok((BoolInterval::certain(*b), true)),
        Expr::Op(op, args) if op.is_comparison() => {
            let (lhs, e1) = eval_node(ctx, &args[0])?;
            let (rhs, e2) = eval_node(ctx, &args[1])?;
            let b = match op {
                RealOp::Lt => lhs.lt(&rhs),
                RealOp::Gt => lhs.gt(&rhs),
                RealOp::Le => lhs.le(&rhs),
                RealOp::Ge => lhs.ge(&rhs),
                RealOp::Eq => lhs.eq_interval(&rhs),
                RealOp::Ne => lhs.eq_interval(&rhs).not(),
                _ => unreachable!(),
            };
            // Comparing two exact singletons is always definite and its
            // outcome cannot change at higher precision.
            Ok((b, e1 && e2))
        }
        Expr::Op(RealOp::And, args) => {
            let (a, e1) = eval_bool_node(ctx, &args[0])?;
            let (b, e2) = eval_bool_node(ctx, &args[1])?;
            Ok((a.and(&b), e1 && e2))
        }
        Expr::Op(RealOp::Or, args) => {
            let (a, e1) = eval_bool_node(ctx, &args[0])?;
            let (b, e2) = eval_bool_node(ctx, &args[1])?;
            Ok((a.or(&b), e1 && e2))
        }
        Expr::Op(RealOp::Not, args) => {
            let (a, e) = eval_bool_node(ctx, &args[0])?;
            Ok((a.not(), e))
        }
        Expr::If(cond, t, f) => {
            let (c, cond_exact) = eval_bool_node(ctx, cond)?;
            match c.definite() {
                Some(taken) => {
                    let (b, branch_exact) = eval_bool_node(ctx, if taken { t } else { f })?;
                    Ok((b, cond_exact && branch_exact))
                }
                None => Ok((BoolInterval::unknown(), false)),
            }
        }
        // Any numeric expression in boolean position: nonzero means true.
        _ => {
            let (v, e) = eval_node(ctx, expr)?;
            Ok((v.eq_interval(&Interval::point_f64(0.0)).not(), e))
        }
    }
}

impl Evaluator {
    /// Computes the correctly rounded value of the indexed expression at one
    /// point, re-evaluating at each precision rung only the nodes that have
    /// not yet converged, and optionally seeding node values converged during
    /// earlier evaluations of expressions sharing subtrees.
    ///
    /// The returned truth is **bit-identical** to [`Evaluator::eval`] on the
    /// same expression, environment and type (see the module docs for the
    /// argument); the outcome additionally carries the newly converged node
    /// values for cross-expression reuse, and work counters.
    ///
    /// `seeds` is indexed by node id and point (pass `&[]` for none); entries
    /// must have been harvested from an evaluation of an identical subtree at
    /// the same point with the same evaluator configuration.
    pub fn eval_adaptive(
        &self,
        index: &NodeIndex,
        env: &[(Symbol, f64)],
        ty: FpType,
        seeds: &[Option<ExactRow>],
        point: usize,
    ) -> PointOutcome {
        let env: HashMap<Symbol, Interval> = env
            .iter()
            .map(|(s, v)| (*s, Interval::point_f64(*v)))
            .collect();
        let mut memo: Vec<Option<Interval>> = vec![None; index.len()];
        let mut exact_at: Vec<Option<u32>> = vec![None; index.len()];
        let mut seeded: Vec<bool> = vec![false; index.len()];
        let mut stats = AdaptiveStats::default();
        // Same chaos fault point as the uniform ladder (`Evaluator::eval`):
        // an armed abort is the non-convergence outcome, before any rung runs.
        if fault::point("rival.eval") {
            return PointOutcome {
                truth: GroundTruth::Unsamplable,
                exact: Vec::new(),
                stats,
            };
        }
        let mut truth = GroundTruth::Unsamplable;
        for &prec in self.precisions() {
            stats.rungs += 1;
            let mut ctx = Ctx {
                env: &env,
                index,
                prec,
                memo: &mut memo,
                exact_at: &mut exact_at,
                seeded: &mut seeded,
                seeds,
                point,
                stats: &mut stats,
            };
            match eval_node(&mut ctx, index.root()) {
                Err(EvalError::Domain) => {
                    truth = GroundTruth::Nan;
                    break;
                }
                Err(EvalError::Unbounded) => {}
                Ok((interval, _)) => {
                    if interval.has_nan() {
                        continue;
                    }
                    let (lo, hi) = round_to_type(&interval, ty);
                    // Numeric equality (rather than bit equality) so that an
                    // enclosure collapsing to [−0.0, +0.0] counts as decided —
                    // the same rule as the uniform evaluator.
                    if lo == hi {
                        truth = GroundTruth::Value(lo);
                        break;
                    }
                }
            }
        }
        let exact = exact_at
            .iter()
            .enumerate()
            .filter(|(id, at)| at.is_some() && !seeded[*id])
            .filter_map(|(id, at)| memo[id].take().map(|iv| (id, at.unwrap(), iv)))
            .collect();
        PointOutcome {
            truth,
            exact,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::parse_expr;

    fn env_of(bindings: &[(&str, f64)]) -> Vec<(Symbol, f64)> {
        bindings.iter().map(|(n, v)| (Symbol::new(n), *v)).collect()
    }

    fn check_matches_uniform(src: &str, bindings: &[(&str, f64)]) -> PointOutcome {
        let expr = parse_expr(src).unwrap();
        let env = env_of(bindings);
        let ev = Evaluator::new();
        let index = NodeIndex::build(&expr);
        let outcome = ev.eval_adaptive(&index, &env, FpType::Binary64, &[], 0);
        let uniform = ev.eval(&expr, &env, FpType::Binary64);
        assert_eq!(outcome.truth, uniform, "adaptive vs uniform for {src}");
        outcome
    }

    #[test]
    fn matches_uniform_on_basic_expressions() {
        check_matches_uniform("(+ 1 2)", &[]);
        check_matches_uniform("(/ 1 3)", &[]);
        check_matches_uniform("(- (sqrt (+ x 1)) (sqrt x))", &[("x", 1e15)]);
        check_matches_uniform("(sin (* x x))", &[("x", 3.5)]);
        check_matches_uniform("(sqrt -1)", &[]);
        check_matches_uniform("(/ 1 0)", &[]);
        check_matches_uniform("(if (< x 0) (- x) (sqrt x))", &[("x", -4.0)]);
        check_matches_uniform("(if (< x 0) (- x) (sqrt x))", &[("x", 4.0)]);
        check_matches_uniform("(exp x)", &[("x", 1e9)]);
        check_matches_uniform("(log x)", &[("x", -1.0)]);
        check_matches_uniform("(atan INFINITY)", &[]);
        check_matches_uniform("(* PI x)", &[("x", 2.0)]);
    }

    #[test]
    fn exact_subtrees_are_harvested() {
        // (x + 1) at x = 2 converges to the exact singleton 3 at the first
        // rung; the sin wrapper never becomes exact.
        let outcome = check_matches_uniform("(sin (+ x 1))", &[("x", 2.0)]);
        assert_eq!(outcome.exact.len(), 1, "only the + node is exact");
        let (_, prec, iv) = &outcome.exact[0];
        assert_eq!(*prec, 96);
        assert!(iv.is_point());
    }

    #[test]
    fn transcendental_results_are_not_harvested() {
        let outcome = check_matches_uniform("(exp x)", &[("x", 2.0)]);
        assert!(
            outcome.exact.is_empty(),
            "slop-widened ops must not be treated as exact"
        );
    }

    #[test]
    fn seeds_shortcut_evaluation_without_changing_the_result() {
        let ev = Evaluator::new();
        let env = env_of(&[("x", 1e15)]);
        // Harvest from one expression...
        let a = parse_expr("(- (sqrt (+ x 1)) (sqrt x))").unwrap();
        let ia = NodeIndex::build(&a);
        let oa = ev.eval_adaptive(&ia, &env, FpType::Binary64, &[], 0);
        // ...and seed an expression sharing the (+ x 1) subtree.
        let b = parse_expr("(/ 1 (+ (sqrt (+ x 1)) (sqrt x)))").unwrap();
        let ib = NodeIndex::build(&b);
        let mut seeds: Vec<Option<ExactRow>> = vec![None; ib.len()];
        for (id_a, prec, iv) in &oa.exact {
            for (id_b, slot) in seeds.iter_mut().enumerate() {
                if ib.node(id_b) == ia.node(*id_a) {
                    *slot = Some(vec![Some((*prec, iv.clone()))]);
                }
            }
        }
        let seeded = ev.eval_adaptive(&ib, &env, FpType::Binary64, &seeds, 0);
        assert!(seeded.stats.node_seeds > 0, "a seed must have applied");
        let unseeded = ev.eval_adaptive(&ib, &env, FpType::Binary64, &[], 0);
        assert_eq!(seeded.truth, unseeded.truth);
        assert_eq!(seeded.truth, ev.eval(&b, &env, FpType::Binary64));
        assert!(seeded.stats.node_evals < unseeded.stats.node_evals);
    }

    #[test]
    fn adaptive_does_less_work_than_uniform_on_escalating_expressions() {
        // Catastrophic cancellation forces escalation past the first rung;
        // the exact sqrt/add subtrees must not be re-derived at the higher
        // rungs. x+1 and x are exact; sqrt of them is inexact, so rung 2
        // re-evaluates only the sqrt and - nodes.
        let expr = parse_expr("(- (sqrt (+ x 1)) (sqrt x))").unwrap();
        let env = env_of(&[("x", 1e15)]);
        let ev = Evaluator::new();
        let index = NodeIndex::build(&expr);
        let outcome = ev.eval_adaptive(&index, &env, FpType::Binary64, &[], 0);
        assert!(outcome.stats.rungs >= 2, "must have escalated");
        // Uniform work would be nodes × rungs; adaptive must do less.
        let uniform_work = index.len() as u64 * outcome.stats.rungs;
        assert!(outcome.stats.node_evals < uniform_work);
        assert!(outcome.stats.node_reuses > 0);
    }
}
