//! Arbitrary-precision binary floating-point numbers with directed rounding.
//!
//! A [`BigFloat`] represents `(-1)^sign * mant * 2^exp` with an arbitrary-precision
//! integer mantissa, plus the usual special values (signed zero, infinities, NaN).
//! All arithmetic takes an explicit target precision (in bits) and a [`RoundMode`],
//! which is what the interval layer needs to compute rigorous enclosures.
//!
//! The exponent range is `i64`, far wider than any IEEE format, so overflow and
//! underflow only appear when converting back to `f64`/`f32`.

use crate::bigint::BigUint;
use std::cmp::Ordering;

/// IEEE-style rounding directions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoundMode {
    /// Round to nearest, ties to even.
    Nearest,
    /// Round toward negative infinity.
    Floor,
    /// Round toward positive infinity.
    Ceil,
    /// Round toward zero.
    Zero,
}

impl RoundMode {
    /// The opposite direction (used when negating interval endpoints).
    pub fn flip(self) -> RoundMode {
        match self {
            RoundMode::Floor => RoundMode::Ceil,
            RoundMode::Ceil => RoundMode::Floor,
            other => other,
        }
    }
}

/// An arbitrary-precision binary floating-point number.
#[derive(Clone, Debug)]
pub enum BigFloat {
    /// A non-zero finite value `(-1)^negative * mant * 2^exp` with `mant != 0`.
    Finite {
        /// Sign bit.
        negative: bool,
        /// Power-of-two scale applied to the integer mantissa.
        exp: i64,
        /// The integer mantissa (non-zero).
        mant: BigUint,
    },
    /// Signed zero.
    Zero {
        /// Sign bit.
        negative: bool,
    },
    /// Signed infinity.
    Inf {
        /// Sign bit.
        negative: bool,
    },
    /// Not a number.
    NaN,
}

/// Rounds `mant` after dropping its low `drop` bits, in the given direction.
fn round_drop(mant: &BigUint, drop: u64, negative: bool, mode: RoundMode) -> BigUint {
    if drop == 0 {
        return mant.clone();
    }
    let kept = mant.shr(drop);
    let increment = match mode {
        RoundMode::Zero => false,
        RoundMode::Floor => negative && mant.any_bit_below(drop),
        RoundMode::Ceil => !negative && mant.any_bit_below(drop),
        RoundMode::Nearest => {
            let half = mant.bit(drop - 1);
            if !half {
                false
            } else if mant.any_bit_below(drop - 1) {
                true
            } else {
                // Ties to even.
                kept.bit(0)
            }
        }
    };
    if increment {
        kept.add_u64(1)
    } else {
        kept
    }
}

/// Computes 2^e as an `f64`, exactly for every representable power (including
/// subnormals); returns infinity / zero outside the representable range.
pub fn pow2_f64(e: i64) -> f64 {
    if e >= 1024 {
        f64::INFINITY
    } else if e >= -1022 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else if e >= -1074 {
        f64::from_bits(1u64 << (e + 1074))
    } else {
        0.0
    }
}

impl BigFloat {
    /// Positive zero.
    pub fn zero() -> BigFloat {
        BigFloat::Zero { negative: false }
    }

    /// Not-a-number.
    pub fn nan() -> BigFloat {
        BigFloat::NaN
    }

    /// Signed infinity.
    pub fn infinity(negative: bool) -> BigFloat {
        BigFloat::Inf { negative }
    }

    /// An exact integer value.
    pub fn from_i64(x: i64) -> BigFloat {
        if x == 0 {
            return BigFloat::zero();
        }
        BigFloat::Finite {
            negative: x < 0,
            exp: 0,
            mant: BigUint::from_u128(x.unsigned_abs() as u128),
        }
    }

    /// Exact conversion from an `f64`.
    pub fn from_f64(x: f64) -> BigFloat {
        if x.is_nan() {
            return BigFloat::NaN;
        }
        if x.is_infinite() {
            return BigFloat::Inf {
                negative: x.is_sign_negative(),
            };
        }
        if x == 0.0 {
            return BigFloat::Zero {
                negative: x.is_sign_negative(),
            };
        }
        let bits = x.to_bits();
        let negative = bits >> 63 == 1;
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mant, exp) = if biased == 0 {
            (frac, -1074i64)
        } else {
            (frac | (1u64 << 52), biased - 1075)
        };
        BigFloat::Finite {
            negative,
            exp,
            mant: BigUint::from_u64(mant),
        }
    }

    /// Converts a rational to a big-float rounded at `prec` bits.
    pub fn from_rational(num: i128, den: u128, prec: u32, mode: RoundMode) -> BigFloat {
        let negative = num < 0;
        let n = BigFloat::Finite {
            negative,
            exp: 0,
            mant: BigUint::from_u128(num.unsigned_abs()),
        };
        let n = if num == 0 { BigFloat::zero() } else { n };
        let d = BigFloat::Finite {
            negative: false,
            exp: 0,
            mant: BigUint::from_u128(den),
        };
        BigFloat::div(&n, &d, prec, mode)
    }

    /// True for NaN.
    pub fn is_nan(&self) -> bool {
        matches!(self, BigFloat::NaN)
    }

    /// True for ±∞.
    pub fn is_infinite(&self) -> bool {
        matches!(self, BigFloat::Inf { .. })
    }

    /// True for ±0.
    pub fn is_zero(&self) -> bool {
        matches!(self, BigFloat::Zero { .. })
    }

    /// True for finite non-zero values.
    pub fn is_finite_nonzero(&self) -> bool {
        matches!(self, BigFloat::Finite { .. })
    }

    /// True if the value is negative (negative zero counts as negative).
    pub fn is_negative(&self) -> bool {
        match self {
            BigFloat::Finite { negative, .. }
            | BigFloat::Zero { negative }
            | BigFloat::Inf { negative } => *negative,
            BigFloat::NaN => false,
        }
    }

    /// Exponent of the most significant bit (`floor(log2 |x|)`), or `None` for
    /// zero, infinity and NaN.
    pub fn magnitude(&self) -> Option<i64> {
        match self {
            BigFloat::Finite { exp, mant, .. } => Some(exp + mant.bit_length() as i64 - 1),
            _ => None,
        }
    }

    /// Rounds to `prec` significant bits.
    pub fn round_to(&self, prec: u32, mode: RoundMode) -> BigFloat {
        match self {
            BigFloat::Finite {
                negative,
                exp,
                mant,
            } => {
                let len = mant.bit_length();
                if len <= prec as u64 {
                    return self.clone();
                }
                let drop = len - prec as u64;
                let rounded = round_drop(mant, drop, *negative, mode);
                if rounded.is_zero() {
                    return BigFloat::Zero {
                        negative: *negative,
                    };
                }
                BigFloat::Finite {
                    negative: *negative,
                    exp: exp + drop as i64,
                    mant: rounded,
                }
            }
            other => other.clone(),
        }
    }

    /// Negation.
    pub fn neg(&self) -> BigFloat {
        match self {
            BigFloat::Finite {
                negative,
                exp,
                mant,
            } => BigFloat::Finite {
                negative: !negative,
                exp: *exp,
                mant: mant.clone(),
            },
            BigFloat::Zero { negative } => BigFloat::Zero {
                negative: !negative,
            },
            BigFloat::Inf { negative } => BigFloat::Inf {
                negative: !negative,
            },
            BigFloat::NaN => BigFloat::NaN,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigFloat {
        if self.is_negative() {
            self.neg()
        } else {
            self.clone()
        }
    }

    /// Numeric comparison; `None` if either operand is NaN.
    pub fn partial_cmp(&self, other: &BigFloat) -> Option<Ordering> {
        use BigFloat::*;
        match (self, other) {
            (NaN, _) | (_, NaN) => None,
            (Zero { .. }, Zero { .. }) => Some(Ordering::Equal),
            (Inf { negative: a }, Inf { negative: b }) => match (a, b) {
                (true, true) | (false, false) => Some(Ordering::Equal),
                (true, false) => Some(Ordering::Less),
                (false, true) => Some(Ordering::Greater),
            },
            (Inf { negative }, _) => Some(if *negative {
                Ordering::Less
            } else {
                Ordering::Greater
            }),
            (_, Inf { negative }) => Some(if *negative {
                Ordering::Greater
            } else {
                Ordering::Less
            }),
            (Zero { .. }, Finite { negative, .. }) => Some(if *negative {
                Ordering::Greater
            } else {
                Ordering::Less
            }),
            (Finite { negative, .. }, Zero { .. }) => Some(if *negative {
                Ordering::Less
            } else {
                Ordering::Greater
            }),
            (
                Finite {
                    negative: na,
                    exp: ea,
                    mant: ma,
                },
                Finite {
                    negative: nb,
                    exp: eb,
                    mant: mb,
                },
            ) => {
                if na != nb {
                    return Some(if *na {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    });
                }
                let mag_a = ea + ma.bit_length() as i64;
                let mag_b = eb + mb.bit_length() as i64;
                let mag_ord = if mag_a != mag_b {
                    mag_a.cmp(&mag_b)
                } else {
                    // Same magnitude: align and compare mantissas.
                    let min_exp = (*ea).min(*eb);
                    let shift_a = (ea - min_exp) as u64;
                    let shift_b = (eb - min_exp) as u64;
                    ma.shl(shift_a).cmp_mag(&mb.shl(shift_b))
                };
                Some(if *na { mag_ord.reverse() } else { mag_ord })
            }
        }
    }

    /// Addition rounded to `prec` bits.
    pub fn add(a: &BigFloat, b: &BigFloat, prec: u32, mode: RoundMode) -> BigFloat {
        use BigFloat::*;
        match (a, b) {
            (NaN, _) | (_, NaN) => NaN,
            (Inf { negative: na }, Inf { negative: nb }) => {
                if na == nb {
                    Inf { negative: *na }
                } else {
                    NaN
                }
            }
            (Inf { negative }, _) | (_, Inf { negative }) => Inf {
                negative: *negative,
            },
            (Zero { negative: na }, Zero { negative: nb }) => Zero {
                negative: *na && *nb,
            },
            (Zero { .. }, x) | (x, Zero { .. }) => x.round_to(prec, mode),
            (
                Finite {
                    negative: na,
                    exp: ea,
                    mant: ma,
                },
                Finite {
                    negative: nb,
                    exp: eb,
                    mant: mb,
                },
            ) => {
                // Work with (sign, exp, mant) pairs; make `hi` the operand with the
                // larger exponent.
                let (hn, he, hm, ln, le, lm) = if ea >= eb {
                    (*na, *ea, ma, *nb, *eb, mb)
                } else {
                    (*nb, *eb, mb, *na, *ea, ma)
                };
                let mut gap = (he - le) as u64;
                let (lm_eff, le_eff);
                // The low operand can be replaced by a sticky bit only when it sits
                // entirely below the rounding point of the result, even after the
                // worst-case cancellation (one leading bit of the high operand).
                let cap = prec as u64 + hm.bit_length() + lm.bit_length() + 8;
                if gap > cap {
                    // The low operand only matters as a sticky bit: replace it with
                    // the smallest value that preserves its sign and direction.
                    gap = cap;
                    lm_eff = BigUint::one();
                    le_eff = he - gap as i64;
                } else {
                    lm_eff = lm.clone();
                    le_eff = le;
                }
                let hm_shifted = hm.shl(gap);
                let (negative, mant) = if hn == ln {
                    (hn, hm_shifted.add(&lm_eff))
                } else {
                    match hm_shifted.cmp_mag(&lm_eff) {
                        Ordering::Equal => {
                            return Zero {
                                negative: mode == RoundMode::Floor,
                            }
                        }
                        Ordering::Greater => (hn, hm_shifted.sub(&lm_eff)),
                        Ordering::Less => (ln, lm_eff.sub(&hm_shifted)),
                    }
                };
                if mant.is_zero() {
                    return Zero {
                        negative: mode == RoundMode::Floor,
                    };
                }
                Finite {
                    negative,
                    exp: le_eff,
                    mant,
                }
                .round_to(prec, mode)
            }
        }
    }

    /// Subtraction rounded to `prec` bits.
    pub fn sub(a: &BigFloat, b: &BigFloat, prec: u32, mode: RoundMode) -> BigFloat {
        BigFloat::add(a, &b.neg(), prec, mode)
    }

    /// Multiplication rounded to `prec` bits.
    pub fn mul(a: &BigFloat, b: &BigFloat, prec: u32, mode: RoundMode) -> BigFloat {
        use BigFloat::*;
        match (a, b) {
            (NaN, _) | (_, NaN) => NaN,
            (Inf { negative: na }, Inf { negative: nb }) => Inf { negative: na != nb },
            (Inf { negative: na }, Zero { .. }) | (Zero { .. }, Inf { negative: na }) => {
                let _ = na;
                NaN
            }
            (Inf { negative: na }, Finite { negative: nb, .. })
            | (Finite { negative: na, .. }, Inf { negative: nb }) => Inf { negative: na != nb },
            (Zero { negative: na }, Zero { negative: nb })
            | (Zero { negative: na }, Finite { negative: nb, .. })
            | (Finite { negative: na, .. }, Zero { negative: nb }) => Zero { negative: na != nb },
            (
                Finite {
                    negative: na,
                    exp: ea,
                    mant: ma,
                },
                Finite {
                    negative: nb,
                    exp: eb,
                    mant: mb,
                },
            ) => BigFloat::Finite {
                negative: na != nb,
                exp: ea + eb,
                mant: ma.mul(mb),
            }
            .round_to(prec, mode),
        }
    }

    /// Division rounded to `prec` bits.
    pub fn div(a: &BigFloat, b: &BigFloat, prec: u32, mode: RoundMode) -> BigFloat {
        use BigFloat::*;
        match (a, b) {
            (NaN, _) | (_, NaN) => NaN,
            (Inf { .. }, Inf { .. }) => NaN,
            (Zero { .. }, Zero { .. }) => NaN,
            (Inf { negative: na }, Zero { negative: nb })
            | (Inf { negative: na }, Finite { negative: nb, .. }) => Inf { negative: na != nb },
            (Zero { negative: na }, Inf { negative: nb })
            | (Zero { negative: na }, Finite { negative: nb, .. })
            | (Finite { negative: na, .. }, Inf { negative: nb }) => Zero { negative: na != nb },
            (Finite { negative: na, .. }, Zero { negative: nb }) => Inf { negative: na != nb },
            (
                Finite {
                    negative: na,
                    exp: ea,
                    mant: ma,
                },
                Finite {
                    negative: nb,
                    exp: eb,
                    mant: mb,
                },
            ) => {
                let negative = na != nb;
                // Scale the dividend so the quotient carries at least prec+2 bits.
                let la = ma.bit_length() as i64;
                let lb = mb.bit_length() as i64;
                let shift = (prec as i64 + 2 + lb - la).max(0) as u64;
                let (q, r) = ma.shl(shift).div_rem(mb);
                let mut exp = ea - shift as i64 - eb;
                let mant = if r.is_zero() {
                    q
                } else {
                    // Encode stickiness as one extra low guard bit.
                    exp -= 1;
                    q.shl(1).add_u64(1)
                };
                if mant.is_zero() {
                    return Zero { negative };
                }
                Finite {
                    negative,
                    exp,
                    mant,
                }
                .round_to(prec, mode)
            }
        }
    }

    /// Square root rounded to `prec` bits. Negative inputs give NaN; `±0` gives
    /// itself.
    pub fn sqrt(a: &BigFloat, prec: u32, mode: RoundMode) -> BigFloat {
        use BigFloat::*;
        match a {
            NaN => NaN,
            Zero { negative } => Zero {
                negative: *negative,
            },
            Inf { negative } => {
                if *negative {
                    NaN
                } else {
                    Inf { negative: false }
                }
            }
            Finite {
                negative,
                exp,
                mant,
            } => {
                if *negative {
                    return NaN;
                }
                // Make the exponent even and the mantissa wide enough that the
                // integer square root carries at least prec+2 bits.
                let mut exp = *exp;
                let mut mant = mant.clone();
                if exp % 2 != 0 {
                    mant = mant.shl(1);
                    exp -= 1;
                }
                let needed = 2 * (prec as u64 + 2);
                let len = mant.bit_length();
                let mut extra = needed.saturating_sub(len);
                if extra % 2 != 0 {
                    extra += 1;
                }
                mant = mant.shl(extra);
                exp -= extra as i64;
                let root = mant.isqrt();
                let exact = root.mul(&root) == mant;
                let mut out_exp = exp / 2;
                let out_mant = if exact {
                    root
                } else {
                    out_exp -= 1;
                    root.shl(1).add_u64(1)
                };
                Finite {
                    negative: false,
                    exp: out_exp,
                    mant: out_mant,
                }
                .round_to(prec, mode)
            }
        }
    }

    /// Converts to `f64`, rounding in the given direction (handles overflow to
    /// infinity and subnormal/underflow behaviour).
    pub fn to_f64(&self, mode: RoundMode) -> f64 {
        match self {
            BigFloat::NaN => f64::NAN,
            BigFloat::Inf { negative } => {
                if *negative {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            BigFloat::Zero { negative } => {
                if *negative {
                    -0.0
                } else {
                    0.0
                }
            }
            BigFloat::Finite {
                negative,
                exp,
                mant,
            } => {
                let e_top = exp + mant.bit_length() as i64 - 1;
                if e_top > 1100 {
                    // Far beyond the representable range.
                    return match (mode, negative) {
                        (RoundMode::Floor, false) | (RoundMode::Zero, false) => f64::MAX,
                        (RoundMode::Ceil, true) | (RoundMode::Zero, true) => f64::MIN,
                        (_, false) => f64::INFINITY,
                        (_, true) => f64::NEG_INFINITY,
                    };
                }
                if e_top < -1200 {
                    // Far below the subnormal range.
                    return match (mode, negative) {
                        (RoundMode::Ceil, false) => f64::from_bits(1),
                        (RoundMode::Floor, true) => -f64::from_bits(1),
                        (_, true) => -0.0,
                        (_, false) => 0.0,
                    };
                }
                let ulp_exp = (e_top - 52).max(-1074);
                let shift = ulp_exp - exp;
                let int_mant = if shift <= 0 {
                    mant.shl((-shift) as u64)
                } else {
                    round_drop(mant, shift as u64, *negative, mode)
                };
                // int_mant now has at most ~54 bits; convert exactly.
                let m = if int_mant.bit_length() <= 64 {
                    int_mant.to_u64_lossy() as f64
                } else {
                    // Rounding overflowed into an extra bit beyond 64 (cannot
                    // happen for sane inputs, but stay safe).
                    f64::INFINITY
                };
                let value = m * pow2_f64(ulp_exp);
                let signed = if *negative { -value } else { value };
                if signed.is_infinite() {
                    // Overflow at the boundary: respect the rounding direction.
                    return match (mode, negative) {
                        (RoundMode::Floor, false) | (RoundMode::Zero, false) => f64::MAX,
                        (RoundMode::Ceil, true) | (RoundMode::Zero, true) => f64::MIN,
                        _ => signed,
                    };
                }
                signed
            }
        }
    }

    /// Converts to `f32` by first rounding to `f64` in the same direction.
    pub fn to_f32(&self, mode: RoundMode) -> f32 {
        // A single rounding through f64 is safe here because f64 has more than
        // twice the precision of f32 ("double rounding" can only matter when the
        // intermediate precision is less than 2p+2 bits).
        let d = self.to_f64(mode);
        let direct = d as f32;
        match mode {
            RoundMode::Nearest => direct,
            RoundMode::Floor => {
                if (direct as f64) > d {
                    next_down_f32(direct)
                } else {
                    direct
                }
            }
            RoundMode::Ceil => {
                if (direct as f64) < d {
                    next_up_f32(direct)
                } else {
                    direct
                }
            }
            RoundMode::Zero => {
                if d > 0.0 && (direct as f64) > d {
                    next_down_f32(direct)
                } else if d < 0.0 && (direct as f64) < d {
                    next_up_f32(direct)
                } else {
                    direct
                }
            }
        }
    }

    /// The integer part (truncation toward zero), exactly.
    pub fn trunc(&self) -> BigFloat {
        match self {
            BigFloat::Finite {
                negative,
                exp,
                mant,
            } => {
                if *exp >= 0 {
                    return self.clone();
                }
                let drop = (-exp) as u64;
                let kept = mant.shr(drop);
                if kept.is_zero() {
                    BigFloat::Zero {
                        negative: *negative,
                    }
                } else {
                    BigFloat::Finite {
                        negative: *negative,
                        exp: 0,
                        mant: kept,
                    }
                }
            }
            other => other.clone(),
        }
    }

    /// Floor (largest integer not above the value), exactly.
    pub fn floor_int(&self) -> BigFloat {
        let t = self.trunc();
        if self.is_negative() && self.partial_cmp(&t) == Some(Ordering::Less) {
            BigFloat::sub(&t, &BigFloat::from_i64(1), 1 << 20, RoundMode::Nearest)
        } else {
            t
        }
    }

    /// Ceiling (smallest integer not below the value), exactly.
    pub fn ceil_int(&self) -> BigFloat {
        let t = self.trunc();
        if !self.is_negative() && self.partial_cmp(&t) == Some(Ordering::Greater) {
            BigFloat::add(&t, &BigFloat::from_i64(1), 1 << 20, RoundMode::Nearest)
        } else {
            t
        }
    }

    /// Rounds to the nearest integer, halfway cases away from zero (C `round`).
    pub fn round_int(&self) -> BigFloat {
        let half = BigFloat::from_rational(1, 2, 8, RoundMode::Nearest);
        if self.is_negative() {
            BigFloat::sub(self, &half, 1 << 20, RoundMode::Nearest).ceil_int()
        } else {
            BigFloat::add(self, &half, 1 << 20, RoundMode::Nearest).floor_int()
        }
    }

    /// True if the value is an exact (mathematical) integer.
    pub fn is_integer(&self) -> bool {
        match self {
            BigFloat::Zero { .. } => true,
            BigFloat::Finite { .. } => self.partial_cmp(&self.trunc()) == Some(Ordering::Equal),
            _ => false,
        }
    }
}

fn next_up_f32(x: f32) -> f32 {
    if x.is_nan() || x == f32::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f32::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f32::from_bits(bits + 1)
    } else {
        f32::from_bits(bits - 1)
    }
}

fn next_down_f32(x: f32) -> f32 {
    -next_up_f32(-x)
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u32 = 120;

    fn bf(x: f64) -> BigFloat {
        BigFloat::from_f64(x)
    }

    fn roundtrip(x: f64) -> f64 {
        bf(x).to_f64(RoundMode::Nearest)
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            0.1,
            1e300,
            -1e-300,
            f64::MIN_POSITIVE,
            f64::MAX,
            5e-324,
            std::f64::consts::PI,
        ] {
            assert_eq!(roundtrip(x).to_bits(), x.to_bits(), "round trip of {x}");
        }
        assert!(roundtrip(f64::NAN).is_nan());
        assert_eq!(roundtrip(f64::INFINITY), f64::INFINITY);
        assert_eq!(roundtrip(f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn add_matches_f64_on_exact_cases() {
        let cases = [
            (1.0, 2.0),
            (0.5, 0.25),
            (1e16, 1.0),
            (-3.5, 3.5),
            (1.0, -0.25),
        ];
        for (a, b) in cases {
            let sum = BigFloat::add(&bf(a), &bf(b), P, RoundMode::Nearest);
            assert_eq!(sum.to_f64(RoundMode::Nearest), a + b, "{a} + {b}");
        }
    }

    #[test]
    fn mul_div_match_f64_on_exact_cases() {
        let cases = [(3.0, 4.0), (0.5, -8.0), (1.5, 1.5), (1e10, 1e-10)];
        for (a, b) in cases {
            let prod = BigFloat::mul(&bf(a), &bf(b), P, RoundMode::Nearest);
            assert_eq!(prod.to_f64(RoundMode::Nearest), a * b, "{a} * {b}");
            let quot = BigFloat::div(&bf(a), &bf(b), P, RoundMode::Nearest);
            assert_eq!(quot.to_f64(RoundMode::Nearest), a / b, "{a} / {b}");
        }
    }

    #[test]
    fn division_rounds_correctly() {
        // 1/3 is not representable; directed roundings must bracket it.
        let lo = BigFloat::div(&bf(1.0), &bf(3.0), 53, RoundMode::Floor).to_f64(RoundMode::Floor);
        let hi = BigFloat::div(&bf(1.0), &bf(3.0), 53, RoundMode::Ceil).to_f64(RoundMode::Ceil);
        assert!(lo < hi);
        assert!(lo <= 1.0 / 3.0 && 1.0 / 3.0 <= hi);
        assert_eq!(hi, next_up(lo));
        // Nearest must agree with the hardware.
        let near =
            BigFloat::div(&bf(1.0), &bf(3.0), 53, RoundMode::Nearest).to_f64(RoundMode::Nearest);
        assert_eq!(near, 1.0 / 3.0);
    }

    fn next_up(x: f64) -> f64 {
        f64::from_bits(x.to_bits() + 1)
    }

    #[test]
    fn sqrt_matches_f64() {
        for x in [
            0.0,
            1.0,
            2.0,
            4.0,
            0.25,
            10.0,
            1e300,
            1e-300,
            std::f64::consts::PI,
        ] {
            let s = BigFloat::sqrt(&bf(x), 53, RoundMode::Nearest).to_f64(RoundMode::Nearest);
            assert_eq!(s, x.sqrt(), "sqrt({x})");
        }
        assert!(BigFloat::sqrt(&bf(-1.0), 53, RoundMode::Nearest).is_nan());
    }

    #[test]
    fn sqrt_directed_rounding_brackets() {
        let x = bf(2.0);
        let lo = BigFloat::sqrt(&x, 53, RoundMode::Floor).to_f64(RoundMode::Floor);
        let hi = BigFloat::sqrt(&x, 53, RoundMode::Ceil).to_f64(RoundMode::Ceil);
        assert!(lo <= std::f64::consts::SQRT_2 && std::f64::consts::SQRT_2 <= hi);
        assert!(hi - lo <= f64::EPSILON);
    }

    #[test]
    fn huge_exponent_gap_addition() {
        // Adding a tiny value must act as a sticky bit, not hang or lose the sign
        // of the perturbation under directed rounding.
        let big = bf(1.0);
        let tiny = bf(1e-300);
        let up = BigFloat::add(&big, &tiny, 53, RoundMode::Ceil).to_f64(RoundMode::Ceil);
        let down = BigFloat::add(&big, &tiny, 53, RoundMode::Floor).to_f64(RoundMode::Floor);
        assert!(up > 1.0);
        assert_eq!(down, 1.0);
        let down2 = BigFloat::sub(&big, &tiny, 53, RoundMode::Floor).to_f64(RoundMode::Floor);
        assert!(down2 < 1.0);
    }

    #[test]
    fn comparisons() {
        assert_eq!(bf(1.0).partial_cmp(&bf(2.0)), Some(Ordering::Less));
        assert_eq!(bf(-1.0).partial_cmp(&bf(1.0)), Some(Ordering::Less));
        assert_eq!(bf(-1.0).partial_cmp(&bf(-2.0)), Some(Ordering::Greater));
        assert_eq!(bf(0.0).partial_cmp(&bf(-0.0)), Some(Ordering::Equal));
        assert_eq!(bf(3.5).partial_cmp(&bf(3.5)), Some(Ordering::Equal));
        assert_eq!(bf(1e300).partial_cmp(&bf(1e299)), Some(Ordering::Greater));
        assert!(bf(f64::NAN).partial_cmp(&bf(1.0)).is_none());
        assert_eq!(
            bf(f64::INFINITY).partial_cmp(&bf(1e308)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn integer_operations() {
        assert_eq!(bf(2.7).trunc().to_f64(RoundMode::Nearest), 2.0);
        assert_eq!(bf(-2.7).trunc().to_f64(RoundMode::Nearest), -2.0);
        assert_eq!(bf(2.7).floor_int().to_f64(RoundMode::Nearest), 2.0);
        assert_eq!(bf(-2.7).floor_int().to_f64(RoundMode::Nearest), -3.0);
        assert_eq!(bf(2.2).ceil_int().to_f64(RoundMode::Nearest), 3.0);
        assert_eq!(bf(-2.2).ceil_int().to_f64(RoundMode::Nearest), -2.0);
        assert_eq!(bf(2.5).round_int().to_f64(RoundMode::Nearest), 3.0);
        assert_eq!(bf(-2.5).round_int().to_f64(RoundMode::Nearest), -3.0);
        assert!(bf(4.0).is_integer());
        assert!(!bf(4.5).is_integer());
    }

    #[test]
    fn f32_conversion_rounds_outward() {
        let third = BigFloat::div(&bf(1.0), &bf(3.0), 80, RoundMode::Nearest);
        let lo = third.to_f32(RoundMode::Floor);
        let hi = third.to_f32(RoundMode::Ceil);
        assert!(lo < hi);
        assert!((lo as f64) < 1.0 / 3.0 && 1.0 / 3.0 < (hi as f64));
        assert_eq!(third.to_f32(RoundMode::Nearest), 1.0f32 / 3.0f32);
    }

    #[test]
    fn overflow_and_underflow_to_f64() {
        // 2^2000 overflows f64.
        let huge = BigFloat::Finite {
            negative: false,
            exp: 2000,
            mant: BigUint::one(),
        };
        assert_eq!(huge.to_f64(RoundMode::Nearest), f64::INFINITY);
        assert_eq!(huge.to_f64(RoundMode::Floor), f64::MAX);
        let tiny = BigFloat::Finite {
            negative: false,
            exp: -3000,
            mant: BigUint::one(),
        };
        assert_eq!(tiny.to_f64(RoundMode::Nearest), 0.0);
        assert!(tiny.to_f64(RoundMode::Ceil) > 0.0);
    }

    #[test]
    fn rational_conversion() {
        let half = BigFloat::from_rational(1, 2, P, RoundMode::Nearest);
        assert_eq!(half.to_f64(RoundMode::Nearest), 0.5);
        let tenth = BigFloat::from_rational(1, 10, 53, RoundMode::Nearest);
        assert_eq!(tenth.to_f64(RoundMode::Nearest), 0.1);
        let neg = BigFloat::from_rational(-7, 4, P, RoundMode::Nearest);
        assert_eq!(neg.to_f64(RoundMode::Nearest), -1.75);
        let zero = BigFloat::from_rational(0, 5, P, RoundMode::Nearest);
        assert!(zero.is_zero());
    }

    #[test]
    fn rounding_modes_on_ties() {
        // 2^53 + 1 is exactly halfway between representable doubles 2^53 and 2^53+2.
        let v = BigFloat::Finite {
            negative: false,
            exp: 0,
            mant: BigUint::from_u128((1u128 << 53) + 1),
        };
        assert_eq!(v.to_f64(RoundMode::Nearest), 9007199254740992.0); // ties to even
        assert_eq!(v.to_f64(RoundMode::Ceil), 9007199254740994.0);
        assert_eq!(v.to_f64(RoundMode::Floor), 9007199254740992.0);
    }
}
