//! Expression-tree balancing for cheaper adaptive evaluation.
//!
//! Interval evaluation error grows with the *depth* of the expression tree:
//! each level compounds the outward rounding of its children, so a long
//! left-leaning chain `((((a+b)+c)+d)+e)` needs more working precision to
//! converge than the balanced `((a+b)+(c+d))+e` — the observation behind
//! *Balancing expression dags for more efficient lazy adaptive evaluation*
//! (Wilhelm). This module flattens maximal associative `+`/`−` and `*`/`/`
//! chains and rebuilds them as balanced binary trees, roughly halving the
//! depth of chain-heavy candidates before ground-truth evaluation.
//!
//! Balancing is a *real-equivalent* rewrite: over the reals (the semantics
//! ground truth is defined against) addition and multiplication are
//! associative and commutative, so a correctly rounded result of the balanced
//! tree equals that of the original. The rewrite preserves the left-to-right
//! order of operands (pairing only adjacent ones), and callers fall back to
//! the original tree whenever the balanced evaluation does not produce a
//! definite value, so `Nan`/`Unsamplable` classifications are decided by the
//! original tree alone.

use fpcore::{Expr, RealOp};

/// The depth of an expression tree (a leaf has depth 1).
pub fn depth(expr: &Expr) -> usize {
    match expr {
        Expr::Num(_) | Expr::Var(_) => 1,
        Expr::If(c, t, f) => 1 + depth(c).max(depth(t)).max(depth(f)),
        Expr::Op(_, args) => 1 + args.iter().map(depth).max().unwrap_or(0),
    }
}

/// A term of a flattened chain: the (recursively balanced) operand and
/// whether it appears inverted (subtracted / divided by).
struct Term {
    expr: Expr,
    inverted: bool,
}

/// Rebalances `expr` if it is at least `min_depth` deep, returning `None`
/// when the expression is shallow enough (or contains no chain) that
/// balancing would change nothing.
pub fn balance_if_deep(expr: &Expr, min_depth: usize) -> Option<Expr> {
    if depth(expr) < min_depth {
        return None;
    }
    let balanced = balance(expr);
    if &balanced == expr {
        None
    } else {
        Some(balanced)
    }
}

/// Recursively flattens and rebalances every maximal `+`/`−` and `*`/`/`
/// chain in `expr`.
pub fn balance(expr: &Expr) -> Expr {
    match expr {
        Expr::Num(_) | Expr::Var(_) => expr.clone(),
        Expr::If(c, t, f) => Expr::If(
            Box::new(balance(c)),
            Box::new(balance(t)),
            Box::new(balance(f)),
        ),
        Expr::Op(op, args) => match op {
            RealOp::Add | RealOp::Sub | RealOp::Neg => {
                let mut terms = Vec::new();
                flatten_additive(expr, false, &mut terms);
                if terms.len() >= 3 {
                    rebuild_additive(terms)
                } else {
                    rebuild_node(*op, args)
                }
            }
            RealOp::Mul | RealOp::Div => {
                let mut terms = Vec::new();
                flatten_multiplicative(expr, false, &mut terms);
                if terms.len() >= 3 {
                    rebuild_multiplicative(terms)
                } else {
                    rebuild_node(*op, args)
                }
            }
            _ => rebuild_node(*op, args),
        },
    }
}

fn rebuild_node(op: RealOp, args: &[Expr]) -> Expr {
    Expr::Op(op, args.iter().map(balance).collect())
}

fn flatten_additive(expr: &Expr, inverted: bool, out: &mut Vec<Term>) {
    match expr {
        Expr::Op(RealOp::Add, args) if args.len() == 2 => {
            flatten_additive(&args[0], inverted, out);
            flatten_additive(&args[1], inverted, out);
        }
        Expr::Op(RealOp::Sub, args) if args.len() == 2 => {
            flatten_additive(&args[0], inverted, out);
            flatten_additive(&args[1], !inverted, out);
        }
        Expr::Op(RealOp::Neg, args) if args.len() == 1 => {
            flatten_additive(&args[0], !inverted, out);
        }
        _ => out.push(Term {
            expr: balance(expr),
            inverted,
        }),
    }
}

fn flatten_multiplicative(expr: &Expr, inverted: bool, out: &mut Vec<Term>) {
    match expr {
        Expr::Op(RealOp::Mul, args) if args.len() == 2 => {
            flatten_multiplicative(&args[0], inverted, out);
            flatten_multiplicative(&args[1], inverted, out);
        }
        Expr::Op(RealOp::Div, args) if args.len() == 2 => {
            flatten_multiplicative(&args[0], inverted, out);
            flatten_multiplicative(&args[1], !inverted, out);
        }
        _ => out.push(Term {
            expr: balance(expr),
            inverted,
        }),
    }
}

/// Combines adjacent terms pairwise until one remains, producing a balanced
/// tree while preserving left-to-right operand order.
fn reduce_pairwise(mut terms: Vec<Term>, combine: impl Fn(Term, Term) -> Term) -> Term {
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        let mut iter = terms.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        terms = next;
    }
    terms.into_iter().next().expect("at least one term")
}

fn rebuild_additive(terms: Vec<Term>) -> Expr {
    let combined = reduce_pairwise(terms, |a, b| match (a.inverted, b.inverted) {
        (false, false) => Term {
            expr: Expr::Op(RealOp::Add, vec![a.expr, b.expr]),
            inverted: false,
        },
        (false, true) => Term {
            expr: Expr::Op(RealOp::Sub, vec![a.expr, b.expr]),
            inverted: false,
        },
        (true, false) => Term {
            expr: Expr::Op(RealOp::Sub, vec![b.expr, a.expr]),
            inverted: false,
        },
        (true, true) => Term {
            expr: Expr::Op(RealOp::Add, vec![a.expr, b.expr]),
            inverted: true,
        },
    });
    if combined.inverted {
        Expr::Op(RealOp::Neg, vec![combined.expr])
    } else {
        combined.expr
    }
}

fn rebuild_multiplicative(terms: Vec<Term>) -> Expr {
    let combined = reduce_pairwise(terms, |a, b| match (a.inverted, b.inverted) {
        (false, false) => Term {
            expr: Expr::Op(RealOp::Mul, vec![a.expr, b.expr]),
            inverted: false,
        },
        (false, true) => Term {
            expr: Expr::Op(RealOp::Div, vec![a.expr, b.expr]),
            inverted: false,
        },
        (true, false) => Term {
            expr: Expr::Op(RealOp::Div, vec![b.expr, a.expr]),
            inverted: false,
        },
        (true, true) => Term {
            expr: Expr::Op(RealOp::Mul, vec![a.expr, b.expr]),
            inverted: true,
        },
    });
    if combined.inverted {
        Expr::Op(
            RealOp::Div,
            vec![Expr::Num(fpcore::Constant::integer(1)), combined.expr],
        )
    } else {
        combined.expr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{Evaluator, GroundTruth};
    use fpcore::{parse_expr, FpType, Symbol};

    fn chain(op: &str, n: usize) -> Expr {
        // ((((x0 op x1) op x2) ...) op xn)
        let mut src = "x0".to_string();
        for i in 1..=n {
            src = format!("({op} {src} x{i})");
        }
        parse_expr(&src).unwrap()
    }

    fn env(n: usize) -> Vec<(Symbol, f64)> {
        #[allow(clippy::cast_precision_loss)]
        (0..=n)
            .map(|i| (Symbol::new(&format!("x{i}")), 1.0 + i as f64 / 7.0))
            .collect()
    }

    #[test]
    fn balancing_halves_chain_depth() {
        for op in ["+", "-", "*", "/"] {
            let e = chain(op, 15);
            assert_eq!(depth(&e), 16);
            let b = balance(&e);
            assert!(
                depth(&b) <= 5,
                "{op}-chain depth {} not balanced",
                depth(&b)
            );
        }
    }

    #[test]
    fn balanced_ground_truth_matches_original() {
        let ev = Evaluator::new();
        for op in ["+", "-", "*", "/"] {
            for n in [3, 7, 12] {
                let e = chain(op, n);
                let b = balance(&e);
                let env = env(n);
                let truth = ev.eval(&e, &env, FpType::Binary64);
                let balanced = ev.eval(&b, &env, FpType::Binary64);
                assert_eq!(truth, balanced, "({op} chain, {n} terms)");
                assert!(matches!(truth, GroundTruth::Value(_)));
            }
        }
    }

    #[test]
    fn mixed_chains_and_nested_structure() {
        let e = parse_expr("(- (+ a (* b (+ c (+ d (+ e f))))) (+ g (+ h (+ i j))))").unwrap();
        let b = balance(&e);
        // The deep multiplicative factor dominates both trees; balancing must
        // not make anything deeper.
        assert!(depth(&b) <= depth(&e));
        let ev = Evaluator::new();
        let vars: Vec<(Symbol, f64)> = "abcdefghij"
            .chars()
            .enumerate()
            .map(|(i, c)| {
                #[allow(clippy::cast_precision_loss)]
                (Symbol::new(&c.to_string()), 0.3 + i as f64)
            })
            .collect();
        assert_eq!(
            ev.eval(&e, &vars, FpType::Binary64),
            ev.eval(&b, &vars, FpType::Binary64)
        );
    }

    #[test]
    fn shallow_expressions_are_untouched() {
        let e = parse_expr("(+ (* x y) 1)").unwrap();
        assert_eq!(balance_if_deep(&e, 8), None);
        let deep_but_chainless =
            parse_expr("(sin (cos (tan (exp (log (sqrt (fabs x)))))))").unwrap();
        assert_eq!(balance_if_deep(&deep_but_chainless, 8), None);
    }

    #[test]
    fn leading_negation_chains() {
        // -a - b - c - d flattens to all-inverted terms.
        let e = parse_expr("(- (- (- (- a) b) c) d)").unwrap();
        let b = balance(&e);
        let ev = Evaluator::new();
        let vars: Vec<(Symbol, f64)> = [("a", 1.5), ("b", 2.25), ("c", -0.5), ("d", 10.0)]
            .iter()
            .map(|(n, v)| (Symbol::new(n), *v))
            .collect();
        assert_eq!(
            ev.eval(&e, &vars, FpType::Binary64),
            ev.eval(&b, &vars, FpType::Binary64)
        );
    }
}
