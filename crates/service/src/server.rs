//! The compilation daemon: accept loop, routing, request coalescing, and the
//! session (prepared-state) cache.
//!
//! # Request lifecycle
//!
//! A `POST /compile` request is keyed by [`content_key`] — a stable hash of
//! the request's semantic content. The handler then walks, in order:
//!
//! 1. the **result store** ([`crate::store`]): memory hit, then disk hit;
//! 2. the **flight map**: if the same key is already being compiled (for any
//!    client), the request *coalesces* onto that in-flight job instead of
//!    starting a second identical search;
//! 3. the **worker pool** ([`crate::pool`]): a new job is queued under the
//!    requesting client's name (fair round-robin across clients) and the
//!    handler blocks on its flight until the job fills it.
//!
//! Compile jobs run through [`chassis::Session::compile_many_with`], which
//! already isolates panics per job ([`CompileError::Internal`]) — the daemon
//! inherits the library's fault isolation rather than reimplementing it.
//! Sessions are cached per `(config, seed)`, so every benchmark's sampling
//! and ground truth run once and are shared across all targets and requests
//! (the `Prepared`-level cache lives inside `Session`).
//!
//! Failed compilations are **not** stored: errors are cheap to recompute,
//! and the interesting ones (panics, resource exhaustion) are not
//! deterministic facts about the request key. They are still shared with
//! coalesced waiters of the same in-flight job.

// The daemon must not bring itself down on a bad request: no unwraps on the
// serving path (the tests below are exempt).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chassis::{
    Budget, CancelToken, CompilationResult, CompileError, Config, ErrorKind, Implementation,
    SearchControl, Session,
};
use fpcore::hash::{canonical_text, ContentHasher};
use fpcore::FPCore;
use targets::builtin;
use targets::target::Target;

use crate::http::{read_request, reason, write_response, Request};
use crate::json::{hex_bits, Json};
use crate::pool::{JobOutcome, Pool};
use crate::store::{ResultStore, StoreConfig, StoreHit};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Handle::addr`]).
    pub addr: String,
    /// Compile worker threads.
    pub workers: usize,
    /// In-memory result cache capacity (entries).
    pub memory_capacity: usize,
    /// Persistent store directory (`None`: memory-only).
    pub disk_dir: Option<PathBuf>,
    /// Total queued-job bound; beyond it, `POST /compile` answers 503.
    pub max_queued: usize,
    /// Cached `Session`s (one per distinct `(config, seed)` pair).
    pub max_sessions: usize,
    /// Idle keep-alive connections are dropped after this long.
    pub read_timeout: Duration,
    /// Once a request's first byte arrives, the whole request (line, headers,
    /// body) must arrive within this long — a slowloris client dribbling
    /// bytes gets a 408 instead of pinning the connection thread.
    pub header_timeout: Duration,
    /// Socket write timeout, so a client that stops reading cannot pin a
    /// connection thread mid-response.
    pub write_timeout: Duration,
    /// How often the watchdog scans in-flight jobs.
    pub watchdog_interval: Duration,
    /// A job with a deadline is written off as stuck once it has been running
    /// for `stuck_multiple ×` its deadline budget (cooperative cancellation
    /// should have ended it right after the deadline itself).
    pub stuck_multiple: u32,
    /// A job *without* a deadline is written off as stuck after this long.
    pub stuck_after: Duration,
    /// Consecutive deadline expiries from one client before its circuit
    /// breaker opens.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects that client's compiles (503).
    pub breaker_cooldown: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            memory_capacity: 1024,
            disk_dir: None,
            max_queued: 256,
            max_sessions: 8,
            read_timeout: Duration::from_secs(30),
            header_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(30),
            watchdog_interval: Duration::from_millis(50),
            stuck_multiple: 4,
            stuck_after: Duration::from_secs(600),
            breaker_threshold: 4,
            breaker_cooldown: Duration::from_secs(2),
        }
    }
}

/// The stable content key of a compile request: everything that can
/// influence the result, nothing that cannot. See `docs/SERVICE.md` for the
/// exact field list (the key algorithm is part of the store format).
pub fn content_key(core: &FPCore, target: &Target, seed: u64, config_name: &str) -> String {
    let config = named_config(config_name).unwrap_or_default();
    let mut h = ContentHasher::new();
    h.str("chassis-request 1");
    h.str(&canonical_text(core));
    h.u128(target.fingerprint());
    h.u64(seed);
    h.u128(config.fingerprint());
    h.hex_digest()
}

/// The named configuration profiles the wire protocol exposes.
pub fn named_config(name: &str) -> Option<Config> {
    match name {
        "default" => Some(Config::default()),
        "fast" => Some(Config::fast()),
        _ => None,
    }
}

/// The HTTP status for a typed compile error, mirroring the
/// [`ErrorKind`] taxonomy: client-fixable input problems are 4xx, capacity
/// problems 503, daemon bugs 500.
pub fn status_for(kind: ErrorKind) -> u16 {
    match kind {
        // The expression itself cannot be sampled / ground-truthed: the
        // request is well-formed but unprocessable.
        ErrorKind::Sampling | ErrorKind::GroundTruth => 422,
        ErrorKind::Unsupported => 501,
        ErrorKind::ResourceExhausted => 503,
        ErrorKind::Internal => 500,
    }
}

/// One in-flight compile job; concurrent requests for the same key block on
/// this instead of starting duplicate searches. Waiters are counted: when
/// the last one abandons (its deadline expired or its client hung up), the
/// flight's [`CancelToken`] fires and the underlying search winds down at
/// its next cancellation point, freeing the worker for live requests.
struct Flight {
    done: Mutex<Option<(u16, String)>>,
    cv: Condvar,
    waiters: AtomicUsize,
    cancel: CancelToken,
}

/// Why [`Flight::wait_until`] returned without an answer.
enum Abandoned {
    /// The waiter's own request deadline expired.
    Deadline,
    /// The waiter's client disconnected.
    ClientGone,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
            waiters: AtomicUsize::new(0),
            cancel: CancelToken::new(),
        }
    }

    /// Fills the flight. First writer wins — the watchdog and the job itself
    /// can race, and every waiter must see exactly one answer. Returns
    /// whether this call was the one that filled it.
    fn fill(&self, status: u16, body: String) -> bool {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        if done.is_some() {
            return false;
        }
        *done = Some((status, body));
        self.cv.notify_all();
        true
    }

    /// Registers one waiter (call before releasing the flight-map lock, so
    /// the count can never be observed at zero while a request still cares).
    fn join(&self) {
        self.waiters.fetch_add(1, Ordering::SeqCst);
    }

    /// One waiter gives up or is answered. The last waiter out of an
    /// unanswered flight cancels the underlying search — nobody is left to
    /// read its result.
    fn leave(&self) {
        if self.waiters.fetch_sub(1, Ordering::SeqCst) == 1 {
            let done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
            if done.is_none() {
                self.cancel.cancel();
            }
        }
    }

    /// Blocks until filled, the waiter's deadline expires, or its client
    /// disconnects (probed between condvar waits). The 600 s cap is a safety
    /// net: jobs complete, are cancelled, or are reclaimed by the watchdog,
    /// so a full wait means a bug.
    fn wait_until(
        &self,
        deadline: Option<Instant>,
        client_gone: &dyn Fn() -> bool,
    ) -> Result<(u16, String), Abandoned> {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        let started = Instant::now();
        while done.is_none() {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(Abandoned::Deadline);
            }
            let (next, _) = self
                .cv
                .wait_timeout(done, Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner);
            done = next;
            if done.is_some() {
                break;
            }
            if client_gone() {
                return Err(Abandoned::ClientGone);
            }
            if started.elapsed() >= Duration::from_secs(600) {
                return Ok((500, error_body(None, "internal", "compile job timed out")));
            }
        }
        match done.as_ref() {
            Some((status, body)) => Ok((*status, body.clone())),
            None => Ok((500, error_body(None, "internal", "flight signalled empty"))),
        }
    }
}

struct SessionCache {
    entries: HashMap<(String, u64), (u64, Arc<Session>)>,
    tick: u64,
}

/// Counters surfaced on `GET /stats`.
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    compiles: AtomicU64,
    coalesced: AtomicU64,
    bad_requests: AtomicU64,
    queue_rejected: AtomicU64,
    accept_drops: AtomicU64,
    panics_recovered: AtomicU64,
    /// Searches cancelled mid-flight (deadline expiry or all waiters gone).
    cancelled: AtomicU64,
    /// Requests shed at admission: their deadline could not survive the queue.
    deadline_shed: AtomicU64,
    /// Stuck workers written off and replaced by the watchdog.
    watchdog_fired: AtomicU64,
    /// Compiles rejected because the client's circuit breaker was open.
    breaker_rejected: AtomicU64,
    jobs_failed: [AtomicU64; 5],
}

fn kind_index(kind: ErrorKind) -> usize {
    match kind {
        ErrorKind::Sampling => 0,
        ErrorKind::Unsupported => 1,
        ErrorKind::ResourceExhausted => 2,
        ErrorKind::GroundTruth => 3,
        ErrorKind::Internal => 4,
    }
}

const KIND_NAMES: [&str; 5] = [
    "sampling",
    "unsupported",
    "resource-exhausted",
    "ground-truth",
    "internal",
];

/// Watchdog bookkeeping for one submitted compile job.
struct InflightJob {
    key: String,
    client: String,
    flight: Arc<Flight>,
    accepted: Instant,
    deadline: Option<Instant>,
    /// When a worker actually picked the job up (`None` while queued).
    started: Mutex<Option<Instant>>,
    /// The deadline 504 has been delivered (watchdog or dequeue fast-path).
    expired: AtomicBool,
    /// The watchdog wrote this worker off as stuck: its pool slot was
    /// replaced, and the worker retires when (if) the job finally returns.
    abandoned: AtomicBool,
}

/// Per-client circuit breaker: repeated consecutive deadline expiries open
/// it, and an open breaker sheds that client's compiles for a cooldown.
#[derive(Default)]
struct Breaker {
    consecutive_expiries: u32,
    open_until: Option<Instant>,
}

struct ServerState {
    config: ServerConfig,
    local_addr: SocketAddr,
    store: ResultStore,
    pool: Mutex<Option<Pool>>,
    flights: Mutex<HashMap<String, Arc<Flight>>>,
    sessions: Mutex<SessionCache>,
    counters: Counters,
    shutdown: AtomicBool,
    /// Jobs registered for the watchdog, keyed by a monotonic id.
    inflight: Mutex<HashMap<u64, Arc<InflightJob>>>,
    next_job: AtomicU64,
    breakers: Mutex<HashMap<String, Breaker>>,
    started: Instant,
    /// EWMA of successful job durations (nanoseconds), for the admission
    /// controller's queue-wait estimate. Zero until the first completion.
    avg_job_nanos: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ServerState {
    /// The session for a `(config, seed)` pair, created on first use. The
    /// cache is bounded: each session holds prepared benchmarks (samples +
    /// ground truth), so unbounded growth would be a memory leak with a
    /// per-seed amplification factor.
    fn session(&self, config_name: &str, seed: u64) -> Option<Arc<Session>> {
        let config = named_config(config_name)?.with_seed(seed);
        let mut cache = lock(&self.sessions);
        cache.tick += 1;
        let tick = cache.tick;
        let key = (config_name.to_owned(), seed);
        if let Some((last_use, session)) = cache.entries.get_mut(&key) {
            *last_use = tick;
            return Some(Arc::clone(session));
        }
        let session = Arc::new(Session::new(config));
        cache.entries.insert(key, (tick, Arc::clone(&session)));
        while cache.entries.len() > self.config.max_sessions.max(1) {
            let Some(oldest) = cache
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            cache.entries.remove(&oldest);
        }
        Some(session)
    }

    fn failed_job(&self, kind: ErrorKind) {
        self.counters.jobs_failed[kind_index(kind)].fetch_add(1, Ordering::Relaxed);
    }

    /// Registers a job with the watchdog; returns its registry id.
    fn track(&self, job: Arc<InflightJob>) -> u64 {
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        lock(&self.inflight).insert(id, job);
        id
    }

    fn untrack(&self, id: u64) {
        lock(&self.inflight).remove(&id);
    }

    /// Estimated wait before a newly queued job starts running: queue depth
    /// over worker count, times the EWMA of past job durations. Zero until
    /// the first job completes (optimistic: with no history, admit).
    fn estimated_queue_wait(&self) -> Duration {
        let queued = lock(&self.pool).as_ref().map_or(0, Pool::queued);
        if queued == 0 {
            return Duration::ZERO;
        }
        let avg = Duration::from_nanos(self.avg_job_nanos.load(Ordering::Relaxed));
        avg.mul_f64(queued as f64 / self.config.workers.max(1) as f64)
    }

    fn note_job_duration(&self, took: Duration) {
        let nanos = u64::try_from(took.as_nanos()).unwrap_or(u64::MAX);
        let old = self.avg_job_nanos.load(Ordering::Relaxed);
        let next = if old == 0 {
            nanos
        } else {
            (old / 8).saturating_mul(7).saturating_add(nanos / 8)
        };
        self.avg_job_nanos.store(next.max(1), Ordering::Relaxed);
    }

    /// Whether `client`'s breaker is open; returns the remaining cooldown in
    /// whole seconds (at least 1) when it is. An elapsed cooldown closes the
    /// breaker and resets its expiry streak.
    fn breaker_open(&self, client: &str) -> Option<u64> {
        let mut breakers = lock(&self.breakers);
        let breaker = breakers.get_mut(client)?;
        let until = breaker.open_until?;
        let now = Instant::now();
        if now >= until {
            breaker.open_until = None;
            breaker.consecutive_expiries = 0;
            return None;
        }
        Some((until - now).as_secs().max(1))
    }

    /// One deadline expiry for `client`; enough in a row trips its breaker.
    fn note_expiry(&self, client: &str) {
        let mut breakers = lock(&self.breakers);
        let breaker = breakers.entry(client.to_owned()).or_default();
        breaker.consecutive_expiries += 1;
        if breaker.consecutive_expiries >= self.config.breaker_threshold.max(1) {
            breaker.open_until = Some(Instant::now() + self.config.breaker_cooldown);
        }
    }

    /// A completed (uncancelled) compile for `client` resets its breaker.
    fn note_success(&self, client: &str) {
        lock(&self.breakers).remove(client);
    }
}

/// Removes `key → flight` from the flight map iff it still maps to this
/// exact flight; a newer flight for the same key keeps its own entry.
fn detach_flight(state: &ServerState, key: &str, flight: &Arc<Flight>) {
    let mut flights = lock(&state.flights);
    if flights.get(key).is_some_and(|f| Arc::ptr_eq(f, flight)) {
        flights.remove(key);
    }
}

/// A running daemon. Obtained from [`start`]; used in-process by the tests
/// and the replay bench, and by `serve` (the CLI binary).
pub struct Handle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Handle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and blocks until the accept loop and every worker
    /// have exited. Queued jobs are drained first; flights that still have
    /// waiters after the drain are filled with 503.
    pub fn stop(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        self.join_inner();
    }

    /// Blocks until the daemon shuts down (via [`Handle::stop`] from another
    /// thread or a `POST /shutdown` request), then drains and joins.
    pub fn wait(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        if let Some(pool) = lock(&self.state.pool).take() {
            pool.shutdown();
        }
        // Any flight not filled by the drain (submitted after shutdown won a
        // race, or its job was lost) must not strand its waiters.
        let leftovers: Vec<Arc<Flight>> =
            lock(&self.state.flights).drain().map(|(_, f)| f).collect();
        for flight in leftovers {
            flight.fill(
                503,
                error_body(None, "resource-exhausted", "daemon shut down"),
            );
        }
    }
}

/// Starts the daemon.
///
/// # Errors
///
/// Propagates binding or store-directory errors.
pub fn start(config: ServerConfig) -> std::io::Result<Handle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let store = ResultStore::open(&StoreConfig {
        memory_capacity: config.memory_capacity,
        disk_dir: config.disk_dir.clone(),
    })?;
    let pool = Pool::new(config.workers, config.max_queued);
    let state = Arc::new(ServerState {
        config,
        local_addr: addr,
        store,
        pool: Mutex::new(Some(pool)),
        flights: Mutex::new(HashMap::new()),
        sessions: Mutex::new(SessionCache {
            entries: HashMap::new(),
            tick: 0,
        }),
        counters: Counters::default(),
        shutdown: AtomicBool::new(false),
        inflight: Mutex::new(HashMap::new()),
        next_job: AtomicU64::new(0),
        breakers: Mutex::new(HashMap::new()),
        started: Instant::now(),
        avg_job_nanos: AtomicU64::new(0),
    });
    let accept_state = Arc::clone(&state);
    let accept = std::thread::Builder::new()
        .name("chassis-accept".to_owned())
        .spawn(move || accept_loop(&listener, &accept_state))?;
    let watchdog_state = Arc::clone(&state);
    let watchdog = std::thread::Builder::new()
        .name("chassis-watchdog".to_owned())
        .spawn(move || watchdog_loop(&watchdog_state))?;
    Ok(Handle {
        addr,
        state,
        accept: Some(accept),
        watchdog: Some(watchdog),
    })
}

/// Scans in-flight jobs every [`ServerConfig::watchdog_interval`]:
///
/// - a job past its **deadline** gets its 504 delivered immediately (waiters
///   unblock now, not when the worker notices) and its search cancelled;
/// - a job running **stuck-long** (a hard multiple of its deadline budget,
///   or [`ServerConfig::stuck_after`] without one) is written off: its pool
///   slot is replaced so capacity recovers even if the worker never returns.
fn watchdog_loop(state: &Arc<ServerState>) {
    while !state.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(state.config.watchdog_interval);
        let now = Instant::now();
        let jobs: Vec<Arc<InflightJob>> = lock(&state.inflight).values().map(Arc::clone).collect();
        let mut lost = 0usize;
        for job in jobs {
            if let Some(deadline) = job.deadline {
                if now >= deadline && !job.expired.swap(true, Ordering::SeqCst) {
                    job.flight.cancel.cancel();
                    if job.flight.fill(
                        504,
                        error_body(
                            Some(&job.key),
                            "deadline",
                            "deadline expired before completion",
                        ),
                    ) {
                        detach_flight(state, &job.key, &job.flight);
                    }
                    state.note_expiry(&job.client);
                }
            }
            let Some(started) = *lock(&job.started) else {
                continue; // still queued; its worker is not wedged
            };
            let allowed = match job.deadline {
                Some(deadline) => deadline
                    .saturating_duration_since(job.accepted)
                    .saturating_mul(state.config.stuck_multiple.max(2))
                    .max(state.config.watchdog_interval.saturating_mul(4)),
                None => state.config.stuck_after,
            };
            if now.saturating_duration_since(started) > allowed
                && !job.abandoned.swap(true, Ordering::SeqCst)
            {
                job.flight.cancel.cancel();
                let (status, kind) = if job.deadline.is_some() {
                    (504, "deadline")
                } else {
                    (503, "cancelled")
                };
                if job.flight.fill(
                    status,
                    error_body(Some(&job.key), kind, "job reclaimed by the watchdog"),
                ) {
                    detach_flight(state, &job.key, &job.flight);
                }
                state
                    .counters
                    .watchdog_fired
                    .fetch_add(1, Ordering::Relaxed);
                lost += 1;
            }
        }
        if lost > 0 {
            if let Some(pool) = lock(&state.pool).as_ref() {
                for _ in 0..lost {
                    pool.note_worker_lost();
                }
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if state.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // The accept fault point simulates a flaky front end: an abort drops
        // exactly this connection; a panic is caught here so the accept
        // thread — the daemon's single point of failure — survives.
        match catch_unwind(AssertUnwindSafe(|| fault::point("service.accept"))) {
            Ok(false) => {}
            Ok(true) => {
                state.counters.accept_drops.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            Err(_) => {
                state
                    .counters
                    .panics_recovered
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
        }
        let conn_state = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("chassis-conn".to_owned())
            .spawn(move || connection_loop(stream, &conn_state));
        drop(spawned);
    }
}

/// A routed response: status, JSON body, and an optional explicit
/// `Retry-After` (seconds). Overload answers (503/504) without an explicit
/// value still get `Retry-After: 1` at write time.
struct Reply {
    status: u16,
    body: String,
    retry_after: Option<u64>,
}

impl Reply {
    fn new(status: u16, body: String) -> Reply {
        Reply {
            status,
            body,
            retry_after: None,
        }
    }

    fn retry(status: u16, body: String, after: u64) -> Reply {
        Reply {
            status,
            body,
            retry_after: Some(after),
        }
    }
}

/// Whether the connection's client has gone away, probed with a
/// non-blocking peek: a closed or reset socket reports gone; a merely idle
/// one (or a pipelining one with bytes in flight) does not.
fn client_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut byte = [0u8; 1];
    let gone = match stream.peek(&mut byte) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => e.kind() != std::io::ErrorKind::WouldBlock,
    };
    let _ = stream.set_nonblocking(false);
    gone
}

fn connection_loop(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let Ok(probe_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        // Wait (up to the idle read timeout) for the request's first byte,
        // then hold the whole request to the header budget: a slowloris
        // client dribbling a byte per read-timeout window gets a 408 instead
        // of pinning this thread indefinitely.
        match reader.fill_buf() {
            Ok([]) | Err(_) => return,
            Ok(_) => {}
        }
        let header_deadline = Instant::now() + state.config.header_timeout;
        let request = match read_request(&mut reader, Some(header_deadline)) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) => {
                if let Some((status, why)) = e.status() {
                    let body = error_body(None, "bad-request", why);
                    let _ = write_response(
                        &mut write_half,
                        status,
                        reason(status),
                        "application/json",
                        body.as_bytes(),
                        false,
                        &[],
                    );
                }
                return;
            }
        };
        let keep_alive = request.keep_alive && !state.shutdown.load(Ordering::SeqCst);
        let probe = || client_gone(&probe_half);
        // Route under a panic boundary: a handler bug answers 500 and keeps
        // the daemon (and even this connection) alive.
        let reply = match catch_unwind(AssertUnwindSafe(|| route(&request, state, &probe))) {
            Ok(reply) => reply,
            Err(_) => {
                state
                    .counters
                    .panics_recovered
                    .fetch_add(1, Ordering::Relaxed);
                Reply::new(
                    500,
                    error_body(None, "internal", "request handler panicked"),
                )
            }
        };
        // Every overload answer carries a Retry-After, so a well-behaved
        // client backs off instead of hammering.
        let retry_after = reply
            .retry_after
            .or_else(|| (reply.status == 503 || reply.status == 504).then_some(1));
        let extra: Vec<(&str, String)> = retry_after
            .map(|secs| ("Retry-After", secs.to_string()))
            .into_iter()
            .collect();
        if write_response(
            &mut write_half,
            reply.status,
            reason(reply.status),
            "application/json",
            reply.body.as_bytes(),
            keep_alive,
            &extra,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

fn route(request: &Request, state: &Arc<ServerState>, client_gone: &dyn Fn() -> bool) -> Reply {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Reply::new(200, "{\"status\":\"ok\"}".to_owned()),
        ("GET", "/stats") => Reply::new(200, stats_body(state)),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            // Unblock our own accept loop so `Handle::wait` returns.
            let _ = TcpStream::connect(state.local_addr);
            Reply::new(200, "{\"status\":\"shutting-down\"}".to_owned())
        }
        ("POST", "/compile") => handle_compile(request, state, client_gone),
        ("GET", path) if path.starts_with("/result/") => {
            handle_result(&path["/result/".len()..], state)
        }
        (_, "/healthz" | "/stats" | "/compile" | "/shutdown") => {
            Reply::new(405, error_body(None, "bad-request", "method not allowed"))
        }
        _ => Reply::new(404, error_body(None, "not-found", "no such route")),
    }
}

fn handle_result(key: &str, state: &Arc<ServerState>) -> Reply {
    if key.len() != 32 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Reply::new(
            400,
            error_body(None, "bad-request", "keys are 32 hex characters"),
        );
    }
    match state.store.get(key) {
        Some((body, hit)) => Reply::new(200, with_cache(&body, cache_tag(hit))),
        None => Reply::new(404, error_body(Some(key), "not-found", "no stored result")),
    }
}

fn cache_tag(hit: StoreHit) -> &'static str {
    match hit {
        StoreHit::Memory => "memory",
        StoreHit::Disk => "disk",
    }
}

fn handle_compile(
    request: &Request,
    state: &Arc<ServerState>,
    client_gone: &dyn Fn() -> bool,
) -> Reply {
    let received = Instant::now();
    let bad = |message: &str| {
        state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        Reply::new(400, error_body(None, "bad-request", message))
    };
    let Ok(body_text) = std::str::from_utf8(&request.body) else {
        return bad("body is not utf-8");
    };
    let doc = match Json::parse(body_text) {
        Ok(doc) => doc,
        Err(e) => return bad(&format!("invalid json: {e}")),
    };
    let Some(fpcore_text) = doc.get("fpcore").and_then(Json::as_str) else {
        return bad("missing required string field \"fpcore\"");
    };
    let Some(target_name) = doc.get("target").and_then(Json::as_str) else {
        return bad("missing required string field \"target\"");
    };
    let seed = match doc.get("seed") {
        None => Config::default().seed,
        Some(v) => match v.as_u64() {
            Some(seed) => seed,
            None => return bad("\"seed\" must be a non-negative integer"),
        },
    };
    let config_name = match doc.get("config") {
        None => "fast",
        Some(v) => match v.as_str() {
            Some(name) => name,
            None => return bad("\"config\" must be a string"),
        },
    };
    if named_config(config_name).is_none() {
        return bad("unknown config (expected \"default\" or \"fast\")");
    }
    let client = doc
        .get("client")
        .and_then(Json::as_str)
        .unwrap_or("anonymous");
    // The end-to-end deadline: `deadline_ms` in the body, `x-deadline-ms` as
    // a header fallback, measured from request receipt. It becomes an
    // admission check, a wall-clock cap on the search, and a cancel signal.
    let deadline_ms = match doc.get("deadline_ms") {
        Some(v) => match v.as_u64() {
            Some(ms) => Some(ms),
            None => return bad("\"deadline_ms\" must be a non-negative integer (milliseconds)"),
        },
        None => request.header("x-deadline-ms").and_then(|v| v.parse().ok()),
    };
    let deadline = deadline_ms.map(|ms| received + Duration::from_millis(ms));
    let core = match fpcore::parse_fpcore(fpcore_text) {
        Ok(core) => core,
        Err(e) => return bad(&format!("invalid fpcore: {e}")),
    };
    let Some(target) = builtin::by_name(target_name) else {
        return bad(&format!("unknown target {target_name:?}"));
    };

    // A client whose deadlines keep expiring gets shed outright until its
    // breaker cools down — protecting everyone else's queue time.
    if let Some(cooldown) = state.breaker_open(client) {
        state
            .counters
            .breaker_rejected
            .fetch_add(1, Ordering::Relaxed);
        return Reply::retry(
            503,
            error_body(
                None,
                "breaker-open",
                "circuit breaker open: too many consecutive deadline expiries",
            ),
            cooldown,
        );
    }

    let key = content_key(&core, &target, seed, config_name);

    // Level 1 + 2: the content-addressed store (cheap — served regardless of
    // how tight the deadline is).
    if let Some((body, hit)) = state.store.get(&key) {
        return Reply::new(200, with_cache(&body, cache_tag(hit)));
    }

    // Admission control: if the queue is long enough that this job cannot
    // plausibly start before its deadline, shed it now (504, never cached)
    // instead of letting it hold a queue slot it can never use.
    if let Some(deadline) = deadline {
        let est = state.estimated_queue_wait();
        if Instant::now() + est >= deadline {
            state.counters.deadline_shed.fetch_add(1, Ordering::Relaxed);
            state.note_expiry(client);
            return Reply::retry(
                504,
                error_body(
                    Some(&key),
                    "deadline",
                    "deadline expires before the job could start",
                ),
                est.as_secs().clamp(1, 30),
            );
        }
    }

    // Level 3: coalesce onto an in-flight job for the same key. Joining
    // under the map lock keeps the waiter count from dipping to zero (and
    // cancelling the job) while this request still cares.
    let flight = {
        let mut flights = lock(&state.flights);
        if let Some(existing) = flights.get(&key) {
            let existing = Arc::clone(existing);
            existing.join();
            drop(flights);
            state.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            return finish_wait(
                state,
                &existing,
                deadline,
                client_gone,
                client,
                &key,
                "coalesced",
            );
        }
        let flight = Arc::new(Flight::new());
        flight.join();
        flights.insert(key.clone(), Arc::clone(&flight));
        flight
    };

    // Level 4: a fresh compile job on the worker pool, registered with the
    // watchdog before submission so even a queued job has a deadline escort.
    let job = Arc::new(InflightJob {
        key: key.clone(),
        client: client.to_owned(),
        flight: Arc::clone(&flight),
        accepted: received,
        deadline,
        started: Mutex::new(None),
        expired: AtomicBool::new(false),
        abandoned: AtomicBool::new(false),
    });
    let id = state.track(Arc::clone(&job));
    let job_state = Arc::clone(state);
    let job_config = config_name.to_owned();
    let job_target = target;
    let submitted = {
        let pool = lock(&state.pool);
        match pool.as_ref() {
            Some(pool) => pool.submit(
                client,
                Box::new(move || {
                    compile_job(&job_state, id, &job, &core, &job_target, seed, &job_config)
                }),
            ),
            None => Err(crate::pool::PoolFull),
        }
    };
    if submitted.is_err() {
        state.untrack(id);
        detach_flight(state, &key, &flight);
        state
            .counters
            .queue_rejected
            .fetch_add(1, Ordering::Relaxed);
        let body = error_body(Some(&key), "resource-exhausted", "compile queue is full");
        flight.fill(503, body.clone());
        flight.leave();
        return Reply::retry(503, body, 1);
    }
    state.counters.compiles.fetch_add(1, Ordering::Relaxed);
    finish_wait(state, &flight, deadline, client_gone, client, &key, "miss")
}

/// Waits on a flight as one counted waiter, honouring the request's own
/// deadline and the client-liveness probe. The waiter always [`leave`]s —
/// the last one out of an unanswered flight cancels the search.
fn finish_wait(
    state: &Arc<ServerState>,
    flight: &Arc<Flight>,
    deadline: Option<Instant>,
    client_gone: &dyn Fn() -> bool,
    client: &str,
    key: &str,
    how: &str,
) -> Reply {
    let outcome = flight.wait_until(deadline, client_gone);
    flight.leave();
    match outcome {
        Ok((status, body)) => Reply::new(status, with_cache(&body, how)),
        Err(Abandoned::Deadline) => {
            state.note_expiry(client);
            Reply::retry(
                504,
                error_body(Some(key), "deadline", "deadline expired before completion"),
                1,
            )
        }
        // Nobody is left to read this; the connection write will fail.
        Err(Abandoned::ClientGone) => Reply::new(
            503,
            error_body(Some(key), "cancelled", "client disconnected"),
        ),
    }
}

/// Runs on a pool worker: compile under the flight's cancel token and any
/// remaining deadline budget, store on success (never when cancelled), fill
/// the flight. Returns [`JobOutcome::Abandoned`] when the watchdog already
/// wrote this worker off, so the pool retires it (its replacement is
/// already running).
fn compile_job(
    state: &Arc<ServerState>,
    id: u64,
    job: &Arc<InflightJob>,
    core: &FPCore,
    target: &Target,
    seed: u64,
    config_name: &str,
) -> JobOutcome {
    let begun = Instant::now();
    *lock(&job.started) = Some(begun);
    let token = job.flight.cancel.clone();
    // Dequeued dead: the deadline passed while queued (the watchdog already
    // answered 504) or every waiter abandoned. Don't start the search.
    if token.is_cancelled()
        || job.expired.load(Ordering::SeqCst)
        || job.deadline.is_some_and(|d| begun >= d)
    {
        state.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        if job.flight.fill(
            504,
            error_body(
                Some(&job.key),
                "deadline",
                "deadline expired before the job started",
            ),
        ) {
            detach_flight(state, &job.key, &job.flight);
        }
        state.untrack(id);
        return JobOutcome::Done;
    }
    let outcome = state.session(config_name, seed).map_or_else(
        || {
            Err(CompileError::Unsupported(format!(
                "unknown config {config_name:?}"
            )))
        },
        |session| {
            // Run through the corpus entry point (a 1×1 grid) so the job
            // inherits its panic isolation and typed-error reporting. The
            // cancel token and the remaining deadline budget bound the
            // search cooperatively: both degrade to an initial-containing
            // frontier, never an error.
            let mut ctl = SearchControl::new().with_cancel(&token);
            if let Some(deadline) = job.deadline {
                ctl = ctl.with_budget(Budget::wall_clock(
                    deadline.saturating_duration_since(Instant::now()),
                ));
            }
            let mut grid = session.compile_many_with(
                std::slice::from_ref(core),
                std::slice::from_ref(target),
                &ctl,
            );
            match grid.pop().and_then(|mut row| row.pop()) {
                Some(cell) => cell,
                None => Err(CompileError::Internal(chassis::JobPanic::new(
                    "compile grid came back empty",
                ))),
            }
        },
    );
    let was_cancelled = token.is_cancelled();
    let missed_deadline = job.deadline.is_some_and(|d| Instant::now() >= d);
    let (status, body) = match outcome {
        Ok(result) if !was_cancelled && !missed_deadline => {
            state.note_job_duration(begun.elapsed());
            state.note_success(&job.client);
            let body = result_body(&job.key, core, &target.name, seed, config_name, &result);
            state.store.put(&job.key, &body);
            (200, body)
        }
        Ok(_) => {
            // A cancelled or past-deadline search was cut short, so its
            // frontier is not the key's truth: never store it.
            state.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            if missed_deadline {
                (
                    504,
                    error_body(
                        Some(&job.key),
                        "deadline",
                        "deadline expired before completion",
                    ),
                )
            } else {
                (
                    503,
                    error_body(
                        Some(&job.key),
                        "cancelled",
                        "all waiters abandoned the request",
                    ),
                )
            }
        }
        Err(e) => {
            state.failed_job(e.kind());
            (
                status_for(e.kind()),
                error_body(Some(&job.key), &e.kind().to_string(), &e.to_string()),
            )
        }
    };
    // Remove the flight *before* filling it: a request arriving after the
    // fill must start fresh (or hit the store), not wait on a dead flight.
    // Waiters that grabbed the Arc before the removal still get notified.
    detach_flight(state, &job.key, &job.flight);
    job.flight.fill(status, body);
    state.untrack(id);
    if job.abandoned.load(Ordering::SeqCst) {
        JobOutcome::Abandoned
    } else {
        JobOutcome::Done
    }
}

/// The serialized success response (without the per-request `cache` field —
/// that is injected at response time by [`with_cache`], so the stored body is
/// identical no matter how it is later served).
fn result_body(
    key: &str,
    core: &FPCore,
    target_name: &str,
    seed: u64,
    config_name: &str,
    result: &CompilationResult,
) -> String {
    let implementations = result.implementations.iter().map(impl_json).collect();
    let stats = &result.stats;
    let micros = |d: Duration| Json::from_u64(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    Json::Obj(vec![
        ("key".to_owned(), Json::Str(key.to_owned())),
        ("fpcore".to_owned(), Json::Str(canonical_text(core))),
        ("target".to_owned(), Json::Str(target_name.to_owned())),
        ("seed".to_owned(), Json::from_u64(seed)),
        ("config".to_owned(), Json::Str(config_name.to_owned())),
        ("implementations".to_owned(), Json::Arr(implementations)),
        ("initial".to_owned(), impl_json(&result.initial)),
        (
            "stats".to_owned(),
            Json::Obj(vec![
                ("lowering_us".to_owned(), micros(stats.lowering)),
                ("improve_us".to_owned(), micros(stats.improve)),
                ("regimes_us".to_owned(), micros(stats.regimes)),
                (
                    "final_evaluation_us".to_owned(),
                    micros(stats.final_evaluation),
                ),
                ("saturation_us".to_owned(), micros(stats.saturation)),
                (
                    "candidates_scored".to_owned(),
                    Json::from_u64(stats.candidates_scored as u64),
                ),
            ]),
        ),
    ])
    .to_string()
}

/// One implementation as JSON. The `*_hex` fields carry the exact bit
/// patterns (JSON numbers cannot spell NaN/inf, and decimal round-trips are
/// not something the bit-identity bench wants to depend on).
fn impl_json(imp: &Implementation) -> Json {
    Json::Obj(vec![
        ("rendered".to_owned(), Json::Str(imp.rendered.clone())),
        ("cost".to_owned(), Json::from_f64(imp.cost)),
        ("cost_hex".to_owned(), Json::Str(hex_bits(imp.cost))),
        ("error_bits".to_owned(), Json::from_f64(imp.error_bits)),
        (
            "error_bits_hex".to_owned(),
            Json::Str(hex_bits(imp.error_bits)),
        ),
        (
            "accuracy_bits".to_owned(),
            Json::from_f64(imp.accuracy_bits),
        ),
        (
            "accuracy_bits_hex".to_owned(),
            Json::Str(hex_bits(imp.accuracy_bits)),
        ),
    ])
}

fn error_body(key: Option<&str>, kind: &str, message: &str) -> String {
    let mut members = Vec::new();
    if let Some(key) = key {
        members.push(("key".to_owned(), Json::Str(key.to_owned())));
    }
    members.push((
        "error".to_owned(),
        Json::Obj(vec![
            ("kind".to_owned(), Json::Str(kind.to_owned())),
            ("message".to_owned(), Json::Str(message.to_owned())),
        ]),
    ));
    Json::Obj(members).to_string()
}

/// Injects `"cache":"<how>"` as the first member of a serialized JSON object
/// body. The stored body never contains the field, so stored bytes are
/// identical regardless of how they are served.
fn with_cache(body: &str, how: &str) -> String {
    if let Some(rest) = body.strip_prefix('{') {
        if rest.starts_with('}') {
            return format!("{{\"cache\":\"{how}\"}}");
        }
        return format!("{{\"cache\":\"{how}\",{rest}");
    }
    body.to_owned()
}

fn stats_body(state: &Arc<ServerState>) -> String {
    let store = state.store.stats();
    let c = &state.counters;
    let n = |v: u64| Json::from_u64(v);
    let (completed, rejected, replaced) = {
        let pool = lock(&state.pool);
        pool.as_ref().map_or((0, 0, 0), |p| {
            (p.completed(), p.rejected(), p.replacements())
        })
    };
    let failed: Vec<(String, Json)> = KIND_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            (
                (*name).to_owned(),
                n(c.jobs_failed[i].load(Ordering::Relaxed)),
            )
        })
        .collect();
    let failed_total: u64 = c
        .jobs_failed
        .iter()
        .map(|v| v.load(Ordering::Relaxed))
        .sum();
    Json::Obj(vec![
        ("requests".to_owned(), n(c.requests.load(Ordering::Relaxed))),
        ("compiles".to_owned(), n(c.compiles.load(Ordering::Relaxed))),
        ("hits_memory".to_owned(), n(store.hits_memory)),
        ("hits_disk".to_owned(), n(store.hits_disk)),
        ("misses".to_owned(), n(store.misses)),
        (
            "coalesced".to_owned(),
            n(c.coalesced.load(Ordering::Relaxed)),
        ),
        ("evictions".to_owned(), n(store.evictions)),
        ("corrupt_recovered".to_owned(), n(store.corrupt_recovered)),
        ("writes_skipped".to_owned(), n(store.writes_skipped)),
        (
            "bad_requests".to_owned(),
            n(c.bad_requests.load(Ordering::Relaxed)),
        ),
        (
            "queue_rejected".to_owned(),
            n(c.queue_rejected.load(Ordering::Relaxed)),
        ),
        ("jobs_completed".to_owned(), n(completed)),
        ("jobs_rejected".to_owned(), n(rejected)),
        ("jobs_failed".to_owned(), n(failed_total)),
        ("jobs_failed_by_kind".to_owned(), Json::Obj(failed)),
        (
            "cancelled".to_owned(),
            n(c.cancelled.load(Ordering::Relaxed)),
        ),
        (
            "deadline_shed".to_owned(),
            n(c.deadline_shed.load(Ordering::Relaxed)),
        ),
        (
            "watchdog_fired".to_owned(),
            n(c.watchdog_fired.load(Ordering::Relaxed)),
        ),
        (
            "breaker_rejected".to_owned(),
            n(c.breaker_rejected.load(Ordering::Relaxed)),
        ),
        ("workers_replaced".to_owned(), n(replaced)),
        ("inflight".to_owned(), n(lock(&state.inflight).len() as u64)),
        (
            "uptime_ms".to_owned(),
            n(u64::try_from(state.started.elapsed().as_millis()).unwrap_or(u64::MAX)),
        ),
        (
            "memory_entries".to_owned(),
            n(state.store.memory_len() as u64),
        ),
        (
            "sessions".to_owned(),
            n(lock(&state.sessions).entries.len() as u64),
        ),
        (
            "accept_drops".to_owned(),
            n(c.accept_drops.load(Ordering::Relaxed)),
        ),
        (
            "panics_recovered".to_owned(),
            n(c.panics_recovered.load(Ordering::Relaxed)),
        ),
    ])
    .to_string()
}
