//! The compilation daemon: accept loop, routing, request coalescing, and the
//! session (prepared-state) cache.
//!
//! # Request lifecycle
//!
//! A `POST /compile` request is keyed by [`content_key`] — a stable hash of
//! the request's semantic content. The handler then walks, in order:
//!
//! 1. the **result store** ([`crate::store`]): memory hit, then disk hit;
//! 2. the **flight map**: if the same key is already being compiled (for any
//!    client), the request *coalesces* onto that in-flight job instead of
//!    starting a second identical search;
//! 3. the **worker pool** ([`crate::pool`]): a new job is queued under the
//!    requesting client's name (fair round-robin across clients) and the
//!    handler blocks on its flight until the job fills it.
//!
//! Compile jobs run through [`chassis::Session::compile_many_with`], which
//! already isolates panics per job ([`CompileError::Internal`]) — the daemon
//! inherits the library's fault isolation rather than reimplementing it.
//! Sessions are cached per `(config, seed)`, so every benchmark's sampling
//! and ground truth run once and are shared across all targets and requests
//! (the `Prepared`-level cache lives inside `Session`).
//!
//! Failed compilations are **not** stored: errors are cheap to recompute,
//! and the interesting ones (panics, resource exhaustion) are not
//! deterministic facts about the request key. They are still shared with
//! coalesced waiters of the same in-flight job.

// The daemon must not bring itself down on a bad request: no unwraps on the
// serving path (the tests below are exempt).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use chassis::{CompilationResult, CompileError, Config, ErrorKind, Implementation, Session};
use fpcore::hash::{canonical_text, ContentHasher};
use fpcore::FPCore;
use targets::builtin;
use targets::target::Target;

use crate::http::{read_request, reason, write_response, Request};
use crate::json::{hex_bits, Json};
use crate::pool::Pool;
use crate::store::{ResultStore, StoreConfig, StoreHit};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Handle::addr`]).
    pub addr: String,
    /// Compile worker threads.
    pub workers: usize,
    /// In-memory result cache capacity (entries).
    pub memory_capacity: usize,
    /// Persistent store directory (`None`: memory-only).
    pub disk_dir: Option<PathBuf>,
    /// Total queued-job bound; beyond it, `POST /compile` answers 503.
    pub max_queued: usize,
    /// Cached `Session`s (one per distinct `(config, seed)` pair).
    pub max_sessions: usize,
    /// Idle keep-alive connections are dropped after this long.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            memory_capacity: 1024,
            disk_dir: None,
            max_queued: 256,
            max_sessions: 8,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// The stable content key of a compile request: everything that can
/// influence the result, nothing that cannot. See `docs/SERVICE.md` for the
/// exact field list (the key algorithm is part of the store format).
pub fn content_key(core: &FPCore, target: &Target, seed: u64, config_name: &str) -> String {
    let config = named_config(config_name).unwrap_or_default();
    let mut h = ContentHasher::new();
    h.str("chassis-request 1");
    h.str(&canonical_text(core));
    h.u128(target.fingerprint());
    h.u64(seed);
    h.u128(config.fingerprint());
    h.hex_digest()
}

/// The named configuration profiles the wire protocol exposes.
pub fn named_config(name: &str) -> Option<Config> {
    match name {
        "default" => Some(Config::default()),
        "fast" => Some(Config::fast()),
        _ => None,
    }
}

/// The HTTP status for a typed compile error, mirroring the
/// [`ErrorKind`] taxonomy: client-fixable input problems are 4xx, capacity
/// problems 503, daemon bugs 500.
pub fn status_for(kind: ErrorKind) -> u16 {
    match kind {
        // The expression itself cannot be sampled / ground-truthed: the
        // request is well-formed but unprocessable.
        ErrorKind::Sampling | ErrorKind::GroundTruth => 422,
        ErrorKind::Unsupported => 501,
        ErrorKind::ResourceExhausted => 503,
        ErrorKind::Internal => 500,
    }
}

/// One in-flight compile job; concurrent requests for the same key block on
/// this instead of starting duplicate searches.
struct Flight {
    done: Mutex<Option<(u16, String)>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, status: u16, body: String) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        *done = Some((status, body));
        self.cv.notify_all();
    }

    /// Blocks until filled. The bound is a safety net: jobs either complete
    /// or are filled with 503 on shutdown, so a full wait means a bug.
    fn wait(&self) -> (u16, String) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline = Duration::from_secs(600);
        let mut waited = Duration::ZERO;
        while done.is_none() {
            let step = Duration::from_millis(500);
            let (next, timeout) = self
                .cv
                .wait_timeout(done, step)
                .unwrap_or_else(PoisonError::into_inner);
            done = next;
            if timeout.timed_out() {
                waited += step;
                if waited >= deadline {
                    return (500, error_body(None, "internal", "compile job timed out"));
                }
            }
        }
        match done.as_ref() {
            Some((status, body)) => (*status, body.clone()),
            None => (500, error_body(None, "internal", "flight signalled empty")),
        }
    }
}

struct SessionCache {
    entries: HashMap<(String, u64), (u64, Arc<Session>)>,
    tick: u64,
}

/// Counters surfaced on `GET /stats`.
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    compiles: AtomicU64,
    coalesced: AtomicU64,
    bad_requests: AtomicU64,
    queue_rejected: AtomicU64,
    accept_drops: AtomicU64,
    panics_recovered: AtomicU64,
    jobs_failed: [AtomicU64; 5],
}

fn kind_index(kind: ErrorKind) -> usize {
    match kind {
        ErrorKind::Sampling => 0,
        ErrorKind::Unsupported => 1,
        ErrorKind::ResourceExhausted => 2,
        ErrorKind::GroundTruth => 3,
        ErrorKind::Internal => 4,
    }
}

const KIND_NAMES: [&str; 5] = [
    "sampling",
    "unsupported",
    "resource-exhausted",
    "ground-truth",
    "internal",
];

struct ServerState {
    config: ServerConfig,
    local_addr: SocketAddr,
    store: ResultStore,
    pool: Mutex<Option<Pool>>,
    flights: Mutex<HashMap<String, Arc<Flight>>>,
    sessions: Mutex<SessionCache>,
    counters: Counters,
    shutdown: AtomicBool,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ServerState {
    /// The session for a `(config, seed)` pair, created on first use. The
    /// cache is bounded: each session holds prepared benchmarks (samples +
    /// ground truth), so unbounded growth would be a memory leak with a
    /// per-seed amplification factor.
    fn session(&self, config_name: &str, seed: u64) -> Option<Arc<Session>> {
        let config = named_config(config_name)?.with_seed(seed);
        let mut cache = lock(&self.sessions);
        cache.tick += 1;
        let tick = cache.tick;
        let key = (config_name.to_owned(), seed);
        if let Some((last_use, session)) = cache.entries.get_mut(&key) {
            *last_use = tick;
            return Some(Arc::clone(session));
        }
        let session = Arc::new(Session::new(config));
        cache.entries.insert(key, (tick, Arc::clone(&session)));
        while cache.entries.len() > self.config.max_sessions.max(1) {
            let Some(oldest) = cache
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            cache.entries.remove(&oldest);
        }
        Some(session)
    }

    fn failed_job(&self, kind: ErrorKind) {
        self.counters.jobs_failed[kind_index(kind)].fetch_add(1, Ordering::Relaxed);
    }
}

/// A running daemon. Obtained from [`start`]; used in-process by the tests
/// and the replay bench, and by `serve` (the CLI binary).
pub struct Handle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
}

impl Handle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and blocks until the accept loop and every worker
    /// have exited. Queued jobs are drained first; flights that still have
    /// waiters after the drain are filled with 503.
    pub fn stop(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        self.join_inner();
    }

    /// Blocks until the daemon shuts down (via [`Handle::stop`] from another
    /// thread or a `POST /shutdown` request), then drains and joins.
    pub fn wait(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(pool) = lock(&self.state.pool).take() {
            pool.shutdown();
        }
        // Any flight not filled by the drain (submitted after shutdown won a
        // race, or its job was lost) must not strand its waiters.
        let leftovers: Vec<Arc<Flight>> =
            lock(&self.state.flights).drain().map(|(_, f)| f).collect();
        for flight in leftovers {
            flight.fill(
                503,
                error_body(None, "resource-exhausted", "daemon shut down"),
            );
        }
    }
}

/// Starts the daemon.
///
/// # Errors
///
/// Propagates binding or store-directory errors.
pub fn start(config: ServerConfig) -> std::io::Result<Handle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let store = ResultStore::open(&StoreConfig {
        memory_capacity: config.memory_capacity,
        disk_dir: config.disk_dir.clone(),
    })?;
    let pool = Pool::new(config.workers, config.max_queued);
    let state = Arc::new(ServerState {
        config,
        local_addr: addr,
        store,
        pool: Mutex::new(Some(pool)),
        flights: Mutex::new(HashMap::new()),
        sessions: Mutex::new(SessionCache {
            entries: HashMap::new(),
            tick: 0,
        }),
        counters: Counters::default(),
        shutdown: AtomicBool::new(false),
    });
    let accept_state = Arc::clone(&state);
    let accept = std::thread::Builder::new()
        .name("chassis-accept".to_owned())
        .spawn(move || accept_loop(&listener, &accept_state))?;
    Ok(Handle {
        addr,
        state,
        accept: Some(accept),
    })
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if state.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // The accept fault point simulates a flaky front end: an abort drops
        // exactly this connection; a panic is caught here so the accept
        // thread — the daemon's single point of failure — survives.
        match catch_unwind(AssertUnwindSafe(|| fault::point("service.accept"))) {
            Ok(false) => {}
            Ok(true) => {
                state.counters.accept_drops.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            Err(_) => {
                state
                    .counters
                    .panics_recovered
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
        }
        let conn_state = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("chassis-conn".to_owned())
            .spawn(move || connection_loop(stream, &conn_state));
        drop(spawned);
    }
}

fn connection_loop(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) => {
                if let Some((status, why)) = e.status() {
                    let body = error_body(None, "bad-request", why);
                    let _ = write_response(
                        &mut write_half,
                        status,
                        reason(status),
                        "application/json",
                        body.as_bytes(),
                        false,
                    );
                }
                return;
            }
        };
        let keep_alive = request.keep_alive && !state.shutdown.load(Ordering::SeqCst);
        // Route under a panic boundary: a handler bug answers 500 and keeps
        // the daemon (and even this connection) alive.
        let (status, body) = match catch_unwind(AssertUnwindSafe(|| route(&request, state))) {
            Ok(response) => response,
            Err(_) => {
                state
                    .counters
                    .panics_recovered
                    .fetch_add(1, Ordering::Relaxed);
                (
                    500,
                    error_body(None, "internal", "request handler panicked"),
                )
            }
        };
        if write_response(
            &mut write_half,
            status,
            reason(status),
            "application/json",
            body.as_bytes(),
            keep_alive,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

fn route(request: &Request, state: &Arc<ServerState>) -> (u16, String) {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, "{\"status\":\"ok\"}".to_owned()),
        ("GET", "/stats") => (200, stats_body(state)),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            // Unblock our own accept loop so `Handle::wait` returns.
            let _ = TcpStream::connect(state.local_addr);
            (200, "{\"status\":\"shutting-down\"}".to_owned())
        }
        ("POST", "/compile") => handle_compile(request, state),
        ("GET", path) if path.starts_with("/result/") => {
            handle_result(&path["/result/".len()..], state)
        }
        (_, "/healthz" | "/stats" | "/compile" | "/shutdown") => {
            (405, error_body(None, "bad-request", "method not allowed"))
        }
        _ => (404, error_body(None, "not-found", "no such route")),
    }
}

fn handle_result(key: &str, state: &Arc<ServerState>) -> (u16, String) {
    if key.len() != 32 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        return (
            400,
            error_body(None, "bad-request", "keys are 32 hex characters"),
        );
    }
    match state.store.get(key) {
        Some((body, hit)) => (200, with_cache(&body, cache_tag(hit))),
        None => (404, error_body(Some(key), "not-found", "no stored result")),
    }
}

fn cache_tag(hit: StoreHit) -> &'static str {
    match hit {
        StoreHit::Memory => "memory",
        StoreHit::Disk => "disk",
    }
}

fn handle_compile(request: &Request, state: &Arc<ServerState>) -> (u16, String) {
    let bad = |message: &str| {
        state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        (400, error_body(None, "bad-request", message))
    };
    let Ok(body_text) = std::str::from_utf8(&request.body) else {
        return bad("body is not utf-8");
    };
    let doc = match Json::parse(body_text) {
        Ok(doc) => doc,
        Err(e) => return bad(&format!("invalid json: {e}")),
    };
    let Some(fpcore_text) = doc.get("fpcore").and_then(Json::as_str) else {
        return bad("missing required string field \"fpcore\"");
    };
    let Some(target_name) = doc.get("target").and_then(Json::as_str) else {
        return bad("missing required string field \"target\"");
    };
    let seed = match doc.get("seed") {
        None => Config::default().seed,
        Some(v) => match v.as_u64() {
            Some(seed) => seed,
            None => return bad("\"seed\" must be a non-negative integer"),
        },
    };
    let config_name = match doc.get("config") {
        None => "fast",
        Some(v) => match v.as_str() {
            Some(name) => name,
            None => return bad("\"config\" must be a string"),
        },
    };
    if named_config(config_name).is_none() {
        return bad("unknown config (expected \"default\" or \"fast\")");
    }
    let client = doc
        .get("client")
        .and_then(Json::as_str)
        .unwrap_or("anonymous");
    let core = match fpcore::parse_fpcore(fpcore_text) {
        Ok(core) => core,
        Err(e) => return bad(&format!("invalid fpcore: {e}")),
    };
    let Some(target) = builtin::by_name(target_name) else {
        return bad(&format!("unknown target {target_name:?}"));
    };

    let key = content_key(&core, &target, seed, config_name);

    // Level 1 + 2: the content-addressed store.
    if let Some((body, hit)) = state.store.get(&key) {
        return (200, with_cache(&body, cache_tag(hit)));
    }

    // Level 3: coalesce onto an in-flight job for the same key.
    let flight = {
        let mut flights = lock(&state.flights);
        if let Some(existing) = flights.get(&key) {
            let existing = Arc::clone(existing);
            drop(flights);
            state.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            let (status, body) = existing.wait();
            return (status, with_cache(&body, "coalesced"));
        }
        let flight = Arc::new(Flight::new());
        flights.insert(key.clone(), Arc::clone(&flight));
        flight
    };

    // Level 4: a fresh compile job on the worker pool.
    let job_state = Arc::clone(state);
    let job_flight = Arc::clone(&flight);
    let job_key = key.clone();
    let job_config = config_name.to_owned();
    let job_target = target;
    let submitted = {
        let pool = lock(&state.pool);
        match pool.as_ref() {
            Some(pool) => pool.submit(
                client,
                Box::new(move || {
                    compile_job(
                        &job_state,
                        &job_flight,
                        &job_key,
                        &core,
                        &job_target,
                        seed,
                        &job_config,
                    );
                }),
            ),
            None => Err(crate::pool::PoolFull),
        }
    };
    if submitted.is_err() {
        lock(&state.flights).remove(&key);
        state
            .counters
            .queue_rejected
            .fetch_add(1, Ordering::Relaxed);
        let body = error_body(Some(&key), "resource-exhausted", "compile queue is full");
        flight.fill(503, body.clone());
        return (503, body);
    }
    state.counters.compiles.fetch_add(1, Ordering::Relaxed);
    let (status, body) = flight.wait();
    (status, with_cache(&body, "miss"))
}

/// Runs on a pool worker: compile, store on success, fill the flight.
fn compile_job(
    state: &Arc<ServerState>,
    flight: &Flight,
    key: &str,
    core: &FPCore,
    target: &Target,
    seed: u64,
    config_name: &str,
) {
    let outcome = state.session(config_name, seed).map_or_else(
        || {
            Err(CompileError::Unsupported(format!(
                "unknown config {config_name:?}"
            )))
        },
        |session| {
            // Run through the corpus entry point (a 1×1 grid) so the job
            // inherits its panic isolation and typed-error reporting.
            let mut grid = session.compile_many_with(
                std::slice::from_ref(core),
                std::slice::from_ref(target),
                &Default::default(),
            );
            match grid.pop().and_then(|mut row| row.pop()) {
                Some(cell) => cell,
                None => Err(CompileError::Internal(chassis::JobPanic::new(
                    "compile grid came back empty",
                ))),
            }
        },
    );
    let (status, body) = match outcome {
        Ok(result) => {
            let body = result_body(key, core, &target.name, seed, config_name, &result);
            state.store.put(key, &body);
            (200, body)
        }
        Err(e) => {
            state.failed_job(e.kind());
            (
                status_for(e.kind()),
                error_body(Some(key), &e.kind().to_string(), &e.to_string()),
            )
        }
    };
    // Remove the flight *before* filling it: a request arriving after the
    // fill must start fresh (or hit the store), not wait on a dead flight.
    // Waiters that grabbed the Arc before the removal still get notified.
    lock(&state.flights).remove(key);
    flight.fill(status, body);
}

/// The serialized success response (without the per-request `cache` field —
/// that is injected at response time by [`with_cache`], so the stored body is
/// identical no matter how it is later served).
fn result_body(
    key: &str,
    core: &FPCore,
    target_name: &str,
    seed: u64,
    config_name: &str,
    result: &CompilationResult,
) -> String {
    let implementations = result.implementations.iter().map(impl_json).collect();
    let stats = &result.stats;
    let micros = |d: Duration| Json::from_u64(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    Json::Obj(vec![
        ("key".to_owned(), Json::Str(key.to_owned())),
        ("fpcore".to_owned(), Json::Str(canonical_text(core))),
        ("target".to_owned(), Json::Str(target_name.to_owned())),
        ("seed".to_owned(), Json::from_u64(seed)),
        ("config".to_owned(), Json::Str(config_name.to_owned())),
        ("implementations".to_owned(), Json::Arr(implementations)),
        ("initial".to_owned(), impl_json(&result.initial)),
        (
            "stats".to_owned(),
            Json::Obj(vec![
                ("lowering_us".to_owned(), micros(stats.lowering)),
                ("improve_us".to_owned(), micros(stats.improve)),
                ("regimes_us".to_owned(), micros(stats.regimes)),
                (
                    "final_evaluation_us".to_owned(),
                    micros(stats.final_evaluation),
                ),
                ("saturation_us".to_owned(), micros(stats.saturation)),
                (
                    "candidates_scored".to_owned(),
                    Json::from_u64(stats.candidates_scored as u64),
                ),
            ]),
        ),
    ])
    .to_string()
}

/// One implementation as JSON. The `*_hex` fields carry the exact bit
/// patterns (JSON numbers cannot spell NaN/inf, and decimal round-trips are
/// not something the bit-identity bench wants to depend on).
fn impl_json(imp: &Implementation) -> Json {
    Json::Obj(vec![
        ("rendered".to_owned(), Json::Str(imp.rendered.clone())),
        ("cost".to_owned(), Json::from_f64(imp.cost)),
        ("cost_hex".to_owned(), Json::Str(hex_bits(imp.cost))),
        ("error_bits".to_owned(), Json::from_f64(imp.error_bits)),
        (
            "error_bits_hex".to_owned(),
            Json::Str(hex_bits(imp.error_bits)),
        ),
        (
            "accuracy_bits".to_owned(),
            Json::from_f64(imp.accuracy_bits),
        ),
        (
            "accuracy_bits_hex".to_owned(),
            Json::Str(hex_bits(imp.accuracy_bits)),
        ),
    ])
}

fn error_body(key: Option<&str>, kind: &str, message: &str) -> String {
    let mut members = Vec::new();
    if let Some(key) = key {
        members.push(("key".to_owned(), Json::Str(key.to_owned())));
    }
    members.push((
        "error".to_owned(),
        Json::Obj(vec![
            ("kind".to_owned(), Json::Str(kind.to_owned())),
            ("message".to_owned(), Json::Str(message.to_owned())),
        ]),
    ));
    Json::Obj(members).to_string()
}

/// Injects `"cache":"<how>"` as the first member of a serialized JSON object
/// body. The stored body never contains the field, so stored bytes are
/// identical regardless of how they are served.
fn with_cache(body: &str, how: &str) -> String {
    if let Some(rest) = body.strip_prefix('{') {
        if rest.starts_with('}') {
            return format!("{{\"cache\":\"{how}\"}}");
        }
        return format!("{{\"cache\":\"{how}\",{rest}");
    }
    body.to_owned()
}

fn stats_body(state: &Arc<ServerState>) -> String {
    let store = state.store.stats();
    let c = &state.counters;
    let n = |v: u64| Json::from_u64(v);
    let (completed, rejected) = {
        let pool = lock(&state.pool);
        pool.as_ref()
            .map_or((0, 0), |p| (p.completed(), p.rejected()))
    };
    let failed: Vec<(String, Json)> = KIND_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            (
                (*name).to_owned(),
                n(c.jobs_failed[i].load(Ordering::Relaxed)),
            )
        })
        .collect();
    let failed_total: u64 = c
        .jobs_failed
        .iter()
        .map(|v| v.load(Ordering::Relaxed))
        .sum();
    Json::Obj(vec![
        ("requests".to_owned(), n(c.requests.load(Ordering::Relaxed))),
        ("compiles".to_owned(), n(c.compiles.load(Ordering::Relaxed))),
        ("hits_memory".to_owned(), n(store.hits_memory)),
        ("hits_disk".to_owned(), n(store.hits_disk)),
        ("misses".to_owned(), n(store.misses)),
        (
            "coalesced".to_owned(),
            n(c.coalesced.load(Ordering::Relaxed)),
        ),
        ("evictions".to_owned(), n(store.evictions)),
        ("corrupt_recovered".to_owned(), n(store.corrupt_recovered)),
        ("writes_skipped".to_owned(), n(store.writes_skipped)),
        (
            "bad_requests".to_owned(),
            n(c.bad_requests.load(Ordering::Relaxed)),
        ),
        (
            "queue_rejected".to_owned(),
            n(c.queue_rejected.load(Ordering::Relaxed)),
        ),
        ("jobs_completed".to_owned(), n(completed)),
        ("jobs_rejected".to_owned(), n(rejected)),
        ("jobs_failed".to_owned(), n(failed_total)),
        ("jobs_failed_by_kind".to_owned(), Json::Obj(failed)),
        (
            "memory_entries".to_owned(),
            n(state.store.memory_len() as u64),
        ),
        (
            "sessions".to_owned(),
            n(lock(&state.sessions).entries.len() as u64),
        ),
        (
            "accept_drops".to_owned(),
            n(c.accept_drops.load(Ordering::Relaxed)),
        ),
        (
            "panics_recovered".to_owned(),
            n(c.panics_recovered.load(Ordering::Relaxed)),
        ),
    ])
    .to_string()
}
