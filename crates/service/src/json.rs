//! A minimal JSON value type, parser, and serializer.
//!
//! The daemon speaks JSON on the wire but the workspace takes no external
//! dependencies, so this module implements the subset of RFC 8259 the service
//! needs: objects, arrays, strings, numbers, booleans and null, with `\uXXXX`
//! escapes on input and minimal escaping on output.
//!
//! Two deliberate choices:
//!
//! * Numbers keep their **raw token text** ([`Json::Num`]) instead of eagerly
//!   converting to `f64`. Seeds are `u64`, and above 2⁵³ a round-trip through
//!   `f64` would silently corrupt them; keeping the token lets [`Json::as_u64`]
//!   parse exactly.
//! * Object members keep **insertion order** (a `Vec` of pairs, not a map), so
//!   serialized responses are byte-deterministic — the bench's bit-identity
//!   check compares daemon bodies against direct compilation verbatim.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token text (see module docs).
    Num(String),
    /// A string (decoded — no escapes).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse error: a message and the byte offset it was detected at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Nesting beyond this depth is rejected (guards the recursive parser's stack
/// against adversarial `[[[[…]]]]` input).
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses a complete JSON document (trailing non-whitespace is an error).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// A number value from a `u64` (exact).
    pub fn from_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number value from an `f64`. Non-finite values have no JSON spelling
    /// and become `null`; callers that care about exact bits must also emit a
    /// [`hex_bits`] string field.
    pub fn from_f64(v: f64) -> Json {
        if v.is_finite() {
            // Rust's Display for f64 prints the shortest digits that
            // round-trip, so the token parses back to the same value.
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    /// Member lookup on an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact `u64` payload, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// The `f64` payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse::<f64>().ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => f.write_str(raw),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// The 16-hex-character spelling of an `f64`'s bit pattern, used for the
/// `*_bits` response fields: exact (NaN payloads and signed zeros included)
/// where a JSON number could not be.
pub fn hex_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting here. The input is
                    // a &str, so sequences are always valid.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let Some(c) = chunk.chars().next() else {
                        return Err(self.err("invalid utf-8"));
                    };
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pair: a high surrogate must be followed by \u + low.
        if (0xd800..0xdc00).contains(&first) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.eat(b'u', "expected low surrogate")?;
                let low = self.hex4()?;
                if (0xdc00..0xe000).contains(&low) {
                    let c = 0x10000 + ((first - 0xd800) << 10) + (low - 0xdc00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            self.pos += 1;
            v = (v << 4) | digit;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected exponent digits"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8"))?;
        Ok(Json::Num(raw.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_typical_document() {
        let text = r#"{"fpcore":"(FPCore (x) x)","target":"c99","seed":42,"opts":[1,2.5,-3e2],"ok":true,"note":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("target").and_then(Json::as_str), Some("c99"));
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(42));
        assert_eq!(
            v.get("opts").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        // Serialization preserves member order and number tokens, so the
        // round trip is byte-identical.
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn u64_seeds_above_2_pow_53_survive() {
        let seed = u64::MAX - 1;
        let v = Json::parse(&format!("{{\"seed\":{seed}}}")).unwrap();
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(seed));
    }

    #[test]
    fn escapes_decode_and_encode() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
        let back = Json::Str("tab\there\u{1}".to_owned()).to_string();
        assert_eq!(back, r#""tab\there\u0001""#);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "1. 5",
            "\"\\x\"",
            "\"unterminated",
            "01x",
            "{\"a\":1}trailing",
            &("[".repeat(80) + &"]".repeat(80)),
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn nonfinite_floats_become_null_with_bits_fallback() {
        assert_eq!(Json::from_f64(f64::NAN), Json::Null);
        assert_eq!(Json::from_f64(1.5).to_string(), "1.5");
        assert_eq!(hex_bits(1.0), "3ff0000000000000");
        assert_eq!(hex_bits(f64::NEG_INFINITY), "fff0000000000000");
    }
}
