//! A minimal blocking HTTP client for talking to the daemon.
//!
//! One connection per call, `Connection: close`: deliberately the simplest
//! thing that is correct. The replay bench measures *daemon* throughput, and
//! the dominant costs it compares (search vs cache hit) dwarf connection
//! setup on loopback.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response: status code and body text.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body (the daemon always answers JSON).
    pub body: String,
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Returns the underlying I/O error message on connection failure, and a
/// description on a malformed response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(600)))
        .map_err(|e| e.to_string())?;
    let mut write_half = stream.try_clone().map_err(|e| e.to_string())?;
    let payload = body.unwrap_or("");
    write!(
        write_half,
        "{method} {path} HTTP/1.1\r\nHost: chassis\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    write_half.flush().map_err(|e| format!("send: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        let line = line.trim_end();
        if n == 0 || line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }

    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            String::from_utf8(buf).map_err(|_| "non-utf8 body".to_owned())?
        }
        None => {
            let mut buf = String::new();
            reader
                .read_to_string(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            buf
        }
    };
    Ok(Response { status, body })
}

/// `POST` a JSON body to a path.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> Result<Response, String> {
    request(addr, "POST", path, Some(body))
}

/// `GET` a path.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> Result<Response, String> {
    request(addr, "GET", path, None)
}
