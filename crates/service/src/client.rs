//! A minimal blocking HTTP client for talking to the daemon.
//!
//! One connection per call, `Connection: close`: deliberately the simplest
//! thing that is correct. The replay bench measures *daemon* throughput, and
//! the dominant costs it compares (search vs cache hit) dwarf connection
//! setup on loopback.
//!
//! For overload conditions there is [`request_with_retry`]: capped
//! exponential backoff with deterministic jitter that honours the daemon's
//! `Retry-After` header on 503/504 answers, retrying transport errors and
//! overload statuses and returning everything else (including typed 4xx/5xx
//! compile failures) untouched.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response: status code and body text.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body (the daemon always answers JSON).
    pub body: String,
    /// The `Retry-After` header, in seconds, when the daemon sent one
    /// (it does on every 503/504).
    pub retry_after: Option<u64>,
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Returns the underlying I/O error message on connection failure, and a
/// description on a malformed response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(600)))
        .map_err(|e| e.to_string())?;
    let mut write_half = stream.try_clone().map_err(|e| e.to_string())?;
    let payload = body.unwrap_or("");
    write!(
        write_half,
        "{method} {path} HTTP/1.1\r\nHost: chassis\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    write_half.flush().map_err(|e| format!("send: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;

    let mut content_length: Option<usize> = None;
    let mut retry_after: Option<u64> = None;
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        let line = line.trim_end();
        if n == 0 || line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.trim().eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
    }

    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            String::from_utf8(buf).map_err(|_| "non-utf8 body".to_owned())?
        }
        None => {
            let mut buf = String::new();
            reader
                .read_to_string(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            buf
        }
    };
    Ok(Response {
        status,
        body,
        retry_after,
    })
}

/// Backoff policy for [`request_with_retry`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` means no retries.
    pub attempts: u32,
    /// Backoff before the first retry; doubles per retry after that.
    pub base: Duration,
    /// Cap on any single wait, including server-suggested `Retry-After`s.
    pub cap: Duration,
    /// Seed for the deterministic jitter stream (so a fleet of clients with
    /// distinct seeds de-synchronizes instead of thundering back together).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

/// SplitMix64 step, the workspace's standard seed expander.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The wait before retry number `retry` (zero-based), given the server's
    /// `Retry-After` suggestion if any: capped exponential backoff from
    /// [`base`](RetryPolicy::base), jittered into `[50%, 100%]` of itself,
    /// raised to the server's suggestion (and capped again) when one was
    /// sent. Deterministic in `(seed, retry)`.
    pub fn wait_before(&self, retry: u32, retry_after: Option<u64>) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << retry.min(16))
            .min(self.cap);
        let mut state = self.seed.wrapping_add(u64::from(retry));
        let jitter_permille = 500 + splitmix64(&mut state) % 501; // 50%..=100%
        let jittered = exp.mul_f64(jitter_permille as f64 / 1000.0);
        match retry_after {
            Some(secs) => jittered.max(Duration::from_secs(secs)).min(self.cap),
            None => jittered,
        }
    }
}

/// [`request`] with retries: transport errors and overload answers (503/504)
/// are retried under `policy`, honouring the daemon's `Retry-After`; any
/// other response — success or a typed compile failure — returns immediately.
/// The last error or overload response is returned when attempts run out.
///
/// # Errors
///
/// Returns the final transport error after exhausting attempts.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
) -> Result<Response, String> {
    let attempts = policy.attempts.max(1);
    let mut last: Result<Response, String> = Err("no attempts made".to_owned());
    for attempt in 0..attempts {
        if attempt > 0 {
            let suggested = match &last {
                Ok(response) => response.retry_after,
                Err(_) => None,
            };
            std::thread::sleep(policy.wait_before(attempt - 1, suggested));
        }
        last = request(addr, method, path, body);
        match &last {
            Ok(response) if response.status == 503 || response.status == 504 => {}
            Ok(_) => return last,
            Err(_) => {}
        }
    }
    last
}

/// `POST` a JSON body to a path.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> Result<Response, String> {
    request(addr, "POST", path, Some(body))
}

/// `GET` a path.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> Result<Response, String> {
    request(addr, "GET", path, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_honours_retry_after() {
        let policy = RetryPolicy::default();
        let first = policy.wait_before(0, None);
        assert!(first >= policy.base / 2 && first <= policy.base);
        assert_eq!(
            first,
            policy.wait_before(0, None),
            "jitter is deterministic"
        );
        assert!(policy.wait_before(5, None) <= policy.cap);
        // A server hint raises the wait (up to the cap).
        assert_eq!(policy.wait_before(0, Some(1)), Duration::from_secs(1));
        assert_eq!(policy.wait_before(0, Some(60)), policy.cap);
        // Distinct seeds de-synchronize.
        let other = RetryPolicy {
            seed: 7,
            ..RetryPolicy::default()
        };
        assert_ne!(policy.wait_before(2, None), other.wait_before(2, None));
    }

    #[test]
    fn retries_against_a_dead_daemon_fail_with_the_transport_error() {
        // Port 1 on loopback: nothing listens there.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let policy = RetryPolicy {
            attempts: 2,
            base: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let started = std::time::Instant::now();
        let outcome = request_with_retry(addr, "GET", "/healthz", None, &policy);
        assert!(outcome.is_err());
        assert!(started.elapsed() < Duration::from_secs(30));
    }
}
