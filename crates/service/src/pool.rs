//! A bounded worker pool with fair per-client scheduling.
//!
//! Compilation jobs are CPU-bound and can take seconds each, so the daemon
//! must not let one chatty client starve everyone else. Jobs are queued **per
//! client** and workers pick the next job **round-robin across clients**: a
//! client that submits 100 jobs and a client that submits 1 job each get a
//! worker on the next two dispatches, not after 100.
//!
//! The total queue is bounded; [`Pool::submit`] refuses (and the server
//! answers `503`) rather than queueing unboundedly. Jobs are closures that
//! report a [`JobOutcome`] — panic isolation is the job's own responsibility
//! (the server runs compiles through `Session::compile_many_with`, which
//! already catches panics per job), but a job that discovers it was
//! *abandoned* (its worker was written off as stuck and replaced via
//! [`Pool::note_worker_lost`]) returns [`JobOutcome::Abandoned`] and its
//! worker retires instead of double-staffing the pool.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// What a finished job tells its worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Normal completion; the worker picks the next job.
    Done,
    /// A watchdog wrote this job's worker off as stuck and already spawned a
    /// replacement ([`Pool::note_worker_lost`]); now that the job has in fact
    /// finished, its worker retires to keep the worker count steady.
    Abandoned,
}

type Job = Box<dyn FnOnce() -> JobOutcome + Send + 'static>;

struct Sched {
    /// Per-client FIFO queues.
    queues: HashMap<String, VecDeque<Job>>,
    /// Round-robin order over clients that currently have queued jobs.
    order: VecDeque<String>,
    /// Total queued jobs across all clients.
    queued: usize,
    shutdown: bool,
}

struct PoolInner {
    sched: Mutex<Sched>,
    work_available: Condvar,
    max_queued: usize,
    rejected: AtomicU64,
    completed: AtomicU64,
    replacements: AtomicU64,
}

/// The pool handle. Dropping it does **not** stop the workers; call
/// [`Pool::shutdown`] for a clean drain-and-join.
pub struct Pool {
    inner: Arc<PoolInner>,
    /// Worker handles; a `Mutex` because [`Pool::note_worker_lost`] appends
    /// replacement workers while the pool is live.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// `submit` refused because the queue bound was reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolFull;

fn lock(m: &Mutex<Sched>) -> MutexGuard<'_, Sched> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Pool {
    /// Starts `workers` worker threads with a total queue bound of
    /// `max_queued` jobs.
    pub fn new(workers: usize, max_queued: usize) -> Pool {
        let inner = Arc::new(PoolInner {
            sched: Mutex::new(Sched {
                queues: HashMap::new(),
                order: VecDeque::new(),
                queued: 0,
                shutdown: false,
            }),
            work_available: Condvar::new(),
            max_queued: max_queued.max(1),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            replacements: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("chassis-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
            })
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_default();
        Pool {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Queues a job on `client`'s queue.
    ///
    /// # Errors
    ///
    /// Returns [`PoolFull`] when the total queue bound is reached (the
    /// caller should answer `503`), or after shutdown began.
    pub fn submit(&self, client: &str, job: Job) -> Result<(), PoolFull> {
        let mut sched = lock(&self.inner.sched);
        if sched.shutdown || sched.queued >= self.inner.max_queued {
            drop(sched);
            self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(PoolFull);
        }
        let queue = sched.queues.entry(client.to_owned()).or_default();
        let was_empty = queue.is_empty();
        queue.push_back(job);
        sched.queued += 1;
        if was_empty {
            sched.order.push_back(client.to_owned());
        }
        drop(sched);
        self.inner.work_available.notify_one();
        Ok(())
    }

    /// Jobs refused by the queue bound so far.
    pub fn rejected(&self) -> u64 {
        self.inner.rejected.load(Ordering::Relaxed)
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.inner.completed.load(Ordering::Relaxed)
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        lock(&self.inner.sched).queued
    }

    /// Replacement workers spawned so far via [`Pool::note_worker_lost`].
    pub fn replacements(&self) -> u64 {
        self.inner.replacements.load(Ordering::Relaxed)
    }

    /// Declares one worker lost (stuck in a job a watchdog has written off)
    /// and spawns a replacement so pool capacity is restored *while the stuck
    /// job is still running*. The caller must also mark the written-off job
    /// so that it returns [`JobOutcome::Abandoned`] when (if) it finishes —
    /// that retires its worker and keeps the live worker count steady.
    ///
    /// No-op after shutdown began.
    pub fn note_worker_lost(&self) {
        {
            let sched = lock(&self.inner.sched);
            if sched.shutdown {
                return;
            }
        }
        let n = self.inner.replacements.fetch_add(1, Ordering::Relaxed);
        let inner = Arc::clone(&self.inner);
        if let Ok(handle) = std::thread::Builder::new()
            .name(format!("chassis-worker-r{n}"))
            .spawn(move || worker_loop(&inner))
        {
            self.workers
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(handle);
        }
    }

    /// Drains already-queued jobs, then stops and joins every worker. New
    /// submissions are refused from the moment this is called.
    ///
    /// A worker stuck in a job blocks the join until its job returns; bound
    /// that externally (the daemon's watchdog answers the job's waiters long
    /// before this runs, and chaos stalls release when their plan disarms).
    pub fn shutdown(self) {
        {
            let mut sched = lock(&self.inner.sched);
            sched.shutdown = true;
        }
        self.inner.work_available.notify_all();
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut sched = lock(&inner.sched);
            loop {
                // Round-robin: take the front client, pop one of its jobs,
                // and re-queue the client at the back if it has more.
                if let Some(client) = sched.order.pop_front() {
                    let (job, more) = match sched.queues.get_mut(&client) {
                        Some(queue) => (queue.pop_front(), !queue.is_empty()),
                        None => (None, false),
                    };
                    if more {
                        sched.order.push_back(client);
                    } else {
                        sched.queues.remove(&client);
                    }
                    if let Some(job) = job {
                        sched.queued -= 1;
                        break job;
                    }
                    continue;
                }
                if sched.shutdown {
                    return;
                }
                sched = inner
                    .work_available
                    .wait(sched)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let outcome = job();
        inner.completed.fetch_add(1, Ordering::Relaxed);
        if outcome == JobOutcome::Abandoned {
            // A replacement for this worker is already running; retire.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A job that blocks until the shared gate opens.
    fn gated_job(gate: &Arc<(Mutex<bool>, Condvar)>) -> Job {
        let g = Arc::clone(gate);
        Box::new(move || {
            let (m, cv) = &*g;
            let mut open = m.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            JobOutcome::Done
        })
    }

    fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
        let (m, cv) = &**gate;
        *m.lock().unwrap() = true;
        cv.notify_all();
    }

    #[test]
    fn runs_jobs_and_drains_on_shutdown() {
        let pool = Pool::new(2, 64);
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            pool.submit(
                "c",
                Box::new(move || {
                    tx.send(i).unwrap();
                    JobOutcome::Done
                }),
            )
            .unwrap();
        }
        pool.shutdown();
        let mut seen: Vec<i32> = rx.try_iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn queue_bound_refuses_excess_jobs() {
        // One worker, blocked on a gate: everything else queues.
        let pool = Pool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        pool.submit("c", gated_job(&gate)).unwrap();
        // Wait until the worker has picked the blocker up, then fill the queue.
        while pool.completed() == 0 && lock(&pool.inner.sched).queued > 0 {
            std::thread::yield_now();
        }
        pool.submit("c", Box::new(|| JobOutcome::Done)).unwrap();
        pool.submit("c", Box::new(|| JobOutcome::Done)).unwrap();
        assert_eq!(
            pool.submit("c", Box::new(|| JobOutcome::Done)),
            Err(PoolFull)
        );
        assert_eq!(pool.rejected(), 1);
        open_gate(&gate);
        pool.shutdown();
    }

    #[test]
    fn single_worker_alternates_between_clients() {
        // Submit 3 jobs for a chatty client and 1 for a quiet one while the
        // single worker is blocked; the quiet client's job must run before
        // the chatty client's backlog is done.
        let pool = Pool::new(1, 64);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        pool.submit("chatty", gated_job(&gate)).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let order = Arc::clone(&order);
            pool.submit(
                "chatty",
                Box::new(move || {
                    order.lock().unwrap().push(format!("chatty{i}"));
                    JobOutcome::Done
                }),
            )
            .unwrap();
        }
        let o = Arc::clone(&order);
        pool.submit(
            "quiet",
            Box::new(move || {
                o.lock().unwrap().push("quiet".to_owned());
                JobOutcome::Done
            }),
        )
        .unwrap();
        open_gate(&gate);
        pool.shutdown();
        let seen = order.lock().unwrap().clone();
        assert_eq!(seen.len(), 4);
        let quiet_at = seen.iter().position(|s| s == "quiet").unwrap();
        assert!(
            quiet_at <= 1,
            "quiet client should not wait behind the whole chatty backlog: {seen:?}"
        );
    }

    #[test]
    fn a_lost_worker_is_replaced_while_its_job_is_still_stuck() {
        // One worker wedges on a gate. After note_worker_lost, a second job
        // must complete *while the first is still blocked* — capacity is
        // restored around the stuck thread, and when the stuck job finally
        // returns Abandoned its worker retires (shutdown still joins clean).
        let pool = Pool::new(1, 64);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.submit(
            "stuck",
            Box::new(move || {
                let (m, cv) = &*g;
                let mut open = m.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                JobOutcome::Abandoned
            }),
        )
        .unwrap();
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        pool.note_worker_lost();
        assert_eq!(pool.replacements(), 1);
        let (tx, rx) = mpsc::channel();
        pool.submit(
            "other",
            Box::new(move || {
                tx.send(()).unwrap();
                JobOutcome::Done
            }),
        )
        .unwrap();
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("the replacement worker must run jobs while the original is stuck");
        open_gate(&gate);
        let inner = Arc::clone(&pool.inner);
        pool.shutdown();
        assert_eq!(inner.completed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn churned_client_entries_drain_without_delaying_others() {
        // A flood client parks 40 already-cancelled (no-op) entries, then a
        // quiet client submits one real job: round-robin must schedule the
        // quiet job within the first two dispatches after the gate opens, and
        // the flood client's queue must vanish entirely once drained.
        let pool = Pool::new(1, 64);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        pool.submit("flood", gated_job(&gate)).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..40 {
            let order = Arc::clone(&order);
            pool.submit(
                "flood",
                Box::new(move || {
                    // A shed entry: its flight was already answered, so the
                    // job body is a cheap fast-exit.
                    order.lock().unwrap().push("flood");
                    JobOutcome::Done
                }),
            )
            .unwrap();
        }
        let o = Arc::clone(&order);
        pool.submit(
            "quiet",
            Box::new(move || {
                o.lock().unwrap().push("quiet");
                JobOutcome::Done
            }),
        )
        .unwrap();
        open_gate(&gate);
        let inner = Arc::clone(&pool.inner);
        pool.shutdown();
        let seen = order.lock().unwrap().clone();
        assert_eq!(seen.len(), 41);
        let quiet_at = seen.iter().position(|s| *s == "quiet").unwrap();
        assert!(
            quiet_at <= 1,
            "quiet job delayed behind churned flood entries: position {quiet_at}"
        );
        let sched = lock(&inner.sched);
        assert_eq!(sched.queued, 0);
        assert!(sched.queues.is_empty());
    }
}
