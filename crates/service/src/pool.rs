//! A bounded worker pool with fair per-client scheduling.
//!
//! Compilation jobs are CPU-bound and can take seconds each, so the daemon
//! must not let one chatty client starve everyone else. Jobs are queued **per
//! client** and workers pick the next job **round-robin across clients**: a
//! client that submits 100 jobs and a client that submits 1 job each get a
//! worker on the next two dispatches, not after 100.
//!
//! The total queue is bounded; [`Pool::submit`] refuses (and the server
//! answers `503`) rather than queueing unboundedly. Jobs are plain closures —
//! panic isolation is the job's own responsibility (the server runs compiles
//! through `Session::compile_many_with`, which already catches panics per
//! job).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Sched {
    /// Per-client FIFO queues.
    queues: HashMap<String, VecDeque<Job>>,
    /// Round-robin order over clients that currently have queued jobs.
    order: VecDeque<String>,
    /// Total queued jobs across all clients.
    queued: usize,
    shutdown: bool,
}

struct PoolInner {
    sched: Mutex<Sched>,
    work_available: Condvar,
    max_queued: usize,
    rejected: AtomicU64,
    completed: AtomicU64,
}

/// The pool handle. Dropping it does **not** stop the workers; call
/// [`Pool::shutdown`] for a clean drain-and-join.
pub struct Pool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

/// `submit` refused because the queue bound was reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolFull;

fn lock(m: &Mutex<Sched>) -> MutexGuard<'_, Sched> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Pool {
    /// Starts `workers` worker threads with a total queue bound of
    /// `max_queued` jobs.
    pub fn new(workers: usize, max_queued: usize) -> Pool {
        let inner = Arc::new(PoolInner {
            sched: Mutex::new(Sched {
                queues: HashMap::new(),
                order: VecDeque::new(),
                queued: 0,
                shutdown: false,
            }),
            work_available: Condvar::new(),
            max_queued: max_queued.max(1),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("chassis-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
            })
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_default();
        Pool {
            inner,
            workers: handles,
        }
    }

    /// Queues a job on `client`'s queue.
    ///
    /// # Errors
    ///
    /// Returns [`PoolFull`] when the total queue bound is reached (the
    /// caller should answer `503`), or after shutdown began.
    pub fn submit(&self, client: &str, job: Job) -> Result<(), PoolFull> {
        let mut sched = lock(&self.inner.sched);
        if sched.shutdown || sched.queued >= self.inner.max_queued {
            drop(sched);
            self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(PoolFull);
        }
        let queue = sched.queues.entry(client.to_owned()).or_default();
        let was_empty = queue.is_empty();
        queue.push_back(job);
        sched.queued += 1;
        if was_empty {
            sched.order.push_back(client.to_owned());
        }
        drop(sched);
        self.inner.work_available.notify_one();
        Ok(())
    }

    /// Jobs refused by the queue bound so far.
    pub fn rejected(&self) -> u64 {
        self.inner.rejected.load(Ordering::Relaxed)
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.inner.completed.load(Ordering::Relaxed)
    }

    /// Drains already-queued jobs, then stops and joins every worker. New
    /// submissions are refused from the moment this is called.
    pub fn shutdown(mut self) {
        {
            let mut sched = lock(&self.inner.sched);
            sched.shutdown = true;
        }
        self.inner.work_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut sched = lock(&inner.sched);
            loop {
                // Round-robin: take the front client, pop one of its jobs,
                // and re-queue the client at the back if it has more.
                if let Some(client) = sched.order.pop_front() {
                    let (job, more) = match sched.queues.get_mut(&client) {
                        Some(queue) => (queue.pop_front(), !queue.is_empty()),
                        None => (None, false),
                    };
                    if more {
                        sched.order.push_back(client);
                    } else {
                        sched.queues.remove(&client);
                    }
                    if let Some(job) = job {
                        sched.queued -= 1;
                        break job;
                    }
                    continue;
                }
                if sched.shutdown {
                    return;
                }
                sched = inner
                    .work_available
                    .wait(sched)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        job();
        inner.completed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn runs_jobs_and_drains_on_shutdown() {
        let pool = Pool::new(2, 64);
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            pool.submit("c", Box::new(move || tx.send(i).unwrap()))
                .unwrap();
        }
        pool.shutdown();
        let mut seen: Vec<i32> = rx.try_iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn queue_bound_refuses_excess_jobs() {
        // One worker, blocked on a gate: everything else queues.
        let pool = Pool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.submit(
            "c",
            Box::new(move || {
                let (m, cv) = &*g;
                let mut open = m.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }),
        )
        .unwrap();
        // Wait until the worker has picked the blocker up, then fill the queue.
        while pool.completed() == 0 && lock(&pool.inner.sched).queued > 0 {
            std::thread::yield_now();
        }
        pool.submit("c", Box::new(|| {})).unwrap();
        pool.submit("c", Box::new(|| {})).unwrap();
        assert_eq!(pool.submit("c", Box::new(|| {})), Err(PoolFull));
        assert_eq!(pool.rejected(), 1);
        let (m, cv) = &*gate;
        *m.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn single_worker_alternates_between_clients() {
        // Submit 3 jobs for a chatty client and 1 for a quiet one while the
        // single worker is blocked; the quiet client's job must run before
        // the chatty client's backlog is done.
        let pool = Pool::new(1, 64);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.submit(
            "chatty",
            Box::new(move || {
                let (m, cv) = &*g;
                let mut open = m.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }),
        )
        .unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let order = Arc::clone(&order);
            pool.submit(
                "chatty",
                Box::new(move || order.lock().unwrap().push(format!("chatty{i}"))),
            )
            .unwrap();
        }
        let o = Arc::clone(&order);
        pool.submit(
            "quiet",
            Box::new(move || o.lock().unwrap().push("quiet".to_owned())),
        )
        .unwrap();
        let (m, cv) = &*gate;
        *m.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
        let seen = order.lock().unwrap().clone();
        assert_eq!(seen.len(), 4);
        let quiet_at = seen.iter().position(|s| s == "quiet").unwrap();
        assert!(
            quiet_at <= 1,
            "quiet client should not wait behind the whole chatty backlog: {seen:?}"
        );
    }
}
