//! # service
//!
//! Compilation-as-a-service: a zero-dependency HTTP/1.1 daemon that serves
//! the Chassis compiler behind a **content-addressed result cache**.
//!
//! The paper frames target-aware compilation as an expensive search — seconds
//! per (benchmark, target) pair — whose result is a pure function of four
//! inputs: the expression, the target description, the seed, and the search
//! configuration. That purity is what this crate exploits. Every request is
//! keyed by a stable hash over exactly those inputs
//! ([`server::content_key`]); equal keys are served from cache (memory, then
//! disk), concurrent equal keys coalesce onto one in-flight search, and only
//! genuinely novel requests pay for compilation.
//!
//! ## Wire protocol (see `docs/SERVICE.md` for the full contract)
//!
//! | Route               | Meaning                                          |
//! |---------------------|--------------------------------------------------|
//! | `POST /compile`     | Compile (or fetch) `{"fpcore", "target", ...}`   |
//! | `GET /result/{key}` | Fetch a stored result by content key, no compute |
//! | `GET /healthz`      | Liveness probe                                   |
//! | `GET /stats`        | Cache/queue/failure counters                     |
//! | `POST /shutdown`    | Graceful shutdown                                |
//!
//! ## Layering
//!
//! * [`json`] — minimal JSON value/parser/serializer (the workspace takes no
//!   external dependencies).
//! * [`http`] — bounded HTTP/1.1 request parsing and response writing.
//! * [`store`] — the two-level (LRU memory + checksummed disk) result store.
//! * [`pool`] — bounded workers with fair per-client round-robin scheduling.
//! * [`server`] — routing, request coalescing, the session cache, and the
//!   daemon lifecycle ([`server::start`] / [`server::Handle`]).
//! * [`client`] — a tiny blocking client used by the tests, the
//!   `serve_throughput`/`serve_soak` benches, and `curl`-less scripting,
//!   with [`client::request_with_retry`] for overload-aware backoff.
//!
//! Compile jobs run through [`chassis::Session::compile_many_with`], so the
//! daemon inherits the library's per-job panic isolation and typed error
//! taxonomy; [`server::status_for`] maps [`chassis::ErrorKind`] onto HTTP
//! status codes.
//!
//! ## Deadlines, cancellation, and overload (docs/RESILIENCE.md)
//!
//! A `POST /compile` may carry `deadline_ms`: the daemon sheds the request
//! at admission when its deadline cannot survive the queue (504 +
//! `Retry-After`), caps the search's wall-clock budget to the remainder,
//! and cancels the search cooperatively when the deadline expires or every
//! waiter disappears. A watchdog thread reclaims genuinely stuck workers,
//! and a per-client circuit breaker sheds clients whose deadlines keep
//! expiring. Every 503/504 carries `Retry-After`.

pub mod client;
pub mod http;
pub mod json;
pub mod pool;
pub mod server;
pub mod store;

pub use client::{post_json, request_with_retry, RetryPolicy};
pub use json::Json;
pub use pool::JobOutcome;
pub use server::{content_key, start, Handle, ServerConfig};
pub use store::{ResultStore, StoreConfig, StoreHit};
