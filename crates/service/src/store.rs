//! The two-level content-addressed result store.
//!
//! Completed compilation responses are stored under their content key (the
//! 32-hex-character digest computed by [`crate::server`] over the canonical
//! FPCore text, target fingerprint, seed, and config fingerprint — see
//! `docs/SERVICE.md`). Lookups go through:
//!
//! 1. an **in-memory LRU** bounded by entry count — the warm path, lock-held
//!    map probe only;
//! 2. an optional **on-disk store** shared across daemon restarts — entries
//!    are checksummed, written atomically (temp file + rename), and a corrupt
//!    or truncated entry is deleted and treated as a miss rather than served.
//!
//! A disk hit is promoted into the memory level. Only *successful* responses
//! are ever stored: errors are cheap to recompute, and the interesting ones
//! (panics, resource exhaustion) are not deterministic facts about the key.
//!
//! The fault points `store.read` and `store.write` (see [`fault::SITES`])
//! inject the two interesting disk failures: a read fault behaves as a
//! corrupt entry (miss), a write fault as a failed persist (entry stays
//! memory-only). Both must leave the daemon fully functional.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// On-disk entry header magic + format version. Bump the version whenever the
/// body format, the checksum, or the key digest algorithm changes: old
/// entries then read as unknown-format and are recovered as misses.
const DISK_MAGIC: &str = "chassis-store 1";

/// Configuration for a [`ResultStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Maximum entries held in memory before LRU eviction.
    pub memory_capacity: usize,
    /// Directory for the persistent level (`None`: memory only).
    pub disk_dir: Option<PathBuf>,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            memory_capacity: 1024,
            disk_dir: None,
        }
    }
}

/// Which level answered a [`ResultStore::get`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreHit {
    /// Served from the in-memory LRU.
    Memory,
    /// Served from disk (and promoted into memory).
    Disk,
}

/// Point-in-time counters for `/stats` and the tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from memory.
    pub hits_memory: u64,
    /// Lookups answered from disk.
    pub hits_disk: u64,
    /// Lookups answered by neither level.
    pub misses: u64,
    /// Entries evicted from the memory level.
    pub evictions: u64,
    /// Corrupt/truncated disk entries deleted during reads.
    pub corrupt_recovered: u64,
    /// Writes skipped or failed (fault injection or real I/O errors).
    pub writes_skipped: u64,
}

/// Outcome of one disk-level read attempt (internal).
enum DiskRead {
    Found(String),
    Absent,
    Corrupt,
}

struct MemoryLevel {
    /// key → (last-use tick, body). Recency is a monotone tick; eviction
    /// scans for the minimum. O(capacity) per eviction, which is fine at the
    /// capacities the daemon uses and keeps the structure trivially correct.
    entries: HashMap<String, (u64, String)>,
    tick: u64,
}

/// The two-level store. All methods take `&self`; the memory level is behind
/// one mutex, disk I/O happens outside it.
pub struct ResultStore {
    memory: Mutex<MemoryLevel>,
    capacity: usize,
    disk_dir: Option<PathBuf>,
    hits_memory: AtomicU64,
    hits_disk: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corrupt_recovered: AtomicU64,
    writes_skipped: AtomicU64,
}

fn lock(m: &Mutex<MemoryLevel>) -> MutexGuard<'_, MemoryLevel> {
    // A poisoned store mutex means a panic mid-insert; the map itself is
    // always structurally valid, so recover rather than propagate.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ResultStore {
    /// Opens a store. The disk directory is created if missing.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the disk directory cannot be created.
    pub fn open(config: &StoreConfig) -> io::Result<ResultStore> {
        if let Some(dir) = &config.disk_dir {
            fs::create_dir_all(dir)?;
        }
        Ok(ResultStore {
            memory: Mutex::new(MemoryLevel {
                entries: HashMap::new(),
                tick: 0,
            }),
            capacity: config.memory_capacity.max(1),
            disk_dir: config.disk_dir.clone(),
            hits_memory: AtomicU64::new(0),
            hits_disk: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt_recovered: AtomicU64::new(0),
            writes_skipped: AtomicU64::new(0),
        })
    }

    /// Looks up a key, trying memory then disk. A disk hit is promoted into
    /// the memory level.
    pub fn get(&self, key: &str) -> Option<(String, StoreHit)> {
        {
            let mut mem = lock(&self.memory);
            mem.tick += 1;
            let tick = mem.tick;
            if let Some((last_use, body)) = mem.entries.get_mut(key) {
                *last_use = tick;
                let body = body.clone();
                drop(mem);
                self.hits_memory.fetch_add(1, Ordering::Relaxed);
                return Some((body, StoreHit::Memory));
            }
        }
        if let Some(body) = self.disk_read(key) {
            self.insert_memory(key, &body);
            self.hits_disk.fetch_add(1, Ordering::Relaxed);
            return Some((body, StoreHit::Disk));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a response body under its key, in memory and (if configured)
    /// on disk. Overwrites are idempotent: the body for a key is a pure
    /// function of the key's content, so last-write-wins is safe.
    pub fn put(&self, key: &str, body: &str) {
        self.insert_memory(key, body);
        self.disk_write(key, body);
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits_memory: self.hits_memory.load(Ordering::Relaxed),
            hits_disk: self.hits_disk.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt_recovered: self.corrupt_recovered.load(Ordering::Relaxed),
            writes_skipped: self.writes_skipped.load(Ordering::Relaxed),
        }
    }

    /// Number of entries currently in the memory level.
    pub fn memory_len(&self) -> usize {
        lock(&self.memory).entries.len()
    }

    fn insert_memory(&self, key: &str, body: &str) {
        let mut mem = lock(&self.memory);
        mem.tick += 1;
        let tick = mem.tick;
        mem.entries.insert(key.to_owned(), (tick, body.to_owned()));
        let mut evicted = 0;
        while mem.entries.len() > self.capacity {
            let Some(oldest) = mem
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            mem.entries.remove(&oldest);
            evicted += 1;
        }
        drop(mem);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// `dir/<first two hex chars>/<key>` — sharded so a big store does not
    /// put every entry in one directory.
    ///
    /// This is `pub(crate)`-visible via the entry layout documented in
    /// `docs/SERVICE.md`; the recovery tests poke entries directly.
    fn entry_path(dir: &Path, key: &str) -> PathBuf {
        let shard = key.get(0..2).unwrap_or("xx");
        dir.join(shard).join(key)
    }

    /// Reads the disk level. The disk level is fallible *by design*: any
    /// failure — injected abort, injected panic, real I/O surprise, corrupt
    /// entry — may only cost a cache hit, never serving. Panics (the
    /// `store.read` point can be armed with one) are caught at this boundary
    /// so a persistence bug cannot unwind into a connection handler.
    fn disk_read(&self, key: &str) -> Option<String> {
        let dir = self.disk_dir.as_ref()?;
        let path = Self::entry_path(dir, key);
        let outcome = std::panic::catch_unwind(|| {
            if fault::point("store.read") {
                // Injected read fault: behaves exactly like a corrupt entry.
                return DiskRead::Corrupt;
            }
            let Ok(raw) = fs::read(&path) else {
                return DiskRead::Absent;
            };
            match decode_entry(&raw) {
                Some(body) => DiskRead::Found(body),
                None => {
                    // Corrupt, truncated, or unknown-format entry: delete it
                    // so the slot can be refilled, and report a miss.
                    let _ = fs::remove_file(&path);
                    DiskRead::Corrupt
                }
            }
        });
        match outcome {
            Ok(DiskRead::Found(body)) => Some(body),
            Ok(DiskRead::Absent) => None,
            Ok(DiskRead::Corrupt) | Err(_) => {
                self.corrupt_recovered.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Writes the disk level; same boundary rules as [`ResultStore::disk_read`]
    /// (a failed persist leaves the entry memory-only and counts
    /// `writes_skipped`).
    fn disk_write(&self, key: &str, body: &str) {
        let Some(dir) = self.disk_dir.as_ref() else {
            return;
        };
        let outcome = std::panic::catch_unwind(|| {
            if fault::point("store.write") {
                return None;
            }
            Self::try_disk_write(dir, key, body)
        });
        if !matches!(outcome, Ok(Some(()))) {
            self.writes_skipped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn try_disk_write(dir: &Path, key: &str, body: &str) -> Option<()> {
        let path = Self::entry_path(dir, key);
        let shard_dir = path.parent()?;
        fs::create_dir_all(shard_dir).ok()?;
        // Unique temp name: pid + a process-wide counter (two daemons sharing
        // a directory must not clobber each other's in-progress writes).
        static TMP_NONCE: AtomicU64 = AtomicU64::new(0);
        let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
        let tmp = shard_dir.join(format!(".tmp-{}-{nonce:x}-{key}", std::process::id()));
        let mut file = fs::File::create(&tmp).ok()?;
        let written = file
            .write_all(encode_entry(body).as_bytes())
            .and_then(|()| file.sync_all());
        drop(file);
        if written.is_err() || fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
            return None;
        }
        Some(())
    }
}

/// FNV-1a 64 over the body: the disk entry checksum. Stability across builds
/// matters (entries outlive binaries); cryptographic strength does not
/// (the store directory is as trusted as the daemon binary itself).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `chassis-store 1 <len> <fnv64 hex>\n<body>`.
fn encode_entry(body: &str) -> String {
    format!(
        "{DISK_MAGIC} {} {:016x}\n{body}",
        body.len(),
        fnv64(body.as_bytes())
    )
}

fn decode_entry(raw: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(raw).ok()?;
    let (header, body) = text.split_once('\n')?;
    let rest = header.strip_prefix(DISK_MAGIC)?;
    let mut fields = rest.split_whitespace();
    let len: usize = fields.next()?.parse().ok()?;
    let checksum = u64::from_str_radix(fields.next()?, 16).ok()?;
    if fields.next().is_some() || body.len() != len || fnv64(body.as_bytes()) != checksum {
        return None;
    }
    Some(body.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory_store(capacity: usize) -> ResultStore {
        ResultStore::open(&StoreConfig {
            memory_capacity: capacity,
            disk_dir: None,
        })
        .unwrap()
    }

    #[test]
    fn memory_level_hits_and_misses() {
        let store = memory_store(8);
        assert!(store.get("k1").is_none());
        store.put("k1", "body1");
        assert_eq!(
            store.get("k1"),
            Some(("body1".to_owned(), StoreHit::Memory))
        );
        let stats = store.stats();
        assert_eq!((stats.hits_memory, stats.misses), (1, 1));
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let store = memory_store(2);
        store.put("a", "A");
        store.put("b", "B");
        // Touch `a` so `b` is now the least recently used.
        assert!(store.get("a").is_some());
        store.put("c", "C");
        assert_eq!(store.memory_len(), 2);
        assert!(store.get("a").is_some(), "recently used entry survives");
        assert!(store.get("c").is_some(), "new entry survives");
        assert!(store.get("b").is_none(), "LRU entry was evicted");
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn entry_encoding_round_trips_and_rejects_tampering() {
        let body = "{\"key\":\"abc\",\"cost\":1.5}";
        let encoded = encode_entry(body);
        assert_eq!(decode_entry(encoded.as_bytes()).as_deref(), Some(body));
        // Flip one body byte: checksum mismatch.
        let mut tampered = encoded.clone().into_bytes();
        let last = tampered.len() - 1;
        tampered[last] ^= 1;
        assert_eq!(decode_entry(&tampered), None);
        // Truncate: length mismatch.
        assert_eq!(decode_entry(&encoded.as_bytes()[..encoded.len() - 2]), None);
        // Unknown version: recovered as miss.
        assert_eq!(decode_entry(b"chassis-store 9 1 00\nx"), None);
    }
}
