//! A deliberately small HTTP/1.1 server-side implementation.
//!
//! The daemon needs exactly enough HTTP to serve `curl` and the replay bench:
//! request-line + header parsing, `Content-Length` bodies, keep-alive, and
//! response writing. No chunked encoding, no TLS, no HTTP/2 — requests using
//! features outside this subset get a clean `4xx` rather than undefined
//! behavior, and all inputs are bounded so a malicious peer cannot balloon
//! memory.

use std::io::{BufRead, Write};
use std::time::Instant;

/// Request line length bound (method + path + version).
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Header count bound.
const MAX_HEADERS: usize = 64;
/// Single header line length bound.
const MAX_HEADER_LINE: usize = 8 * 1024;
/// Body size bound: far above any real FPCore, far below a memory concern.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercase as sent).
    pub method: String,
    /// The request path (query strings are not split off; the service routes
    /// on exact paths and path prefixes).
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open afterwards.
    pub keep_alive: bool,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed. [`HttpError::status`] maps each case to
/// the response code the connection handler should send before closing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed or errored mid-request (no response possible).
    ConnectionLost,
    /// Malformed request line or header syntax.
    Malformed(&'static str),
    /// The request exceeded a size bound.
    TooLarge(&'static str),
    /// `Content-Length` missing on a method that requires a body.
    LengthRequired,
    /// The whole request (line + headers + body) took longer to arrive than
    /// the caller's deadline allowed — a slowloris-style dribbling client.
    Timeout,
}

impl HttpError {
    /// The HTTP status code to answer with (`None`: connection already gone).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::ConnectionLost => None,
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::TooLarge(_) => Some((413, "Payload Too Large")),
            HttpError::LengthRequired => Some((411, "Length Required")),
            HttpError::Timeout => Some((408, "Request Timeout")),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionLost => write!(f, "connection lost"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
            HttpError::LengthRequired => write!(f, "content-length required"),
            HttpError::Timeout => write!(f, "request read deadline exceeded"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one line up to CRLF (or bare LF, accepted leniently), bounded in
/// both size and (when a deadline is given) arrival time.
fn read_line(
    stream: &mut impl BufRead,
    bound: usize,
    what: &'static str,
    deadline: Option<Instant>,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(HttpError::Timeout);
        }
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::ConnectionLost);
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| HttpError::Malformed("non-utf8 line"));
                }
                line.push(byte[0]);
                if line.len() > bound {
                    return Err(HttpError::TooLarge(what));
                }
            }
            Err(_) => return Err(HttpError::ConnectionLost),
        }
    }
}

/// Reads one request from the stream. `Ok(None)` means the peer closed the
/// connection cleanly between requests (the normal end of a keep-alive
/// session).
///
/// `deadline` bounds how long the *whole* request (line, headers, body) may
/// take to arrive; a client that dribbles bytes slower than that gets
/// [`HttpError::Timeout`] (408) instead of pinning the reader thread. The
/// check runs between reads, so its granularity is the socket's read timeout:
/// a silent peer is cut by the socket timeout, a dribbling one by this
/// deadline within one socket timeout of it expiring.
///
/// # Errors
///
/// Returns an [`HttpError`]; the caller answers with
/// [`HttpError::status`] if the connection is still writable.
pub fn read_request(
    stream: &mut impl BufRead,
    deadline: Option<Instant>,
) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(stream, MAX_REQUEST_LINE, "request line", deadline)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed("request line"));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("request line"));
    }
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 defaults to close.
    let mut keep_alive = version == "HTTP/1.1";

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let Some(line) = read_line(stream, MAX_HEADER_LINE, "header", deadline)? else {
            return Err(HttpError::ConnectionLost);
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("header count"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| HttpError::Malformed("content-length"))?;
                if n > MAX_BODY {
                    return Err(HttpError::TooLarge("body"));
                }
                content_length = Some(n);
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
        headers.push((name, value));
    }

    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            // Chunked so a dribbled body is still subject to the deadline.
            body.resize(n, 0);
            let mut filled = 0;
            while filled < n {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Err(HttpError::Timeout);
                }
                let step = (n - filled).min(4096);
                stream
                    .read_exact(&mut body[filled..filled + step])
                    .map_err(|_| HttpError::ConnectionLost)?;
                filled += step;
            }
        }
        None => {
            if method == "POST" || method == "PUT" {
                return Err(HttpError::LengthRequired);
            }
        }
    }

    Ok(Some(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body,
        keep_alive,
    }))
}

/// Writes a response with a JSON (or plain-text) body. `keep_alive` controls
/// the `Connection` header; the body always carries an exact
/// `Content-Length`, so the peer can reuse the connection safely.
/// `extra_headers` (e.g. `Retry-After`) are written verbatim after the
/// standard ones.
///
/// # Errors
///
/// Propagates the underlying socket error.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// The conventional reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), None)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /compile HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/compile");
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn connection_close_is_honored() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_an_error() {
        assert!(parse("").unwrap().is_none());
        assert_eq!(
            parse("NONSENSE\r\n\r\n"),
            Err(HttpError::Malformed("request line"))
        );
        assert_eq!(
            parse("POST /compile HTTP/1.1\r\n\r\n"),
            Err(HttpError::LengthRequired)
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"),
            Err(HttpError::TooLarge("body"))
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed("content-length"))
        );
    }

    #[test]
    fn responses_have_exact_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "application/json", b"{}", true, &[]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_are_written_before_the_body() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "Service Unavailable",
            "application/json",
            b"{}",
            false,
            &[("Retry-After", "3".to_string())],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 3\r\n"));
        let headers_end = text.find("\r\n\r\n").unwrap();
        assert!(text.find("Retry-After").unwrap() < headers_end);
    }

    #[test]
    fn an_expired_deadline_times_the_request_out() {
        let already_passed = Instant::now() - std::time::Duration::from_millis(1);
        let raw = "GET /healthz HTTP/1.1\r\n\r\n";
        assert_eq!(
            read_request(&mut BufReader::new(raw.as_bytes()), Some(already_passed)),
            Err(HttpError::Timeout)
        );
        assert_eq!(HttpError::Timeout.status(), Some((408, "Request Timeout")));
    }
}
