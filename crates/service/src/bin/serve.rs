//! `serve`: the compilation daemon CLI.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--capacity N] [--disk DIR]
//!       [--max-queued N] [--sessions N]
//! ```
//!
//! Binds, prints the listening address (port 0 resolves to a free port), and
//! runs until `POST /shutdown` or the process is killed. See
//! `docs/SERVICE.md` for the wire protocol and a quick-start.

use service::{start, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--capacity N] \
         [--disk DIR] [--max-queued N] [--sessions N]"
    );
    std::process::exit(2)
}

fn parsed<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("serve: {flag} needs a value");
        usage()
    };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("serve: invalid value {raw:?} for {flag}");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:8091".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parsed::<String>("--addr", args.next()),
            "--workers" => config.workers = parsed("--workers", args.next()),
            "--capacity" => config.memory_capacity = parsed("--capacity", args.next()),
            "--disk" => config.disk_dir = Some(parsed::<PathBuf>("--disk", args.next())),
            "--max-queued" => config.max_queued = parsed("--max-queued", args.next()),
            "--sessions" => config.max_sessions = parsed("--sessions", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("serve: unknown flag {other:?}");
                usage()
            }
        }
    }

    match start(config) {
        Ok(handle) => {
            println!("chassis service listening on http://{}", handle.addr());
            handle.wait();
            println!("chassis service stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: failed to start: {e}");
            ExitCode::FAILURE
        }
    }
}
