//! `serve`: the compilation daemon CLI.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--capacity N] [--disk DIR]
//!       [--max-queued N] [--sessions N] [--stuck-after SECS]
//!       [--breaker-threshold N] [--breaker-cooldown-ms MS]
//! ```
//!
//! Binds, prints the listening address (port 0 resolves to a free port), and
//! runs until `POST /shutdown` or the process is killed. See
//! `docs/SERVICE.md` for the wire protocol and a quick-start, and
//! `docs/RESILIENCE.md` for the deadline/watchdog/breaker knobs.

use service::{start, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--capacity N] \
         [--disk DIR] [--max-queued N] [--sessions N] [--stuck-after SECS] \
         [--breaker-threshold N] [--breaker-cooldown-ms MS]"
    );
    std::process::exit(2)
}

fn parsed<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("serve: {flag} needs a value");
        usage()
    };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("serve: invalid value {raw:?} for {flag}");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:8091".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parsed::<String>("--addr", args.next()),
            "--workers" => config.workers = parsed("--workers", args.next()),
            "--capacity" => config.memory_capacity = parsed("--capacity", args.next()),
            "--disk" => config.disk_dir = Some(parsed::<PathBuf>("--disk", args.next())),
            "--max-queued" => config.max_queued = parsed("--max-queued", args.next()),
            "--sessions" => config.max_sessions = parsed("--sessions", args.next()),
            "--stuck-after" => {
                config.stuck_after = Duration::from_secs(parsed("--stuck-after", args.next()));
            }
            "--breaker-threshold" => {
                config.breaker_threshold = parsed("--breaker-threshold", args.next());
            }
            "--breaker-cooldown-ms" => {
                config.breaker_cooldown =
                    Duration::from_millis(parsed("--breaker-cooldown-ms", args.next()));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("serve: unknown flag {other:?}");
                usage()
            }
        }
    }

    match start(config) {
        Ok(handle) => {
            println!("chassis service listening on http://{}", handle.addr());
            handle.wait();
            println!("chassis service stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: failed to start: {e}");
            ExitCode::FAILURE
        }
    }
}
