//! Cost auto-tuning (paper Section 4.2): if a target author does not provide
//! operator costs, Chassis estimates them by timing each operator in a hot loop
//! and normalizing against the cheapest operator.

use crate::target::Target;
use std::time::Instant;

/// Configuration for the auto-tuner.
#[derive(Clone, Copy, Debug)]
pub struct AutoTuneConfig {
    /// Number of operator executions per measurement loop.
    pub iterations: usize,
    /// Number of measurement loops; the fastest is kept.
    pub repeats: usize,
}

impl Default for AutoTuneConfig {
    fn default() -> Self {
        AutoTuneConfig {
            iterations: 20_000,
            repeats: 3,
        }
    }
}

/// Measures the per-call time of every operator in the target and rewrites the
/// operator costs so that the cheapest operator has cost 1.0.
///
/// The measured costs are noisy (the paper notes the auto-tuned costs "are not
/// very accurate, but seem to suffice in practice"); they are only used to *rank*
/// candidate programs.
pub fn auto_tune(target: &Target, config: AutoTuneConfig) -> Target {
    let mut tuned = target.clone();
    let mut per_op_nanos: Vec<f64> = Vec::with_capacity(target.operators.len());
    for op in &target.operators {
        // Benign inputs that stay inside every operator's domain.
        let args: Vec<f64> = (0..op.arity()).map(|i| 0.5 + 0.25 * i as f64).collect();
        let mut best = f64::INFINITY;
        for _ in 0..config.repeats {
            let start = Instant::now();
            let mut sink = 0.0;
            for _ in 0..config.iterations {
                sink += op.execute(std::hint::black_box(&args));
            }
            std::hint::black_box(sink);
            let nanos = start.elapsed().as_nanos() as f64 / config.iterations as f64;
            if nanos < best {
                best = nanos;
            }
        }
        per_op_nanos.push(best.max(1e-3));
    }
    let floor = per_op_nanos.iter().copied().fold(f64::INFINITY, f64::min);
    for (op, nanos) in tuned.operators.iter_mut().zip(&per_op_nanos) {
        op.cost = (nanos / floor).max(1.0);
    }
    tuned.cost_source = "auto-tune (measured)".to_owned();
    tuned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::Operator;
    use fpcore::FpType::*;

    #[test]
    fn tuning_preserves_operator_set_and_ranks_transcendentals_higher() {
        let target = Target::new("t", "test").with_operators(vec![
            Operator::emulated("+.f64", &[Binary64, Binary64], Binary64, "(+ a0 a1)", 1.0),
            Operator::emulated(
                "heavy.f64",
                &[Binary64],
                Binary64,
                // A deliberately expensive emulated operator.
                "(exp (sin (exp (cos (exp a0)))))",
                1.0,
            ),
        ]);
        // Rank-order check over a median of independent tuning runs: a single
        // best-of-N measurement can still be inverted by scheduler noise on a
        // busy single-core runner, but the *median* of several runs' cost
        // ratios only flips if the majority of runs were disturbed — which is
        // no longer noise. Each run stays cheap (best-of-3, 1k iterations);
        // the assertion is on the median ratio, not any individual run.
        const RUNS: usize = 7;
        let mut ratios: Vec<f64> = (0..RUNS)
            .map(|_| {
                let tuned = auto_tune(
                    &target,
                    AutoTuneConfig {
                        iterations: 1_000,
                        repeats: 3,
                    },
                );
                assert_eq!(tuned.operators.len(), 2);
                assert!(tuned.cost_source.contains("measured"));
                let add = tuned.operator(tuned.find_operator("+.f64").unwrap()).cost;
                let heavy = tuned
                    .operator(tuned.find_operator("heavy.f64").unwrap())
                    .cost;
                assert!(add >= 1.0);
                heavy / add
            })
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = ratios[RUNS / 2];
        assert!(
            median > 1.0,
            "median auto-tuned cost ratio heavy/add across {RUNS} runs should exceed 1 \
             (got {median:.3}; ratios {ratios:?})"
        );
    }
}
