//! Interpreter for target-specific floating-point programs.
//!
//! The interpreter plays the role of the paper's dynamically linked operator
//! implementations: it executes every operator through its [`crate::Impl`] so the
//! accuracy consequences of approximate instructions (AVX `rcpps`, vdt `fast_*`)
//! are visible in the results, and it provides wall-clock measurement of a
//! program over a set of pre-sampled points (used for the cost-model validation
//! experiment, Figure 10).

use crate::analysis::CompileOptions;
use crate::block::Columns;
use crate::expr::FloatExpr;
use crate::operator::round_to_type;
use crate::target::Target;
use fpcore::eval::Bindings;
use fpcore::{RealOp, Symbol};
use std::time::{Duration, Instant};

/// A borrowed environment of parallel slices: `vars[i]` is bound to `vals[i]`.
///
/// Implements [`Bindings`], the shared environment abstraction also used by the
/// `fpcore` evaluator. The accuracy hot loop uses this instead of a per-point
/// `HashMap`: lookup is a linear scan, which beats hashing for the handful of
/// variables real expressions have, allocates nothing, and is trivially `Sync`.
#[derive(Clone, Copy, Debug)]
pub struct SliceEnv<'a> {
    vars: &'a [Symbol],
    vals: &'a [f64],
}

impl<'a> SliceEnv<'a> {
    /// Pairs `vars` with `vals` positionally (extra entries on either side are
    /// ignored, matching `zip` semantics).
    pub fn new(vars: &'a [Symbol], vals: &'a [f64]) -> SliceEnv<'a> {
        SliceEnv { vars, vals }
    }
}

impl Bindings for SliceEnv<'_> {
    fn value_of(&self, var: Symbol) -> Option<f64> {
        self.vars
            .iter()
            .position(|v| *v == var)
            .and_then(|i| self.vals.get(i).copied())
    }
}

/// Evaluates a program against a point given as a value slice parallel to
/// `vars` — the `Sync`-friendly entry point used by the accuracy hot loop.
pub fn eval_float_expr_indexed(
    target: &Target,
    expr: &FloatExpr,
    vars: &[Symbol],
    vals: &[f64],
) -> f64 {
    eval_float_expr_in(target, expr, &SliceEnv::new(vars, vals))
}

/// Evaluates a program against any [`Bindings`] implementation.
pub fn eval_float_expr_in<E: Bindings + ?Sized>(target: &Target, expr: &FloatExpr, env: &E) -> f64 {
    match expr {
        FloatExpr::Num(v, _) => *v,
        FloatExpr::Var(v, ty) => round_to_type(env.value_of(*v).unwrap_or(f64::NAN), *ty),
        FloatExpr::Op(id, args) => {
            let op = target.operator(*id);
            let vals: Vec<f64> = args
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    let raw = eval_float_expr_in(target, a, env);
                    round_to_type(raw, op.arg_types[i])
                })
                .collect();
            op.execute(&vals)
        }
        FloatExpr::Cmp(op, a, b) => {
            let lhs = eval_float_expr_in(target, a, env);
            let rhs = eval_float_expr_in(target, b, env);
            let result = match op {
                RealOp::Lt => lhs < rhs,
                RealOp::Gt => lhs > rhs,
                RealOp::Le => lhs <= rhs,
                RealOp::Ge => lhs >= rhs,
                RealOp::Eq => lhs == rhs,
                RealOp::Ne => lhs != rhs,
                _ => panic!("{op} is not a comparison"),
            };
            if result {
                1.0
            } else {
                0.0
            }
        }
        FloatExpr::If(c, t, e) => {
            if eval_float_expr_in(target, c, env) != 0.0 {
                eval_float_expr_in(target, t, env)
            } else {
                eval_float_expr_in(target, e, env)
            }
        }
    }
}

/// Evaluates a program over a columnar batch of points without building
/// per-point environments.
///
/// Compiles the program to bytecode once ([`crate::compile::compile`]) and
/// sweeps the batch in blocks ([`crate::block`]), reusing one columnar
/// register file throughout. The results are bit-identical to calling
/// [`eval_float_expr_indexed`] per point.
pub fn eval_batch(
    target: &Target,
    expr: &FloatExpr,
    vars: &[Symbol],
    points: &Columns,
) -> Vec<f64> {
    eval_batch_with(target, expr, vars, points, &CompileOptions::default())
}

/// [`eval_batch`] with explicit [`CompileOptions`] (opt level, verifier
/// mode, block width override).
pub fn eval_batch_with(
    target: &Target,
    expr: &FloatExpr,
    vars: &[Symbol],
    points: &Columns,
    options: &CompileOptions,
) -> Vec<f64> {
    let (program, _) = crate::analysis::compile_with_options(target, expr, options);
    let columns = program.bind_columns(vars);
    let mut regs = program.new_block_regs(options.block_width_for(points.len()));
    let mut out = vec![0.0; points.len()];
    program.eval_range(&columns, points, 0, &mut regs, &mut out);
    out
}

/// Measures the wall-clock time of evaluating `expr` over all `points`,
/// repeating the sweep `repeats` times and returning the fastest sweep (the
/// standard way to reduce scheduling noise).
///
/// The program is compiled to bytecode — and the columnar register file and
/// output buffer are allocated — once, outside the timed region: this
/// measures the steady-state per-point cost of the block engine, which is
/// what the cost-model validation (Figure 10) compares against.
pub fn measure_runtime(
    target: &Target,
    expr: &FloatExpr,
    vars: &[Symbol],
    points: &Columns,
    repeats: usize,
) -> Duration {
    // The optimized program is bit-identical by construction and occupies a
    // smaller register slab, so this is what production timing should see.
    let options = CompileOptions::default();
    let (program, _) = crate::analysis::compile_with_options(target, expr, &options);
    let columns = program.bind_columns(vars);
    let mut regs = program.new_block_regs(options.block_width_for(points.len()));
    let mut out = vec![0.0; points.len()];
    let mut best = Duration::MAX;
    let mut sink = 0.0f64;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        program.eval_range(&columns, points, 0, &mut regs, &mut out);
        // Accumulate into a sink so the work cannot be optimized away.
        for &value in &out {
            sink += if value.is_finite() { value } else { 0.0 };
        }
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
    }
    std::hint::black_box(sink);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::Operator;
    use fpcore::FpType::*;
    use std::collections::HashMap;

    fn target() -> Target {
        Target::new("t", "test").with_operators(vec![
            Operator::emulated("+.f64", &[Binary64, Binary64], Binary64, "(+ a0 a1)", 1.0),
            Operator::emulated("*.f64", &[Binary64, Binary64], Binary64, "(* a0 a1)", 1.0),
            Operator::emulated("exp.f64", &[Binary64], Binary64, "(exp a0)", 40.0),
            Operator::emulated("/.f32", &[Binary32, Binary32], Binary32, "(/ a0 a1)", 10.0),
        ])
    }

    fn env(bindings: &[(&str, f64)]) -> HashMap<Symbol, f64> {
        bindings.iter().map(|(n, v)| (Symbol::new(n), *v)).collect()
    }

    #[test]
    fn evaluates_operator_trees() {
        let t = target();
        let add = t.find_operator("+.f64").unwrap();
        let mul = t.find_operator("*.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        // x*x + 1
        let prog = FloatExpr::Op(
            add,
            vec![
                FloatExpr::Op(mul, vec![x.clone(), x]),
                FloatExpr::literal(1.0, Binary64),
            ],
        );
        assert_eq!(eval_float_expr_in(&t, &prog, &env(&[("x", 3.0)])), 10.0);
        assert!(eval_float_expr_in(&t, &prog, &env(&[])).is_nan());
    }

    #[test]
    fn binary32_operators_round_operands_and_results() {
        let t = target();
        let div32 = t.find_operator("/.f32").unwrap();
        let prog = FloatExpr::Op(
            div32,
            vec![
                FloatExpr::Var(Symbol::new("x"), Binary32),
                FloatExpr::literal(3.0, Binary32),
            ],
        );
        let out = eval_float_expr_in(&t, &prog, &env(&[("x", 1.0)]));
        assert_eq!(out, (1.0f32 / 3.0f32) as f64);
    }

    #[test]
    fn conditionals_select_branch() {
        let t = target();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        let prog = FloatExpr::If(
            Box::new(FloatExpr::Cmp(
                RealOp::Lt,
                Box::new(x.clone()),
                Box::new(FloatExpr::literal(0.0, Binary64)),
            )),
            Box::new(FloatExpr::literal(-1.0, Binary64)),
            Box::new(FloatExpr::literal(1.0, Binary64)),
        );
        assert_eq!(eval_float_expr_in(&t, &prog, &env(&[("x", -2.0)])), -1.0);
        assert_eq!(eval_float_expr_in(&t, &prog, &env(&[("x", 2.0)])), 1.0);
    }

    #[test]
    fn batch_evaluation_matches_single() {
        let t = target();
        let exp = t.find_operator("exp.f64").unwrap();
        let prog = FloatExpr::Op(exp, vec![FloatExpr::Var(Symbol::new("x"), Binary64)]);
        let vars = [Symbol::new("x")];
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.1]).collect();
        let points = Columns::from_rows(1, &rows);
        let batch = eval_batch(&t, &prog, &vars, &points);
        assert_eq!(batch.len(), 10);
        for (i, v) in batch.iter().enumerate() {
            assert_eq!(*v, (i as f64 * 0.1).exp());
        }
    }

    #[test]
    fn runtime_measurement_is_positive_and_scales() {
        let t = target();
        let exp = t.find_operator("exp.f64").unwrap();
        let add = t.find_operator("+.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        let cheap = FloatExpr::Op(add, vec![x.clone(), x.clone()]);
        // A chain of exp calls is much more expensive than one addition.
        let mut costly = x.clone();
        for _ in 0..8 {
            costly = FloatExpr::Op(exp, vec![costly]);
        }
        let vars = [Symbol::new("x")];
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![(i as f64) * 1e-3]).collect();
        let points = Columns::from_rows(1, &rows);
        let cheap_time = measure_runtime(&t, &cheap, &vars, &points, 3);
        let costly_time = measure_runtime(&t, &costly, &vars, &points, 3);
        assert!(cheap_time > Duration::ZERO);
        assert!(costly_time > cheap_time);
    }
}
