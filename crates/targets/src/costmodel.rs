//! The target cost model (paper Section 4.2).
//!
//! The estimated cost of a program is the sum of its operators' scalar costs,
//! plus literal and variable costs, with conditionals charged according to the
//! target's scalar or vector style. Speed is assumed to be inversely related to
//! this sum.

use crate::expr::FloatExpr;
use crate::target::{IfCostStyle, Target};

/// Estimated cost of a program under the target's cost model.
pub fn program_cost(target: &Target, expr: &FloatExpr) -> f64 {
    match expr {
        FloatExpr::Num(_, _) => target.literal_cost,
        FloatExpr::Var(_, _) => target.variable_cost,
        FloatExpr::Op(id, args) => {
            target.operator(*id).cost + args.iter().map(|a| program_cost(target, a)).sum::<f64>()
        }
        FloatExpr::Cmp(_, a, b) => {
            // Comparisons are charged like a cheap arithmetic operation.
            1.0 + program_cost(target, a) + program_cost(target, b)
        }
        FloatExpr::If(c, t, e) => {
            let cond = program_cost(target, c);
            let then_cost = program_cost(target, t);
            let else_cost = program_cost(target, e);
            let branches = match target.if_cost_style {
                IfCostStyle::Scalar => then_cost.max(else_cost),
                IfCostStyle::Vector => then_cost + else_cost,
            };
            target.if_base_cost + cond + branches
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::Operator;
    use crate::target::Target;
    use fpcore::FpType::*;
    use fpcore::{RealOp, Symbol};

    fn target(style: IfCostStyle) -> Target {
        Target::new("t", "test")
            .with_if_style(style, 2.0)
            .with_leaf_costs(1.0, 0.5)
            .with_operators(vec![
                Operator::emulated("+.f64", &[Binary64, Binary64], Binary64, "(+ a0 a1)", 1.0),
                Operator::emulated("/.f64", &[Binary64, Binary64], Binary64, "(/ a0 a1)", 10.0),
            ])
    }

    fn sample_if(t: &Target) -> FloatExpr {
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        let add = t.find_operator("+.f64").unwrap();
        let div = t.find_operator("/.f64").unwrap();
        FloatExpr::If(
            Box::new(FloatExpr::Cmp(
                RealOp::Lt,
                Box::new(x.clone()),
                Box::new(FloatExpr::literal(0.0, Binary64)),
            )),
            Box::new(FloatExpr::Op(
                add,
                vec![x.clone(), FloatExpr::literal(1.0, Binary64)],
            )),
            Box::new(FloatExpr::Op(
                div,
                vec![FloatExpr::literal(1.0, Binary64), x],
            )),
        )
    }

    #[test]
    fn operator_and_leaf_costs_add_up() {
        let t = target(IfCostStyle::Scalar);
        let add = t.find_operator("+.f64").unwrap();
        let expr = FloatExpr::Op(
            add,
            vec![
                FloatExpr::Var(Symbol::new("x"), Binary64),
                FloatExpr::literal(1.0, Binary64),
            ],
        );
        // 1 (op) + 0.5 (var) + 1 (literal)
        assert_eq!(program_cost(&t, &expr), 2.5);
    }

    #[test]
    fn scalar_if_charges_max_branch() {
        let t = target(IfCostStyle::Scalar);
        let expr = sample_if(&t);
        // cond: 1 + 0.5 + 1 = 2.5; then: 1+0.5+1=2.5; else: 10+1+0.5=11.5
        // scalar: 2 (base) + 2.5 + max(2.5, 11.5) = 16.0
        assert_eq!(program_cost(&t, &expr), 16.0);
    }

    #[test]
    fn vector_if_charges_both_branches() {
        let t = target(IfCostStyle::Vector);
        let expr = sample_if(&t);
        // vector: 2 + 2.5 + (2.5 + 11.5) = 18.5
        assert_eq!(program_cost(&t, &expr), 18.5);
    }

    #[test]
    fn cheaper_operators_give_cheaper_programs() {
        let t = target(IfCostStyle::Scalar);
        let add = t.find_operator("+.f64").unwrap();
        let div = t.find_operator("/.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        let with_add = FloatExpr::Op(add, vec![x.clone(), x.clone()]);
        let with_div = FloatExpr::Op(div, vec![x.clone(), x]);
        assert!(program_cost(&t, &with_add) < program_cost(&t, &with_div));
    }
}
