//! Target-specific floating-point programs: the output language of Chassis.

use crate::operator::{round_to_type, OpId};
use crate::target::Target;
use fpcore::{Expr, FpType, RealOp, Symbol};
use std::collections::BTreeSet;

/// A floating-point program over a specific target's operators.
///
/// Operator applications reference the target's operator table through [`OpId`],
/// so a `FloatExpr` is only meaningful together with the [`Target`] it was built
/// for.
#[derive(Clone, PartialEq, Debug)]
pub enum FloatExpr {
    /// A literal, already rounded to the given representation.
    Num(f64, FpType),
    /// A variable reference with its representation.
    Var(Symbol, FpType),
    /// An operator application.
    Op(OpId, Vec<FloatExpr>),
    /// A comparison between two numeric operands (used in conditionals), using
    /// host comparison semantics.
    Cmp(RealOp, Box<FloatExpr>, Box<FloatExpr>),
    /// A conditional.
    If(Box<FloatExpr>, Box<FloatExpr>, Box<FloatExpr>),
}

impl FloatExpr {
    /// A literal of the given type.
    pub fn literal(value: f64, ty: FpType) -> FloatExpr {
        FloatExpr::Num(round_to_type(value, ty), ty)
    }

    /// The result type of this expression on the given target.
    pub fn result_type(&self, target: &Target) -> FpType {
        match self {
            FloatExpr::Num(_, ty) | FloatExpr::Var(_, ty) => *ty,
            FloatExpr::Op(id, _) => target.operator(*id).ret_type,
            FloatExpr::Cmp(_, _, _) => FpType::Bool,
            FloatExpr::If(_, t, _) => t.result_type(target),
        }
    }

    /// Number of nodes in the program.
    pub fn size(&self) -> usize {
        1 + match self {
            FloatExpr::Num(_, _) | FloatExpr::Var(_, _) => 0,
            FloatExpr::Op(_, args) => args.iter().map(FloatExpr::size).sum(),
            FloatExpr::Cmp(_, a, b) => a.size() + b.size(),
            FloatExpr::If(c, t, e) => c.size() + t.size() + e.size(),
        }
    }

    /// Free variables in the program.
    pub fn variables(&self) -> Vec<Symbol> {
        fn walk(e: &FloatExpr, out: &mut BTreeSet<Symbol>) {
            match e {
                FloatExpr::Num(_, _) => {}
                FloatExpr::Var(v, _) => {
                    out.insert(*v);
                }
                FloatExpr::Op(_, args) => args.iter().for_each(|a| walk(a, out)),
                FloatExpr::Cmp(_, a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                FloatExpr::If(c, t, el) => {
                    walk(c, out);
                    walk(t, out);
                    walk(el, out);
                }
            }
        }
        let mut set = BTreeSet::new();
        walk(self, &mut set);
        set.into_iter().collect()
    }

    /// The real-number expression this program denotes (its *desugaring*,
    /// paper Section 4.1): every operator application is replaced by the
    /// operator's desugaring, and casts disappear.
    pub fn desugar(&self, target: &Target) -> Expr {
        match self {
            FloatExpr::Num(v, _) => {
                if let Some(r) = fpcore::Rational::from_f64(*v) {
                    Expr::Num(fpcore::Constant::Rational(r))
                } else if v.is_nan() {
                    Expr::Num(fpcore::Constant::Nan)
                } else if *v > 0.0 {
                    Expr::Num(fpcore::Constant::Infinity)
                } else {
                    Expr::Num(fpcore::Constant::NegInfinity)
                }
            }
            FloatExpr::Var(v, _) => Expr::Var(*v),
            FloatExpr::Op(id, args) => {
                let desugared: Vec<Expr> = args.iter().map(|a| a.desugar(target)).collect();
                target.operator(*id).instantiate_desugaring(&desugared)
            }
            FloatExpr::Cmp(op, a, b) => Expr::bin(*op, a.desugar(target), b.desugar(target)),
            FloatExpr::If(c, t, e) => Expr::If(
                Box::new(c.desugar(target)),
                Box::new(t.desugar(target)),
                Box::new(e.desugar(target)),
            ),
        }
    }

    /// Renders the program using operator names (for reports and case studies).
    pub fn render(&self, target: &Target) -> String {
        match self {
            FloatExpr::Num(v, _) => format!("{v}"),
            FloatExpr::Var(v, _) => v.to_string(),
            FloatExpr::Op(id, args) => {
                let name = &target.operator(*id).name;
                let rendered: Vec<String> = args.iter().map(|a| a.render(target)).collect();
                format!("({} {})", name, rendered.join(" "))
            }
            FloatExpr::Cmp(op, a, b) => {
                format!("({} {} {})", op.name(), a.render(target), b.render(target))
            }
            FloatExpr::If(c, t, e) => format!(
                "(if {} {} {})",
                c.render(target),
                t.render(target),
                e.render(target)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::Operator;
    use fpcore::FpType::*;

    fn target() -> Target {
        Target::new("t", "test").with_operators(vec![
            Operator::emulated("+.f64", &[Binary64, Binary64], Binary64, "(+ a0 a1)", 1.0),
            Operator::emulated("rcp.f32", &[Binary32], Binary32, "(/ 1 a0)", 4.0),
            Operator::emulated("log1p.f64", &[Binary64], Binary64, "(log (+ 1 a0))", 20.0),
        ])
    }

    #[test]
    fn desugaring_composes() {
        let t = target();
        let log1p = t.find_operator("log1p.f64").unwrap();
        let add = t.find_operator("+.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        let prog = FloatExpr::Op(
            add,
            vec![
                FloatExpr::Op(log1p, vec![x.clone()]),
                FloatExpr::literal(1.0, Binary64),
            ],
        );
        assert_eq!(
            prog.desugar(&t),
            fpcore::parse_expr("(+ (log (+ 1 x)) 1)").unwrap()
        );
        assert_eq!(prog.result_type(&t), Binary64);
        assert_eq!(prog.size(), 4);
        assert_eq!(prog.variables(), vec![Symbol::new("x")]);
    }

    #[test]
    fn rendering_uses_operator_names() {
        let t = target();
        let rcp = t.find_operator("rcp.f32").unwrap();
        let prog = FloatExpr::Op(rcp, vec![FloatExpr::Var(Symbol::new("y"), Binary32)]);
        assert_eq!(prog.render(&t), "(rcp.f32 y)");
        assert_eq!(prog.result_type(&t), Binary32);
    }

    #[test]
    fn conditional_expressions() {
        let t = target();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        let prog = FloatExpr::If(
            Box::new(FloatExpr::Cmp(
                RealOp::Lt,
                Box::new(x.clone()),
                Box::new(FloatExpr::literal(0.0, Binary64)),
            )),
            Box::new(FloatExpr::literal(0.0, Binary64)),
            Box::new(x),
        );
        assert_eq!(prog.result_type(&t), Binary64);
        assert!(prog.render(&t).starts_with("(if (< x 0)"));
        assert_eq!(
            prog.desugar(&t),
            fpcore::parse_expr("(if (< x 0) 0 x)").unwrap()
        );
    }

    #[test]
    fn literals_are_rounded_to_their_type() {
        let lit = FloatExpr::literal(1.0 / 3.0, Binary32);
        match lit {
            FloatExpr::Num(v, Binary32) => assert_eq!(v, (1.0f32 / 3.0f32) as f64),
            other => panic!("unexpected {other:?}"),
        }
    }
}
