//! Dead-code elimination: drops instructions whose results can never reach
//! the program result.
//!
//! The compiler's CSE can strand dead instructions (a shared subexpression
//! whose every consumer was itself deduplicated away), and hand-built or
//! transformed programs may contain more. Removal is bit-identity-preserving
//! by construction: an eliminated instruction's value is read by nothing, so
//! no surviving instruction's inputs change.
//!
//! Register numbers are *not* renumbered — the output is still a valid SSA
//! program (with holes in the register numbering, which the verifier's SSA
//! mode permits); [compaction](crate::analysis::compact) squeezes the holes
//! out afterwards. Skip ranges are remapped through the old→new instruction
//! index map; a range left empty is dropped (its select was dead, and with
//! it — by the privacy invariant — every instruction the range contained).

use crate::analysis::dataflow::RegSet;
use crate::compile::{Program, SkipRange};

/// Size accounting for [`eliminate_dead_code`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DceStats {
    /// Instructions removed.
    pub removed: usize,
}

/// Removes every instruction whose result is never used, returning the new
/// program and what was removed.
pub fn eliminate_dead_code(program: &Program) -> (Program, DceStats) {
    let n = program.instrs.len();
    // A reverse sweep suffices in SSA: an instruction is needed exactly when
    // its destination feeds the result, a needed instruction, or a surviving
    // skip condition — and all of those appear at higher indices.
    let mut needed = RegSet::new(program.num_regs());
    needed.insert(program.result);
    let mut keep = vec![false; n];
    for (i, instr) in program.instrs.iter().enumerate().rev() {
        if needed.contains(instr.dst()) {
            keep[i] = true;
            instr.for_each_read(&program.arg_pool, |reg| needed.insert(reg));
        }
    }

    // Monotone old→new instruction index map: new_index[i] = number of kept
    // instructions before i (valid as a range endpoint remap for any i).
    let mut new_index = vec![0u32; n + 1];
    let mut count = 0u32;
    for i in 0..n {
        new_index[i] = count;
        count += keep[i] as u32;
    }
    new_index[n] = count;

    let instrs: Vec<_> = program
        .instrs
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(instr, _)| *instr)
        .collect();
    let skips: Vec<SkipRange> = program
        .skips
        .iter()
        .filter_map(|sk| {
            let (start, end) = (new_index[sk.start as usize], new_index[sk.end as usize]);
            // An empty range means the owning select died; the condition may
            // be gone too, so the range cannot be kept. A surviving range's
            // select is alive (privacy: only it reads the arm), hence so is
            // the condition it reads — but check defensively.
            (start < end && needed.contains(sk.cond)).then_some(SkipRange {
                start,
                end,
                cond: sk.cond,
                dead_when: sk.dead_when,
            })
        })
        .collect();
    let removed = n - instrs.len();
    (
        Program {
            n_regs: program.n_regs,
            consts: program
                .consts
                .iter()
                .filter(|(reg, _)| needed.contains(*reg))
                .copied()
                .collect(),
            vars: program
                .vars
                .iter()
                .filter(|(reg, _)| needed.contains(*reg))
                .copied()
                .collect(),
            instrs,
            arg_pool: program.arg_pool.clone(),
            skips,
            result: program.result,
        },
        DceStats { removed },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::verify::{verify, Mode};
    use crate::compile::Instr;
    use fpcore::{RealOp, Symbol};

    /// `r1 = -x; r2 = x*x (dead); r3 = -r1; result = r3`.
    fn with_dead_instr() -> Program {
        Program {
            n_regs: 4,
            consts: vec![],
            vars: vec![(0, Symbol::new("x"))],
            instrs: vec![
                Instr::Un {
                    op: RealOp::Neg,
                    a: 0,
                    dst: 1,
                },
                Instr::Bin {
                    op: RealOp::Mul,
                    a: 0,
                    b: 0,
                    dst: 2,
                },
                Instr::Un {
                    op: RealOp::Neg,
                    a: 1,
                    dst: 3,
                },
            ],
            arg_pool: vec![],
            skips: vec![],
            result: 3,
        }
    }

    #[test]
    fn removes_unused_instructions_and_stays_valid() {
        let p = with_dead_instr();
        let (q, stats) = eliminate_dead_code(&p);
        assert_eq!(stats.removed, 1);
        assert_eq!(q.num_instrs(), 2);
        assert!(
            verify(&q, Mode::Ssa).is_empty(),
            "{:?}",
            verify(&q, Mode::Ssa)
        );
        // Same value, register numbering untouched.
        let (syms, vals) = ([Symbol::new("x")], [2.5]);
        let env = crate::interp::SliceEnv::new(&syms, &vals);
        assert_eq!(p.eval_in(&env).to_bits(), q.eval_in(&env).to_bits());
    }

    #[test]
    fn drops_unused_constants_and_variables() {
        let mut p = with_dead_instr();
        p.consts.push((4, 7.0));
        p.vars.push((5, Symbol::new("unused")));
        p.n_regs = 6;
        let (q, _) = eliminate_dead_code(&p);
        assert!(q.consts.is_empty());
        assert_eq!(q.variables(), vec![Symbol::new("x")]);
    }

    #[test]
    fn dead_select_drops_its_skip_range() {
        // r1 = -x (arm); r2 = select(x, r1, x) — dead; r3 = x + x = result.
        let p = Program {
            n_regs: 4,
            consts: vec![],
            vars: vec![(0, Symbol::new("x"))],
            instrs: vec![
                Instr::Un {
                    op: RealOp::Neg,
                    a: 0,
                    dst: 1,
                },
                Instr::Select {
                    c: 0,
                    t: 1,
                    e: 0,
                    dst: 2,
                },
                Instr::Bin {
                    op: RealOp::Add,
                    a: 0,
                    b: 0,
                    dst: 3,
                },
            ],
            arg_pool: vec![],
            skips: vec![SkipRange {
                start: 0,
                end: 1,
                cond: 0,
                dead_when: false,
            }],
            result: 3,
        };
        let (q, stats) = eliminate_dead_code(&p);
        assert_eq!(stats.removed, 2, "arm and select are both dead");
        assert!(q.skips.is_empty(), "the empty range is dropped");
        assert!(verify(&q, Mode::Ssa).is_empty());
    }

    #[test]
    fn idempotent_on_clean_programs() {
        let (q, _) = eliminate_dead_code(&with_dead_instr());
        let (r, stats) = eliminate_dead_code(&q);
        assert_eq!(stats.removed, 0);
        assert_eq!(r.num_instrs(), q.num_instrs());
    }
}
