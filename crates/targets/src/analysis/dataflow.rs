//! The dataflow framework: a worklist solver over the linear instruction
//! stream of a [`Program`].
//!
//! A compiled program has no jumps — conditionals are selects — so its
//! control-flow graph is a single straight line with one program point
//! before every instruction plus one after the last. An [`Analysis`] gives
//! the boundary fact (at entry for forward analyses, at exit for backward
//! ones) and a per-instruction transfer function; [`solve`] propagates facts
//! with a worklist until they stabilize. On a straight-line program the
//! worklist converges in a single sweep, but the solver does not assume so:
//! transfer functions only need to be deterministic, and a fact is
//! re-propagated whenever it changes.

use crate::compile::Program;
use std::collections::VecDeque;

/// A dataflow analysis over the linear program.
pub trait Analysis {
    /// The per-program-point fact.
    type Fact: Clone + PartialEq;
    /// `true` for backward analyses (facts flow from exit to entry).
    const BACKWARD: bool;
    /// The boundary fact: at entry (before instruction 0) for forward
    /// analyses, at exit (after the last instruction) for backward ones.
    fn boundary(&self, program: &Program) -> Self::Fact;
    /// The transfer function for instruction `idx`: maps the fact on the
    /// input side of the instruction to the fact on its output side
    /// (before → after when forward, after → before when backward).
    fn transfer(&self, program: &Program, idx: usize, input: &Self::Fact) -> Self::Fact;
}

/// Runs `analysis` to a fixed point and returns the fact at every program
/// point: `facts[i]` holds before instruction `i`, and `facts[n]` after the
/// last instruction (`n = program.num_instrs()`).
pub fn solve<A: Analysis>(analysis: &A, program: &Program) -> Vec<A::Fact> {
    let n = program.num_instrs();
    let mut facts: Vec<Option<A::Fact>> = vec![None; n + 1];
    let mut worklist: VecDeque<usize> = VecDeque::new();
    if A::BACKWARD {
        facts[n] = Some(analysis.boundary(program));
        if n > 0 {
            worklist.push_back(n - 1);
        }
        while let Some(i) = worklist.pop_front() {
            let input = facts[i + 1].clone().expect("successor fact is computed");
            let out = analysis.transfer(program, i, &input);
            if facts[i].as_ref() != Some(&out) {
                facts[i] = Some(out);
                if i > 0 {
                    worklist.push_back(i - 1);
                }
            }
        }
    } else {
        facts[0] = Some(analysis.boundary(program));
        if n > 0 {
            worklist.push_back(0);
        }
        while let Some(i) = worklist.pop_front() {
            let input = facts[i].clone().expect("predecessor fact is computed");
            let out = analysis.transfer(program, i, &input);
            if facts[i + 1].as_ref() != Some(&out) {
                facts[i + 1] = Some(out);
                if i + 1 < n {
                    worklist.push_back(i + 1);
                }
            }
        }
    }
    facts
        .into_iter()
        .map(|f| f.expect("every point of a linear program is reached"))
        .collect()
}

/// A dense bitset over register numbers — the fact type of
/// [`liveness`](crate::analysis::liveness::liveness) and the workhorse set
/// of the rewrites.
#[derive(Clone, Debug, Default)]
pub struct RegSet {
    words: Vec<u64>,
}

/// Equality is by contents: trailing zero words (spare capacity from sizing
/// or removals) are ignored, so sets built through different insertion
/// histories compare equal — which the worklist solver's convergence test
/// relies on.
impl PartialEq for RegSet {
    fn eq(&self, other: &Self) -> bool {
        let common = self.words.len().min(other.words.len());
        self.words[..common] == other.words[..common]
            && self.words[common..].iter().all(|&w| w == 0)
            && other.words[common..].iter().all(|&w| w == 0)
    }
}

impl Eq for RegSet {}

impl RegSet {
    /// An empty set sized for `n_regs` registers.
    pub fn new(n_regs: usize) -> RegSet {
        RegSet {
            words: vec![0; n_regs.div_ceil(64)],
        }
    }

    /// Inserts `reg`; the set grows if needed.
    pub fn insert(&mut self, reg: u32) {
        let (word, bit) = (reg as usize / 64, reg as usize % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1 << bit;
    }

    /// Removes `reg` if present.
    pub fn remove(&mut self, reg: u32) {
        let (word, bit) = (reg as usize / 64, reg as usize % 64);
        if word < self.words.len() {
            self.words[word] &= !(1 << bit);
        }
    }

    /// True when `reg` is in the set.
    pub fn contains(&self, reg: u32) -> bool {
        let (word, bit) = (reg as usize / 64, reg as usize % 64);
        word < self.words.len() && self.words[word] & (1 << bit) != 0
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no register is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates the set in increasing register order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |bit| w & (1 << bit) != 0)
                .map(move |bit| (wi * 64 + bit) as u32)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regset_basics() {
        let mut s = RegSet::new(10);
        assert!(s.is_empty());
        s.insert(3);
        s.insert(64);
        s.insert(200); // grows past the initial sizing
        assert!(s.contains(3) && s.contains(64) && s.contains(200));
        assert!(!s.contains(4) && !s.contains(199));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 200]);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        let mut t = RegSet::new(0);
        t.insert(3);
        t.insert(200);
        assert_eq!(s, t, "equality ignores capacity differences");
        t.insert(64);
        assert_ne!(s, t);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 200]);
        assert_eq!(RegSet::new(500), RegSet::new(0), "empty sets are equal");
    }
}
