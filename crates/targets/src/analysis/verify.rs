//! The IR verifier: a total check of every [`Program`] invariant.
//!
//! The verifier is the single source of truth for what a well-formed program
//! is (the scattered `debug_assert`s it replaced are gone). It is *total* —
//! it never panics on malformed input, it reports — and designed for **no
//! false negatives**: every invariant an engine depends on corresponds to a
//! rule here, and the seeded mutation harness
//! ([`crate::analysis::mutate`]) asserts that breaking any of them is
//! caught. The full invariant list, with rationale, is specified in
//! `docs/PROGRAM_IR.md`.
//!
//! Two modes cover the IR's two lifecycle stages:
//!
//! * [`Mode::Ssa`] — fresh compiles and post-DCE programs: write-once
//!   registers, strictly increasing destinations, and the full
//!   register-level select-arm privacy check (the generalization of the
//!   compiler's original ad-hoc skip analysis);
//! * [`Mode::Executable`] — what every engine actually requires, without
//!   assuming write-once: defined-before-use, `dst` strictly above operands
//!   (the block engine's slab split), constants never overwritten, bounds.
//!   Compacted programs verify in this mode; their skip soundness is a
//!   value-flow property preserved by renaming (see
//!   [`crate::analysis::compact`]) and asserted by the differential tests.
//!
//! [`verify_with_target`] adds the sweep/scalar pairing rules (a program's
//! call instructions must agree with the target's registered operators), and
//! [`verify_target`] checks a target description itself.

use crate::compile::{Instr, Program, MAX_CALL_ARITY};
use crate::operator::{arg_symbol, Impl, SweepImpl};
use crate::target::Target;
use fpcore::Expr;
use std::fmt;

/// Which invariant family to check (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Write-once SSA (fresh compiles, post-DCE programs).
    Ssa,
    /// What the engines require, allowing register reuse (post-compaction).
    Executable,
}

/// One broken invariant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Stable rule identifier (kebab-case), e.g. `operand-order`.
    pub rule: &'static str,
    /// Instruction index the violation anchors to, when applicable.
    pub at: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(i) => write!(f, "[{}] at instr {}: {}", self.rule, i, self.message),
            None => write!(f, "[{}] {}", self.rule, self.message),
        }
    }
}

/// Renders a violation list one per line (for panics and lint output).
pub fn render(violations: &[Violation]) -> String {
    violations
        .iter()
        .map(std::string::ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

struct Check<'p> {
    program: &'p Program,
    mode: Mode,
    out: Vec<Violation>,
}

impl<'p> Check<'p> {
    fn push(&mut self, rule: &'static str, at: Option<usize>, message: String) {
        self.out.push(Violation { rule, at, message });
    }

    fn n_regs(&self) -> u32 {
        self.program.n_regs as u32
    }

    /// Register-table rules: constant/variable slots in bounds, all slots
    /// pairwise distinct (a register is a constant, a variable, or an
    /// instruction output — never two of those).
    fn check_slots(&mut self) {
        let mut seen: Vec<(u32, &'static str)> = Vec::new();
        for &(reg, value) in &self.program.consts {
            if reg >= self.n_regs() {
                self.push(
                    "const-bounds",
                    None,
                    format!("constant {value} uses register {reg} >= n_regs"),
                );
            }
            seen.push((reg, "constant"));
        }
        for &(reg, sym) in &self.program.vars {
            if reg >= self.n_regs() {
                self.push(
                    "var-bounds",
                    None,
                    format!("variable {sym} uses register {reg} >= n_regs"),
                );
            }
            seen.push((reg, "variable"));
        }
        seen.sort_unstable();
        for pair in seen.windows(2) {
            if pair[0].0 == pair[1].0 {
                self.push(
                    "slot-overlap",
                    None,
                    format!(
                        "register {} is both a {} and a {} slot",
                        pair[0].0, pair[0].1, pair[1].1
                    ),
                );
            }
        }
    }

    /// Per-instruction register discipline: operand/destination bounds,
    /// defined-before-use, `dst` strictly above every operand, constants
    /// (and, in SSA mode, variables and earlier destinations) never
    /// overwritten, call pool ranges and arities well-formed.
    fn check_instrs(&mut self) {
        let n_regs = self.n_regs();
        let mut defined = vec![false; self.program.n_regs];
        let mut is_const = vec![false; self.program.n_regs];
        let mut is_var = vec![false; self.program.n_regs];
        for &(reg, _) in &self.program.consts {
            if let Some(slot) = defined.get_mut(reg as usize) {
                *slot = true;
                is_const[reg as usize] = true;
            }
        }
        for &(reg, _) in &self.program.vars {
            if let Some(slot) = defined.get_mut(reg as usize) {
                *slot = true;
                is_var[reg as usize] = true;
            }
        }
        let mut written = vec![false; self.program.n_regs];
        let mut prev_dst: Option<u32> = None;
        for (i, instr) in self.program.instrs.iter().enumerate() {
            let dst = instr.dst();
            if let Instr::Call { first, arity, .. } = *instr {
                if arity as usize > MAX_CALL_ARITY {
                    self.push(
                        "call-arity",
                        Some(i),
                        format!(
                            "call arity {arity} exceeds the evaluator maximum {MAX_CALL_ARITY}"
                        ),
                    );
                }
                if (first as usize) > self.program.arg_pool.len()
                    || (first as usize) + (arity as usize) > self.program.arg_pool.len()
                {
                    self.push(
                        "call-pool",
                        Some(i),
                        format!(
                            "call argument range {first}..{} overruns the pool (len {})",
                            first + arity,
                            self.program.arg_pool.len()
                        ),
                    );
                    // The operand checks below would index out of the pool.
                    continue;
                }
            }
            let mut reads: Vec<u32> = Vec::new();
            instr.for_each_read(&self.program.arg_pool, |reg| reads.push(reg));
            for &reg in &reads {
                if reg >= n_regs {
                    self.push(
                        "operand-bounds",
                        Some(i),
                        format!("reads register {reg} >= n_regs ({n_regs})"),
                    );
                } else if !defined[reg as usize] {
                    self.push(
                        "use-before-def",
                        Some(i),
                        format!("reads register {reg} before any definition"),
                    );
                }
                if reg >= dst {
                    self.push(
                        "operand-order",
                        Some(i),
                        format!(
                            "reads register {reg} not strictly below its destination {dst} \
                             (the block engine's slab split requires dst > operands)"
                        ),
                    );
                }
            }
            if dst >= n_regs {
                self.push(
                    "dst-bounds",
                    Some(i),
                    format!("writes register {dst} >= n_regs ({n_regs})"),
                );
                continue;
            }
            if is_const[dst as usize] {
                self.push(
                    "const-written",
                    Some(i),
                    format!("writes constant-pool register {dst} (constants are broadcast once and never rewritten)"),
                );
            }
            if self.mode == Mode::Ssa {
                if is_var[dst as usize] {
                    self.push(
                        "var-written",
                        Some(i),
                        format!("writes variable register {dst} (SSA programs write only fresh registers)"),
                    );
                }
                if written[dst as usize] {
                    self.push(
                        "write-once",
                        Some(i),
                        format!("register {dst} is written more than once"),
                    );
                }
                if let Some(prev) = prev_dst {
                    if dst <= prev {
                        self.push(
                            "dst-monotone",
                            Some(i),
                            format!("destination {dst} does not increase over the previous {prev}"),
                        );
                    }
                }
            }
            written[dst as usize] = true;
            defined[dst as usize] = true;
            prev_dst = Some(prev_dst.map_or(dst, |p: u32| p.max(dst)));
        }
        if self.program.result >= n_regs {
            self.push(
                "result-bounds",
                None,
                format!(
                    "result register {} >= n_regs ({n_regs})",
                    self.program.result
                ),
            );
        } else if !defined[self.program.result as usize] {
            self.push(
                "result-defined",
                None,
                format!("result register {} is never defined", self.program.result),
            );
        }
    }

    /// Skip-range structure: in-bounds non-empty ranges, sorted outer-first,
    /// properly nested or disjoint, conditions in bounds and defined before
    /// the range starts.
    fn check_skip_structure(&mut self) {
        let n = self.program.instrs.len();
        for (k, sk) in self.program.skips.iter().enumerate() {
            if sk.start >= sk.end || sk.end as usize > n {
                self.push(
                    "skip-shape",
                    Some(sk.start as usize),
                    format!(
                        "skip range {k} [{}, {}) is empty or out of bounds (program has {n} instructions)",
                        sk.start, sk.end
                    ),
                );
            }
            if sk.cond >= self.n_regs() {
                self.push(
                    "skip-cond-bounds",
                    Some(sk.start as usize),
                    format!("skip range {k} condition register {} >= n_regs", sk.cond),
                );
            }
        }
        for pair in self.program.skips.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if (a.start, std::cmp::Reverse(a.end)) > (b.start, std::cmp::Reverse(b.end)) {
                self.push(
                    "skip-order",
                    Some(b.start as usize),
                    format!(
                        "skip ranges [{}, {}) and [{}, {}) are not sorted outer-first",
                        a.start, a.end, b.start, b.end
                    ),
                );
            }
        }
        for (k, a) in self.program.skips.iter().enumerate() {
            for b in &self.program.skips[k + 1..] {
                let disjoint = a.end <= b.start || b.end <= a.start;
                let nested = (a.start <= b.start && b.end <= a.end)
                    || (b.start <= a.start && a.end <= b.end);
                if !disjoint && !nested {
                    self.push(
                        "skip-overlap",
                        Some(a.start as usize),
                        format!(
                            "skip ranges [{}, {}) and [{}, {}) partially overlap",
                            a.start, a.end, b.start, b.end
                        ),
                    );
                }
            }
        }
    }

    /// The select-arm privacy invariant (SSA mode): skipping a range must be
    /// unobservable on uniform masks. Nothing at or after the range end may
    /// read a register the range defines — except the owning select reading
    /// the arm's result through the operand position that is dead under the
    /// range's `dead_when` mask — and the range must not define the program
    /// result or its own condition.
    ///
    /// This is self-contained (it recovers the owning select from the
    /// instruction stream rather than trusting compiler bookkeeping), which
    /// is what lets it check hand-built and transformed programs too.
    fn check_skip_privacy(&mut self) {
        // Valid only under strictly increasing destinations; bail if that
        // already failed (the violations are reported either way).
        let dsts: Vec<u32> = self.program.instrs.iter().map(Instr::dst).collect();
        if dsts.windows(2).any(|w| w[0] >= w[1]) {
            return;
        }
        let def_in = |reg: u32, start: usize, end: usize| match dsts.binary_search(&reg) {
            Ok(i) => i >= start && i < end,
            Err(_) => false,
        };
        for (k, sk) in self.program.skips.iter().enumerate() {
            let (start, end) = (sk.start as usize, sk.end as usize);
            if start >= end || end > self.program.instrs.len() {
                continue; // already reported by skip-shape
            }
            if def_in(self.program.result, start, end) {
                self.push(
                    "skip-result",
                    Some(start),
                    format!("skip range {k} defines the program result"),
                );
            }
            if def_in(sk.cond, start, end) {
                self.push(
                    "skip-cond-private",
                    Some(start),
                    format!("skip range {k} defines its own condition register"),
                );
            }
            for (j, instr) in self.program.instrs.iter().enumerate().skip(end) {
                let mut leaked: Vec<u32> = Vec::new();
                match *instr {
                    Instr::Select { c, t, e, .. } => {
                        // The dead-arm operand of the owning select is the
                        // one read the skip may leave stale: its lanes are
                        // discarded whenever the arm was skipped.
                        let dead_arm = if sk.dead_when { e } else { t };
                        for (pos, reg) in [c, t, e].into_iter().enumerate() {
                            let exempt = c == sk.cond
                                && reg == dead_arm
                                && pos == usize::from(sk.dead_when) + 1;
                            if def_in(reg, start, end) && !exempt {
                                leaked.push(reg);
                            }
                        }
                    }
                    _ => instr.for_each_read(&self.program.arg_pool, |reg| {
                        if def_in(reg, start, end) {
                            leaked.push(reg);
                        }
                    }),
                }
                for reg in leaked {
                    self.push(
                        "skip-privacy",
                        Some(j),
                        format!(
                            "register {reg} defined inside skip range {k} [{start}, {end}) \
                             is read outside it"
                        ),
                    );
                }
            }
        }
    }
}

/// Verifies every program invariant under `mode`, returning all violations
/// (empty means the program is well-formed). Never panics on malformed
/// input.
pub fn verify(program: &Program, mode: Mode) -> Vec<Violation> {
    let mut check = Check {
        program,
        mode,
        out: Vec::new(),
    };
    check.check_slots();
    check.check_instrs();
    check.check_skip_structure();
    if mode == Mode::Ssa {
        check.check_skip_privacy();
    }
    check.out
}

/// [`verify`] plus the sweep/scalar pairing rules against `target`: every
/// call instruction must carry the function (and sweep form) of an operator
/// the target registered, and operators with a registered sweep must not
/// compile to plain calls at the matching arity.
pub fn verify_with_target(program: &Program, target: &Target, mode: Mode) -> Vec<Violation> {
    /// A registered native operator: `(name, scalar fn, arity, sweep form)`.
    type NativeRow<'a> = (&'a str, fn(&[f64]) -> f64, usize, Option<SweepImpl>);
    let mut out = verify(program, mode);
    let natives: Vec<NativeRow> = target
        .operators
        .iter()
        .filter_map(|op| match op.implementation {
            Impl::Native(f) => Some((op.name.as_str(), f, op.arity(), op.sweep)),
            Impl::Emulated => None,
        })
        .collect();
    for (i, instr) in program.instrs.iter().enumerate() {
        match *instr {
            Instr::Call { fun, arity, .. } => {
                let matched = natives
                    .iter()
                    .find(|(_, f, a, _)| *f as usize == fun as usize && *a == arity as usize);
                match matched {
                    None => out.push(Violation {
                        rule: "call-pairing",
                        at: Some(i),
                        message: format!(
                            "call does not match any native operator of target {} at arity {arity}",
                            target.name
                        ),
                    }),
                    Some((name, _, _, Some(sweep))) => {
                        let has_matching_form = matches!(
                            (sweep, arity),
                            (SweepImpl::Un(_), 1) | (SweepImpl::Bin(_), 2)
                        );
                        if has_matching_form {
                            out.push(Violation {
                                rule: "call-missing-sweep",
                                at: Some(i),
                                message: format!(
                                    "native operator {name} has a registered sweep form but \
                                     compiled to a plain call (the block engine would run it \
                                     lane by lane)"
                                ),
                            });
                        }
                    }
                    Some(_) => {}
                }
            }
            Instr::CallUn { fun, sweep, .. } => {
                let ok = natives.iter().any(|(_, f, a, sw)| {
                    *f as usize == fun as usize
                        && *a == 1
                        && matches!(sw, Some(SweepImpl::Un(s)) if *s as usize == sweep as usize)
                });
                if !ok {
                    out.push(Violation {
                        rule: "sweep-pairing",
                        at: Some(i),
                        message: format!(
                            "unary sweep call does not match any registered (scalar, sweep) \
                             pair of target {}",
                            target.name
                        ),
                    });
                }
            }
            Instr::CallBin { fun, sweep, .. } => {
                let ok = natives.iter().any(|(_, f, a, sw)| {
                    *f as usize == fun as usize
                        && *a == 2
                        && matches!(sw, Some(SweepImpl::Bin(s)) if *s as usize == sweep as usize)
                });
                if !ok {
                    out.push(Violation {
                        rule: "sweep-pairing",
                        at: Some(i),
                        message: format!(
                            "binary sweep call does not match any registered (scalar, sweep) \
                             pair of target {}",
                            target.name
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Collects the free variables of a desugaring expression.
fn free_vars(expr: &Expr, out: &mut Vec<fpcore::Symbol>) {
    match expr {
        Expr::Num(_) => {}
        Expr::Var(v) => {
            if !out.contains(v) {
                out.push(*v);
            }
        }
        Expr::Op(_, args) => {
            for a in args {
                free_vars(a, out);
            }
        }
        Expr::If(c, t, e) => {
            free_vars(c, out);
            free_vars(t, out);
            free_vars(e, out);
        }
    }
}

/// Verifies a target description: unique operator names, sweep forms only on
/// native operators and matching their arity, native arities within the
/// evaluator's limit, and desugarings referencing only the positional
/// argument symbols (`a0..a{arity-1}`) — any other free symbol would load
/// NaN at every point, which is invariably a typo in a target description.
pub fn verify_target(target: &Target) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut push = |rule: &'static str, message: String| {
        out.push(Violation {
            rule,
            at: None,
            message,
        });
    };
    for (k, op) in target.operators.iter().enumerate() {
        if target.operators[..k].iter().any(|o| o.name == op.name) {
            push(
                "op-duplicate",
                format!("duplicate operator {} in target {}", op.name, target.name),
            );
        }
        match (&op.implementation, &op.sweep) {
            (Impl::Emulated, Some(_)) => push(
                "sweep-on-emulated",
                format!(
                    "operator {} of target {} registers a sweep form but is emulated \
                     (sweep forms pair with native scalar implementations)",
                    op.name, target.name
                ),
            ),
            (Impl::Native(_), Some(sweep)) => {
                let form_arity = match sweep {
                    SweepImpl::Un(_) => 1,
                    SweepImpl::Bin(_) => 2,
                };
                if form_arity != op.arity() {
                    push(
                        "sweep-arity",
                        format!(
                            "operator {} of target {} has arity {} but a {}-ary sweep form",
                            op.name,
                            target.name,
                            op.arity(),
                            form_arity
                        ),
                    );
                }
            }
            _ => {}
        }
        if op.is_linked() && op.arity() > MAX_CALL_ARITY {
            push(
                "op-arity",
                format!(
                    "native operator {} of target {} has arity {} > {MAX_CALL_ARITY}",
                    op.name,
                    target.name,
                    op.arity()
                ),
            );
        }
        let mut vars = Vec::new();
        free_vars(&op.desugaring, &mut vars);
        let args: Vec<_> = (0..op.arity()).map(arg_symbol).collect();
        for v in vars {
            if !args.contains(&v) {
                push(
                    "desugaring-args",
                    format!(
                        "desugaring of {} in target {} references {v}, which is not one of \
                         its {} positional arguments (it would load NaN at every point)",
                        op.name,
                        target.name,
                        op.arity()
                    ),
                );
            }
        }
    }
    out
}

/// Panics with a rendered violation list when the program fails
/// verification — the debug-build hook run after every compile.
#[track_caller]
pub fn assert_valid(program: &Program, target: Option<&Target>, mode: Mode) {
    let violations = match target {
        Some(t) => verify_with_target(program, t, mode),
        None => verify(program, mode),
    };
    assert!(
        violations.is_empty(),
        "compiled program failed IR verification:\n{}",
        render(&violations)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, SkipRange};
    use crate::expr::FloatExpr;
    use crate::operator::Operator;
    use fpcore::FpType::Binary64;
    use fpcore::{RealOp, Symbol};

    fn target() -> Target {
        Target::new("t", "test").with_operators(vec![
            Operator::emulated("+.f64", &[Binary64, Binary64], Binary64, "(+ a0 a1)", 1.0),
            Operator::emulated("exp.f64", &[Binary64], Binary64, "(exp a0)", 40.0),
        ])
    }

    fn sample_program() -> Program {
        let t = target();
        let add = t.find_operator("+.f64").unwrap();
        let exp = t.find_operator("exp.f64").unwrap();
        let x = FloatExpr::Var(Symbol::new("x"), Binary64);
        let expr = FloatExpr::If(
            Box::new(FloatExpr::Cmp(
                RealOp::Lt,
                Box::new(x.clone()),
                Box::new(FloatExpr::literal(0.0, Binary64)),
            )),
            Box::new(FloatExpr::Op(exp, vec![x.clone()])),
            Box::new(FloatExpr::Op(add, vec![x.clone(), x])),
        );
        compile(&t, &expr)
    }

    #[test]
    fn clean_programs_verify_in_both_modes() {
        let p = sample_program();
        assert!(
            verify(&p, Mode::Ssa).is_empty(),
            "{}",
            render(&verify(&p, Mode::Ssa))
        );
        assert!(verify(&p, Mode::Executable).is_empty());
        assert!(verify_with_target(&p, &target(), Mode::Ssa).is_empty());
    }

    #[test]
    fn operand_order_violations_are_caught() {
        let mut p = sample_program();
        let dst = p.instrs[0].dst();
        if let Instr::Bin { a, .. } = &mut p.instrs[0] {
            *a = dst;
        } else if let Instr::Un { a, .. } = &mut p.instrs[0] {
            *a = dst;
        }
        let violations = verify(&p, Mode::Ssa);
        assert!(
            violations.iter().any(|v| v.rule == "operand-order"),
            "{violations:?}"
        );
    }

    #[test]
    fn privacy_leaks_are_caught() {
        let mut p = sample_program();
        assert!(
            !p.skips.is_empty(),
            "test program should have skippable arms"
        );
        // Stretch the first skip range to swallow the next instruction.
        p.skips[0].end += 1;
        let violations = verify(&p, Mode::Ssa);
        assert!(
            violations.iter().any(|v| v.rule.starts_with("skip-")),
            "{violations:?}"
        );
    }

    #[test]
    fn skip_structure_rules() {
        let mut p = sample_program();
        p.skips.push(SkipRange {
            start: 3,
            end: 2,
            cond: 0,
            dead_when: false,
        });
        let violations = verify(&p, Mode::Ssa);
        assert!(
            violations.iter().any(|v| v.rule == "skip-shape"),
            "{violations:?}"
        );
    }

    #[test]
    fn duplicate_operators_are_a_target_violation() {
        let mut t = target();
        t.operators.push(t.operators[0].clone());
        let violations = verify_target(&t);
        assert!(
            violations.iter().any(|v| v.rule == "op-duplicate"),
            "{violations:?}"
        );
    }

    #[test]
    fn emulated_sweep_is_a_target_violation() {
        let mut t = target();
        t.operators[0].sweep = Some(SweepImpl::Bin(|_, _, _| {}));
        let violations = verify_target(&t);
        assert!(violations.iter().any(|v| v.rule == "sweep-on-emulated"));
    }

    #[test]
    fn desugaring_typos_are_a_target_violation() {
        let mut t = target();
        t.operators.push(Operator::emulated(
            "typo.f64",
            &[Binary64],
            Binary64,
            "(+ a0 a1)", // a1 does not exist on a unary operator
            1.0,
        ));
        let violations = verify_target(&t);
        assert!(violations.iter().any(|v| v.rule == "desugaring-args"));
    }

    #[test]
    fn builtin_targets_verify() {
        for t in crate::builtin::all_targets() {
            let violations = verify_target(&t);
            assert!(
                violations.is_empty(),
                "{}:\n{}",
                t.name,
                render(&violations)
            );
        }
    }
}
