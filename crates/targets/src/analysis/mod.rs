//! Static analysis over compiled [`Program`]s: verification, dataflow, and
//! bit-identity-preserving rewrites.
//!
//! The whole evaluation pipeline rests on one artifact — the flat
//! register-machine [`Program`] — executed by three engines that must agree
//! bit for bit (tree walk, scalar bytecode, SoA block engine). This module is
//! the corresponding correctness backbone:
//!
//! * [`verify`](mod@verify) — a total check of every IR invariant (register
//!   discipline, bounds, select-arm privacy, sweep/scalar pairing), run
//!   automatically after every [`crate::compile()`] in debug builds and over the full
//!   benchmark corpus in CI (`lint_ir`);
//! * [`dataflow`] — a forward/backward worklist framework over the linear
//!   SSA program, hosting the analyses below;
//! * [`liveness`](mod@liveness) — backward live-register analysis and the
//!   last-use table;
//! * [`dce`] — dead-code elimination for instructions whose results are
//!   never used (CSE can strand these), with skip-range remapping;
//! * [`compact`] — liveness-driven register renumbering that shrinks the
//!   register slab (the block engine's working set) while preserving the
//!   `dst > operands` discipline the slab split depends on;
//! * [`interval`] — forward interval/NaN analysis from sampler domains,
//!   flagging provably-uniform select conditions and transcendental calls
//!   that stay on their `vecmath` kernel's special-case-free range
//!   (advisory: dispatch never changes, so bit identity is untouched);
//! * [`mutate`] — a seeded invariant-breaking mutation harness that tests
//!   the *verifier's* power: every mutant must be rejected.
//!
//! Every rewrite here is bit-identical by construction: [`dce`] only removes
//! instructions whose values cannot reach the result, and [`compact`] is a
//! pure renaming that preserves value flow (see each module's proof sketch).
//! The `tests/analysis.rs` suite asserts this corpus-wide across all three
//! engines at several block widths.
//!
//! The documented IR grammar and the full invariant list live in
//! `docs/PROGRAM_IR.md`.

pub mod compact;
pub mod dataflow;
pub mod dce;
pub mod interval;
pub mod liveness;
pub mod mutate;
pub mod verify;

pub use compact::{compact_registers, CompactStats};
pub use dce::{eliminate_dead_code, DceStats};
pub use interval::{
    domains_from_pre, interval_analysis, IntervalAnalysis, SafeCall, UniformSelect, ValueFact,
};
pub use liveness::{last_use_table, liveness, Liveness};
pub use mutate::{seeded_mutants, Mutant, MutationKind};
pub use verify::{verify, verify_target, verify_with_target, Mode, Violation};

use crate::compile::Program;
use crate::expr::FloatExpr;
use crate::target::Target;

/// Size accounting for [`optimize`]: how much dead code and slab height the
/// dataflow passes removed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OptimizeStats {
    /// Instruction count before dead-code elimination.
    pub instrs_before: usize,
    /// Instruction count after dead-code elimination.
    pub instrs_after: usize,
    /// Register-slab height (total registers) before compaction.
    pub regs_before: usize,
    /// Register-slab height after liveness-driven compaction.
    pub regs_after: usize,
}

/// The standard optimization pipeline: dead-code elimination followed by
/// liveness-driven register compaction, with the verifier re-run after each
/// pass in debug builds.
///
/// The result is bit-identical to the input program on every input
/// (including NaN) — the rewrites only drop unreachable values and rename
/// registers — but occupies a smaller register slab, which is the block
/// engine's per-worker working set.
pub fn optimize(program: &Program) -> (Program, OptimizeStats) {
    let (dced, _) = eliminate_dead_code(program);
    debug_assert!(
        verify(&dced, Mode::Ssa).is_empty(),
        "dead-code elimination broke an IR invariant:\n{}",
        verify::render(&verify(&dced, Mode::Ssa)),
    );
    let (compacted, stats) = compact_registers(&dced);
    debug_assert!(
        verify(&compacted, Mode::Executable).is_empty(),
        "register compaction broke an IR invariant:\n{}",
        verify::render(&verify(&compacted, Mode::Executable)),
    );
    (
        compacted,
        OptimizeStats {
            instrs_before: program.num_instrs(),
            instrs_after: dced.num_instrs(),
            regs_before: program.num_regs(),
            regs_after: stats.regs_after,
        },
    )
}

/// How much of the optimization pipeline [`compile_with_options`] runs after
/// lowering to IR.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub enum OptLevel {
    /// Lowering only: the raw hash-consed program, no DCE or compaction.
    None,
    /// The standard pipeline ([`optimize`]): dead-code elimination plus
    /// liveness-driven register compaction. Bit-identical to `None` on every
    /// input; smaller register slab.
    #[default]
    Full,
}

/// When [`compile_with_options`] (and the session layer's final
/// implementation check) runs the IR verifier.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub enum VerifyMode {
    /// Debug builds only — the `debug_assert!`s built into [`crate::compile()`]
    /// and [`optimize`]. Zero release-build overhead; the mode for the hot
    /// candidate-scoring loop.
    #[default]
    Debug,
    /// Verify in every build: SSA-mode after lowering, executable-mode after
    /// optimization, panicking on any violation. The mode for final
    /// (shipped) implementations.
    Always,
    /// Skip the explicit checks even where they would otherwise run (the
    /// `debug_assert!`s inside lowering and optimization are unaffected).
    Never,
}

/// Compilation pipeline options, threaded from the public search API
/// ([`SearchControl`](../chassis/session) in the core crate) down to every
/// point where an expression becomes an executable [`Program`]. Replaces the
/// old `compile`/`compile_optimized` pair of near-identical entry points.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CompileOptions {
    /// Optimization pipeline to run after lowering.
    pub opt_level: OptLevel,
    /// When to run the IR verifier.
    pub verify: VerifyMode,
    /// Block width override for batch evaluation (`None` uses
    /// [`crate::block::block_width_for`]'s policy).
    pub block_size: Option<usize>,
}

impl CompileOptions {
    /// The default options: full optimization, debug-build verification,
    /// policy block width.
    pub fn new() -> CompileOptions {
        CompileOptions::default()
    }

    /// Sets the optimization level.
    #[must_use]
    pub fn opt_level(mut self, level: OptLevel) -> CompileOptions {
        self.opt_level = level;
        self
    }

    /// Sets the verifier mode.
    #[must_use]
    pub fn verify(mut self, mode: VerifyMode) -> CompileOptions {
        self.verify = mode;
        self
    }

    /// Overrides the block width used by batch evaluation paths.
    #[must_use]
    pub fn block_size(mut self, lanes: usize) -> CompileOptions {
        self.block_size = Some(lanes.max(1));
        self
    }

    /// The block width a sweep over `len` points should use under these
    /// options.
    pub fn block_width_for(&self, len: usize) -> usize {
        match self.block_size {
            Some(lanes) => lanes.min(len.max(1)),
            None => crate::block::block_width_for(len),
        }
    }
}

/// Compiles `expr` for `target` under `options` — the one entry point for
/// every evaluation path that reuses a program across many points.
///
/// # Panics
///
/// With [`VerifyMode::Always`], panics if the compiled (or optimized)
/// program violates an IR invariant.
pub fn compile_with_options(
    target: &Target,
    expr: &FloatExpr,
    options: &CompileOptions,
) -> (Program, OptimizeStats) {
    let program = crate::compile::compile(target, expr);
    if options.verify == VerifyMode::Always {
        let violations = verify_with_target(&program, target, Mode::Ssa);
        assert!(
            violations.is_empty(),
            "compiled program violates the IR contract:\n{}",
            verify::render(&violations),
        );
    }
    match options.opt_level {
        OptLevel::None => {
            let stats = OptimizeStats {
                instrs_before: program.num_instrs(),
                instrs_after: program.num_instrs(),
                regs_before: program.num_regs(),
                regs_after: program.num_regs(),
            };
            (program, stats)
        }
        OptLevel::Full => {
            let (optimized, stats) = optimize(&program);
            if options.verify == VerifyMode::Always {
                let violations = verify_with_target(&optimized, target, Mode::Executable);
                assert!(
                    violations.is_empty(),
                    "optimized program violates the IR contract:\n{}",
                    verify::render(&violations),
                );
            }
            (optimized, stats)
        }
    }
}
