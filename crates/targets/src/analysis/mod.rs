//! Static analysis over compiled [`Program`]s: verification, dataflow, and
//! bit-identity-preserving rewrites.
//!
//! The whole evaluation pipeline rests on one artifact — the flat
//! register-machine [`Program`] — executed by three engines that must agree
//! bit for bit (tree walk, scalar bytecode, SoA block engine). This module is
//! the corresponding correctness backbone:
//!
//! * [`verify`](mod@verify) — a total check of every IR invariant (register
//!   discipline, bounds, select-arm privacy, sweep/scalar pairing), run
//!   automatically after every [`crate::compile()`] in debug builds and over the full
//!   benchmark corpus in CI (`lint_ir`);
//! * [`dataflow`] — a forward/backward worklist framework over the linear
//!   SSA program, hosting the analyses below;
//! * [`liveness`](mod@liveness) — backward live-register analysis and the
//!   last-use table;
//! * [`dce`] — dead-code elimination for instructions whose results are
//!   never used (CSE can strand these), with skip-range remapping;
//! * [`compact`] — liveness-driven register renumbering that shrinks the
//!   register slab (the block engine's working set) while preserving the
//!   `dst > operands` discipline the slab split depends on;
//! * [`interval`] — forward interval/NaN analysis from sampler domains,
//!   flagging provably-uniform select conditions and transcendental calls
//!   that stay on their `vecmath` kernel's special-case-free range
//!   (advisory: dispatch never changes, so bit identity is untouched);
//! * [`mutate`] — a seeded invariant-breaking mutation harness that tests
//!   the *verifier's* power: every mutant must be rejected.
//!
//! Every rewrite here is bit-identical by construction: [`dce`] only removes
//! instructions whose values cannot reach the result, and [`compact`] is a
//! pure renaming that preserves value flow (see each module's proof sketch).
//! The `tests/analysis.rs` suite asserts this corpus-wide across all three
//! engines at several block widths.
//!
//! The documented IR grammar and the full invariant list live in
//! `docs/PROGRAM_IR.md`.

pub mod compact;
pub mod dataflow;
pub mod dce;
pub mod interval;
pub mod liveness;
pub mod mutate;
pub mod verify;

pub use compact::{compact_registers, CompactStats};
pub use dce::{eliminate_dead_code, DceStats};
pub use interval::{
    domains_from_pre, interval_analysis, IntervalAnalysis, SafeCall, UniformSelect, ValueFact,
};
pub use liveness::{last_use_table, liveness, Liveness};
pub use mutate::{seeded_mutants, Mutant, MutationKind};
pub use verify::{verify, verify_target, verify_with_target, Mode, Violation};

use crate::compile::Program;
use crate::expr::FloatExpr;
use crate::target::Target;

/// Size accounting for [`optimize`]: how much dead code and slab height the
/// dataflow passes removed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OptimizeStats {
    /// Instruction count before dead-code elimination.
    pub instrs_before: usize,
    /// Instruction count after dead-code elimination.
    pub instrs_after: usize,
    /// Register-slab height (total registers) before compaction.
    pub regs_before: usize,
    /// Register-slab height after liveness-driven compaction.
    pub regs_after: usize,
}

/// The standard optimization pipeline: dead-code elimination followed by
/// liveness-driven register compaction, with the verifier re-run after each
/// pass in debug builds.
///
/// The result is bit-identical to the input program on every input
/// (including NaN) — the rewrites only drop unreachable values and rename
/// registers — but occupies a smaller register slab, which is the block
/// engine's per-worker working set.
pub fn optimize(program: &Program) -> (Program, OptimizeStats) {
    let (dced, _) = eliminate_dead_code(program);
    debug_assert!(
        verify(&dced, Mode::Ssa).is_empty(),
        "dead-code elimination broke an IR invariant:\n{}",
        verify::render(&verify(&dced, Mode::Ssa)),
    );
    let (compacted, stats) = compact_registers(&dced);
    debug_assert!(
        verify(&compacted, Mode::Executable).is_empty(),
        "register compaction broke an IR invariant:\n{}",
        verify::render(&verify(&compacted, Mode::Executable)),
    );
    (
        compacted,
        OptimizeStats {
            instrs_before: program.num_instrs(),
            instrs_after: dced.num_instrs(),
            regs_before: program.num_regs(),
            regs_after: stats.regs_after,
        },
    )
}

/// Compiles `expr` for `target` and runs the standard optimization pipeline
/// — the one-stop entry point for evaluation paths that reuse a program
/// across many points.
pub fn compile_optimized(target: &Target, expr: &FloatExpr) -> (Program, OptimizeStats) {
    optimize(&crate::compile::compile(target, expr))
}
