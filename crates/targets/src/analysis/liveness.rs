//! Backward liveness analysis over the linear program.
//!
//! A register is *live* at a program point when its current value may still
//! be read at or after that point. Reads are the instruction operands, the
//! program result (live at exit), and — crucially for the block engine — the
//! condition register of every skip range at the range's *start*: the block
//! evaluator tests the condition lanes when it reaches `skip.start`, before
//! executing (or skipping) the range, so the condition must survive at least
//! that long even if no instruction reads it there.
//!
//! Liveness is computed on the *linear* instruction stream, dead select arms
//! included. That is deliberate: a select reads both of its arm registers on
//! every lane (the dead lanes are discarded, not unread), so any register a
//! dead arm feeds stays allocated until the select. This is exactly the
//! property that makes liveness-driven [compaction](crate::analysis::compact)
//! sound in the presence of skip ranges.

use crate::analysis::dataflow::{solve, Analysis, RegSet};
use crate::compile::Program;

/// The solved liveness facts: `live[i]` is the set of registers live
/// *before* instruction `i`, and `live[n]` the set live at exit.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Live-in set per program point (`num_instrs() + 1` entries).
    pub live: Vec<RegSet>,
}

struct LivenessAnalysis;

impl Analysis for LivenessAnalysis {
    type Fact = RegSet;
    const BACKWARD: bool = true;

    fn boundary(&self, program: &Program) -> RegSet {
        let mut exit = RegSet::new(program.num_regs());
        exit.insert(program.result);
        exit
    }

    fn transfer(&self, program: &Program, idx: usize, after: &RegSet) -> RegSet {
        let mut before = after.clone();
        let instr = &program.instrs[idx];
        before.remove(instr.dst());
        instr.for_each_read(&program.arg_pool, |reg| before.insert(reg));
        // The block engine reads each skip condition when it reaches the
        // range start: an extra use at `skip.start`.
        for skip in &program.skips {
            if skip.start as usize == idx {
                before.insert(skip.cond);
            }
        }
        before
    }
}

/// Computes liveness for `program`.
pub fn liveness(program: &Program) -> Liveness {
    Liveness {
        live: solve(&LivenessAnalysis, program),
    }
}

/// The index of the last instruction that reads a register, per program
/// point of use. `num_instrs()` means the register is read by the program
/// result (or a skip condition at the very end); `None` means it is never
/// read at all.
pub fn last_use_table(program: &Program) -> Vec<Option<usize>> {
    let n = program.num_instrs();
    let mut last: Vec<Option<usize>> = vec![None; program.num_regs()];
    let mut mark = |reg: u32, at: usize| {
        let slot = &mut last[reg as usize];
        *slot = Some(slot.map_or(at, |prev| prev.max(at)));
    };
    for (i, instr) in program.instrs.iter().enumerate() {
        instr.for_each_read(&program.arg_pool, |reg| mark(reg, i));
    }
    for skip in &program.skips {
        mark(skip.cond, skip.start as usize);
    }
    mark(program.result, n);
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{Instr, Program, SkipRange};
    use fpcore::RealOp;

    /// `r2 = r0 + r1; r3 = r2 * r2; result = r3`, with r0 a constant and r1
    /// a variable.
    fn straight_line() -> Program {
        Program {
            n_regs: 4,
            consts: vec![(0, 1.0)],
            vars: vec![(1, fpcore::Symbol::new("x"))],
            instrs: vec![
                Instr::Bin {
                    op: RealOp::Add,
                    a: 0,
                    b: 1,
                    dst: 2,
                },
                Instr::Bin {
                    op: RealOp::Mul,
                    a: 2,
                    b: 2,
                    dst: 3,
                },
            ],
            arg_pool: vec![],
            skips: vec![],
            result: 3,
        }
    }

    #[test]
    fn live_ranges_end_at_last_use() {
        let p = straight_line();
        let lv = liveness(&p);
        // Before the add: its operands are live, its result is not yet.
        assert!(lv.live[0].contains(0) && lv.live[0].contains(1));
        assert!(!lv.live[0].contains(2));
        // Between the two instructions only r2 is live.
        assert_eq!(lv.live[1].iter().collect::<Vec<_>>(), vec![2]);
        // At exit only the result is live.
        assert_eq!(lv.live[2].iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn last_use_table_matches() {
        let p = straight_line();
        let last = last_use_table(&p);
        assert_eq!(last[0], Some(0));
        assert_eq!(last[1], Some(0));
        assert_eq!(last[2], Some(1));
        assert_eq!(last[3], Some(2), "the result is read at exit");
    }

    #[test]
    fn skip_conditions_are_used_at_range_start() {
        // r1 = x < 0 (pretend: r1 cmp), r2 = exp(x) [skippable arm],
        // r3 = select(r1, r2, r0).
        let p = Program {
            n_regs: 4,
            consts: vec![(0, 1.0)],
            vars: vec![(1, fpcore::Symbol::new("x"))],
            instrs: vec![
                Instr::Un {
                    op: RealOp::Neg,
                    a: 1,
                    dst: 2,
                },
                Instr::Select {
                    c: 1,
                    t: 2,
                    e: 0,
                    dst: 3,
                },
            ],
            arg_pool: vec![],
            skips: vec![SkipRange {
                start: 0,
                end: 1,
                cond: 1,
                dead_when: false,
            }],
            result: 3,
        };
        let lv = liveness(&p);
        // The condition (r1, also the select's c) is live before the arm.
        assert!(lv.live[0].contains(1));
        let last = last_use_table(&p);
        // r1's last use is the select itself (index 1 ≥ the skip-start use).
        assert_eq!(last[1], Some(1));
    }
}
